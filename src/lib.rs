//! # corrfuse
//!
//! Umbrella crate for the `corrfuse` workspace — a production-quality Rust
//! implementation of correlation-aware data fusion (truth discovery),
//! reproducing *"Fusing Data with Correlations"* (Pochampally, Das Sarma,
//! Dong, Meliou, Srivastava — SIGMOD 2014).
//!
//! Re-exports the four member crates:
//!
//! * [`core`] (`corrfuse-core`) — data model, quality estimation, the
//!   PrecRec and PrecRecCorr fusion models (exact / aggressive / elastic),
//!   and source clustering.
//! * [`stream`] (`corrfuse-stream`) — incremental ingestion: delta log,
//!   incremental fuser, score cache, micro-batching sessions, and the
//!   append-only journal.
//! * [`serve`] (`corrfuse-serve`) — the serving layer: a sharded
//!   multi-tenant session router with an async ingestion front door,
//!   backpressure, and per-shard journal rotation.
//! * [`net`] (`corrfuse-net`) — the network front door: the
//!   `corrfuse-net v1` wire protocol (length-prefixed CRC-checked
//!   frames carrying journal-codec event batches), a blocking TCP
//!   server owning a `ShardRouter`, and a pipelined reconnecting
//!   client. Spec in `docs/PROTOCOL.md`.
//! * [`replica`] (`corrfuse-replica`) — read-replica followers: one
//!   replication link per leader shard (`SUBSCRIBE`/`BATCH`/
//!   `EPOCH_ACK`), incremental apply with epoch sequencing, and
//!   bounded-staleness reads (`min_epoch` / `STALE`) served in process
//!   or through the read-only follower server.
//! * [`obs`] (`corrfuse-obs`) — zero-dependency observability: the
//!   lock-free metric registry, log₂ latency histograms, span timers
//!   and the bounded batch-trace ring. Catalog in
//!   `docs/OBSERVABILITY.md`.
//! * [`baselines`] (`corrfuse-baselines`) — UNION-K voting, 2-/3-Estimates,
//!   Cosine, the Latent Truth Model, and ACCU/AccuCopy.
//! * [`synth`] (`corrfuse-synth`) — the Figure 1 example, parametric
//!   correlated generators, and REVERB/RESTAURANT/BOOK replicas.
//! * [`eval`] (`corrfuse-eval`) — metrics (P/R/F1, PR/ROC curves, AUC),
//!   the method registry, and per-figure experiment runners.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use corrfuse_baselines as baselines;
pub use corrfuse_core as core;
pub use corrfuse_eval as eval;
pub use corrfuse_net as net;
pub use corrfuse_obs as obs;
pub use corrfuse_replica as replica;
pub use corrfuse_serve as serve;
pub use corrfuse_stream as stream;
pub use corrfuse_synth as synth;

/// Crate version of the umbrella package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
