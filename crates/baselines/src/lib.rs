//! # corrfuse-baselines
//!
//! The comparison methods the SIGMOD'14 evaluation runs against:
//!
//! * [`voting`] — UNION-K (UNION-50 = majority voting);
//! * [`estimates`] — COSINE, 2-ESTIMATES and 3-ESTIMATES
//!   (Galland et al., WSDM 2010);
//! * [`ltm`] — the Latent Truth Model with collapsed Gibbs sampling
//!   (Zhao et al., PVLDB 2012);
//! * [`accu`] — single-truth ACCU and copy-aware ACCUCOPY
//!   (Dong et al., PVLDB 2009), used for the BOOK comparison;
//! * [`claims`] — the positive/negative claim mapping shared by the
//!   iterative methods.
//!
//! Each baseline is implemented from its original publication; none of them
//! model broad correlations, which is precisely the gap the core crate's
//! PrecRecCorr fills.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accu;
pub mod claims;
pub mod estimates;
pub mod ltm;
pub mod voting;

pub use estimates::{cosine, three_estimates, two_estimates, EstimatesConfig};
pub use ltm::{LtmConfig, LtmResult};
pub use voting::UnionK;
