//! ACCU / ACCUCOPY — the single-truth Bayesian fusion and copy-detection
//! models of Dong, Berti-Equille & Srivastava, *"Integrating conflicting
//! data: the role of source dependence"* (PVLDB 2009).
//!
//! These operate under **conflicting-triple, closed-world** semantics: each
//! *object* (e.g. a book's author list, taken as a whole) has exactly one
//! true value; a source voting for one value implicitly votes against the
//! others. The SIGMOD'14 paper compares against this approach on the BOOK
//! dataset (§5.1), where it reports high precision but reduced recall
//! because vote discounting also penalises correlated true values.
//!
//! * **ACCU**: iterate source accuracy `A_s` and value probabilities; a
//!   vote contributes `ln(n·A_s / (1 - A_s))` where `n` is the assumed
//!   number of uniformly-likely false values.
//! * **Copy detection**: pairwise Bayesian test where *shared false
//!   values* are the tell-tale of copying.
//! * **ACCUCOPY**: ACCU with each vote discounted by the probability the
//!   source merely copied it.

use std::collections::HashMap;

use corrfuse_core::dataset::Dataset;

/// A single-truth fusion instance: objects, candidate values, votes.
#[derive(Debug, Clone)]
pub struct SingleTruthProblem {
    /// Object keys (e.g. `book-017`).
    pub objects: Vec<String>,
    /// Candidate values per object.
    pub values: Vec<Vec<String>>,
    /// Votes per object: `(source index, value index)`.
    pub votes: Vec<Vec<(u32, u32)>>,
    /// Number of sources.
    pub n_sources: usize,
    /// Gold value index per object, when known.
    pub gold: Vec<Option<u32>>,
}

impl SingleTruthProblem {
    /// Build from a triple dataset by grouping on `(subject, predicate)`:
    /// each source's *value* for an object is the sorted set of objects it
    /// provides, joined with `|` (this is how the paper treats the author
    /// list "as a whole"). The gold value is the set of labelled-true
    /// triples, when labels exist.
    pub fn from_dataset(ds: &Dataset) -> Self {
        // object key -> object index
        let mut object_index: HashMap<String, usize> = HashMap::new();
        let mut objects = Vec::new();
        // per object: source -> Vec<member string>
        let mut claims: Vec<HashMap<u32, Vec<String>>> = Vec::new();
        let mut gold_sets: Vec<Vec<String>> = Vec::new();

        for t in ds.triples() {
            let triple = ds.triple(t);
            let key = format!("{}\u{1}{}", triple.subject, triple.predicate);
            let oi = *object_index.entry(key.clone()).or_insert_with(|| {
                objects.push(key);
                claims.push(HashMap::new());
                gold_sets.push(Vec::new());
                objects.len() - 1
            });
            for s in ds.providers(t).iter_ones() {
                claims[oi]
                    .entry(s as u32)
                    .or_default()
                    .push(triple.object.clone());
            }
            if ds.gold().and_then(|g| g.get(t)) == Some(true) {
                gold_sets[oi].push(triple.object.clone());
            }
        }

        let mut values = Vec::with_capacity(objects.len());
        let mut votes = Vec::with_capacity(objects.len());
        let mut gold = Vec::with_capacity(objects.len());
        for (oi, source_claims) in claims.iter().enumerate() {
            let mut value_index: HashMap<String, u32> = HashMap::new();
            let mut vals: Vec<String> = Vec::new();
            let mut vs: Vec<(u32, u32)> = Vec::new();
            for (&s, members) in source_claims {
                let mut m = members.clone();
                m.sort();
                m.dedup();
                let value = m.join("|");
                let vi = *value_index.entry(value.clone()).or_insert_with(|| {
                    vals.push(value);
                    (vals.len() - 1) as u32
                });
                vs.push((s, vi));
            }
            vs.sort_unstable();
            let g = if gold_sets[oi].is_empty() {
                None
            } else {
                let mut m = gold_sets[oi].clone();
                m.sort();
                m.dedup();
                let value = m.join("|");
                // The gold value may be unclaimed by any source; intern it
                // so recall correctly counts it as missed.
                Some(*value_index.entry(value.clone()).or_insert_with(|| {
                    vals.push(value);
                    (vals.len() - 1) as u32
                }))
            };
            values.push(vals);
            votes.push(vs);
            gold.push(g);
        }
        SingleTruthProblem {
            objects,
            values,
            votes,
            n_sources: ds.n_sources(),
            gold,
        }
    }

    /// Number of objects.
    pub fn n_objects(&self) -> usize {
        self.objects.len()
    }
}

/// Configuration for [`accu`] / [`accu_copy`].
#[derive(Debug, Clone, Copy)]
pub struct AccuConfig {
    /// Assumed number of uniformly-likely false values per object (`n` in
    /// the paper).
    pub n_false_values: f64,
    /// Fixpoint iterations.
    pub iterations: usize,
    /// A-priori copy probability between a source pair.
    pub copy_prior: f64,
    /// Probability that a copier copies a particular value (`c`).
    pub copy_rate: f64,
    /// Initial source accuracy.
    pub initial_accuracy: f64,
}

impl Default for AccuConfig {
    fn default() -> Self {
        AccuConfig {
            n_false_values: 10.0,
            iterations: 15,
            copy_prior: 0.1,
            copy_rate: 0.8,
            initial_accuracy: 0.8,
        }
    }
}

/// Fitted single-truth model.
#[derive(Debug, Clone)]
pub struct AccuModel {
    /// Source accuracies.
    pub accuracy: Vec<f64>,
    /// Per object, per candidate value: probability of being the truth.
    pub value_probs: Vec<Vec<f64>>,
    /// Pairwise copy probabilities (only for ACCUCOPY), keyed `(min, max)`.
    pub copy_probs: Option<HashMap<(u32, u32), f64>>,
}

impl AccuModel {
    /// Index of the most probable value per object (`None` for voteless
    /// objects).
    pub fn predictions(&self) -> Vec<Option<u32>> {
        self.value_probs
            .iter()
            .map(|probs| {
                probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i as u32)
            })
            .collect()
    }

    /// Fraction of gold-labelled objects where the prediction matches.
    pub fn gold_accuracy(&self, problem: &SingleTruthProblem) -> f64 {
        let preds = self.predictions();
        let mut total = 0usize;
        let mut hit = 0usize;
        for (o, g) in problem.gold.iter().enumerate() {
            if let Some(g) = g {
                total += 1;
                if preds[o] == Some(*g) {
                    hit += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }
}

fn value_probabilities(
    problem: &SingleTruthProblem,
    accuracy: &[f64],
    weights: Option<&[Vec<f64>]>,
    cfg: &AccuConfig,
) -> Vec<Vec<f64>> {
    let n = cfg.n_false_values;
    problem
        .votes
        .iter()
        .enumerate()
        .map(|(o, votes)| {
            let n_values = problem.values[o].len();
            let mut scores = vec![0.0f64; n_values];
            for (vote_idx, &(s, v)) in votes.iter().enumerate() {
                let a = accuracy[s as usize].clamp(0.01, 0.99);
                let w = weights.map(|w| w[o][vote_idx]).unwrap_or(1.0);
                scores[v as usize] += w * (n * a / (1.0 - a)).ln();
            }
            // Softmax over candidate values.
            let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut exp: Vec<f64> = scores.iter().map(|&c| (c - max).exp()).collect();
            let z: f64 = exp.iter().sum();
            if z > 0.0 {
                for e in exp.iter_mut() {
                    *e /= z;
                }
            }
            exp
        })
        .collect()
}

fn update_accuracy(problem: &SingleTruthProblem, value_probs: &[Vec<f64>], accuracy: &mut [f64]) {
    let mut sum = vec![0.0f64; accuracy.len()];
    let mut count = vec![0usize; accuracy.len()];
    for (o, votes) in problem.votes.iter().enumerate() {
        for &(s, v) in votes {
            sum[s as usize] += value_probs[o][v as usize];
            count[s as usize] += 1;
        }
    }
    for s in 0..accuracy.len() {
        if count[s] > 0 {
            accuracy[s] = (sum[s] / count[s] as f64).clamp(0.01, 0.99);
        }
    }
}

/// Plain ACCU: no copy reasoning.
pub fn accu(problem: &SingleTruthProblem, cfg: &AccuConfig) -> AccuModel {
    let mut accuracy = vec![cfg.initial_accuracy; problem.n_sources];
    let mut value_probs = value_probabilities(problem, &accuracy, None, cfg);
    for _ in 0..cfg.iterations {
        update_accuracy(problem, &value_probs, &mut accuracy);
        value_probs = value_probabilities(problem, &accuracy, None, cfg);
    }
    AccuModel {
        accuracy,
        value_probs,
        copy_probs: None,
    }
}

/// Pairwise copy detection: Bayes factor over shared-true / shared-false /
/// different observations (§4 of the 2009 paper, symmetrised).
pub fn detect_copying(
    problem: &SingleTruthProblem,
    value_probs: &[Vec<f64>],
    accuracy: &[f64],
    cfg: &AccuConfig,
) -> HashMap<(u32, u32), f64> {
    // For each pair of sources, walk objects they both vote on.
    // Gather votes per object into a map for pair lookups.
    let mut copy_log_odds: HashMap<(u32, u32), f64> = HashMap::new();
    let prior = cfg.copy_prior.clamp(1e-6, 1.0 - 1e-6);
    let prior_lo = (prior / (1.0 - prior)).ln();
    let c = cfg.copy_rate;

    for (o, votes) in problem.votes.iter().enumerate() {
        for i in 0..votes.len() {
            for j in i + 1..votes.len() {
                let (s1, v1) = votes[i];
                let (s2, v2) = votes[j];
                let key = (s1.min(s2), s1.max(s2));
                let a1 = accuracy[s1 as usize].clamp(0.01, 0.99);
                let a2 = accuracy[s2 as usize].clamp(0.01, 0.99);
                let ratio = if v1 == v2 {
                    // Same value: weigh by the current belief in it. Under
                    // copying, the value matches the provider's own draw,
                    // so P(same & true | copy) = c * a_bar + (1-c) a1 a2
                    // and P(same & false | copy) = c (1 - a_bar) + ...,
                    // with a_bar the geometric-mean accuracy (Dong et al.
                    // 2009, symmetrised). Shared *false* values remain the
                    // strong signal; shared true values give only a mild
                    // ratio of roughly 1/a_bar.
                    let p_true = value_probs[o][v1 as usize];
                    let a_bar = (a1 * a2).sqrt();
                    let same_true_indep = a1 * a2;
                    let same_false_indep = (1.0 - a1) * (1.0 - a2) / cfg.n_false_values;
                    let num = p_true * (c * a_bar + (1.0 - c) * same_true_indep)
                        + (1.0 - p_true) * (c * (1.0 - a_bar) + (1.0 - c) * same_false_indep);
                    let den = p_true * same_true_indep + (1.0 - p_true) * same_false_indep;
                    num / den.max(1e-12)
                } else {
                    // Different values: evidence of independence.
                    1.0 - c
                };
                *copy_log_odds.entry(key).or_insert(prior_lo) += ratio.ln();
            }
        }
    }
    copy_log_odds
        .into_iter()
        .map(|(k, lo)| (k, corrfuse_core::prob::sigmoid(lo)))
        .collect()
}

/// ACCUCOPY: ACCU with votes discounted by the probability that they were
/// copied from another source voting for the same value.
pub fn accu_copy(problem: &SingleTruthProblem, cfg: &AccuConfig) -> AccuModel {
    let mut accuracy = vec![cfg.initial_accuracy; problem.n_sources];
    let mut value_probs = value_probabilities(problem, &accuracy, None, cfg);
    let mut copy_probs = HashMap::new();

    for _ in 0..cfg.iterations {
        copy_probs = detect_copying(problem, &value_probs, &accuracy, cfg);
        // Vote weight: probability the vote is independent of every other
        // source voting the same value on the same object.
        let weights: Vec<Vec<f64>> = problem
            .votes
            .iter()
            .map(|votes| {
                votes
                    .iter()
                    .map(|&(s, v)| {
                        let mut w = 1.0;
                        for &(s2, v2) in votes {
                            if s2 == s || v2 != v {
                                continue;
                            }
                            let key = (s.min(s2), s.max(s2));
                            let p_copy = copy_probs.get(&key).copied().unwrap_or(0.0);
                            w *= 1.0 - cfg.copy_rate * p_copy;
                        }
                        w
                    })
                    .collect()
            })
            .collect();
        value_probs = value_probabilities(problem, &accuracy, Some(&weights), cfg);
        update_accuracy(problem, &value_probs, &mut accuracy);
    }
    AccuModel {
        accuracy,
        value_probs,
        copy_probs: Some(copy_probs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::DatasetBuilder;

    /// 20 objects; five independent accurate sources (each errs on its own
    /// few objects with private wrong values) and a copy ring of
    /// `ring_size` members sharing identical mistakes on 8 objects.
    fn problem(ring_size: usize, n_independent: usize) -> SingleTruthProblem {
        let mut b = DatasetBuilder::new();
        let independents: Vec<_> = (0..n_independent)
            .map(|i| b.source(format!("I{i}")))
            .collect();
        let ring: Vec<_> = (0..ring_size).map(|i| b.source(format!("R{i}"))).collect();
        for o in 0..20 {
            let truth = b.triple(format!("obj{o}"), "val", format!("true-{o}"));
            b.label(truth, true);
            let ring_errs = o % 5 < 2; // objects 0,1,5,6,10,11,15,16
            let wrong = |b: &mut DatasetBuilder, who: String| {
                let w = b.triple(format!("obj{o}"), "val", format!("wrong-{who}-{o}"));
                b.label(w, false);
                w
            };
            for (i, &s) in independents.iter().enumerate() {
                // Independent i errs on its own objects (2..=3 of 20),
                // chosen away from the ring objects so beliefs there hinge
                // on ring-vs-independent votes only.
                let errs = (o + 13 * i) % 9 == 2 && o % 5 >= 2;
                if errs {
                    let w = wrong(&mut b, format!("i{i}"));
                    b.observe(s, w);
                } else {
                    b.observe(s, truth);
                }
            }
            if ring_errs {
                let w = wrong(&mut b, "ring".to_string());
                for &r in &ring {
                    b.observe(r, w);
                }
            } else {
                for &r in &ring {
                    b.observe(r, truth);
                }
            }
        }
        let ds = b.build().unwrap();
        SingleTruthProblem::from_dataset(&ds)
    }

    #[test]
    fn from_dataset_groups_objects() {
        let p = problem(3, 5);
        assert_eq!(p.n_objects(), 20);
        assert_eq!(p.n_sources, 8);
        for o in 0..20 {
            assert_eq!(p.votes[o].len(), 8);
            assert!(p.gold[o].is_some());
        }
    }

    #[test]
    fn accu_handles_minority_ring() {
        // 5 honest sources outvote a 3-copier ring: plain ACCU is fine.
        let p = problem(3, 5);
        let acc = accu(&p, &AccuConfig::default()).gold_accuracy(&p);
        assert!(acc > 0.9, "accu accuracy {acc}");
    }

    #[test]
    fn accu_is_blind_to_majority_copying() {
        // 5 replicas outvote 3 honest sources: plain ACCU believes the
        // ring on all 8 shared-mistake objects. This is the failure mode
        // copy detection exists for.
        let p = problem(5, 3);
        let acc = accu(&p, &AccuConfig::default()).gold_accuracy(&p);
        assert!(acc < 0.7, "accu accuracy {acc}");
    }

    #[test]
    fn copy_detection_flags_the_ring() {
        let p = problem(3, 5);
        let model = accu(&p, &AccuConfig::default());
        let copies = detect_copying(
            &p,
            &model.value_probs,
            &model.accuracy,
            &AccuConfig::default(),
        );
        // Independents are sources 0..=4; ring members are 5..=7.
        let ring = copies.get(&(5, 6)).copied().unwrap_or(0.0);
        let independent = copies.get(&(0, 1)).copied().unwrap_or(0.0);
        assert!(ring > 0.9, "ring pair should be flagged: {ring}");
        assert!(
            independent < 0.5,
            "independent pair should not be flagged: {independent}"
        );
    }

    #[test]
    fn accu_copy_keeps_accuracy_and_flags_ring() {
        let p = problem(3, 5);
        let cfg = AccuConfig::default();
        let plain = accu(&p, &cfg).gold_accuracy(&p);
        let model = accu_copy(&p, &cfg);
        let copyaware = model.gold_accuracy(&p);
        assert!(
            copyaware >= plain - 1e-9,
            "accucopy {copyaware} should not be worse than accu {plain}"
        );
        assert!(copyaware > 0.9, "accucopy accuracy {copyaware}");
        let cp = model.copy_probs.as_ref().unwrap();
        assert!(cp.get(&(5, 7)).copied().unwrap_or(0.0) > 0.9);
    }

    #[test]
    fn predictions_are_argmax() {
        let p = problem(3, 5);
        let model = accu(&p, &AccuConfig::default());
        for (o, pred) in model.predictions().iter().enumerate() {
            let probs = &model.value_probs[o];
            if let Some(v) = pred {
                for p in probs {
                    assert!(probs[*v as usize] >= *p - 1e-12);
                }
            }
        }
    }

    #[test]
    fn value_probs_sum_to_one() {
        let p = problem(3, 5);
        let model = accu_copy(&p, &AccuConfig::default());
        for probs in &model.value_probs {
            if probs.is_empty() {
                continue;
            }
            let z: f64 = probs.iter().sum();
            assert!((z - 1.0).abs() < 1e-9, "sum {z}");
        }
    }

    #[test]
    fn unclaimed_gold_value_is_interned() {
        // Gold value that no source provides: recall must be able to count
        // the miss.
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        let wrong = b.triple("obj", "val", "wrong");
        b.observe(s, wrong);
        b.label(wrong, false);
        let truth = b.triple("obj", "val", "right");
        let s2 = b.source("B");
        b.observe(s2, truth);
        b.label(truth, true);
        let ds = b.build().unwrap();
        let p = SingleTruthProblem::from_dataset(&ds);
        assert_eq!(p.n_objects(), 1);
        assert!(p.gold[0].is_some());
        assert!(p.values[0].len() >= 2);
    }
}
