//! Shared claim representation for the iterative baselines.
//!
//! The paper's models use open-world semantics, but the 3-Estimates family
//! and LTM reason over explicit positive/negative statements. We map a
//! dataset onto claims the way the paper's experiments must have: a source
//! *positively* claims every triple it provides and *negatively* claims
//! every in-scope triple it does not provide. (Out-of-scope triples
//! generate no claim, so complementary sources are not forced to vote
//! against each other's data.)

use corrfuse_core::dataset::Dataset;

/// One source's statement about one triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    /// Index of the claiming source.
    pub source: u32,
    /// `true` = the source asserts the triple, `false` = in-scope denial.
    pub positive: bool,
}

/// Claim matrix: per triple, the list of claims; per source, the number of
/// claims it makes (for averaging).
#[derive(Debug, Clone)]
pub struct Claims {
    /// `per_triple[f]` lists every claim on triple `f`.
    pub per_triple: Vec<Vec<Claim>>,
    /// Number of claims per source.
    pub per_source_count: Vec<usize>,
    /// Number of sources.
    pub n_sources: usize,
}

impl Claims {
    /// Extract claims from a dataset (provider = positive claim, in-scope
    /// non-provider = negative claim).
    pub fn from_dataset(ds: &Dataset) -> Self {
        let n_sources = ds.n_sources();
        let mut per_triple = Vec::with_capacity(ds.n_triples());
        let mut per_source_count = vec![0usize; n_sources];
        for t in ds.triples() {
            let providers = ds.providers(t);
            let scope = ds.scope_mask(t);
            let mut claims = Vec::with_capacity(scope.count_ones());
            for s in scope.iter_ones() {
                let positive = providers.get(s);
                claims.push(Claim {
                    source: s as u32,
                    positive,
                });
                per_source_count[s] += 1;
            }
            per_triple.push(claims);
        }
        Claims {
            per_triple,
            per_source_count,
            n_sources,
        }
    }

    /// Number of triples.
    pub fn n_triples(&self) -> usize {
        self.per_triple.len()
    }
}

/// Affinely rescale a vector onto `[0, 1]` (the "normalization" step of
/// Galland et al.); constant vectors are left unchanged.
pub fn normalize_unit(values: &mut [f64]) {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !(hi - lo).is_finite() || hi - lo < 1e-12 {
        return;
    }
    for v in values.iter_mut() {
        *v = (*v - lo) / (hi - lo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::{DatasetBuilder, Domain};

    #[test]
    fn claims_cover_scope() {
        let mut b = DatasetBuilder::new();
        let s1 = b.source("A");
        let s2 = b.source("B");
        let t1 = b.triple("x", "p", "1");
        let t2 = b.triple("y", "p", "2");
        b.observe(s1, t1);
        b.observe(s2, t1);
        b.observe(s1, t2);
        let ds = b.build().unwrap();
        let c = Claims::from_dataset(&ds);
        assert_eq!(c.n_triples(), 2);
        assert_eq!(c.per_triple[0].len(), 2);
        assert!(c.per_triple[0].iter().all(|cl| cl.positive));
        // t2: A positive, B negative (in scope, default single domain).
        let neg: Vec<_> = c.per_triple[1].iter().filter(|cl| !cl.positive).collect();
        assert_eq!(neg.len(), 1);
        assert_eq!(neg[0].source, 1);
        assert_eq!(c.per_source_count, vec![2, 2]);
    }

    #[test]
    fn out_of_scope_generates_no_claim() {
        let mut b = DatasetBuilder::new();
        let s1 = b.source("A");
        let s2 = b.source("B");
        let t1 = b.triple("x", "p", "1");
        let t2 = b.triple("y", "p", "2");
        b.set_domain(t1, Domain(1));
        b.set_domain(t2, Domain(2));
        b.observe(s1, t1);
        b.observe(s2, t2);
        let ds = b.build().unwrap();
        let c = Claims::from_dataset(&ds);
        // Each triple claimed only by its provider; the other source is out
        // of scope.
        assert_eq!(c.per_triple[0].len(), 1);
        assert_eq!(c.per_triple[1].len(), 1);
        assert_eq!(c.per_source_count, vec![1, 1]);
    }

    #[test]
    fn normalize_unit_rescales() {
        let mut v = vec![2.0, 4.0, 3.0];
        normalize_unit(&mut v);
        assert_eq!(v, vec![0.0, 1.0, 0.5]);
        // Constant vectors untouched.
        let mut c = vec![0.7, 0.7];
        normalize_unit(&mut c);
        assert_eq!(c, vec![0.7, 0.7]);
    }
}
