//! UNION-K voting baselines.
//!
//! `UNION-K` accepts a triple as true when at least `K%` of the sources
//! provide it; `UNION-50` is majority voting. For ranking-based metrics
//! (PR/ROC curves) triples are ordered by provider count, exactly as the
//! paper does ("for UNION-K, we rank in decreasing order of the number of
//! providers").

use corrfuse_core::dataset::Dataset;

/// The UNION-K voting rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnionK {
    /// Acceptance threshold as a percentage of the source count (e.g.
    /// `25.0` for UNION-25).
    pub percent: f64,
}

impl UnionK {
    /// `UNION-K` for a given percentage.
    pub fn new(percent: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&percent),
            "percent must be in [0, 100]"
        );
        UnionK { percent }
    }

    /// Majority voting (`UNION-50`).
    pub fn majority() -> Self {
        UnionK { percent: 50.0 }
    }

    /// Minimum number of providers needed for acceptance among `n`
    /// (in-scope) sources: `ceil(K/100 * n)`, with a floor of 1.
    pub fn min_providers(&self, n_sources: usize) -> usize {
        let raw = (self.percent / 100.0 * n_sources as f64).ceil() as usize;
        raw.max(1)
    }

    /// Ranking score per triple: provider count normalised by the number of
    /// *in-scope* sources. For single-domain datasets this is the plain
    /// fraction of all sources; for scoped datasets (e.g. BOOK, where each
    /// seller lists only some books) the percentage is taken over the
    /// sources that cover the triple, as the paper's scope semantics
    /// prescribe (§2.1).
    pub fn score_all(&self, ds: &Dataset) -> Vec<f64> {
        ds.triples()
            .map(|t| {
                let in_scope = ds.scope_mask(t).count_ones().max(1) as f64;
                ds.providers(t).count_ones() as f64 / in_scope
            })
            .collect()
    }

    /// Accept/reject decision per triple.
    pub fn decide(&self, ds: &Dataset) -> Vec<bool> {
        ds.triples()
            .map(|t| {
                let in_scope = ds.scope_mask(t).count_ones();
                ds.providers(t).count_ones() >= self.min_providers(in_scope)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::DatasetBuilder;

    /// Figure 1 dataset (local copy to avoid a dev-dependency cycle).
    fn figure1() -> Dataset {
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (1..=5).map(|i| b.source(format!("S{i}"))).collect();
        let rows: [(&str, bool, &[usize]); 10] = [
            ("t1", true, &[1, 2, 4, 5]),
            ("t2", false, &[1, 2]),
            ("t3", true, &[3]),
            ("t4", true, &[2, 3, 4, 5]),
            ("t5", false, &[2, 3]),
            ("t6", true, &[1, 4, 5]),
            ("t7", true, &[1, 2, 3]),
            ("t8", false, &[1, 2, 4, 5]),
            ("t9", false, &[1, 2, 4, 5]),
            ("t10", true, &[1, 3, 4, 5]),
        ];
        for (name, truth, provs) in rows {
            let t = b.triple("Obama", "fact", name);
            for &p in provs {
                b.observe(sources[p - 1], t);
            }
            b.label(t, truth);
        }
        b.build().unwrap()
    }

    fn prf(ds: &Dataset, decisions: &[bool]) -> (f64, f64) {
        let gold = ds.gold().unwrap();
        let (mut tp, mut fp, mut fnn) = (0.0, 0.0, 0.0);
        for t in ds.triples() {
            match (decisions[t.index()], gold.get(t).unwrap()) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, true) => fnn += 1.0,
                _ => {}
            }
        }
        (tp / (tp + fp), tp / (tp + fnn))
    }

    #[test]
    fn figure_1c_union_25() {
        let ds = figure1();
        let (p, r) = prf(&ds, &UnionK::new(25.0).decide(&ds));
        assert!((p - 5.0 / 9.0).abs() < 1e-12, "precision {p}"); // 0.56
        assert!((r - 5.0 / 6.0).abs() < 1e-12, "recall {r}"); // 0.83
    }

    #[test]
    fn figure_1c_union_50() {
        let ds = figure1();
        let (p, r) = prf(&ds, &UnionK::majority().decide(&ds));
        assert!((p - 5.0 / 7.0).abs() < 1e-12, "precision {p}"); // 0.71
        assert!((r - 5.0 / 6.0).abs() < 1e-12, "recall {r}"); // 0.83
    }

    #[test]
    fn figure_1c_union_75() {
        let ds = figure1();
        let (p, r) = prf(&ds, &UnionK::new(75.0).decide(&ds));
        assert!((p - 0.6).abs() < 1e-12, "precision {p}");
        assert!((r - 0.5).abs() < 1e-12, "recall {r}");
    }

    #[test]
    fn min_providers_rounding() {
        let u = UnionK::new(25.0);
        assert_eq!(u.min_providers(5), 2); // ceil(1.25)
        assert_eq!(u.min_providers(4), 1);
        assert_eq!(u.min_providers(8), 2);
        let u = UnionK::new(50.0);
        assert_eq!(u.min_providers(5), 3); // ceil(2.5)
        assert_eq!(u.min_providers(6), 3);
        // Never zero, even for tiny K.
        assert_eq!(UnionK::new(0.0).min_providers(10), 1);
    }

    #[test]
    fn scores_rank_by_provider_count() {
        let ds = figure1();
        let scores = UnionK::new(50.0).score_all(&ds);
        // t1 has 4 providers, t3 has 1.
        assert!(scores[0] > scores[2]);
        assert!((scores[0] - 0.8).abs() < 1e-12);
        assert!((scores[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percent")]
    fn invalid_percent_panics() {
        UnionK::new(120.0);
    }
}
