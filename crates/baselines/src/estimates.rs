//! The fixpoint estimators of Galland, Abiteboul, Marian & Senellart,
//! *"Corroborating information from disagreeing views"* (WSDM 2010):
//! COSINE, 2-ESTIMATES and 3-ESTIMATES.
//!
//! All three iterate between per-triple truth estimates and per-source
//! error/trust estimates over the [`Claims`] matrix; 3-ESTIMATES adds a
//! per-triple *difficulty*. After each half-step the updated vector is
//! affinely renormalised onto `[0, 1]` (resp. `[-1, 1]` for COSINE), as
//! prescribed in the original paper. The SIGMOD'14 paper compares against
//! 3-ESTIMATES ("the best model among the three"), so that is the default
//! used by the experiment harness; the other two are provided for
//! completeness.

use corrfuse_core::dataset::Dataset;

use crate::claims::{normalize_unit, Claims};

/// Shared iteration knobs.
#[derive(Debug, Clone, Copy)]
pub struct EstimatesConfig {
    /// Number of fixpoint iterations.
    pub iterations: usize,
    /// Damping factor for COSINE's trust update.
    pub cosine_eta: f64,
    /// Numerical floor for divisors (source error, difficulty).
    pub epsilon: f64,
}

impl Default for EstimatesConfig {
    fn default() -> Self {
        EstimatesConfig {
            iterations: 20,
            cosine_eta: 0.2,
            epsilon: 1e-3,
        }
    }
}

/// Result of an estimator run.
#[derive(Debug, Clone)]
pub struct EstimatesResult {
    /// Truth score per triple; higher = more likely true. COSINE scores
    /// live in `[-1, 1]`, the others in `[0, 1]`.
    pub truth: Vec<f64>,
    /// Per-source error (2-/3-ESTIMATES) or trust (COSINE).
    pub source_scores: Vec<f64>,
    /// Decision threshold matching the score scale.
    pub threshold: f64,
}

impl EstimatesResult {
    /// Binary accept/reject decisions.
    pub fn decide(&self) -> Vec<bool> {
        self.truth.iter().map(|&v| v > self.threshold).collect()
    }
}

/// 2-ESTIMATES: alternate truth / source-error averaging with unit-range
/// normalisation.
pub fn two_estimates(ds: &Dataset, cfg: &EstimatesConfig) -> EstimatesResult {
    let claims = Claims::from_dataset(ds);
    let m = claims.n_triples();
    let n = claims.n_sources;
    let mut truth = vec![0.5f64; m];
    let mut error = vec![0.2f64; n];

    for _ in 0..cfg.iterations {
        // theta_f = avg over claims: positive ? 1 - eps_s : eps_s.
        for (f, cl) in claims.per_triple.iter().enumerate() {
            if cl.is_empty() {
                continue;
            }
            let sum: f64 = cl
                .iter()
                .map(|c| {
                    let e = error[c.source as usize];
                    if c.positive {
                        1.0 - e
                    } else {
                        e
                    }
                })
                .sum();
            truth[f] = sum / cl.len() as f64;
        }
        normalize_unit(&mut truth);
        // eps_s = avg over claims: positive ? 1 - theta_f : theta_f.
        let mut acc = vec![0.0f64; n];
        for (f, cl) in claims.per_triple.iter().enumerate() {
            for c in cl {
                let contribution = if c.positive { 1.0 - truth[f] } else { truth[f] };
                acc[c.source as usize] += contribution;
            }
        }
        for s in 0..n {
            if claims.per_source_count[s] > 0 {
                error[s] = acc[s] / claims.per_source_count[s] as f64;
            }
        }
        normalize_unit(&mut error);
        for e in error.iter_mut() {
            *e = e.clamp(cfg.epsilon, 1.0 - cfg.epsilon);
        }
    }
    EstimatesResult {
        truth,
        source_scores: error,
        threshold: 0.5,
    }
}

/// 3-ESTIMATES: 2-ESTIMATES plus a per-triple difficulty factor, so the
/// error probability of source `s` on triple `f` is `eps_s * delta_f`.
pub fn three_estimates(ds: &Dataset, cfg: &EstimatesConfig) -> EstimatesResult {
    let claims = Claims::from_dataset(ds);
    let m = claims.n_triples();
    let n = claims.n_sources;
    let mut truth = vec![0.5f64; m];
    let mut error = vec![0.2f64; n];
    let mut difficulty = vec![0.5f64; m];

    for _ in 0..cfg.iterations {
        // theta_f = avg(positive ? 1 - eps*delta : eps*delta).
        for (f, cl) in claims.per_triple.iter().enumerate() {
            if cl.is_empty() {
                continue;
            }
            let d = difficulty[f];
            let sum: f64 = cl
                .iter()
                .map(|c| {
                    let wrong = (error[c.source as usize] * d).clamp(0.0, 1.0);
                    if c.positive {
                        1.0 - wrong
                    } else {
                        wrong
                    }
                })
                .sum();
            truth[f] = sum / cl.len() as f64;
        }
        normalize_unit(&mut truth);

        // delta_f = avg(positive ? (1-theta)/eps : theta/eps).
        for (f, cl) in claims.per_triple.iter().enumerate() {
            if cl.is_empty() {
                continue;
            }
            let sum: f64 = cl
                .iter()
                .map(|c| {
                    let e = error[c.source as usize].max(cfg.epsilon);
                    if c.positive {
                        (1.0 - truth[f]) / e
                    } else {
                        truth[f] / e
                    }
                })
                .sum();
            difficulty[f] = sum / cl.len() as f64;
        }
        normalize_unit(&mut difficulty);
        for d in difficulty.iter_mut() {
            *d = d.clamp(cfg.epsilon, 1.0);
        }

        // eps_s = avg(positive ? (1-theta)/delta : theta/delta).
        let mut acc = vec![0.0f64; n];
        for (f, cl) in claims.per_triple.iter().enumerate() {
            let d = difficulty[f].max(cfg.epsilon);
            for c in cl {
                let contribution = if c.positive {
                    (1.0 - truth[f]) / d
                } else {
                    truth[f] / d
                };
                acc[c.source as usize] += contribution;
            }
        }
        for s in 0..n {
            if claims.per_source_count[s] > 0 {
                error[s] = acc[s] / claims.per_source_count[s] as f64;
            }
        }
        normalize_unit(&mut error);
        for e in error.iter_mut() {
            *e = e.clamp(cfg.epsilon, 1.0 - cfg.epsilon);
        }
    }
    EstimatesResult {
        truth,
        source_scores: error,
        threshold: 0.5,
    }
}

/// COSINE: trust = damped cosine similarity between a source's ±1 votes and
/// the current truth estimates; truth = trust-weighted vote average.
pub fn cosine(ds: &Dataset, cfg: &EstimatesConfig) -> EstimatesResult {
    let claims = Claims::from_dataset(ds);
    let m = claims.n_triples();
    let n = claims.n_sources;
    let mut truth = vec![0.0f64; m]; // in [-1, 1]
    let mut trust = vec![0.8f64; n];

    // Initialise truth with raw voting.
    for (f, cl) in claims.per_triple.iter().enumerate() {
        if cl.is_empty() {
            continue;
        }
        let sum: f64 = cl.iter().map(|c| if c.positive { 1.0 } else { -1.0 }).sum();
        truth[f] = sum / cl.len() as f64;
    }

    for _ in 0..cfg.iterations {
        // truth_f = sum(trust_s * v_sf) / |claims_f|.
        for (f, cl) in claims.per_triple.iter().enumerate() {
            if cl.is_empty() {
                continue;
            }
            let sum: f64 = cl
                .iter()
                .map(|c| {
                    let v = if c.positive { 1.0 } else { -1.0 };
                    trust[c.source as usize] * v
                })
                .sum();
            truth[f] = (sum / cl.len() as f64).clamp(-1.0, 1.0);
        }
        // trust_s = (1 - eta) trust_s + eta * cos(v_s, truth).
        let mut dot = vec![0.0f64; n];
        let mut norm_truth = vec![0.0f64; n];
        for (f, cl) in claims.per_triple.iter().enumerate() {
            for c in cl {
                let v = if c.positive { 1.0 } else { -1.0 };
                dot[c.source as usize] += v * truth[f];
                norm_truth[c.source as usize] += truth[f] * truth[f];
            }
        }
        for s in 0..n {
            let count = claims.per_source_count[s];
            if count == 0 {
                continue;
            }
            let denom = (count as f64).sqrt() * norm_truth[s].sqrt();
            let cos = if denom > 1e-12 { dot[s] / denom } else { 0.0 };
            trust[s] = (1.0 - cfg.cosine_eta) * trust[s] + cfg.cosine_eta * cos;
            trust[s] = trust[s].clamp(-1.0, 1.0);
        }
    }
    EstimatesResult {
        truth,
        source_scores: trust,
        threshold: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::DatasetBuilder;

    /// 4 sources, 30 triples: S0..S2 reliable, S3 adversarial.
    fn easy_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s: Vec<_> = (0..4).map(|i| b.source(format!("S{i}"))).collect();
        for i in 0..30 {
            let truth = i % 2 == 0;
            let t = b.triple(format!("e{i}"), "p", "v");
            b.label(t, truth);
            if truth {
                // Reliable sources provide most true triples.
                b.observe(s[0], t);
                if i % 3 != 0 {
                    b.observe(s[1], t);
                }
                if i % 4 != 0 {
                    b.observe(s[2], t);
                }
            } else {
                // The adversary provides false triples.
                b.observe(s[3], t);
                if i % 5 == 0 {
                    b.observe(s[0], t);
                }
            }
        }
        b.build().unwrap()
    }

    fn accuracy(ds: &Dataset, decisions: &[bool]) -> f64 {
        let g = ds.gold().unwrap();
        let correct = ds
            .triples()
            .filter(|&t| decisions[t.index()] == g.get(t).unwrap())
            .count();
        correct as f64 / ds.n_triples() as f64
    }

    #[test]
    fn two_estimates_separates_good_from_bad() {
        let ds = easy_dataset();
        let res = two_estimates(&ds, &EstimatesConfig::default());
        let acc = accuracy(&ds, &res.decide());
        assert!(acc > 0.8, "accuracy {acc}");
        // The adversary ends with higher error than the reliable sources.
        assert!(res.source_scores[3] > res.source_scores[0]);
    }

    #[test]
    fn three_estimates_separates_good_from_bad() {
        let ds = easy_dataset();
        let res = three_estimates(&ds, &EstimatesConfig::default());
        let acc = accuracy(&ds, &res.decide());
        assert!(acc > 0.8, "accuracy {acc}");
        assert!(res.source_scores[3] > res.source_scores[0]);
    }

    #[test]
    fn cosine_separates_good_from_bad() {
        let ds = easy_dataset();
        let res = cosine(&ds, &EstimatesConfig::default());
        let acc = accuracy(&ds, &res.decide());
        assert!(acc > 0.8, "accuracy {acc}");
        // Trust of the adversary should be lower.
        assert!(res.source_scores[3] < res.source_scores[0]);
    }

    #[test]
    fn scores_are_in_declared_ranges() {
        let ds = easy_dataset();
        let cfg = EstimatesConfig::default();
        for v in two_estimates(&ds, &cfg).truth {
            assert!((0.0..=1.0).contains(&v));
        }
        for v in three_estimates(&ds, &cfg).truth {
            assert!((0.0..=1.0).contains(&v));
        }
        for v in cosine(&ds, &cfg).truth {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn zero_iterations_returns_initialisation() {
        let ds = easy_dataset();
        let cfg = EstimatesConfig {
            iterations: 0,
            ..Default::default()
        };
        let res = two_estimates(&ds, &cfg);
        assert!(res.truth.iter().all(|&v| (v - 0.5).abs() < 1e-12));
    }

    #[test]
    fn deterministic_across_runs() {
        let ds = easy_dataset();
        let a = three_estimates(&ds, &EstimatesConfig::default());
        let b = three_estimates(&ds, &EstimatesConfig::default());
        assert_eq!(a.truth, b.truth);
    }
}
