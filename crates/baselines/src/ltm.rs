//! LTM — the Latent Truth Model of Zhao, Rubinstein, Gemmell & Han,
//! *"A Bayesian approach to discovering truth from conflicting sources for
//! data integration"* (PVLDB 2012).
//!
//! LTM shares the SIGMOD'14 paper's semantics (independent triples,
//! open world) but is generative: each source `k` has a false-positive
//! rate `phi0_k ~ Beta(a01, a00)` and a sensitivity (recall)
//! `phi1_k ~ Beta(a11, a10)`; each triple's truth `t_f ~ Bernoulli(beta)`;
//! the observation `o_kf in {0,1}` (does `k` assert `f`?) is drawn from the
//! rate matching `t_f`. Inference is collapsed Gibbs sampling over the
//! truth assignments, with the Beta posteriors integrated out — exactly the
//! sampler of the original paper. It is *unsupervised*: gold labels are
//! never consulted.

use corrfuse_core::dataset::Dataset;

use corrfuse_core::rng::StdRng;

/// Hyper-parameters and sampler settings.
///
/// Defaults follow the LTM paper: a strong low-FPR prior
/// `(a01, a00) = (10, 1000)`, an uninformative sensitivity prior
/// `(a11, a10) = (50, 50)`, and a mildly true-leaning truth prior
/// `(b1, b0) = (10, 10)`.
#[derive(Debug, Clone, Copy)]
pub struct LtmConfig {
    /// Beta prior on each source's false-positive rate: `(a01, a00)` =
    /// (pseudo false claims, pseudo true rejections).
    pub alpha0: (f64, f64),
    /// Beta prior on each source's sensitivity: `(a11, a10)`.
    pub alpha1: (f64, f64),
    /// Bernoulli prior on triple truth: `(b1, b0)`.
    pub beta: (f64, f64),
    /// Gibbs burn-in sweeps.
    pub burn_in: usize,
    /// Number of recorded samples after burn-in.
    pub samples: usize,
    /// Keep one sample every `thin` sweeps.
    pub thin: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LtmConfig {
    fn default() -> Self {
        LtmConfig {
            alpha0: (10.0, 1000.0),
            alpha1: (50.0, 50.0),
            beta: (10.0, 10.0),
            burn_in: 50,
            samples: 50,
            thin: 2,
            seed: 7,
        }
    }
}

/// Posterior summaries from a Gibbs run.
#[derive(Debug, Clone)]
pub struct LtmResult {
    /// Posterior probability that each triple is true (sample mean).
    pub truth: Vec<f64>,
    /// Posterior mean sensitivity (recall) per source.
    pub sensitivity: Vec<f64>,
    /// Posterior mean false-positive rate per source.
    pub false_positive_rate: Vec<f64>,
}

impl LtmResult {
    /// Accept triples with posterior probability above 0.5.
    pub fn decide(&self) -> Vec<bool> {
        self.truth.iter().map(|&p| p > 0.5).collect()
    }
}

/// Per-source sufficient statistics: `n[t][o]` = number of triples with
/// current truth assignment `t` and observation `o` from this source.
#[derive(Debug, Clone, Copy, Default)]
struct Counts {
    n: [[f64; 2]; 2],
}

/// Run collapsed Gibbs sampling. Observations follow the claim mapping of
/// [`crate::claims`]: `o = 1` for provided triples, `o = 0` for in-scope
/// non-provided triples; out-of-scope pairs contribute nothing.
pub fn run(ds: &Dataset, cfg: &LtmConfig) -> LtmResult {
    let n_sources = ds.n_sources();
    let m = ds.n_triples();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Per triple: (source, observed) over in-scope sources.
    let mut obs: Vec<Vec<(u32, bool)>> = Vec::with_capacity(m);
    for t in ds.triples() {
        let providers = ds.providers(t);
        let scope = ds.scope_mask(t);
        obs.push(
            scope
                .iter_ones()
                .map(|s| (s as u32, providers.get(s)))
                .collect(),
        );
    }

    // Initialise truth assignments from provider counts rather than the
    // prior: the all-true configuration is a strong attractor when few
    // sources exist (the low-FPR prior cannot rise while nothing is
    // assigned false), and a vote-based start puts the chain in the right
    // basin without changing the stationary distribution.
    let mut truth: Vec<bool> = obs
        .iter()
        .map(|claims| {
            let provided = claims.iter().filter(|&&(_, o)| o).count();
            provided >= 2 || provided * 2 >= claims.len()
        })
        .collect();
    let _ = &mut rng;

    // Sufficient statistics.
    let mut counts = vec![Counts::default(); n_sources];
    for (f, claims) in obs.iter().enumerate() {
        let t = truth[f] as usize;
        for &(s, o) in claims {
            counts[s as usize].n[t][o as usize] += 1.0;
        }
    }

    let (a01, a00) = cfg.alpha0;
    let (a11, a10) = cfg.alpha1;
    let mut truth_acc = vec![0.0f64; m];
    let mut n_true_assigned = truth.iter().filter(|&&t| t).count() as f64;
    let mut recorded = 0usize;

    let total_sweeps = cfg.burn_in + cfg.samples * cfg.thin.max(1);
    for sweep in 0..total_sweeps {
        for f in 0..m {
            // Remove f from the statistics.
            let old = truth[f] as usize;
            for &(s, o) in &obs[f] {
                counts[s as usize].n[old][o as usize] -= 1.0;
            }
            if truth[f] {
                n_true_assigned -= 1.0;
            }

            // Collapsed conditional: for each candidate truth value,
            // product over sources of the posterior predictive of o.
            let mut lp1 = (cfg.beta.0 + n_true_assigned).ln();
            let mut lp0 = (cfg.beta.1 + (m as f64 - 1.0 - n_true_assigned)).ln();
            for &(s, o) in &obs[f] {
                let c = &counts[s as usize];
                // t = 1: sensitivity channel. o=1 ~ (n11 + a11), o=0 ~ (n10 + a10).
                let (num1, den1) = if o {
                    (c.n[1][1] + a11, c.n[1][1] + c.n[1][0] + a11 + a10)
                } else {
                    (c.n[1][0] + a10, c.n[1][1] + c.n[1][0] + a11 + a10)
                };
                lp1 += (num1 / den1).ln();
                // t = 0: false-positive channel.
                let (num0, den0) = if o {
                    (c.n[0][1] + a01, c.n[0][1] + c.n[0][0] + a01 + a00)
                } else {
                    (c.n[0][0] + a00, c.n[0][1] + c.n[0][0] + a01 + a00)
                };
                lp0 += (num0 / den0).ln();
            }
            let p_true = corrfuse_core::prob::sigmoid(lp1 - lp0);
            let new = rng.gen_bool(p_true.clamp(1e-12, 1.0 - 1e-12));
            truth[f] = new;
            if new {
                n_true_assigned += 1.0;
            }
            let new = new as usize;
            for &(s, o) in &obs[f] {
                counts[s as usize].n[new][o as usize] += 1.0;
            }
        }
        if sweep >= cfg.burn_in && (sweep - cfg.burn_in).is_multiple_of(cfg.thin.max(1)) {
            for (acc, &t) in truth_acc.iter_mut().zip(&truth) {
                *acc += t as usize as f64;
            }
            recorded += 1;
        }
    }

    let denom = recorded.max(1) as f64;
    let truth_probs: Vec<f64> = truth_acc.iter().map(|a| a / denom).collect();

    // Posterior mean source quality from the final sufficient statistics.
    let sensitivity = counts
        .iter()
        .map(|c| (c.n[1][1] + a11) / (c.n[1][1] + c.n[1][0] + a11 + a10))
        .collect();
    let false_positive_rate = counts
        .iter()
        .map(|c| (c.n[0][1] + a01) / (c.n[0][1] + c.n[0][0] + a01 + a00))
        .collect();

    LtmResult {
        truth: truth_probs,
        sensitivity,
        false_positive_rate,
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::DatasetBuilder;

    /// 13 sources, 300 triples; sources 0-11 decent with varied recall,
    /// source 12 a spammer asserting every false triple. LTM needs enough
    /// sources for the non-provision evidence to dominate its strong Beta
    /// priors, mirroring its original many-source datasets.
    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s: Vec<_> = (0..13).map(|i| b.source(format!("S{i}"))).collect();
        for i in 0..300 {
            let truth = i % 3 != 0; // 200 true / 100 false
            let t = b.triple(format!("e{i}"), "p", "v");
            b.label(t, truth);
            let mut any = false;
            for k in 0..12usize {
                let h = (i * 31 + k * 17) % 101;
                let provide = if truth {
                    h < 30 + 3 * k // recall 0.30 .. 0.63
                } else {
                    h < 2 // rare mistakes
                };
                if provide {
                    b.observe(s[k], t);
                    any = true;
                }
            }
            if truth && !any {
                b.observe(s[0], t);
            }
            if !truth {
                b.observe(s[12], t); // the spammer
            } else if i % 29 == 5 {
                b.observe(s[12], t);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn ltm_recovers_most_labels_unsupervised() {
        let ds = dataset();
        let res = run(&ds, &LtmConfig::default());
        let g = ds.gold().unwrap();
        let correct = ds
            .triples()
            .filter(|&t| res.decide()[t.index()] == g.get(t).unwrap())
            .count();
        let acc = correct as f64 / ds.n_triples() as f64;
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn spammer_gets_high_fpr_estimate() {
        let ds = dataset();
        let res = run(&ds, &LtmConfig::default());
        // Source 12 asserts every false triple; its posterior FPR must
        // exceed the well-behaved sources'.
        for k in 0..12 {
            assert!(
                res.false_positive_rate[12] > res.false_positive_rate[k],
                "fpr[12]={} vs fpr[{k}]={}",
                res.false_positive_rate[12],
                res.false_positive_rate[k]
            );
        }
    }

    #[test]
    fn probabilities_are_valid_and_deterministic_per_seed() {
        let ds = dataset();
        let a = run(&ds, &LtmConfig::default());
        let b = run(&ds, &LtmConfig::default());
        assert_eq!(a.truth, b.truth, "same seed, same chain");
        for &p in &a.truth {
            assert!((0.0..=1.0).contains(&p));
        }
        let c = run(
            &ds,
            &LtmConfig {
                seed: 1234,
                ..Default::default()
            },
        );
        assert_ne!(a.truth, c.truth, "different seed, different chain");
    }

    #[test]
    fn more_samples_stabilise_estimates() {
        let ds = dataset();
        let small = run(
            &ds,
            &LtmConfig {
                samples: 5,
                ..Default::default()
            },
        );
        let large = run(
            &ds,
            &LtmConfig {
                samples: 80,
                ..Default::default()
            },
        );
        // Both runs should agree on the easy decisions (provided by many
        // good sources vs provided only by the spammer).
        let g = ds.gold().unwrap();
        let agree = ds
            .triples()
            .filter(|&t| small.decide()[t.index()] == large.decide()[t.index()])
            .count();
        assert!(agree as f64 / ds.n_triples() as f64 > 0.85);
        let _ = g;
    }

    #[test]
    fn sensitivity_ordering_reflects_recall() {
        let ds = dataset();
        let res = run(&ds, &LtmConfig::default());
        // Source 11 (recall ~0.63) provides many more true triples than
        // the spammer.
        assert!(res.sensitivity[11] > res.sensitivity[12]);
    }
}
