//! Correlation-based source clustering (§5 "Comparisons", BOOK protocol).
//!
//! The exact and elastic solvers pay per-cluster costs that grow with
//! cluster width, so for datasets with many sources the paper "divide[s]
//! sources into clusters based on their pairwise correlations, and
//! assume[s] that sources across clusters are independent". We implement
//! that with:
//!
//! 1. a pairwise correlation *lift* on true triples
//!    (`n11 * N_true / (n1 * n2)`) and on false triples, smoothed so zero
//!    co-occurrence stays finite;
//! 2. an edge list of pairs whose `|ln lift|` exceeds a threshold;
//! 3. size-capped union-find: edges are applied strongest-first, skipping
//!    any union that would exceed `max_cluster_size`.
//!
//! Sources not pulled into any clique become singleton clusters, for which
//! the fuser uses the plain independent contribution.

use crate::bits::BitSet;
use crate::dataset::{Dataset, GoldLabels, SourceId};
use crate::error::{FusionError, Result};

/// Tuning knobs for [`cluster_sources`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Minimum `|ln lift|` for a pair to count as correlated.
    /// The default `ln(1.5)` treats ±50% deviation from independence as
    /// signal.
    pub ln_threshold: f64,
    /// Minimum number of labelled triples each side must provide (per
    /// polarity) before its lift is trusted.
    pub min_support: usize,
    /// Hard cap on cluster width; unions that would exceed it are skipped.
    pub max_cluster_size: usize,
    /// Smoothing pseudo-count added to co-occurrence counts.
    pub smoothing: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            ln_threshold: 1.5f64.ln(),
            min_support: 4,
            max_cluster_size: 24,
            smoothing: 0.5,
        }
    }
}

/// Pairwise correlation evidence between two sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairCorrelation {
    /// First source.
    pub a: SourceId,
    /// Second source.
    pub b: SourceId,
    /// Lift on true triples (`>1` positive, `<1` negative, `1` independent),
    /// `None` without enough support.
    pub lift_true: Option<f64>,
    /// Lift on false triples.
    pub lift_false: Option<f64>,
}

impl PairCorrelation {
    /// Edge strength: the largest absolute log-lift over both polarities.
    pub fn strength(&self) -> f64 {
        let s1 = self.lift_true.map(|l| l.ln().abs()).unwrap_or(0.0);
        let s2 = self.lift_false.map(|l| l.ln().abs()).unwrap_or(0.0);
        s1.max(s2)
    }
}

/// A partition of the sources into correlation clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster membership per source index.
    assignment: Vec<usize>,
    /// Clusters as sorted member lists; singletons included.
    clusters: Vec<Vec<SourceId>>,
}

impl Clustering {
    /// Build from an explicit assignment vector (cluster id per source).
    pub fn from_assignment(assignment: Vec<usize>) -> Self {
        let n_clusters = assignment.iter().copied().max().map_or(0, |m| m + 1);
        let mut clusters = vec![Vec::new(); n_clusters];
        for (s, &c) in assignment.iter().enumerate() {
            clusters[c].push(SourceId(s as u32));
        }
        clusters.retain(|c| !c.is_empty());
        // Re-number densely.
        let mut dense = vec![0usize; assignment.len()];
        for (ci, members) in clusters.iter().enumerate() {
            for m in members {
                dense[m.index()] = ci;
            }
        }
        Clustering {
            assignment: dense,
            clusters,
        }
    }

    /// One cluster per source (the fully-independent fallback).
    pub fn singletons(n_sources: usize) -> Self {
        Clustering::from_assignment((0..n_sources).collect())
    }

    /// Every source in one cluster.
    pub fn single_cluster(n_sources: usize) -> Self {
        Clustering::from_assignment(vec![0; n_sources])
    }

    /// Cluster id of a source.
    pub fn cluster_of(&self, s: SourceId) -> usize {
        self.assignment[s.index()]
    }

    /// The clusters, each a sorted list of member sources.
    pub fn clusters(&self) -> &[Vec<SourceId>] {
        &self.clusters
    }

    /// Clusters with at least two members (the ones that get joint
    /// treatment).
    pub fn non_trivial(&self) -> impl Iterator<Item = &Vec<SourceId>> {
        self.clusters.iter().filter(|c| c.len() > 1)
    }

    /// Number of clusters (including singletons).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when there are no clusters (empty dataset).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Sorted sizes of non-trivial clusters, descending — the shape the
    /// paper reports for BOOK ("clusters of size 22, 3, and 2").
    pub fn clique_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self
            .clusters
            .iter()
            .map(Vec::len)
            .filter(|&l| l > 1)
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

/// Disjoint-set forest with union-by-size and a size cap.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set (path-halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root]
    }

    /// Union the sets of `a` and `b` unless the merged size would exceed
    /// `cap`. Returns whether a merge happened.
    pub fn union_capped(&mut self, a: usize, b: usize, cap: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] + self.size[rb] > cap {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }

    /// Dense cluster-id assignment.
    pub fn into_assignment(mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut ids = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for x in 0..n {
            let root = self.find(x);
            let next = ids.len();
            let id = *ids.entry(root).or_insert(next);
            out.push(id);
        }
        out
    }
}

/// Compute pairwise correlations between all sources from labelled data.
///
/// For each polarity, the lift of `(a, b)` is observed co-occurrence over
/// the independence expectation, with pseudo-count smoothing — computed
/// **within the pair's scope intersection**. For scoped datasets (e.g.
/// BOOK, where sellers list only some books) two sources that merely cover
/// the same objects would otherwise look strongly correlated; restricting
/// all four counts to triples both sources cover isolates correlation of
/// *provision*, which is the signal copying leaves behind. Pairs where
/// either side provides fewer than `min_support` labelled triples of a
/// polarity (within the intersection) get `None` for that polarity.
pub fn pairwise_correlations(
    ds: &Dataset,
    gold: &GoldLabels,
    cfg: &ClusterConfig,
) -> Result<Vec<PairCorrelation>> {
    if gold.labelled_count() == 0 {
        return Err(FusionError::MissingGold);
    }
    let n = ds.n_sources();
    let n_true = gold.true_count();
    let n_false = gold.false_count();

    // Per-source bitsets over labelled-true / labelled-false triple ranks:
    // provision and scope membership.
    let mut true_sets = vec![BitSet::new(n_true); n];
    let mut false_sets = vec![BitSet::new(n_false); n];
    let mut true_scope = vec![BitSet::new(n_true); n];
    let mut false_scope = vec![BitSet::new(n_false); n];
    let (mut ti, mut fi) = (0usize, 0usize);
    for (t, truth) in gold.iter_labelled() {
        let providers = ds.providers(t);
        let scope = ds.scope_mask(t);
        let (idx, sets, scopes) = if truth {
            (ti, &mut true_sets, &mut true_scope)
        } else {
            (fi, &mut false_sets, &mut false_scope)
        };
        for s in scope.iter_ones() {
            scopes[s].set(idx, true);
            if providers.get(s) {
                sets[s].set(idx, true);
            }
        }
        if truth {
            ti += 1;
        } else {
            fi += 1;
        }
    }

    let s = cfg.smoothing;
    // Lift over the scope intersection of (a, b).
    let pair_lift =
        |prov_a: &BitSet, prov_b: &BitSet, scope_a: &BitSet, scope_b: &BitSet| -> Option<f64> {
            let mut shared_scope = scope_a.clone();
            shared_scope.intersect_with(scope_b);
            let total = shared_scope.count_ones();
            if total == 0 {
                return None;
            }
            let na = prov_a.intersection_count(&shared_scope);
            let nb = prov_b.intersection_count(&shared_scope);
            if na < cfg.min_support || nb < cfg.min_support {
                return None;
            }
            let n11 = prov_a.intersection_count(prov_b);
            let expectation = (na as f64 + s) * (nb as f64 + s) / (total as f64 + s);
            Some(((n11 as f64 + s) / expectation).max(1e-9))
        };

    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in a + 1..n {
            out.push(PairCorrelation {
                a: SourceId(a as u32),
                b: SourceId(b as u32),
                lift_true: pair_lift(&true_sets[a], &true_sets[b], &true_scope[a], &true_scope[b]),
                lift_false: pair_lift(
                    &false_sets[a],
                    &false_sets[b],
                    &false_scope[a],
                    &false_scope[b],
                ),
            });
        }
    }
    Ok(out)
}

/// Partition sources into correlation clusters (strongest edges first,
/// size-capped union-find).
pub fn cluster_sources(ds: &Dataset, gold: &GoldLabels, cfg: &ClusterConfig) -> Result<Clustering> {
    let n = ds.n_sources();
    if n == 0 {
        return Ok(Clustering::singletons(0));
    }
    let mut pairs = pairwise_correlations(ds, gold, cfg)?;
    pairs.retain(|p| p.strength() >= cfg.ln_threshold);
    pairs.sort_by(|x, y| {
        y.strength()
            .partial_cmp(&x.strength())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut uf = UnionFind::new(n);
    let cap = cfg.max_cluster_size.clamp(1, 64);
    for p in &pairs {
        uf.union_capped(p.a.index(), p.b.index(), cap);
    }
    Ok(Clustering::from_assignment(uf.into_assignment()))
}

#[cfg(test)]
#[allow(clippy::manual_is_multiple_of)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    /// 6 sources over 60 triples: {0,1} are exact replicas, {2,3} share
    /// false triples, 4 and 5 are independent.
    fn correlated_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (0..6).map(|i| b.source(format!("S{i}"))).collect();
        for i in 0..60 {
            let truth = i % 2 == 0;
            let t = b.triple(format!("e{i}"), "p", "v");
            b.label(t, truth);
            // Deterministic pseudo-random pattern.
            let h = i * 2654435761usize % 97;
            // Guarantee every triple has at least one provider.
            b.observe(sources[if truth { 5 } else { 4 }], t);
            if truth {
                if h % 3 != 0 {
                    b.observe(sources[0], t);
                    b.observe(sources[1], t); // replica of S0
                }
                if h % 5 < 2 {
                    b.observe(sources[2], t);
                }
                if h % 7 < 3 {
                    b.observe(sources[3], t);
                }
                if h % 2 == 0 {
                    b.observe(sources[4], t);
                }
                if h % 11 < 5 {
                    b.observe(sources[5], t);
                }
            } else {
                if h % 4 == 0 {
                    b.observe(sources[0], t);
                    b.observe(sources[1], t);
                }
                if h % 3 == 0 {
                    // S2 and S3 make the same mistakes.
                    b.observe(sources[2], t);
                    b.observe(sources[3], t);
                }
                if h % 6 == 0 {
                    b.observe(sources[4], t);
                }
                if h % 5 == 0 {
                    b.observe(sources[5], t);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union_capped(0, 1, 5));
        assert!(uf.union_capped(1, 2, 5));
        assert!(!uf.union_capped(0, 2, 5), "already same set");
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        assert_eq!(uf.set_size(1), 3);
    }

    #[test]
    fn union_find_respects_cap() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union_capped(0, 1, 2));
        assert!(uf.union_capped(2, 3, 2));
        // Merging the two pairs would make 4 > cap 2.
        assert!(!uf.union_capped(0, 2, 2));
        assert_ne!(uf.find(0), uf.find(2));
    }

    #[test]
    fn union_find_assignment_is_dense() {
        let mut uf = UnionFind::new(4);
        uf.union_capped(1, 3, 4);
        let a = uf.into_assignment();
        assert_eq!(a.len(), 4);
        assert_eq!(a[1], a[3]);
        assert_ne!(a[0], a[1]);
        let max = *a.iter().max().unwrap();
        assert!(max < 3, "ids densely numbered: {a:?}");
    }

    #[test]
    fn replicas_have_high_true_lift() {
        let ds = correlated_dataset();
        let pairs =
            pairwise_correlations(&ds, ds.gold().unwrap(), &ClusterConfig::default()).unwrap();
        let p01 = pairs
            .iter()
            .find(|p| p.a == SourceId(0) && p.b == SourceId(1))
            .unwrap();
        assert!(
            p01.lift_true.unwrap() > 1.4,
            "replica lift {:?}",
            p01.lift_true
        );
        assert!(p01.lift_false.unwrap() > 1.4);
    }

    #[test]
    fn false_copiers_have_high_false_lift_only() {
        let ds = correlated_dataset();
        let pairs =
            pairwise_correlations(&ds, ds.gold().unwrap(), &ClusterConfig::default()).unwrap();
        let p23 = pairs
            .iter()
            .find(|p| p.a == SourceId(2) && p.b == SourceId(3))
            .unwrap();
        assert!(p23.lift_false.unwrap() > 1.5, "{:?}", p23.lift_false);
    }

    #[test]
    fn clustering_groups_correlated_sources() {
        let ds = correlated_dataset();
        let clustering =
            cluster_sources(&ds, ds.gold().unwrap(), &ClusterConfig::default()).unwrap();
        assert_eq!(
            clustering.cluster_of(SourceId(0)),
            clustering.cluster_of(SourceId(1)),
            "replicas cluster together: {clustering:?}"
        );
        assert_eq!(
            clustering.cluster_of(SourceId(2)),
            clustering.cluster_of(SourceId(3)),
            "false-copiers cluster together"
        );
        assert_ne!(
            clustering.cluster_of(SourceId(0)),
            clustering.cluster_of(SourceId(2))
        );
    }

    #[test]
    fn cluster_size_cap_is_respected() {
        let ds = correlated_dataset();
        let cfg = ClusterConfig {
            max_cluster_size: 1,
            ..Default::default()
        };
        let clustering = cluster_sources(&ds, ds.gold().unwrap(), &cfg).unwrap();
        assert_eq!(clustering.len(), ds.n_sources());
        assert!(clustering.non_trivial().next().is_none());
    }

    #[test]
    fn clique_sizes_reports_non_trivial_descending() {
        let c = Clustering::from_assignment(vec![0, 0, 0, 1, 1, 2, 3]);
        assert_eq!(c.clique_sizes(), vec![3, 2]);
    }

    #[test]
    fn singleton_and_single_cluster_constructors() {
        let s = Clustering::singletons(3);
        assert_eq!(s.len(), 3);
        let one = Clustering::single_cluster(3);
        assert_eq!(one.len(), 1);
        assert_eq!(one.clusters()[0].len(), 3);
    }

    #[test]
    fn strength_uses_both_polarities() {
        let p = PairCorrelation {
            a: SourceId(0),
            b: SourceId(1),
            lift_true: Some(1.0),
            lift_false: Some(4.0),
        };
        assert!((p.strength() - 4.0f64.ln()).abs() < 1e-12);
        // Negative correlation counts too.
        let p = PairCorrelation {
            a: SourceId(0),
            b: SourceId(1),
            lift_true: Some(0.25),
            lift_false: None,
        };
        assert!((p.strength() - 4.0f64.ln()).abs() < 1e-12);
        let p = PairCorrelation {
            a: SourceId(0),
            b: SourceId(1),
            lift_true: None,
            lift_false: None,
        };
        assert_eq!(p.strength(), 0.0);
    }

    #[test]
    fn min_support_blocks_thin_pairs() {
        let mut b = DatasetBuilder::new();
        let s0 = b.source("A");
        let s1 = b.source("B");
        let t = b.triple("x", "p", "1");
        b.observe(s0, t);
        b.observe(s1, t);
        b.label(t, true);
        let t2 = b.triple("y", "p", "2");
        b.observe(s0, t2);
        b.label(t2, false);
        let ds = b.build().unwrap();
        let cfg = ClusterConfig {
            min_support: 3,
            ..Default::default()
        };
        let pairs = pairwise_correlations(&ds, ds.gold().unwrap(), &cfg).unwrap();
        assert_eq!(pairs[0].lift_true, None);
        assert_eq!(pairs[0].lift_false, None);
        // And clustering therefore keeps them apart.
        let c = cluster_sources(&ds, ds.gold().unwrap(), &cfg).unwrap();
        assert_ne!(c.cluster_of(s0), c.cluster_of(s1));
    }

    #[test]
    fn missing_gold_rejected() {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        let t = b.triple("x", "p", "1");
        b.observe(s, t);
        let ds = b.build().unwrap();
        let empty = GoldLabels::new(1);
        assert!(pairwise_correlations(&ds, &empty, &ClusterConfig::default()).is_err());
    }
}
