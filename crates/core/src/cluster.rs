//! Correlation-based source clustering (§5 "Comparisons", BOOK protocol).
//!
//! The exact and elastic solvers pay per-cluster costs that grow with
//! cluster width, so for datasets with many sources the paper "divide[s]
//! sources into clusters based on their pairwise correlations, and
//! assume[s] that sources across clusters are independent". We implement
//! that with:
//!
//! 1. a pairwise correlation *lift* on true triples
//!    (`n11 * N_true / (n1 * n2)`) and on false triples, smoothed so zero
//!    co-occurrence stays finite;
//! 2. an edge list of pairs whose `|ln lift|` exceeds a threshold;
//! 3. size-capped union-find: edges are applied strongest-first, skipping
//!    any union that would exceed `max_cluster_size`.
//!
//! Sources not pulled into any clique become singleton clusters, for which
//! the fuser uses the plain independent contribution.

use crate::bits::BitSet;
use crate::dataset::{Dataset, GoldLabels, SourceId};
use crate::error::{FusionError, Result};
use crate::triple::TripleId;

/// Tuning knobs for [`cluster_sources`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Minimum `|ln lift|` for a pair to count as correlated.
    /// The default `ln(1.5)` treats ±50% deviation from independence as
    /// signal.
    pub ln_threshold: f64,
    /// Minimum number of labelled triples each side must provide (per
    /// polarity) before its lift is trusted.
    pub min_support: usize,
    /// Hard cap on cluster width; unions that would exceed it are skipped.
    pub max_cluster_size: usize,
    /// Smoothing pseudo-count added to co-occurrence counts.
    pub smoothing: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            ln_threshold: 1.5f64.ln(),
            min_support: 4,
            max_cluster_size: 24,
            smoothing: 0.5,
        }
    }
}

/// Pairwise correlation evidence between two sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairCorrelation {
    /// First source.
    pub a: SourceId,
    /// Second source.
    pub b: SourceId,
    /// Lift on true triples (`>1` positive, `<1` negative, `1` independent),
    /// `None` without enough support.
    pub lift_true: Option<f64>,
    /// Lift on false triples.
    pub lift_false: Option<f64>,
}

impl PairCorrelation {
    /// Edge strength: the largest absolute log-lift over both polarities.
    pub fn strength(&self) -> f64 {
        let s1 = self.lift_true.map(|l| l.ln().abs()).unwrap_or(0.0);
        let s2 = self.lift_false.map(|l| l.ln().abs()).unwrap_or(0.0);
        s1.max(s2)
    }
}

/// A partition of the sources into correlation clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster membership per source index.
    assignment: Vec<usize>,
    /// Clusters as sorted member lists; singletons included.
    clusters: Vec<Vec<SourceId>>,
}

impl Clustering {
    /// Build from an explicit assignment vector (cluster id per source).
    pub fn from_assignment(assignment: Vec<usize>) -> Self {
        let n_clusters = assignment.iter().copied().max().map_or(0, |m| m + 1);
        let mut clusters = vec![Vec::new(); n_clusters];
        for (s, &c) in assignment.iter().enumerate() {
            clusters[c].push(SourceId(s as u32));
        }
        clusters.retain(|c| !c.is_empty());
        // Re-number densely.
        let mut dense = vec![0usize; assignment.len()];
        for (ci, members) in clusters.iter().enumerate() {
            for m in members {
                dense[m.index()] = ci;
            }
        }
        Clustering {
            assignment: dense,
            clusters,
        }
    }

    /// One cluster per source (the fully-independent fallback).
    pub fn singletons(n_sources: usize) -> Self {
        Clustering::from_assignment((0..n_sources).collect())
    }

    /// Every source in one cluster.
    pub fn single_cluster(n_sources: usize) -> Self {
        Clustering::from_assignment(vec![0; n_sources])
    }

    /// Cluster id of a source.
    pub fn cluster_of(&self, s: SourceId) -> usize {
        self.assignment[s.index()]
    }

    /// The clusters, each a sorted list of member sources.
    pub fn clusters(&self) -> &[Vec<SourceId>] {
        &self.clusters
    }

    /// Clusters with at least two members (the ones that get joint
    /// treatment).
    pub fn non_trivial(&self) -> impl Iterator<Item = &Vec<SourceId>> {
        self.clusters.iter().filter(|c| c.len() > 1)
    }

    /// Number of clusters (including singletons).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when there are no clusters (empty dataset).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Sorted sizes of non-trivial clusters, descending — the shape the
    /// paper reports for BOOK ("clusters of size 22, 3, and 2").
    pub fn clique_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self
            .clusters
            .iter()
            .map(Vec::len)
            .filter(|&l| l > 1)
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

/// Disjoint-set forest with union-by-size and a size cap.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set (path-halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root]
    }

    /// Union the sets of `a` and `b` unless the merged size would exceed
    /// `cap`. Returns whether a merge happened.
    pub fn union_capped(&mut self, a: usize, b: usize, cap: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] + self.size[rb] > cap {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }

    /// Dense cluster-id assignment.
    pub fn into_assignment(mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut ids = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for x in 0..n {
            let root = self.find(x);
            let next = ids.len();
            let id = *ids.entry(root).or_insert(next);
            out.push(id);
        }
        out
    }
}

/// The smoothed lift of one pair for one polarity, from its exact
/// co-occurrence counts: `n11` co-provisions, `na` / `nb` per-side
/// provisions and `total` shared-scope triples (all within the pair's
/// scope intersection).
///
/// This is the **single** float expression behind both the batch
/// ([`pairwise_correlations`]) and incremental ([`LiftGraph`]) paths, so
/// equal integer counts always yield bitwise-equal lifts. `None` when the
/// pair shares no scope or either side lacks `min_support`.
pub fn lift_from_counts(
    n11: usize,
    na: usize,
    nb: usize,
    total: usize,
    cfg: &ClusterConfig,
) -> Option<f64> {
    if total == 0 {
        return None;
    }
    if na < cfg.min_support || nb < cfg.min_support {
        return None;
    }
    let s = cfg.smoothing;
    let expectation = (na as f64 + s) * (nb as f64 + s) / (total as f64 + s);
    Some(((n11 as f64 + s) / expectation).max(1e-9))
}

/// Compute pairwise correlations between all sources from labelled data.
///
/// For each polarity, the lift of `(a, b)` is observed co-occurrence over
/// the independence expectation, with pseudo-count smoothing — computed
/// **within the pair's scope intersection**. For scoped datasets (e.g.
/// BOOK, where sellers list only some books) two sources that merely cover
/// the same objects would otherwise look strongly correlated; restricting
/// all four counts to triples both sources cover isolates correlation of
/// *provision*, which is the signal copying leaves behind. Pairs where
/// either side provides fewer than `min_support` labelled triples of a
/// polarity (within the intersection) get `None` for that polarity.
pub fn pairwise_correlations(
    ds: &Dataset,
    gold: &GoldLabels,
    cfg: &ClusterConfig,
) -> Result<Vec<PairCorrelation>> {
    if gold.labelled_count() == 0 {
        return Err(FusionError::MissingGold);
    }
    let n = ds.n_sources();
    let n_true = gold.true_count();
    let n_false = gold.false_count();

    // Per-source bitsets over labelled-true / labelled-false triple ranks:
    // provision and scope membership.
    let mut true_sets = vec![BitSet::new(n_true); n];
    let mut false_sets = vec![BitSet::new(n_false); n];
    let mut true_scope = vec![BitSet::new(n_true); n];
    let mut false_scope = vec![BitSet::new(n_false); n];
    let (mut ti, mut fi) = (0usize, 0usize);
    for (t, truth) in gold.iter_labelled() {
        let providers = ds.providers(t);
        let scope = ds.scope_mask(t);
        let (idx, sets, scopes) = if truth {
            (ti, &mut true_sets, &mut true_scope)
        } else {
            (fi, &mut false_sets, &mut false_scope)
        };
        for s in scope.iter_ones() {
            scopes[s].set(idx, true);
            if providers.get(s) {
                sets[s].set(idx, true);
            }
        }
        if truth {
            ti += 1;
        } else {
            fi += 1;
        }
    }

    // Lift over the scope intersection of (a, b).
    let pair_lift =
        |prov_a: &BitSet, prov_b: &BitSet, scope_a: &BitSet, scope_b: &BitSet| -> Option<f64> {
            let mut shared_scope = scope_a.clone();
            shared_scope.intersect_with(scope_b);
            let total = shared_scope.count_ones();
            let na = prov_a.intersection_count(&shared_scope);
            let nb = prov_b.intersection_count(&shared_scope);
            let n11 = prov_a.intersection_count(prov_b);
            lift_from_counts(n11, na, nb, total, cfg)
        };

    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in a + 1..n {
            out.push(PairCorrelation {
                a: SourceId(a as u32),
                b: SourceId(b as u32),
                lift_true: pair_lift(&true_sets[a], &true_sets[b], &true_scope[a], &true_scope[b]),
                lift_false: pair_lift(
                    &false_sets[a],
                    &false_sets[b],
                    &false_scope[a],
                    &false_scope[b],
                ),
            });
        }
    }
    Ok(out)
}

/// Partition sources into correlation clusters given their pairwise
/// lifts (strongest edges first, size-capped union-find).
///
/// The deterministic second half of [`cluster_sources`], shared with the
/// incremental [`LiftGraph::clustering`] path: equal `pairs` (in the
/// same `(a, b)` enumeration order — ties keep it, the sort is stable)
/// always produce the identical [`Clustering`].
pub fn cluster_from_pairs(
    n_sources: usize,
    mut pairs: Vec<PairCorrelation>,
    cfg: &ClusterConfig,
) -> Clustering {
    pairs.retain(|p| p.strength() >= cfg.ln_threshold);
    pairs.sort_by(|x, y| {
        y.strength()
            .partial_cmp(&x.strength())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut uf = UnionFind::new(n_sources);
    let cap = cfg.max_cluster_size.clamp(1, 64);
    for p in &pairs {
        uf.union_capped(p.a.index(), p.b.index(), cap);
    }
    Clustering::from_assignment(uf.into_assignment())
}

/// Partition sources into correlation clusters (strongest edges first,
/// size-capped union-find).
pub fn cluster_sources(ds: &Dataset, gold: &GoldLabels, cfg: &ClusterConfig) -> Result<Clustering> {
    let n = ds.n_sources();
    if n == 0 {
        return Ok(Clustering::singletons(0));
    }
    let pairs = pairwise_correlations(ds, gold, cfg)?;
    Ok(cluster_from_pairs(n, pairs, cfg))
}

/// Exact co-occurrence counts of one source pair for one polarity, all
/// restricted to the pair's scope intersection (see
/// [`pairwise_correlations`] for why).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PairCounts {
    /// Labelled triples of this polarity in both sources' scope.
    total: u32,
    /// Of those, provided by the pair's lower-indexed source.
    na: u32,
    /// Of those, provided by the pair's higher-indexed source.
    nb: u32,
    /// Of those, provided by both.
    n11: u32,
}

impl PairCounts {
    #[inline]
    fn bump(v: &mut u32, delta: i32) {
        *v = v.checked_add_signed(delta).expect("pair count underflow");
    }
}

/// Incrementally maintained pairwise-lift state: the integer counts
/// behind every pair's true/false lift, kept exact under label, claim
/// and scope deltas.
///
/// [`pairwise_correlations`] recomputes all counts with one pass over
/// the labelled data — O(sources² · labelled) per call, which data-driven
/// (`Auto`) clustering used to pay on *every* label change by falling
/// back to a full refit. A `LiftGraph` instead absorbs each delta in
/// O(in-scope sources) to O(in-scope sources²) integer updates and can
/// re-derive the clustering from its maintained counts at any time —
/// [`LiftGraph::clustering`] — through the exact code path
/// ([`lift_from_counts`] + [`cluster_from_pairs`]) the batch computation
/// uses, so both always agree bitwise.
///
/// # Hook contract
///
/// Callers apply dataset deltas first, then mirror them here:
///
/// * a (re)label of triple `t` — providers and scopes unchanged —
///   becomes [`LiftGraph::relabel`];
/// * a new claim `(s, t)` that did **not** expand `s`'s scope becomes
///   [`LiftGraph::source_provided`] (only `s`'s provision sets change);
/// * a claim that *did* expand `s`'s scope into domain `d` becomes one
///   [`LiftGraph::source_entered_scope`] per labelled triple of `d`
///   (including `t` itself if labelled — its provision is absorbed in
///   the same call), because every such triple now counts `s` in its
///   scope intersection with every other in-scope source.
///
/// A new *source* changes the pair universe; rebuild with
/// [`LiftGraph::build`] (incremental callers fall back to a full refit
/// there anyway).
#[derive(Debug, Clone)]
pub struct LiftGraph {
    n: usize,
    cfg: ClusterConfig,
    /// Upper-triangular pair counts, `(a < b)` at `idx(a, b)`.
    true_counts: Vec<PairCounts>,
    false_counts: Vec<PairCounts>,
    /// Any count changed since the last [`LiftGraph::take_changed`].
    changed: bool,
}

impl LiftGraph {
    /// Build from the current labelled state, mirroring
    /// [`pairwise_correlations`]' counts exactly. A dataset with no
    /// labels yields all-zero counts (every lift `None`).
    pub fn build(ds: &Dataset, gold: &GoldLabels, cfg: &ClusterConfig) -> LiftGraph {
        let n = ds.n_sources();
        let n_pairs = n * n.saturating_sub(1) / 2;
        let mut graph = LiftGraph {
            n,
            cfg: *cfg,
            true_counts: vec![PairCounts::default(); n_pairs],
            false_counts: vec![PairCounts::default(); n_pairs],
            changed: false,
        };
        for (t, truth) in gold.iter_labelled() {
            graph.contribute(ds, t, truth, 1);
        }
        graph.changed = false;
        graph
    }

    /// Number of sources the pair universe covers.
    pub fn n_sources(&self) -> usize {
        self.n
    }

    /// The clustering knobs the lifts and edges are derived with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    #[inline]
    fn idx(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < b && b < self.n);
        a * (2 * self.n - a - 1) / 2 + (b - a - 1)
    }

    #[inline]
    fn counts_mut(&mut self, truth: bool) -> &mut [PairCounts] {
        if truth {
            &mut self.true_counts
        } else {
            &mut self.false_counts
        }
    }

    /// Add (`delta = 1`) or retract (`delta = -1`) one labelled triple's
    /// whole contribution, from current provider/scope state.
    fn contribute(&mut self, ds: &Dataset, t: TripleId, truth: bool, delta: i32) {
        let scope: Vec<usize> = ds.scope_mask(t).iter_ones().collect();
        if scope.len() < 2 {
            return;
        }
        let provided: Vec<bool> = scope.iter().map(|&s| ds.providers(t).get(s)).collect();
        self.changed = true;
        let n = self.n;
        let counts = self.counts_mut(truth);
        for i in 0..scope.len() {
            let a = scope[i];
            // Inline `idx` over the row of `a` to keep the hot double
            // loop free of per-pair re-derivation.
            let base = a * (2 * n - a - 1) / 2;
            for j in i + 1..scope.len() {
                let c = &mut counts[base + scope[j] - a - 1];
                PairCounts::bump(&mut c.total, delta);
                if provided[i] {
                    PairCounts::bump(&mut c.na, delta);
                }
                if provided[j] {
                    PairCounts::bump(&mut c.nb, delta);
                }
                if provided[i] && provided[j] {
                    PairCounts::bump(&mut c.n11, delta);
                }
            }
        }
    }

    /// Triple `t` was labelled or relabelled (providers and scopes
    /// unchanged): retract the old polarity's contribution, add the new.
    pub fn relabel(&mut self, ds: &Dataset, t: TripleId, old: Option<bool>, new: bool) {
        if old == Some(new) {
            return;
        }
        if let Some(old) = old {
            self.contribute(ds, t, old, -1);
        }
        self.contribute(ds, t, new, 1);
    }

    /// Source `s` newly entered the scope of the labelled triple `t`
    /// (typically: its first claim in `t`'s domain). Adds `t` to the
    /// scope intersection of every pair `(s, other-in-scope source)`;
    /// `s`'s own provision of `t` — present exactly when `t` is the
    /// claimed triple itself — is absorbed in the same update.
    pub fn source_entered_scope(&mut self, ds: &Dataset, s: SourceId, t: TripleId, truth: bool) {
        let s = s.index();
        let s_provides = ds.providers(t).get(s);
        let scope = ds.scope_mask(t);
        let prov = ds.providers(t).clone();
        self.changed = true;
        for o in scope.iter_ones() {
            if o == s {
                continue;
            }
            let (lo, hi) = if s < o { (s, o) } else { (o, s) };
            let i = self.idx(lo, hi);
            let c = &mut self.counts_mut(truth)[i];
            PairCounts::bump(&mut c.total, 1);
            let o_provides = prov.get(o);
            if s_provides {
                PairCounts::bump(if s < o { &mut c.na } else { &mut c.nb }, 1);
            }
            if o_provides {
                PairCounts::bump(if s < o { &mut c.nb } else { &mut c.na }, 1);
            }
            if s_provides && o_provides {
                PairCounts::bump(&mut c.n11, 1);
            }
        }
    }

    /// Source `s` newly provides the labelled triple `t` and was already
    /// in its scope: only `s`'s provision-side counts move.
    pub fn source_provided(&mut self, ds: &Dataset, s: SourceId, t: TripleId, truth: bool) {
        let s = s.index();
        let scope = ds.scope_mask(t);
        let prov = ds.providers(t).clone();
        self.changed = true;
        for o in scope.iter_ones() {
            if o == s {
                continue;
            }
            let (lo, hi) = if s < o { (s, o) } else { (o, s) };
            let i = self.idx(lo, hi);
            let c = &mut self.counts_mut(truth)[i];
            PairCounts::bump(if s < o { &mut c.na } else { &mut c.nb }, 1);
            if prov.get(o) {
                PairCounts::bump(&mut c.n11, 1);
            }
        }
    }

    /// Did any pair count change since the last call? Cleared on read;
    /// callers skip re-deriving the clustering entirely when nothing
    /// moved.
    pub fn take_changed(&mut self) -> bool {
        std::mem::take(&mut self.changed)
    }

    /// The pairwise lifts from the maintained counts, in the same
    /// enumeration order (and through the same float path) as
    /// [`pairwise_correlations`].
    pub fn pair_correlations(&self) -> Vec<PairCorrelation> {
        let n = self.n;
        let mut out = Vec::with_capacity(self.true_counts.len());
        for a in 0..n {
            for b in a + 1..n {
                let i = self.idx(a, b);
                let tc = &self.true_counts[i];
                let fc = &self.false_counts[i];
                out.push(PairCorrelation {
                    a: SourceId(a as u32),
                    b: SourceId(b as u32),
                    lift_true: lift_from_counts(
                        tc.n11 as usize,
                        tc.na as usize,
                        tc.nb as usize,
                        tc.total as usize,
                        &self.cfg,
                    ),
                    lift_false: lift_from_counts(
                        fc.n11 as usize,
                        fc.na as usize,
                        fc.nb as usize,
                        fc.total as usize,
                        &self.cfg,
                    ),
                });
            }
        }
        out
    }

    /// Re-derive the clustering from the maintained counts — identical
    /// to [`cluster_sources`] on the same labelled state, without its
    /// O(sources² · labelled) scan.
    pub fn clustering(&self) -> Clustering {
        if self.n == 0 {
            return Clustering::singletons(0);
        }
        cluster_from_pairs(self.n, self.pair_correlations(), &self.cfg)
    }
}

#[cfg(test)]
#[allow(clippy::manual_is_multiple_of)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    /// 6 sources over 60 triples: {0,1} are exact replicas, {2,3} share
    /// false triples, 4 and 5 are independent.
    fn correlated_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (0..6).map(|i| b.source(format!("S{i}"))).collect();
        for i in 0..60 {
            let truth = i % 2 == 0;
            let t = b.triple(format!("e{i}"), "p", "v");
            b.label(t, truth);
            // Deterministic pseudo-random pattern.
            let h = i * 2654435761usize % 97;
            // Guarantee every triple has at least one provider.
            b.observe(sources[if truth { 5 } else { 4 }], t);
            if truth {
                if h % 3 != 0 {
                    b.observe(sources[0], t);
                    b.observe(sources[1], t); // replica of S0
                }
                if h % 5 < 2 {
                    b.observe(sources[2], t);
                }
                if h % 7 < 3 {
                    b.observe(sources[3], t);
                }
                if h % 2 == 0 {
                    b.observe(sources[4], t);
                }
                if h % 11 < 5 {
                    b.observe(sources[5], t);
                }
            } else {
                if h % 4 == 0 {
                    b.observe(sources[0], t);
                    b.observe(sources[1], t);
                }
                if h % 3 == 0 {
                    // S2 and S3 make the same mistakes.
                    b.observe(sources[2], t);
                    b.observe(sources[3], t);
                }
                if h % 6 == 0 {
                    b.observe(sources[4], t);
                }
                if h % 5 == 0 {
                    b.observe(sources[5], t);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union_capped(0, 1, 5));
        assert!(uf.union_capped(1, 2, 5));
        assert!(!uf.union_capped(0, 2, 5), "already same set");
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        assert_eq!(uf.set_size(1), 3);
    }

    #[test]
    fn union_find_respects_cap() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union_capped(0, 1, 2));
        assert!(uf.union_capped(2, 3, 2));
        // Merging the two pairs would make 4 > cap 2.
        assert!(!uf.union_capped(0, 2, 2));
        assert_ne!(uf.find(0), uf.find(2));
    }

    #[test]
    fn union_find_assignment_is_dense() {
        let mut uf = UnionFind::new(4);
        uf.union_capped(1, 3, 4);
        let a = uf.into_assignment();
        assert_eq!(a.len(), 4);
        assert_eq!(a[1], a[3]);
        assert_ne!(a[0], a[1]);
        let max = *a.iter().max().unwrap();
        assert!(max < 3, "ids densely numbered: {a:?}");
    }

    #[test]
    fn replicas_have_high_true_lift() {
        let ds = correlated_dataset();
        let pairs =
            pairwise_correlations(&ds, ds.gold().unwrap(), &ClusterConfig::default()).unwrap();
        let p01 = pairs
            .iter()
            .find(|p| p.a == SourceId(0) && p.b == SourceId(1))
            .unwrap();
        assert!(
            p01.lift_true.unwrap() > 1.4,
            "replica lift {:?}",
            p01.lift_true
        );
        assert!(p01.lift_false.unwrap() > 1.4);
    }

    #[test]
    fn false_copiers_have_high_false_lift_only() {
        let ds = correlated_dataset();
        let pairs =
            pairwise_correlations(&ds, ds.gold().unwrap(), &ClusterConfig::default()).unwrap();
        let p23 = pairs
            .iter()
            .find(|p| p.a == SourceId(2) && p.b == SourceId(3))
            .unwrap();
        assert!(p23.lift_false.unwrap() > 1.5, "{:?}", p23.lift_false);
    }

    #[test]
    fn clustering_groups_correlated_sources() {
        let ds = correlated_dataset();
        let clustering =
            cluster_sources(&ds, ds.gold().unwrap(), &ClusterConfig::default()).unwrap();
        assert_eq!(
            clustering.cluster_of(SourceId(0)),
            clustering.cluster_of(SourceId(1)),
            "replicas cluster together: {clustering:?}"
        );
        assert_eq!(
            clustering.cluster_of(SourceId(2)),
            clustering.cluster_of(SourceId(3)),
            "false-copiers cluster together"
        );
        assert_ne!(
            clustering.cluster_of(SourceId(0)),
            clustering.cluster_of(SourceId(2))
        );
    }

    #[test]
    fn cluster_size_cap_is_respected() {
        let ds = correlated_dataset();
        let cfg = ClusterConfig {
            max_cluster_size: 1,
            ..Default::default()
        };
        let clustering = cluster_sources(&ds, ds.gold().unwrap(), &cfg).unwrap();
        assert_eq!(clustering.len(), ds.n_sources());
        assert!(clustering.non_trivial().next().is_none());
    }

    #[test]
    fn clique_sizes_reports_non_trivial_descending() {
        let c = Clustering::from_assignment(vec![0, 0, 0, 1, 1, 2, 3]);
        assert_eq!(c.clique_sizes(), vec![3, 2]);
    }

    #[test]
    fn singleton_and_single_cluster_constructors() {
        let s = Clustering::singletons(3);
        assert_eq!(s.len(), 3);
        let one = Clustering::single_cluster(3);
        assert_eq!(one.len(), 1);
        assert_eq!(one.clusters()[0].len(), 3);
    }

    #[test]
    fn strength_uses_both_polarities() {
        let p = PairCorrelation {
            a: SourceId(0),
            b: SourceId(1),
            lift_true: Some(1.0),
            lift_false: Some(4.0),
        };
        assert!((p.strength() - 4.0f64.ln()).abs() < 1e-12);
        // Negative correlation counts too.
        let p = PairCorrelation {
            a: SourceId(0),
            b: SourceId(1),
            lift_true: Some(0.25),
            lift_false: None,
        };
        assert!((p.strength() - 4.0f64.ln()).abs() < 1e-12);
        let p = PairCorrelation {
            a: SourceId(0),
            b: SourceId(1),
            lift_true: None,
            lift_false: None,
        };
        assert_eq!(p.strength(), 0.0);
    }

    #[test]
    fn min_support_blocks_thin_pairs() {
        let mut b = DatasetBuilder::new();
        let s0 = b.source("A");
        let s1 = b.source("B");
        let t = b.triple("x", "p", "1");
        b.observe(s0, t);
        b.observe(s1, t);
        b.label(t, true);
        let t2 = b.triple("y", "p", "2");
        b.observe(s0, t2);
        b.label(t2, false);
        let ds = b.build().unwrap();
        let cfg = ClusterConfig {
            min_support: 3,
            ..Default::default()
        };
        let pairs = pairwise_correlations(&ds, ds.gold().unwrap(), &cfg).unwrap();
        assert_eq!(pairs[0].lift_true, None);
        assert_eq!(pairs[0].lift_false, None);
        // And clustering therefore keeps them apart.
        let c = cluster_sources(&ds, ds.gold().unwrap(), &cfg).unwrap();
        assert_ne!(c.cluster_of(s0), c.cluster_of(s1));
    }

    #[test]
    fn lift_graph_build_matches_batch_computation() {
        let ds = correlated_dataset();
        let cfg = ClusterConfig::default();
        let gold = ds.gold().unwrap();
        let batch = pairwise_correlations(&ds, gold, &cfg).unwrap();
        let graph = LiftGraph::build(&ds, gold, &cfg);
        let inc = graph.pair_correlations();
        assert_eq!(batch.len(), inc.len());
        for (b, i) in batch.iter().zip(&inc) {
            assert_eq!(b.a, i.a);
            assert_eq!(b.b, i.b);
            assert_eq!(
                b.lift_true.map(f64::to_bits),
                i.lift_true.map(f64::to_bits),
                "true lift {}-{}",
                b.a,
                b.b
            );
            assert_eq!(
                b.lift_false.map(f64::to_bits),
                i.lift_false.map(f64::to_bits),
                "false lift {}-{}",
                b.a,
                b.b
            );
        }
        assert_eq!(
            graph.clustering(),
            cluster_sources(&ds, gold, &cfg).unwrap()
        );
    }

    /// The incremental clustering trust anchor at the unit level: under
    /// random label flips, fresh labels, and claims (with and without
    /// scope expansion), the maintained pair counts stay bitwise equal to
    /// a from-scratch [`pairwise_correlations`] pass, and the derived
    /// clustering equals [`cluster_sources`].
    #[test]
    fn lift_graph_stays_equal_under_random_churn() {
        use crate::dataset::Domain;
        use crate::testkit::run_cases;
        run_cases("lift_graph_churn", 10, |g| {
            let n_sources = g.usize_in(4, 8);
            let n_triples = g.usize_in(12, 30);
            let n_domains = g.usize_in(1, 3);
            let mut b = DatasetBuilder::new();
            let sources: Vec<_> = (0..n_sources).map(|i| b.source(format!("S{i}"))).collect();
            let mut triples = Vec::new();
            for i in 0..n_triples {
                let t = b.triple(format!("e{i}"), "p", "v");
                b.set_domain(t, Domain((i % n_domains) as u32));
                // At least one provider, a sprinkling of others.
                b.observe(sources[g.usize_in(0, n_sources)], t);
                for &s in &sources {
                    if g.bool(0.3) {
                        b.observe(s, t);
                    }
                }
                if g.bool(0.6) {
                    b.label(t, g.bool(0.5));
                }
                triples.push(t);
            }
            // Ensure at least one label so `pairwise_correlations` runs.
            b.label(triples[0], true);
            let mut ds = b.build().unwrap();
            let cfg = ClusterConfig {
                min_support: g.usize_in(1, 4),
                max_cluster_size: g.usize_in(2, 5),
                ..Default::default()
            };
            let mut graph = LiftGraph::build(&ds, ds.gold().unwrap(), &cfg);
            for _ in 0..20 {
                let t = triples[g.usize_in(0, triples.len())];
                if g.bool(0.5) {
                    // Label or flip.
                    let truth = g.bool(0.5);
                    let prev = ds.set_label(t, truth).unwrap();
                    graph.relabel(&ds, t, prev, truth);
                } else {
                    // Claim, possibly expanding scope.
                    let s = sources[g.usize_in(0, n_sources)];
                    let outcome = ds.observe(s, t).unwrap();
                    if !outcome.newly_provided {
                        continue;
                    }
                    let gold = ds.gold().unwrap().clone();
                    if outcome.scope_expanded {
                        let d = ds.domain(t);
                        let in_domain: Vec<TripleId> = triples
                            .iter()
                            .copied()
                            .filter(|&x| ds.domain(x) == d)
                            .collect();
                        for x in in_domain {
                            if let Some(truth) = gold.get(x) {
                                graph.source_entered_scope(&ds, s, x, truth);
                            }
                        }
                    } else if let Some(truth) = gold.get(t) {
                        graph.source_provided(&ds, s, t, truth);
                    }
                }
                let batch = pairwise_correlations(&ds, ds.gold().unwrap(), &cfg).unwrap();
                let inc = graph.pair_correlations();
                for (bp, ip) in batch.iter().zip(&inc) {
                    assert_eq!(
                        bp.lift_true.map(f64::to_bits),
                        ip.lift_true.map(f64::to_bits),
                        "true lift {}-{}",
                        bp.a,
                        bp.b
                    );
                    assert_eq!(
                        bp.lift_false.map(f64::to_bits),
                        ip.lift_false.map(f64::to_bits),
                        "false lift {}-{}",
                        bp.a,
                        bp.b
                    );
                }
                assert_eq!(
                    graph.clustering(),
                    cluster_sources(&ds, ds.gold().unwrap(), &cfg).unwrap()
                );
            }
        });
    }

    #[test]
    fn missing_gold_rejected() {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        let t = b.triple("x", "p", "1");
        b.observe(s, t);
        let ds = b.build().unwrap();
        let empty = GoldLabels::new(1);
        assert!(pairwise_correlations(&ds, &empty, &ClusterConfig::default()).is_err());
    }
}
