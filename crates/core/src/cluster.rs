//! Correlation-based source clustering (§5 "Comparisons", BOOK protocol).
//!
//! The exact and elastic solvers pay per-cluster costs that grow with
//! cluster width, so for datasets with many sources the paper "divide[s]
//! sources into clusters based on their pairwise correlations, and
//! assume[s] that sources across clusters are independent". We implement
//! that with:
//!
//! 1. a pairwise correlation *lift* on true triples
//!    (`n11 * N_true / (n1 * n2)`) and on false triples, smoothed so zero
//!    co-occurrence stays finite;
//! 2. an edge list of pairs whose `|ln lift|` exceeds a threshold;
//! 3. size-capped union-find: edges are applied strongest-first, skipping
//!    any union that would exceed `max_cluster_size`.
//!
//! Sources not pulled into any clique become singleton clusters, for which
//! the fuser uses the plain independent contribution.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::bits::BitSet;
use crate::dataset::{Dataset, GoldLabels, SourceId};
use crate::error::{FusionError, Result};
use crate::triple::TripleId;

/// Tuning knobs for [`cluster_sources`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Minimum `|ln lift|` for a pair to count as correlated.
    /// The default `ln(1.5)` treats ±50% deviation from independence as
    /// signal.
    pub ln_threshold: f64,
    /// Minimum number of labelled triples each side must provide (per
    /// polarity) before its lift is trusted.
    pub min_support: usize,
    /// Hard cap on cluster width; unions that would exceed it are skipped.
    pub max_cluster_size: usize,
    /// Smoothing pseudo-count added to co-occurrence counts.
    pub smoothing: f64,
    /// Correlation-sketch admission tier for [`LiftGraph`]; disabled by
    /// default (every co-scoped pair gets exact counts).
    pub sketch: SketchParams,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            ln_threshold: 1.5f64.ln(),
            min_support: 4,
            max_cluster_size: 24,
            smoothing: 0.5,
            sketch: SketchParams::default(),
        }
    }
}

/// Knobs for the correlation-sketch prefilter of [`LiftGraph`].
///
/// When enabled, the graph keeps exact pair counts only for *admitted*
/// pairs; everything else is summarised by small per-source claim
/// samples plus exact per-domain counters, and a pair is admitted the
/// moment its sketched lift *could* reach `ClusterConfig::ln_threshold`.
/// See the [`LiftGraph`] type docs for the precise contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchParams {
    /// Maintain the sketch tier and admit pairs lazily. When `false`
    /// the graph stores exact counts for every co-scoped pair.
    pub enabled: bool,
    /// Bottom-k sample size per source per polarity. While a source's
    /// provisions fit in the sample, its co-provision counts (and hence
    /// admission decisions involving it) are *exact*; beyond it they
    /// become conservative estimates.
    pub sample_size: usize,
    /// Relative slack applied to estimated co-provision counts once a
    /// sample has saturated, widening the admission interval so borderline
    /// pairs still get admitted. Irrelevant while samples are exact.
    pub margin: f64,
}

impl Default for SketchParams {
    fn default() -> Self {
        SketchParams {
            enabled: false,
            sample_size: 64,
            margin: 0.5,
        }
    }
}

impl SketchParams {
    /// Enabled with default sample size and margin.
    pub fn on() -> Self {
        SketchParams {
            enabled: true,
            ..SketchParams::default()
        }
    }
}

/// Pairwise correlation evidence between two sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairCorrelation {
    /// First source.
    pub a: SourceId,
    /// Second source.
    pub b: SourceId,
    /// Lift on true triples (`>1` positive, `<1` negative, `1` independent),
    /// `None` without enough support.
    pub lift_true: Option<f64>,
    /// Lift on false triples.
    pub lift_false: Option<f64>,
}

impl PairCorrelation {
    /// Edge strength: the largest absolute log-lift over both polarities.
    pub fn strength(&self) -> f64 {
        let s1 = self.lift_true.map(|l| l.ln().abs()).unwrap_or(0.0);
        let s2 = self.lift_false.map(|l| l.ln().abs()).unwrap_or(0.0);
        s1.max(s2)
    }
}

/// A partition of the sources into correlation clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster membership per source index.
    assignment: Vec<usize>,
    /// Clusters as sorted member lists; singletons included.
    clusters: Vec<Vec<SourceId>>,
}

impl Clustering {
    /// Build from an explicit assignment vector (cluster id per source).
    pub fn from_assignment(assignment: Vec<usize>) -> Self {
        let n_clusters = assignment.iter().copied().max().map_or(0, |m| m + 1);
        let mut clusters = vec![Vec::new(); n_clusters];
        for (s, &c) in assignment.iter().enumerate() {
            clusters[c].push(SourceId(s as u32));
        }
        clusters.retain(|c| !c.is_empty());
        // Re-number densely.
        let mut dense = vec![0usize; assignment.len()];
        for (ci, members) in clusters.iter().enumerate() {
            for m in members {
                dense[m.index()] = ci;
            }
        }
        Clustering {
            assignment: dense,
            clusters,
        }
    }

    /// One cluster per source (the fully-independent fallback).
    pub fn singletons(n_sources: usize) -> Self {
        Clustering::from_assignment((0..n_sources).collect())
    }

    /// Every source in one cluster.
    pub fn single_cluster(n_sources: usize) -> Self {
        Clustering::from_assignment(vec![0; n_sources])
    }

    /// Cluster id of a source.
    pub fn cluster_of(&self, s: SourceId) -> usize {
        self.assignment[s.index()]
    }

    /// The clusters, each a sorted list of member sources.
    pub fn clusters(&self) -> &[Vec<SourceId>] {
        &self.clusters
    }

    /// Clusters with at least two members (the ones that get joint
    /// treatment).
    pub fn non_trivial(&self) -> impl Iterator<Item = &Vec<SourceId>> {
        self.clusters.iter().filter(|c| c.len() > 1)
    }

    /// Number of clusters (including singletons).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when there are no clusters (empty dataset).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Sorted sizes of non-trivial clusters, descending — the shape the
    /// paper reports for BOOK ("clusters of size 22, 3, and 2").
    pub fn clique_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self
            .clusters
            .iter()
            .map(Vec::len)
            .filter(|&l| l > 1)
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

/// Disjoint-set forest with union-by-size and a size cap.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set (path-halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root]
    }

    /// Union the sets of `a` and `b` unless the merged size would exceed
    /// `cap`. Returns whether a merge happened.
    pub fn union_capped(&mut self, a: usize, b: usize, cap: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] + self.size[rb] > cap {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }

    /// Dense cluster-id assignment.
    pub fn into_assignment(mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut ids = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for x in 0..n {
            let root = self.find(x);
            let next = ids.len();
            let id = *ids.entry(root).or_insert(next);
            out.push(id);
        }
        out
    }
}

/// The smoothed lift of one pair for one polarity, from its exact
/// co-occurrence counts: `n11` co-provisions, `na` / `nb` per-side
/// provisions and `total` shared-scope triples (all within the pair's
/// scope intersection).
///
/// This is the **single** float expression behind both the batch
/// ([`pairwise_correlations`]) and incremental ([`LiftGraph`]) paths, so
/// equal integer counts always yield bitwise-equal lifts. `None` when the
/// pair shares no scope or either side lacks `min_support`.
pub fn lift_from_counts(
    n11: usize,
    na: usize,
    nb: usize,
    total: usize,
    cfg: &ClusterConfig,
) -> Option<f64> {
    if total == 0 {
        return None;
    }
    if na < cfg.min_support || nb < cfg.min_support {
        return None;
    }
    let s = cfg.smoothing;
    let expectation = (na as f64 + s) * (nb as f64 + s) / (total as f64 + s);
    Some(((n11 as f64 + s) / expectation).max(1e-9))
}

/// Compute pairwise correlations between all sources from labelled data.
///
/// For each polarity, the lift of `(a, b)` is observed co-occurrence over
/// the independence expectation, with pseudo-count smoothing — computed
/// **within the pair's scope intersection**. For scoped datasets (e.g.
/// BOOK, where sellers list only some books) two sources that merely cover
/// the same objects would otherwise look strongly correlated; restricting
/// all four counts to triples both sources cover isolates correlation of
/// *provision*, which is the signal copying leaves behind. Pairs where
/// either side provides fewer than `min_support` labelled triples of a
/// polarity (within the intersection) get `None` for that polarity.
pub fn pairwise_correlations(
    ds: &Dataset,
    gold: &GoldLabels,
    cfg: &ClusterConfig,
) -> Result<Vec<PairCorrelation>> {
    if gold.labelled_count() == 0 {
        return Err(FusionError::MissingGold);
    }
    let n = ds.n_sources();
    let n_true = gold.true_count();
    let n_false = gold.false_count();

    // Per-source bitsets over labelled-true / labelled-false triple ranks:
    // provision and scope membership.
    let mut true_sets = vec![BitSet::new(n_true); n];
    let mut false_sets = vec![BitSet::new(n_false); n];
    let mut true_scope = vec![BitSet::new(n_true); n];
    let mut false_scope = vec![BitSet::new(n_false); n];
    let (mut ti, mut fi) = (0usize, 0usize);
    for (t, truth) in gold.iter_labelled() {
        let providers = ds.providers(t);
        let scope = ds.scope_mask(t);
        let (idx, sets, scopes) = if truth {
            (ti, &mut true_sets, &mut true_scope)
        } else {
            (fi, &mut false_sets, &mut false_scope)
        };
        for s in scope.iter_ones() {
            scopes[s].set(idx, true);
            if providers.get(s) {
                sets[s].set(idx, true);
            }
        }
        if truth {
            ti += 1;
        } else {
            fi += 1;
        }
    }

    // Lift over the scope intersection of (a, b).
    let pair_lift =
        |prov_a: &BitSet, prov_b: &BitSet, scope_a: &BitSet, scope_b: &BitSet| -> Option<f64> {
            let mut shared_scope = scope_a.clone();
            shared_scope.intersect_with(scope_b);
            let total = shared_scope.count_ones();
            let na = prov_a.intersection_count(&shared_scope);
            let nb = prov_b.intersection_count(&shared_scope);
            let n11 = prov_a.intersection_count(prov_b);
            lift_from_counts(n11, na, nb, total, cfg)
        };

    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in a + 1..n {
            out.push(PairCorrelation {
                a: SourceId(a as u32),
                b: SourceId(b as u32),
                lift_true: pair_lift(&true_sets[a], &true_sets[b], &true_scope[a], &true_scope[b]),
                lift_false: pair_lift(
                    &false_sets[a],
                    &false_sets[b],
                    &false_scope[a],
                    &false_scope[b],
                ),
            });
        }
    }
    Ok(out)
}

/// Partition sources into correlation clusters given their pairwise
/// lifts (strongest edges first, size-capped union-find).
///
/// The deterministic second half of [`cluster_sources`], shared with the
/// incremental [`LiftGraph::clustering`] path: equal `pairs` (in the
/// same `(a, b)` enumeration order — ties keep it, the sort is stable)
/// always produce the identical [`Clustering`].
pub fn cluster_from_pairs(
    n_sources: usize,
    mut pairs: Vec<PairCorrelation>,
    cfg: &ClusterConfig,
) -> Clustering {
    pairs.retain(|p| p.strength() >= cfg.ln_threshold);
    pairs.sort_by(|x, y| {
        y.strength()
            .partial_cmp(&x.strength())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut uf = UnionFind::new(n_sources);
    let cap = cfg.max_cluster_size.clamp(1, 64);
    for p in &pairs {
        uf.union_capped(p.a.index(), p.b.index(), cap);
    }
    Clustering::from_assignment(uf.into_assignment())
}

/// Partition sources into correlation clusters (strongest edges first,
/// size-capped union-find).
///
/// Wide worlds (or an enabled sketch tier, which must drive admission)
/// route through the sparse [`LiftGraph`], so batch fitting pays only
/// for co-scoped (or sketch-admitted) pairs instead of `n²`. Narrow
/// worlds keep the dense [`pairwise_correlations`] scan: at paper-scale
/// source counts its word-parallel bitset intersections beat per-triple
/// pair updates by ~4x. The two paths are bitwise identical — see the
/// [`LiftGraph`] sparsity contract — so the switch is purely a cost
/// choice.
pub fn cluster_sources(ds: &Dataset, gold: &GoldLabels, cfg: &ClusterConfig) -> Result<Clustering> {
    /// Above this, the all-pairs table itself dominates the sparse
    /// graph's per-triple overhead even on fully co-scoped data.
    const DENSE_BATCH_MAX_SOURCES: usize = 512;
    let n = ds.n_sources();
    if n == 0 {
        return Ok(Clustering::singletons(0));
    }
    if gold.labelled_count() == 0 {
        return Err(FusionError::MissingGold);
    }
    if !cfg.sketch.enabled && n <= DENSE_BATCH_MAX_SOURCES {
        let pairs = pairwise_correlations(ds, gold, cfg)?;
        return Ok(cluster_from_pairs(n, pairs, cfg));
    }
    Ok(LiftGraph::build(ds, gold, cfg).clustering())
}

/// Exact co-occurrence counts of one source pair for one polarity, all
/// restricted to the pair's scope intersection (see
/// [`pairwise_correlations`] for why).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PairCounts {
    /// Labelled triples of this polarity in both sources' scope.
    total: u32,
    /// Of those, provided by the pair's lower-indexed source.
    na: u32,
    /// Of those, provided by the pair's higher-indexed source.
    nb: u32,
    /// Of those, provided by both.
    n11: u32,
}

impl PairCounts {
    #[inline]
    fn bump(v: &mut u32, delta: i32) {
        *v = v.checked_add_signed(delta).expect("pair count underflow");
    }

    fn lift(&self, cfg: &ClusterConfig) -> Option<f64> {
        lift_from_counts(
            self.n11 as usize,
            self.na as usize,
            self.nb as usize,
            self.total as usize,
            cfg,
        )
    }
}

/// Both polarities' exact counts of one tracked pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PairState {
    t: PairCounts,
    f: PairCounts,
}

impl PairState {
    #[inline]
    fn side_mut(&mut self, truth: bool) -> &mut PairCounts {
        if truth {
            &mut self.t
        } else {
            &mut self.f
        }
    }

    fn correlation(&self, a: usize, b: usize, cfg: &ClusterConfig) -> PairCorrelation {
        PairCorrelation {
            a: SourceId(a as u32),
            b: SourceId(b as u32),
            lift_true: self.t.lift(cfg),
            lift_false: self.f.lift(cfg),
        }
    }
}

/// Packed upper-triangle key of a source pair, `a < b`.
#[inline]
fn pair_key(a: usize, b: usize) -> u64 {
    debug_assert!(a < b);
    ((a as u64) << 32) | b as u64
}

#[inline]
fn unpack_key(key: u64) -> (usize, usize) {
    ((key >> 32) as usize, (key & 0xffff_ffff) as usize)
}

/// Size-observability counters of a [`LiftGraph`]: how many pairs carry
/// exact counts, and how many candidate evaluations the sketch tier has
/// declined (cumulative — a pair re-evaluated after new deltas counts
/// again).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiftGraphStats {
    /// Pairs currently tracked with exact counts (the sparse map size).
    pub pairs_exact: usize,
    /// Cumulative sketch-admission evaluations that declined a pair.
    pub pairs_sketch_pruned: u64,
}

impl LiftGraphStats {
    /// Combine counters from two graphs (sums both fields;
    /// `pairs_exact` becomes total occupancy).
    pub fn merged(self, other: LiftGraphStats) -> LiftGraphStats {
        LiftGraphStats {
            pairs_exact: self.pairs_exact + other.pairs_exact,
            pairs_sketch_pruned: self.pairs_sketch_pruned + other.pairs_sketch_pruned,
        }
    }
}

/// Incrementally maintained pairwise-lift state: a **sparse
/// upper-triangle map** of the integer counts behind tracked pairs'
/// true/false lifts, kept exact under label, claim and scope deltas.
///
/// [`pairwise_correlations`] recomputes all `n²` pair counts with one
/// pass over the labelled data, which data-driven (`Auto`) clustering
/// used to pay on *every* label change by falling back to a full refit.
/// A `LiftGraph` instead stores counts only for pairs that can matter
/// and absorbs each delta in O(in-scope sources²) integer updates; it
/// can re-derive the clustering from its maintained counts at any time
/// — [`LiftGraph::clustering`] — through the exact code path
/// ([`lift_from_counts`] + [`cluster_from_pairs`]) the batch
/// computation uses, so both always agree bitwise.
///
/// # Sparsity and the sketch-admission contract
///
/// With the sketch disabled (default), the map holds every *co-scoped*
/// pair — pairs that share at least one labelled triple's scope. A pair
/// of sources that never share scope has zero counts, hence `None`
/// lifts and strength `0.0`, which [`cluster_from_pairs`] drops for any
/// positive `ln_threshold`; omitting such pairs from
/// [`LiftGraph::pair_correlations`] therefore cannot change the
/// clustering. (For the degenerate `ln_threshold <= 0` configuration,
/// where zero-strength pairs *would* union, emission falls back to the
/// full dense enumeration so equality still holds.)
///
/// With [`SketchParams::enabled`], co-scoped pairs start *untracked*:
/// the graph maintains per-source bottom-k claim samples plus exact
/// per-domain provision/label counters, and
/// [`LiftGraph::admit_candidates`] promotes a pair to exact tracking
/// the moment an upper bound on its sketched strength reaches
/// `ln_threshold` (admission is monotone — a pair is never demoted; its
/// exact counts are rebuilt by a shared-scope rescan at admission and
/// maintained by the delta hooks thereafter). Exact counts remain the
/// *sole* input to [`cluster_from_pairs`]; the sketch only withholds
/// pairs. While every involved sample is unsaturated (a source provides
/// at most `sample_size` labelled triples per polarity) the sketched
/// co-provision count is exact, so pruning decisions equal the exact
/// decisions and the clustering stays bitwise identical to the
/// sketch-disabled configuration. Once samples saturate, admission uses
/// a conservative interval (KMV estimate ± `margin`, clamped to hard
/// inclusion-exclusion bounds) and may, for aggressive thresholds,
/// prune a borderline pair.
///
/// # Hook contract
///
/// Callers apply dataset deltas first, then mirror them here:
///
/// * a (re)label of triple `t` — providers and scopes unchanged —
///   becomes [`LiftGraph::relabel`];
/// * a new claim `(s, t)` that did **not** expand `s`'s scope becomes
///   [`LiftGraph::source_provided`] (only `s`'s provision sets change);
/// * a claim that *did* expand `s`'s scope into domain `d` becomes one
///   [`LiftGraph::source_entered_scope`] per labelled triple of `d`
///   (including `t` itself if labelled — its provision is absorbed in
///   the same call), because every such triple now counts `s` in its
///   scope intersection with every other in-scope source;
/// * after a batch of deltas, and before reading
///   [`LiftGraph::clustering`], call [`LiftGraph::admit_candidates`]
///   so newly-correlated pairs get promoted (a no-op when the sketch is
///   disabled).
///
/// A new *source* changes the pair universe; rebuild with
/// [`LiftGraph::build`] (incremental callers fall back to a full refit
/// there anyway).
#[derive(Debug, Clone)]
pub struct LiftGraph {
    n: usize,
    cfg: ClusterConfig,
    /// Exact pair counts, keyed by [`pair_key`] — sparse over co-scoped
    /// (sketch off) or admitted (sketch on) pairs only.
    pairs: HashMap<u64, PairState>,
    /// Sketch tier; `Some` exactly when `cfg.sketch.enabled`.
    sketch: Option<SketchTier>,
    /// Cumulative candidate evaluations the sketch declined.
    sketch_pruned: u64,
    /// Any count changed since the last [`LiftGraph::take_changed`].
    changed: bool,
}

impl LiftGraph {
    /// Build from the current labelled state; tracked pairs mirror
    /// [`pairwise_correlations`]' counts exactly. A dataset with no
    /// labels yields an empty graph (every lift `None`).
    pub fn build(ds: &Dataset, gold: &GoldLabels, cfg: &ClusterConfig) -> LiftGraph {
        let n = ds.n_sources();
        let mut graph = LiftGraph {
            n,
            cfg: *cfg,
            pairs: HashMap::new(),
            sketch: cfg.sketch.enabled.then(|| SketchTier::new(n, &cfg.sketch)),
            sketch_pruned: 0,
            changed: false,
        };
        if let Some(sk) = &mut graph.sketch {
            // Pass 1a: per-domain counters and label index, in
            // label-arrival order (matches the delta path).
            for (t, truth) in gold.iter_labelled() {
                let d = ds.domain(t).0;
                sk.dirty.insert(d);
                sk.domain_labelled.entry(d).or_default().push(t);
                sk.domain_totals.entry(d).or_default()[truth as usize] += 1;
            }
            // Pass 1b: per-source samples from the output lists —
            // O(observations), never a provider-bitset scan per triple.
            // Bottom-k samples and provision counters are insertion-order
            // independent, so this lands bit-identically to absorbing
            // labels one at a time.
            for s in 0..n {
                for &t in ds.output(SourceId(s as u32)) {
                    if let Some(truth) = gold.get(t) {
                        sk.sources[s][truth as usize].add(ds.domain(t).0, t, sk.k);
                    }
                }
            }
        } else {
            // In-scope sources per domain, ascending — one dataset pass
            // instead of an O(n_sources) scope scan per labelled triple.
            let mut domain_members: HashMap<u32, Vec<usize>> = HashMap::new();
            for s in 0..n {
                for dom in ds.scope(SourceId(s as u32)) {
                    domain_members.entry(dom.0).or_default().push(s);
                }
            }
            for (t, truth) in gold.iter_labelled() {
                if let Some(scope) = domain_members.get(&ds.domain(t).0) {
                    graph.contribute_scoped(ds, scope, t, truth, 1);
                }
            }
        }
        // Pass 2 (sketch only): evaluate co-scoped candidates, rescan
        // the admitted.
        graph.admit_candidates(ds);
        graph.changed = false;
        graph
    }

    /// Number of sources the pair universe covers.
    pub fn n_sources(&self) -> usize {
        self.n
    }

    /// The clustering knobs the lifts and edges are derived with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Current size/prune counters.
    pub fn stats(&self) -> LiftGraphStats {
        LiftGraphStats {
            pairs_exact: self.pairs.len(),
            pairs_sketch_pruned: self.sketch_pruned,
        }
    }

    /// Mutable counts of `(a, b)`, `a < b`. Sketch off: co-scoped pairs
    /// materialise on first touch. Sketch on: only admitted pairs are
    /// maintained — everything else is `None` (the sketch tier absorbs
    /// the delta instead).
    #[inline]
    fn pair_mut(&mut self, a: usize, b: usize) -> Option<&mut PairState> {
        let key = pair_key(a, b);
        if self.sketch.is_some() {
            self.pairs.get_mut(&key)
        } else {
            Some(self.pairs.entry(key).or_default())
        }
    }

    /// Add (`delta = 1`) or retract (`delta = -1`) one labelled triple's
    /// whole contribution to tracked pairs, from current provider/scope
    /// state.
    fn contribute(&mut self, ds: &Dataset, t: TripleId, truth: bool, delta: i32) {
        let scope: Vec<usize> = ds.scope_mask(t).iter_ones().collect();
        self.contribute_scoped(ds, &scope, t, truth, delta);
    }

    /// [`LiftGraph::contribute`] with the in-scope source list (ascending)
    /// already in hand — the batch build path resolves it once per domain
    /// rather than scanning every source per triple.
    fn contribute_scoped(
        &mut self,
        ds: &Dataset,
        scope: &[usize],
        t: TripleId,
        truth: bool,
        delta: i32,
    ) {
        if scope.len() < 2 {
            return;
        }
        let provided: Vec<bool> = scope.iter().map(|&s| ds.providers(t).get(s)).collect();
        self.changed = true;
        for i in 0..scope.len() {
            for j in i + 1..scope.len() {
                let Some(state) = self.pair_mut(scope[i], scope[j]) else {
                    continue;
                };
                let c = state.side_mut(truth);
                PairCounts::bump(&mut c.total, delta);
                if provided[i] {
                    PairCounts::bump(&mut c.na, delta);
                }
                if provided[j] {
                    PairCounts::bump(&mut c.nb, delta);
                }
                if provided[i] && provided[j] {
                    PairCounts::bump(&mut c.n11, delta);
                }
            }
        }
    }

    /// Triple `t` was labelled or relabelled (providers and scopes
    /// unchanged): retract the old polarity's contribution, add the new.
    pub fn relabel(&mut self, ds: &Dataset, t: TripleId, old: Option<bool>, new: bool) {
        if old == Some(new) {
            return;
        }
        if let Some(old) = old {
            self.contribute(ds, t, old, -1);
        }
        self.contribute(ds, t, new, 1);
        if self.sketch.is_some() {
            self.sketch_absorb_label(ds, t, old, new);
        }
    }

    /// Source `s` newly entered the scope of the labelled triple `t`
    /// (typically: its first claim in `t`'s domain). Adds `t` to the
    /// scope intersection of every tracked pair `(s, other-in-scope
    /// source)`; `s`'s own provision of `t` — present exactly when `t`
    /// is the claimed triple itself — is absorbed in the same update.
    pub fn source_entered_scope(&mut self, ds: &Dataset, s: SourceId, t: TripleId, truth: bool) {
        let s = s.index();
        let s_provides = ds.providers(t).get(s);
        let scope = ds.scope_mask(t);
        let prov = ds.providers(t).clone();
        self.changed = true;
        for o in scope.iter_ones() {
            if o == s {
                continue;
            }
            let (lo, hi) = if s < o { (s, o) } else { (o, s) };
            let Some(state) = self.pair_mut(lo, hi) else {
                continue;
            };
            let c = state.side_mut(truth);
            PairCounts::bump(&mut c.total, 1);
            let o_provides = prov.get(o);
            if s_provides {
                PairCounts::bump(if s < o { &mut c.na } else { &mut c.nb }, 1);
            }
            if o_provides {
                PairCounts::bump(if s < o { &mut c.nb } else { &mut c.na }, 1);
            }
            if s_provides && o_provides {
                PairCounts::bump(&mut c.n11, 1);
            }
        }
        if let Some(sk) = &mut self.sketch {
            let d = ds.domain(t).0;
            sk.dirty.insert(d);
            if s_provides {
                sk.sources[s][truth as usize].add(d, t, sk.k);
            }
        }
    }

    /// Source `s` newly provides the labelled triple `t` and was already
    /// in its scope: only `s`'s provision-side counts move.
    pub fn source_provided(&mut self, ds: &Dataset, s: SourceId, t: TripleId, truth: bool) {
        let s = s.index();
        let scope = ds.scope_mask(t);
        let prov = ds.providers(t).clone();
        self.changed = true;
        for o in scope.iter_ones() {
            if o == s {
                continue;
            }
            let (lo, hi) = if s < o { (s, o) } else { (o, s) };
            let Some(state) = self.pair_mut(lo, hi) else {
                continue;
            };
            let c = state.side_mut(truth);
            PairCounts::bump(if s < o { &mut c.na } else { &mut c.nb }, 1);
            if prov.get(o) {
                PairCounts::bump(&mut c.n11, 1);
            }
        }
        if let Some(sk) = &mut self.sketch {
            let d = ds.domain(t).0;
            sk.dirty.insert(d);
            sk.sources[s][truth as usize].add(d, t, sk.k);
        }
    }

    /// Mirror a (re)label into the sketch tier: per-domain label totals,
    /// the labelled-triple index, and every provider's sample/provision
    /// counters move from the old polarity to the new.
    fn sketch_absorb_label(&mut self, ds: &Dataset, t: TripleId, old: Option<bool>, new: bool) {
        let sk = self.sketch.as_mut().expect("sketch tier enabled");
        let d = ds.domain(t).0;
        sk.dirty.insert(d);
        if old.is_none() {
            sk.domain_labelled.entry(d).or_default().push(t);
        }
        let totals = sk.domain_totals.entry(d).or_default();
        if let Some(old) = old {
            totals[old as usize] -= 1;
        }
        totals[new as usize] += 1;
        for s in ds.providers(t).iter_ones() {
            if let Some(old) = old {
                sk.sources[s][old as usize].remove(d, t);
            }
            sk.sources[s][new as usize].add(d, t, sk.k);
        }
    }

    /// Evaluate every co-scoped pair in a *dirty* domain (one touched by
    /// a delta since the last call) and promote those whose sketched
    /// strength could reach `ln_threshold`: their exact counts are
    /// rebuilt by a shared-scope rescan and maintained incrementally
    /// from then on. No-op when the sketch tier is disabled. Call after
    /// a delta batch, before [`LiftGraph::clustering`].
    pub fn admit_candidates(&mut self, ds: &Dataset) {
        let Some(sk) = &self.sketch else {
            return;
        };
        if sk.dirty.is_empty() {
            return;
        }
        let Some(gold) = ds.gold() else {
            return;
        };
        let mut dirty: Vec<u32> = sk.dirty.iter().copied().collect();
        dirty.sort_unstable();
        // In-scope sources per dirty domain, ascending (one dataset pass).
        let mut members: HashMap<u32, Vec<usize>> =
            dirty.iter().map(|&d| (d, Vec::new())).collect();
        for s in 0..self.n {
            for dom in ds.scope(SourceId(s as u32)) {
                if let Some(list) = members.get_mut(&dom.0) {
                    list.push(s);
                }
            }
        }
        let mut evaluated = 0u64;
        let mut admitted: Vec<u64> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for &d in &dirty {
            let list = &members[&d];
            for i in 0..list.len() {
                for j in i + 1..list.len() {
                    let key = pair_key(list[i], list[j]);
                    if self.pairs.contains_key(&key) || !seen.insert(key) {
                        continue;
                    }
                    evaluated += 1;
                    let sk = self.sketch.as_ref().expect("sketch tier enabled");
                    let bound = sk.strength_bound(ds, list[i], list[j], &self.cfg);
                    if bound >= self.cfg.ln_threshold {
                        admitted.push(key);
                        let state = sk.rescan_pair(ds, gold, list[i], list[j]);
                        self.pairs.insert(key, state);
                    }
                }
            }
        }
        self.sketch_pruned += evaluated - admitted.len() as u64;
        let sk = self.sketch.as_mut().expect("sketch tier enabled");
        sk.dirty.clear();
    }

    /// Did any pair count change since the last call? Cleared on read;
    /// callers skip re-deriving the clustering entirely when nothing
    /// moved.
    pub fn take_changed(&mut self) -> bool {
        std::mem::take(&mut self.changed)
    }

    /// The pairwise lifts of tracked pairs from the maintained counts,
    /// ascending in `(a, b)` — the same relative order (and the same
    /// float path) as [`pairwise_correlations`], restricted to tracked
    /// pairs. Untracked pairs have strength `0.0` (sketch off) or a
    /// sketch-certified strength below `ln_threshold` (sketch on), so
    /// [`cluster_from_pairs`] treats both emissions identically; for the
    /// degenerate `ln_threshold <= 0` configuration — where
    /// zero-strength pairs survive the threshold — the full dense
    /// enumeration is emitted instead.
    pub fn pair_correlations(&self) -> Vec<PairCorrelation> {
        if self.cfg.ln_threshold <= 0.0 {
            let mut out = Vec::with_capacity(self.n * self.n.saturating_sub(1) / 2);
            for a in 0..self.n {
                for b in a + 1..self.n {
                    let state = self.pairs.get(&pair_key(a, b)).copied().unwrap_or_default();
                    out.push(state.correlation(a, b, &self.cfg));
                }
            }
            return out;
        }
        let mut keys: Vec<u64> = self.pairs.keys().copied().collect();
        keys.sort_unstable();
        keys.iter()
            .map(|&key| {
                let (a, b) = unpack_key(key);
                self.pairs[&key].correlation(a, b, &self.cfg)
            })
            .collect()
    }

    /// Re-derive the clustering from the maintained counts — identical
    /// to [`cluster_sources`] on the same labelled state, without its
    /// O(sources² · labelled) scan.
    pub fn clustering(&self) -> Clustering {
        if self.n == 0 {
            return Clustering::singletons(0);
        }
        cluster_from_pairs(self.n, self.pair_correlations(), &self.cfg)
    }
}

/// Per-source, per-polarity claim summary: a bottom-k sample of provided
/// labelled triples (exact until it overflows `k`) plus exact per-domain
/// provision counts.
#[derive(Debug, Clone, Default)]
struct SketchSide {
    /// Bottom-k triple hashes ([`triple_hash`] is a bijection, so
    /// membership is collision-free). Complete while `!saturated`.
    sample: BTreeSet<u64>,
    /// The sample has ever overflowed (sticky): counts derived from it
    /// are estimates from here on.
    saturated: bool,
    /// Labelled provisions per domain, exact regardless of saturation.
    provisions: HashMap<u32, u32>,
}

impl SketchSide {
    fn add(&mut self, domain: u32, t: TripleId, k: usize) {
        *self.provisions.entry(domain).or_default() += 1;
        let h = triple_hash(t);
        if self.sample.len() < k {
            self.sample.insert(h);
        } else {
            self.saturated = true;
            if self.sample.last().is_some_and(|&max| h < max) {
                self.sample.insert(h);
                self.sample.pop_last();
            }
        }
    }

    fn remove(&mut self, domain: u32, t: TripleId) {
        if let Some(c) = self.provisions.get_mut(&domain) {
            *c -= 1;
        }
        // May miss if the element was evicted; `saturated` already
        // records that the sample is approximate.
        self.sample.remove(&triple_hash(t));
    }
}

/// The sketch tier of a [`LiftGraph`]: per-source claim samples, exact
/// per-domain counters, and the dirty-domain set driving
/// [`LiftGraph::admit_candidates`].
#[derive(Debug, Clone)]
struct SketchTier {
    k: usize,
    margin: f64,
    /// `[false-polarity, true-polarity]` per source (indexed by
    /// `truth as usize`).
    sources: Vec<[SketchSide; 2]>,
    /// Labelled triples per domain per polarity (same indexing).
    domain_totals: HashMap<u32, [u32; 2]>,
    /// Every-labelled-triple index per domain (membership never
    /// shrinks: labels flip but are not removed). Drives admission
    /// rescans.
    domain_labelled: HashMap<u32, Vec<TripleId>>,
    /// Domains touched by a delta since the last admission pass.
    dirty: HashSet<u32>,
}

impl SketchTier {
    fn new(n_sources: usize, params: &SketchParams) -> SketchTier {
        SketchTier {
            k: params.sample_size.max(1),
            margin: params.margin.max(0.0),
            sources: vec![Default::default(); n_sources],
            domain_totals: HashMap::new(),
            domain_labelled: HashMap::new(),
            dirty: HashSet::new(),
        }
    }

    /// Shared-scope domains of `(a, b)`, from the dataset's per-source
    /// scope sets.
    fn shared_domains(ds: &Dataset, a: usize, b: usize) -> Vec<u32> {
        let sa = ds.scope(SourceId(a as u32));
        let sb = ds.scope(SourceId(b as u32));
        let (small, large) = if sa.len() <= sb.len() {
            (sa, sb)
        } else {
            (sb, sa)
        };
        small
            .iter()
            .filter(|d| large.contains(d))
            .map(|d| d.0)
            .collect()
    }

    /// Upper bound on the pair's edge strength (`max |ln lift|` over
    /// both polarities) from exact side counts and sketched co-provision
    /// bounds. Exact — hence equal to the true strength — while both
    /// samples of each polarity are unsaturated.
    fn strength_bound(&self, ds: &Dataset, a: usize, b: usize, cfg: &ClusterConfig) -> f64 {
        let shared = Self::shared_domains(ds, a, b);
        let mut bound = 0.0f64;
        for polarity in [false, true] {
            let p = polarity as usize;
            let mut total = 0usize;
            let mut na = 0usize;
            let mut nb = 0usize;
            for &d in &shared {
                total += self.domain_totals.get(&d).map_or(0, |t| t[p] as usize);
                na += self.sources[a][p].provisions.get(&d).copied().unwrap_or(0) as usize;
                nb += self.sources[b][p].provisions.get(&d).copied().unwrap_or(0) as usize;
            }
            if total == 0 {
                continue;
            }
            let (lo, hi) = self.n11_bounds(a, b, p, na, nb, total);
            for n11 in [lo, hi] {
                if let Some(l) = lift_from_counts(n11, na, nb, total, cfg) {
                    bound = bound.max(l.ln().abs());
                }
            }
        }
        bound
    }

    /// `[lo, hi]` interval containing the pair's co-provision count for
    /// one polarity. Tight (`lo == hi == n11`) while both samples are
    /// complete; otherwise a KMV estimate widened by `margin` and
    /// clamped to the inclusion-exclusion hard bounds.
    fn n11_bounds(
        &self,
        a: usize,
        b: usize,
        p: usize,
        na: usize,
        nb: usize,
        total: usize,
    ) -> (usize, usize) {
        let sa = &self.sources[a][p];
        let sb = &self.sources[b][p];
        // Every co-provided triple is provided by both sides and lies in
        // the shared scope, so these bounds always hold.
        let hard_lo = (na + nb).saturating_sub(total);
        let hard_hi = na.min(nb);
        if !sa.saturated && !sb.saturated {
            let (small, large) = if sa.sample.len() <= sb.sample.len() {
                (&sa.sample, &sb.sample)
            } else {
                (&sb.sample, &sa.sample)
            };
            let exact = small.iter().filter(|h| large.contains(h)).count();
            return (exact, exact);
        }
        let est = kmv_intersection_estimate(&sa.sample, &sb.sample, self.k);
        let lo = (est * (1.0 - self.margin)).floor().max(0.0) as usize;
        let hi = (est * (1.0 + self.margin)).ceil() as usize;
        (lo.clamp(hard_lo, hard_hi), hi.clamp(hard_lo, hard_hi))
    }

    /// Exact counts of a newly admitted pair, rebuilt from the labelled
    /// triples of its shared-scope domains — the same counts
    /// [`LiftGraph::contribute`] would have accumulated had the pair
    /// been tracked from the start.
    fn rescan_pair(&self, ds: &Dataset, gold: &GoldLabels, a: usize, b: usize) -> PairState {
        let mut state = PairState::default();
        for d in Self::shared_domains(ds, a, b) {
            let Some(triples) = self.domain_labelled.get(&d) else {
                continue;
            };
            for &t in triples {
                let truth = gold.get(t).expect("indexed triple is labelled");
                let prov = ds.providers(t);
                let c = state.side_mut(truth);
                c.total += 1;
                let pa = prov.get(a);
                let pb = prov.get(b);
                if pa {
                    c.na += 1;
                }
                if pb {
                    c.nb += 1;
                }
                if pa && pb {
                    c.n11 += 1;
                }
            }
        }
        state
    }
}

/// Deterministic 64-bit mix of a triple id (splitmix64 finalizer — a
/// bijection, so distinct triples never collide and bottom-k samples
/// across sources stay mutually comparable).
#[inline]
fn triple_hash(t: TripleId) -> u64 {
    let mut z = (t.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// K-minimum-values estimate of `|A ∩ B|` from two bottom-k hash
/// samples: distinct-union size `(k - 1) / τ` (τ = normalized k-th
/// smallest of the union) scaled by the match fraction among the
/// union's bottom k. Falls back to the raw match count when the union
/// holds fewer than `k` values.
fn kmv_intersection_estimate(a: &BTreeSet<u64>, b: &BTreeSet<u64>, k: usize) -> f64 {
    let mut union: Vec<u64> = a.union(b).copied().take(k + 1).collect();
    union.truncate(k);
    if union.is_empty() {
        return 0.0;
    }
    let matches = union
        .iter()
        .filter(|h| a.contains(h) && b.contains(h))
        .count();
    if union.len() < k {
        return matches as f64;
    }
    let tau = (union[k - 1] as f64) / (u64::MAX as f64);
    if tau <= 0.0 {
        return matches as f64;
    }
    let distinct = (k as f64 - 1.0) / tau;
    (matches as f64 / k as f64) * distinct
}

#[cfg(test)]
#[allow(clippy::manual_is_multiple_of)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    /// 6 sources over 60 triples: {0,1} are exact replicas, {2,3} share
    /// false triples, 4 and 5 are independent.
    fn correlated_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (0..6).map(|i| b.source(format!("S{i}"))).collect();
        for i in 0..60 {
            let truth = i % 2 == 0;
            let t = b.triple(format!("e{i}"), "p", "v");
            b.label(t, truth);
            // Deterministic pseudo-random pattern.
            let h = i * 2654435761usize % 97;
            // Guarantee every triple has at least one provider.
            b.observe(sources[if truth { 5 } else { 4 }], t);
            if truth {
                if h % 3 != 0 {
                    b.observe(sources[0], t);
                    b.observe(sources[1], t); // replica of S0
                }
                if h % 5 < 2 {
                    b.observe(sources[2], t);
                }
                if h % 7 < 3 {
                    b.observe(sources[3], t);
                }
                if h % 2 == 0 {
                    b.observe(sources[4], t);
                }
                if h % 11 < 5 {
                    b.observe(sources[5], t);
                }
            } else {
                if h % 4 == 0 {
                    b.observe(sources[0], t);
                    b.observe(sources[1], t);
                }
                if h % 3 == 0 {
                    // S2 and S3 make the same mistakes.
                    b.observe(sources[2], t);
                    b.observe(sources[3], t);
                }
                if h % 6 == 0 {
                    b.observe(sources[4], t);
                }
                if h % 5 == 0 {
                    b.observe(sources[5], t);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union_capped(0, 1, 5));
        assert!(uf.union_capped(1, 2, 5));
        assert!(!uf.union_capped(0, 2, 5), "already same set");
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        assert_eq!(uf.set_size(1), 3);
    }

    #[test]
    fn union_find_respects_cap() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union_capped(0, 1, 2));
        assert!(uf.union_capped(2, 3, 2));
        // Merging the two pairs would make 4 > cap 2.
        assert!(!uf.union_capped(0, 2, 2));
        assert_ne!(uf.find(0), uf.find(2));
    }

    #[test]
    fn union_find_assignment_is_dense() {
        let mut uf = UnionFind::new(4);
        uf.union_capped(1, 3, 4);
        let a = uf.into_assignment();
        assert_eq!(a.len(), 4);
        assert_eq!(a[1], a[3]);
        assert_ne!(a[0], a[1]);
        let max = *a.iter().max().unwrap();
        assert!(max < 3, "ids densely numbered: {a:?}");
    }

    #[test]
    fn replicas_have_high_true_lift() {
        let ds = correlated_dataset();
        let pairs =
            pairwise_correlations(&ds, ds.gold().unwrap(), &ClusterConfig::default()).unwrap();
        let p01 = pairs
            .iter()
            .find(|p| p.a == SourceId(0) && p.b == SourceId(1))
            .unwrap();
        assert!(
            p01.lift_true.unwrap() > 1.4,
            "replica lift {:?}",
            p01.lift_true
        );
        assert!(p01.lift_false.unwrap() > 1.4);
    }

    #[test]
    fn false_copiers_have_high_false_lift_only() {
        let ds = correlated_dataset();
        let pairs =
            pairwise_correlations(&ds, ds.gold().unwrap(), &ClusterConfig::default()).unwrap();
        let p23 = pairs
            .iter()
            .find(|p| p.a == SourceId(2) && p.b == SourceId(3))
            .unwrap();
        assert!(p23.lift_false.unwrap() > 1.5, "{:?}", p23.lift_false);
    }

    #[test]
    fn clustering_groups_correlated_sources() {
        let ds = correlated_dataset();
        let clustering =
            cluster_sources(&ds, ds.gold().unwrap(), &ClusterConfig::default()).unwrap();
        assert_eq!(
            clustering.cluster_of(SourceId(0)),
            clustering.cluster_of(SourceId(1)),
            "replicas cluster together: {clustering:?}"
        );
        assert_eq!(
            clustering.cluster_of(SourceId(2)),
            clustering.cluster_of(SourceId(3)),
            "false-copiers cluster together"
        );
        assert_ne!(
            clustering.cluster_of(SourceId(0)),
            clustering.cluster_of(SourceId(2))
        );
    }

    #[test]
    fn cluster_size_cap_is_respected() {
        let ds = correlated_dataset();
        let cfg = ClusterConfig {
            max_cluster_size: 1,
            ..Default::default()
        };
        let clustering = cluster_sources(&ds, ds.gold().unwrap(), &cfg).unwrap();
        assert_eq!(clustering.len(), ds.n_sources());
        assert!(clustering.non_trivial().next().is_none());
    }

    #[test]
    fn clique_sizes_reports_non_trivial_descending() {
        let c = Clustering::from_assignment(vec![0, 0, 0, 1, 1, 2, 3]);
        assert_eq!(c.clique_sizes(), vec![3, 2]);
    }

    #[test]
    fn singleton_and_single_cluster_constructors() {
        let s = Clustering::singletons(3);
        assert_eq!(s.len(), 3);
        let one = Clustering::single_cluster(3);
        assert_eq!(one.len(), 1);
        assert_eq!(one.clusters()[0].len(), 3);
    }

    #[test]
    fn strength_uses_both_polarities() {
        let p = PairCorrelation {
            a: SourceId(0),
            b: SourceId(1),
            lift_true: Some(1.0),
            lift_false: Some(4.0),
        };
        assert!((p.strength() - 4.0f64.ln()).abs() < 1e-12);
        // Negative correlation counts too.
        let p = PairCorrelation {
            a: SourceId(0),
            b: SourceId(1),
            lift_true: Some(0.25),
            lift_false: None,
        };
        assert!((p.strength() - 4.0f64.ln()).abs() < 1e-12);
        let p = PairCorrelation {
            a: SourceId(0),
            b: SourceId(1),
            lift_true: None,
            lift_false: None,
        };
        assert_eq!(p.strength(), 0.0);
    }

    #[test]
    fn min_support_blocks_thin_pairs() {
        let mut b = DatasetBuilder::new();
        let s0 = b.source("A");
        let s1 = b.source("B");
        let t = b.triple("x", "p", "1");
        b.observe(s0, t);
        b.observe(s1, t);
        b.label(t, true);
        let t2 = b.triple("y", "p", "2");
        b.observe(s0, t2);
        b.label(t2, false);
        let ds = b.build().unwrap();
        let cfg = ClusterConfig {
            min_support: 3,
            ..Default::default()
        };
        let pairs = pairwise_correlations(&ds, ds.gold().unwrap(), &cfg).unwrap();
        assert_eq!(pairs[0].lift_true, None);
        assert_eq!(pairs[0].lift_false, None);
        // And clustering therefore keeps them apart.
        let c = cluster_sources(&ds, ds.gold().unwrap(), &cfg).unwrap();
        assert_ne!(c.cluster_of(s0), c.cluster_of(s1));
    }

    /// Compare the sparse graph's emission against the dense batch
    /// reference: every tracked pair must be bitwise equal, and every
    /// untracked pair must be one the batch also gives zero strength
    /// (no shared scope) — or, when `allow_pruned`, one below the
    /// clustering threshold (sketch admission declined it).
    fn assert_matches_batch(
        batch: &[PairCorrelation],
        graph: &LiftGraph,
        cfg: &ClusterConfig,
        allow_pruned: bool,
    ) {
        let inc = graph.pair_correlations();
        assert!(inc.len() <= batch.len());
        let by_pair: std::collections::HashMap<(SourceId, SourceId), &PairCorrelation> =
            inc.iter().map(|p| ((p.a, p.b), p)).collect();
        for b in batch {
            match by_pair.get(&(b.a, b.b)) {
                Some(i) => {
                    assert_eq!(
                        b.lift_true.map(f64::to_bits),
                        i.lift_true.map(f64::to_bits),
                        "true lift {}-{}",
                        b.a,
                        b.b
                    );
                    assert_eq!(
                        b.lift_false.map(f64::to_bits),
                        i.lift_false.map(f64::to_bits),
                        "false lift {}-{}",
                        b.a,
                        b.b
                    );
                }
                None if allow_pruned => assert!(
                    b.strength() < cfg.ln_threshold,
                    "pruned pair {}-{} has above-threshold strength {}",
                    b.a,
                    b.b,
                    b.strength()
                ),
                None => assert_eq!(
                    (b.lift_true, b.lift_false),
                    (None, None),
                    "untracked pair {}-{} has batch evidence",
                    b.a,
                    b.b
                ),
            }
        }
    }

    #[test]
    fn lift_graph_build_matches_batch_computation() {
        let ds = correlated_dataset();
        let cfg = ClusterConfig::default();
        let gold = ds.gold().unwrap();
        let batch = pairwise_correlations(&ds, gold, &cfg).unwrap();
        let graph = LiftGraph::build(&ds, gold, &cfg);
        assert_matches_batch(&batch, &graph, &cfg, false);
        // All six sources share one domain, so the sketch-off graph
        // tracks the full pair universe here.
        assert_eq!(graph.stats().pairs_exact, batch.len());
        assert_eq!(
            graph.clustering(),
            cluster_sources(&ds, gold, &cfg).unwrap()
        );
    }

    #[test]
    fn sketch_admission_prunes_only_sub_threshold_pairs() {
        let ds = correlated_dataset();
        let cfg = ClusterConfig {
            sketch: SketchParams::on(),
            ..Default::default()
        };
        let exact_cfg = ClusterConfig::default();
        let gold = ds.gold().unwrap();
        let batch = pairwise_correlations(&ds, gold, &exact_cfg).unwrap();
        let graph = LiftGraph::build(&ds, gold, &cfg);
        assert_matches_batch(&batch, &graph, &cfg, true);
        // Unsaturated samples (60 triples < sample_size per polarity)
        // make admission decisions exact: tracked pairs are exactly the
        // above-threshold ones.
        let above = batch
            .iter()
            .filter(|p| p.strength() >= cfg.ln_threshold)
            .count();
        let stats = graph.stats();
        assert_eq!(stats.pairs_exact, above);
        assert_eq!(stats.pairs_sketch_pruned, (batch.len() - above) as u64);
        assert_eq!(
            graph.clustering(),
            cluster_sources(&ds, gold, &exact_cfg).unwrap()
        );
    }

    #[test]
    fn saturated_sketch_still_tracks_admitted_pairs_exactly() {
        let ds = correlated_dataset();
        let cfg = ClusterConfig {
            sketch: SketchParams {
                enabled: true,
                sample_size: 4, // far below the ~30 provisions per side
                margin: 1.0,
            },
            ..Default::default()
        };
        let gold = ds.gold().unwrap();
        let graph = LiftGraph::build(&ds, gold, &cfg);
        // Estimates may admit a different pair set, but whatever was
        // admitted carries exact (bitwise) counts.
        let batch = pairwise_correlations(&ds, gold, &ClusterConfig::default()).unwrap();
        let by_pair: std::collections::HashMap<(SourceId, SourceId), &PairCorrelation> =
            batch.iter().map(|p| ((p.a, p.b), p)).collect();
        let inc = graph.pair_correlations();
        assert!(!inc.is_empty(), "replica pair should still be admitted");
        for i in &inc {
            let b = by_pair[&(i.a, i.b)];
            assert_eq!(b.lift_true.map(f64::to_bits), i.lift_true.map(f64::to_bits));
            assert_eq!(
                b.lift_false.map(f64::to_bits),
                i.lift_false.map(f64::to_bits)
            );
        }
    }

    /// Drive one randomized churn case — label flips, fresh labels, and
    /// claims with and without scope expansion — checking after every
    /// delta that the maintained graph stays bitwise equal to the
    /// from-scratch references.
    fn churn_case(g: &mut crate::testkit::Gen, sketch: SketchParams) {
        use crate::dataset::Domain;
        let n_sources = g.usize_in(4, 8);
        let n_triples = g.usize_in(12, 30);
        let n_domains = g.usize_in(1, 3);
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (0..n_sources).map(|i| b.source(format!("S{i}"))).collect();
        let mut triples = Vec::new();
        for i in 0..n_triples {
            let t = b.triple(format!("e{i}"), "p", "v");
            b.set_domain(t, Domain((i % n_domains) as u32));
            // At least one provider, a sprinkling of others.
            b.observe(sources[g.usize_in(0, n_sources)], t);
            for &s in &sources {
                if g.bool(0.3) {
                    b.observe(s, t);
                }
            }
            if g.bool(0.6) {
                b.label(t, g.bool(0.5));
            }
            triples.push(t);
        }
        // Ensure at least one label so `pairwise_correlations` runs.
        b.label(triples[0], true);
        let mut ds = b.build().unwrap();
        let cfg = ClusterConfig {
            min_support: g.usize_in(1, 4),
            max_cluster_size: g.usize_in(2, 5),
            sketch,
            ..Default::default()
        };
        let exact_cfg = ClusterConfig {
            sketch: SketchParams::default(),
            ..cfg
        };
        let mut graph = LiftGraph::build(&ds, ds.gold().unwrap(), &cfg);
        for _ in 0..20 {
            let t = triples[g.usize_in(0, triples.len())];
            if g.bool(0.5) {
                // Label or flip.
                let truth = g.bool(0.5);
                let prev = ds.set_label(t, truth).unwrap();
                graph.relabel(&ds, t, prev, truth);
            } else {
                // Claim, possibly expanding scope.
                let s = sources[g.usize_in(0, n_sources)];
                let outcome = ds.observe(s, t).unwrap();
                if !outcome.newly_provided {
                    continue;
                }
                let gold = ds.gold().unwrap().clone();
                if outcome.scope_expanded {
                    let d = ds.domain(t);
                    let in_domain: Vec<TripleId> = triples
                        .iter()
                        .copied()
                        .filter(|&x| ds.domain(x) == d)
                        .collect();
                    for x in in_domain {
                        if let Some(truth) = gold.get(x) {
                            graph.source_entered_scope(&ds, s, x, truth);
                        }
                    }
                } else if let Some(truth) = gold.get(t) {
                    graph.source_provided(&ds, s, t, truth);
                }
            }
            graph.admit_candidates(&ds);
            let batch = pairwise_correlations(&ds, ds.gold().unwrap(), &exact_cfg).unwrap();
            assert_matches_batch(&batch, &graph, &cfg, sketch.enabled);
            assert_eq!(
                graph.clustering(),
                cluster_sources(&ds, ds.gold().unwrap(), &exact_cfg).unwrap()
            );
        }
    }

    /// The incremental clustering trust anchor at the unit level: under
    /// random churn the maintained pair counts stay bitwise equal to a
    /// from-scratch [`pairwise_correlations`] pass, and the derived
    /// clustering equals [`cluster_sources`].
    #[test]
    fn lift_graph_stays_equal_under_random_churn() {
        use crate::testkit::run_cases;
        run_cases("lift_graph_churn", 10, |g| {
            churn_case(g, SketchParams::default());
        });
    }

    /// Same churn workload with the sketch tier admitting pairs: small
    /// worlds keep every sample unsaturated, so pruning decisions are
    /// exact and the clustering must stay bitwise equal to the exact
    /// configuration, with every pruned pair genuinely sub-threshold.
    #[test]
    fn sketch_admission_stays_equal_under_random_churn() {
        use crate::testkit::run_cases;
        run_cases("lift_graph_sketch_churn", 10, |g| {
            churn_case(g, SketchParams::on());
        });
    }

    #[test]
    fn missing_gold_rejected() {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        let t = b.triple("x", "p", "1");
        b.observe(s, t);
        let ds = b.build().unwrap();
        let empty = GoldLabels::new(1);
        assert!(pairwise_correlations(&ds, &empty, &ClusterConfig::default()).is_err());
    }
}
