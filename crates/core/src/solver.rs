//! The [`CorrelationSolver`] abstraction: one interface over every
//! per-cluster likelihood solver.
//!
//! The paper describes four ways to turn an observation pattern into the
//! likelihood pair `(Pr(O_t | t), Pr(O_t | ¬t))` over one cluster of
//! sources: the independent product of Theorem 3.1, the exact
//! inclusion–exclusion of Theorem 4.2, the linear aggressive approximation
//! of Definition 4.5, and the level-λ elastic approximation of
//! Algorithm 1. They differ in cost and in which joint parameters they
//! consume, but they answer the same question — so [`crate::fuser::Fuser`]
//! talks to all of them through this trait, and future backends
//! (sketch-based approximate joints, sharded solvers) slot in the same
//! way.
//!
//! Each implementation keeps its own conventions for degenerate values
//! (e.g. the aggressive solver deliberately lets `mu` go negative to
//! signal Proposition 4.8 breakdown), which is why `mu` is a required
//! method rather than a blanket `likelihoods`-based default.

use std::fmt;

use crate::aggressive::AggressiveSolver;
use crate::elastic::ElasticSolver;
use crate::error::Result;
use crate::exact::{ExactSolver, Likelihoods};
use crate::independent::PrecRecModel;
use crate::joint::{JointQuality, SourceSet};

/// A per-cluster likelihood solver.
///
/// `providers ⊆ active ⊆` the cluster the solver was built for; both sets
/// use cluster-local bit numbering. `joint` supplies the joint quality
/// parameters of that cluster — solvers that precompute everything at
/// construction time (aggressive, PrecRec adapter) simply ignore it.
pub trait CorrelationSolver: fmt::Debug + Send + Sync {
    /// Short name for reports and errors.
    fn name(&self) -> &'static str;

    /// The likelihood pair `(Pr(O_t | t), Pr(O_t | ¬t))`.
    fn likelihoods(
        &self,
        joint: &dyn JointQuality,
        providers: SourceSet,
        active: SourceSet,
    ) -> Result<Likelihoods>;

    /// The likelihood ratio `mu`, with this solver's degenerate-value
    /// conventions applied.
    fn mu(&self, joint: &dyn JointQuality, providers: SourceSet, active: SourceSet) -> Result<f64>;
}

impl CorrelationSolver for ExactSolver {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn likelihoods(
        &self,
        joint: &dyn JointQuality,
        providers: SourceSet,
        active: SourceSet,
    ) -> Result<Likelihoods> {
        ExactSolver::likelihoods(self, joint, providers, active)
    }

    fn mu(&self, joint: &dyn JointQuality, providers: SourceSet, active: SourceSet) -> Result<f64> {
        ExactSolver::mu(self, joint, providers, active)
    }
}

impl CorrelationSolver for AggressiveSolver {
    fn name(&self) -> &'static str {
        "aggressive"
    }

    fn likelihoods(
        &self,
        _joint: &dyn JointQuality,
        providers: SourceSet,
        active: SourceSet,
    ) -> Result<Likelihoods> {
        Ok(AggressiveSolver::likelihoods(self, providers, active))
    }

    fn mu(
        &self,
        _joint: &dyn JointQuality,
        providers: SourceSet,
        active: SourceSet,
    ) -> Result<f64> {
        Ok(AggressiveSolver::mu(self, providers, active))
    }
}

impl CorrelationSolver for ElasticSolver {
    fn name(&self) -> &'static str {
        "elastic"
    }

    fn likelihoods(
        &self,
        joint: &dyn JointQuality,
        providers: SourceSet,
        active: SourceSet,
    ) -> Result<Likelihoods> {
        Ok(ElasticSolver::likelihoods(self, joint, providers, active))
    }

    fn mu(&self, joint: &dyn JointQuality, providers: SourceSet, active: SourceSet) -> Result<f64> {
        Ok(ElasticSolver::mu(self, joint, providers, active))
    }
}

/// Adapter dispatching **PrecRec** (Theorem 3.1) through the
/// [`CorrelationSolver`] interface: the independent product over the
/// cluster members, accumulated in log space exactly like
/// [`PrecRecModel`] so the two paths agree to floating-point rounding.
#[derive(Debug, Clone)]
pub struct PrecRecSolver {
    /// Per member: `(ln r, ln(1-r), ln q, ln(1-q))` with the model's
    /// clamped rates.
    log_rates: Vec<[f64; 4]>,
}

impl PrecRecSolver {
    /// Build for a cluster whose members sit at the given global
    /// `positions` of a fitted [`PrecRecModel`], reusing that model's
    /// clamped and Theorem-3.5-derived rates.
    pub fn from_model(model: &PrecRecModel, positions: &[usize]) -> Self {
        let log_rates = positions
            .iter()
            .map(|&s| {
                let (r, q) = model.effective_rates(s);
                [r.ln(), (1.0 - r).ln(), q.ln(), (1.0 - q).ln()]
            })
            .collect();
        PrecRecSolver { log_rates }
    }

    /// Build from explicit per-member `(recall, fpr)` rates. Delegates to
    /// [`PrecRecModel::from_rates`] so validation and clamping policy live
    /// in exactly one place (the prior is irrelevant to the solver).
    pub fn from_rates(recalls: &[f64], fprs: &[f64]) -> Result<Self> {
        let model = PrecRecModel::from_rates(recalls, fprs, 0.5)?;
        let positions: Vec<usize> = (0..recalls.len()).collect();
        Ok(Self::from_model(&model, &positions))
    }

    /// `(ln R, ln Q)` for the given pattern.
    fn log_likelihoods(&self, providers: SourceSet, active: SourceSet) -> (f64, f64) {
        debug_assert!(providers.is_subset_of(active));
        let mut log_r = 0.0;
        let mut log_q = 0.0;
        for k in active.iter() {
            let [lr, l1r, lq, l1q] = self.log_rates[k];
            if providers.contains(k) {
                log_r += lr;
                log_q += lq;
            } else {
                log_r += l1r;
                log_q += l1q;
            }
        }
        (log_r, log_q)
    }
}

impl CorrelationSolver for PrecRecSolver {
    fn name(&self) -> &'static str {
        "precrec"
    }

    fn likelihoods(
        &self,
        _joint: &dyn JointQuality,
        providers: SourceSet,
        active: SourceSet,
    ) -> Result<Likelihoods> {
        let (log_r, log_q) = self.log_likelihoods(providers, active);
        Ok(Likelihoods {
            r: log_r.exp(),
            q: log_q.exp(),
        })
    }

    fn mu(
        &self,
        _joint: &dyn JointQuality,
        providers: SourceSet,
        active: SourceSet,
    ) -> Result<f64> {
        let (log_r, log_q) = self.log_likelihoods(providers, active);
        // Rates are clamped into the open unit interval, so the ratio is
        // always finite and positive; exp of the difference avoids the
        // underflow a 64-member product could hit in linear space.
        Ok((log_r - log_q).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::IndependentJoint;

    fn dynify(j: &IndependentJoint) -> &dyn JointQuality {
        j
    }

    #[test]
    fn exact_trait_object_matches_inherent() {
        let joint = IndependentJoint::new(vec![0.7, 0.5, 0.3], vec![0.2, 0.1, 0.25]).unwrap();
        let solver = ExactSolver::new();
        let dyn_solver: &dyn CorrelationSolver = &solver;
        let active = SourceSet::full(3);
        for mask in 0..8u64 {
            let providers = SourceSet(mask);
            let a = solver.mu(&joint, providers, active).unwrap();
            let b = dyn_solver.mu(dynify(&joint), providers, active).unwrap();
            assert_eq!(a, b, "mask {mask:b}");
        }
    }

    #[test]
    fn aggressive_and_elastic_trait_objects_match_inherent() {
        let joint = IndependentJoint::new(vec![0.7, 0.5], vec![0.2, 0.1]).unwrap();
        let active = SourceSet::full(2);
        let aggr = AggressiveSolver::new(&joint, active);
        let elastic = ElasticSolver::new(&joint, active, 1);
        let dyn_aggr: &dyn CorrelationSolver = &aggr;
        let dyn_elastic: &dyn CorrelationSolver = &elastic;
        for mask in 0..4u64 {
            let p = SourceSet(mask);
            assert_eq!(aggr.mu(p, active), dyn_aggr.mu(&joint, p, active).unwrap());
            assert_eq!(
                elastic.mu(&joint, p, active),
                dyn_elastic.mu(&joint, p, active).unwrap()
            );
        }
    }

    #[test]
    fn precrec_solver_is_the_independent_product() {
        let recalls = [0.8, 0.6, 0.4];
        let fprs = [0.1, 0.2, 0.3];
        let solver = PrecRecSolver::from_rates(&recalls, &fprs).unwrap();
        let joint = IndependentJoint::new(recalls.to_vec(), fprs.to_vec()).unwrap();
        let active = SourceSet::full(3);
        for mask in 0..8u64 {
            let providers = SourceSet(mask);
            let mut expected = 1.0;
            for k in 0..3 {
                expected *= if providers.contains(k) {
                    recalls[k] / fprs[k]
                } else {
                    (1.0 - recalls[k]) / (1.0 - fprs[k])
                };
            }
            let mu = solver.mu(&joint, providers, active).unwrap();
            assert!(
                (mu - expected).abs() < 1e-9 * expected.max(1.0),
                "mask {mask:b}: {mu} vs {expected}"
            );
            let lk = solver.likelihoods(&joint, providers, active).unwrap();
            assert!((lk.r / lk.q - mu).abs() < 1e-9 * mu.max(1.0));
        }
    }

    #[test]
    fn names_are_distinct() {
        let joint = IndependentJoint::new(vec![0.5], vec![0.1]).unwrap();
        let solvers: Vec<Box<dyn CorrelationSolver>> = vec![
            Box::new(ExactSolver::new()),
            Box::new(AggressiveSolver::new(&joint, SourceSet::full(1))),
            Box::new(ElasticSolver::new(&joint, SourceSet::full(1), 0)),
            Box::new(PrecRecSolver::from_rates(&[0.5], &[0.1]).unwrap()),
        ];
        let names: std::collections::HashSet<_> = solvers.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
