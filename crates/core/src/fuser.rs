//! High-level fusion API: configure a method, fit on labelled data, score
//! every triple.
//!
//! [`Fuser`] packages the paper's full pipeline:
//!
//! 1. estimate per-source precision/recall from training labels (§3.2);
//! 2. partition sources into correlation clusters (§5) — by default all
//!    sources form one cluster when few enough, otherwise pairwise-lift
//!    clustering with a size cap;
//! 3. per triple, combine the independent contributions of singleton
//!    sources with the correlated likelihoods of each cluster
//!    (clusters are independent of each other by construction, so their
//!    likelihood ratios multiply);
//! 4. return `Pr(t | O_t)` per Theorem 3.1 / 4.2.

use crate::bits::BitSet;
use crate::cluster::{cluster_sources, ClusterConfig, Clustering};
use crate::dataset::{Dataset, GoldLabels, SourceId};
use crate::elastic::ElasticSolver;
use crate::engine::ScoringEngine;
use crate::error::{FusionError, Result};
use crate::exact::ExactSolver;
use crate::independent::PrecRecModel;
use crate::joint::{EmpiricalJoint, JointQuality, NoJoint, SourceSet};
use crate::prob::posterior_from_log_mu;
use crate::quality::{QualityEstimator, SourceQuality};
use crate::solver::{CorrelationSolver, PrecRecSolver};
use crate::triple::TripleId;

use crate::aggressive::AggressiveSolver;

/// Which fusion model to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// PrecRec (§3): independence assumption, Theorem 3.1.
    PrecRec,
    /// PrecRecCorr with the exact inclusion–exclusion solution (Thm 4.2).
    Exact,
    /// PrecRecCorr with the linear aggressive approximation (Def 4.5).
    Aggressive,
    /// PrecRecCorr with the elastic approximation at the given level
    /// (Algorithm 1).
    Elastic(usize),
}

impl Method {
    /// Does this method consume correlation (joint) parameters?
    pub fn uses_correlations(self) -> bool {
        !matches!(self, Method::PrecRec)
    }

    /// Short display name matching the paper's terminology.
    pub fn name(self) -> String {
        match self {
            Method::PrecRec => "PrecRec".to_string(),
            Method::Exact => "PrecRecCorr".to_string(),
            Method::Aggressive => "PrecRecCorr-Aggr".to_string(),
            Method::Elastic(l) => format!("PrecRecCorr-Lvl{l}"),
        }
    }

    /// Build this method's [`CorrelationSolver`] for one cluster — the
    /// single dispatch point between `Method` and the solver layer.
    ///
    /// `joint` and `cluster` describe the cluster (cluster-local
    /// numbering); `precrec` and `positions` let the PrecRec adapter reuse
    /// the already-fitted per-source rates; `max_exact_complement` caps
    /// the exact solver's inclusion–exclusion width.
    pub fn build_solver(
        self,
        joint: &dyn JointQuality,
        cluster: SourceSet,
        precrec: &PrecRecModel,
        positions: &[usize],
        max_exact_complement: usize,
    ) -> Box<dyn CorrelationSolver> {
        match self {
            Method::PrecRec => Box::new(PrecRecSolver::from_model(precrec, positions)),
            Method::Exact => Box::new(ExactSolver::with_max_complement(max_exact_complement)),
            Method::Aggressive => Box::new(AggressiveSolver::new(joint, cluster)),
            Method::Elastic(level) => Box::new(ElasticSolver::new(joint, cluster, level)),
        }
    }
}

/// How to group sources before applying a correlated method.
#[derive(Debug, Clone)]
pub enum ClusterStrategy {
    /// One cluster when the source count fits `max_cluster_size`, else
    /// correlation-based clustering. This mirrors the paper: REVERB and
    /// RESTAURANT are fused jointly; BOOK is clustered first.
    Auto,
    /// Force a single cluster over all sources (≤ 64).
    SingleCluster,
    /// Treat every source as independent (degrades to PrecRec).
    Singletons,
    /// Use a caller-provided clustering.
    Explicit(Clustering),
}

/// Configuration for [`Fuser::fit`].
#[derive(Debug, Clone)]
pub struct FuserConfig {
    /// Model to run.
    pub method: Method,
    /// Prior `Pr(t) = alpha`; `None` uses the training set's true fraction.
    pub alpha: Option<f64>,
    /// Clustering strategy for correlated methods.
    pub strategy: ClusterStrategy,
    /// Knobs for correlation clustering (thresholds, size cap).
    pub cluster: ClusterConfig,
    /// Cap on `|S_t̄|` for the exact solver.
    pub max_exact_complement: usize,
    /// Bound on live subset-memo entries per cluster joint (see
    /// [`EmpiricalJoint::set_memo_capacity`]); `None` = unbounded.
    /// Evicted subsets rescan on next touch, so scores never change —
    /// this is a memory ceiling for wide/long-running deployments.
    pub memo_capacity: Option<usize>,
    /// Collect per-stage span timings in the layers above (streaming
    /// sessions, serve shards). The core fitter itself never reads the
    /// clock; this flag only travels with the config so instrumented
    /// layers share one toggle. `false` (the default) makes every span
    /// a no-op, preserving bitwise-identical behavior.
    pub spans: bool,
}

impl FuserConfig {
    /// Config for a given method with paper defaults (`alpha = 0.5`).
    pub fn new(method: Method) -> Self {
        FuserConfig {
            method,
            alpha: Some(0.5),
            strategy: ClusterStrategy::Auto,
            cluster: ClusterConfig::default(),
            max_exact_complement: crate::exact::DEFAULT_MAX_COMPLEMENT,
            memo_capacity: None,
            spans: false,
        }
    }

    /// Builder-style prior override.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Builder-style strategy override.
    pub fn with_strategy(mut self, strategy: ClusterStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style subset-memo bound (entries per cluster joint).
    pub fn with_memo_capacity(mut self, max_entries: usize) -> Self {
        self.memo_capacity = Some(max_entries);
        self
    }

    /// Builder-style span-timing toggle (see the `spans` field).
    pub fn with_spans(mut self, spans: bool) -> Self {
        self.spans = spans;
        self
    }
}

/// Per-cluster solving machinery: the cluster's joint parameters plus the
/// method's solver, behind the [`CorrelationSolver`] trait.
#[derive(Debug)]
struct ClusterUnit {
    /// Positions (global source indices) of members; bit `k` of any
    /// projected mask refers to `positions[k]`.
    positions: Vec<usize>,
    /// Joint parameters — `None` for methods whose solver never reads
    /// them (PrecRec), saving the estimation pass and the memo tables.
    joint: Option<EmpiricalJoint>,
    solver: Box<dyn CorrelationSolver>,
}

impl ClusterUnit {
    fn mu(&self, providers: SourceSet, active: SourceSet) -> Result<f64> {
        match &self.joint {
            Some(joint) => self.solver.mu(joint, providers, active),
            None => self.solver.mu(&NoJoint, providers, active),
        }
    }
}

/// What one [`Fuser::rebuild_cluster_solvers`] pass did: how many
/// cluster solvers had to be reconstructed vs. how many were reused
/// because their joint parameters were bitwise unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverRebuild {
    /// Solvers reconstructed (dirty joint, or no joint to compare).
    pub rebuilt: usize,
    /// Solvers kept as-is (clean joint).
    pub reused: usize,
}

/// What one [`Fuser::reconcile_clustering`] call did: how many cluster
/// units survived the re-clustering with identical membership vs. how
/// many had to be refitted from the labelled rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterReconcile {
    /// Units reused (membership unchanged; rows were maintained
    /// incrementally all along).
    pub reused: usize,
    /// Units built fresh (membership changed).
    pub rebuilt: usize,
}

/// A fitted fusion model. Create with [`Fuser::fit`], then call
/// [`Fuser::score_all`] / [`Fuser::score_triple`].
#[derive(Debug)]
pub struct Fuser {
    method: Method,
    alpha: f64,
    qualities: Vec<SourceQuality>,
    precrec: PrecRecModel,
    clustering: Clustering,
    clusters: Vec<ClusterUnit>,
    /// Sources handled by the independent model (singleton clusters).
    independent_mask: BitSet,
    /// Kept from the fit config so solvers can be rebuilt after deltas.
    max_exact_complement: usize,
    /// Kept from the fit config so joints rebuilt on reconcile inherit
    /// the same subset-memo bound.
    memo_capacity: Option<usize>,
}

impl Fuser {
    /// Fit on `ds` using the labels in `training` (typically the gold
    /// standard, per the paper's protocol).
    pub fn fit(config: &FuserConfig, ds: &Dataset, training: &GoldLabels) -> Result<Fuser> {
        let alpha = match config.alpha {
            Some(a) => crate::prob::check_alpha(a)?,
            None => training.empirical_alpha()?,
        };
        let qualities = QualityEstimator::new().estimate(ds, training)?;
        let precrec = PrecRecModel::from_quality(&qualities, alpha)?;

        let n = ds.n_sources();
        let clustering = match &config.strategy {
            ClusterStrategy::SingleCluster => {
                if n > 64 {
                    if config.method.uses_correlations() {
                        return Err(FusionError::TooManySources {
                            requested: n,
                            max: 64,
                        });
                    }
                    // PrecRec is indifferent to clustering; fall back to
                    // the singleton path instead of failing on width.
                    Clustering::singletons(n)
                } else {
                    Clustering::single_cluster(n)
                }
            }
            ClusterStrategy::Singletons => Clustering::singletons(n),
            ClusterStrategy::Explicit(c) => c.clone(),
            ClusterStrategy::Auto => {
                if !config.method.uses_correlations() {
                    // PrecRec treats every source independently, which the
                    // log-space singleton path handles at any source count.
                    Clustering::singletons(n)
                } else if n <= config.cluster.max_cluster_size.min(64) {
                    Clustering::single_cluster(n)
                } else {
                    cluster_sources(ds, training, &config.cluster)?
                }
            }
        };

        let mut clusters = Vec::new();
        let mut independent_mask = BitSet::new(n);
        for s in 0..n {
            independent_mask.set(s, true);
        }
        for members in clustering.non_trivial() {
            let positions: Vec<usize> = members.iter().map(|m| m.index()).collect();
            if positions.len() > 64 {
                if config.method.uses_correlations() {
                    // Wider than the bitmask solvers support: a recoverable
                    // error, checked here before `SourceSet::full` would
                    // assert on the width.
                    return Err(FusionError::TooManySources {
                        requested: positions.len(),
                        max: 64,
                    });
                }
                // Independence makes cluster structure irrelevant, so a
                // cluster too wide for the bitmask solvers simply stays on
                // the singleton log-space path (identical scores).
                continue;
            }
            for &p in &positions {
                independent_mask.set(p, false);
            }
            let full = SourceSet::full(positions.len());
            let (joint, solver) = if config.method.uses_correlations() {
                let mut joint = EmpiricalJoint::new(ds, training, members.clone(), alpha)?;
                joint.set_memo_capacity(config.memo_capacity);
                let solver = config.method.build_solver(
                    &joint,
                    full,
                    &precrec,
                    &positions,
                    config.max_exact_complement,
                );
                (Some(joint), solver)
            } else {
                // PrecRec's adapter never reads joint parameters; skip the
                // estimation pass entirely.
                let solver = config.method.build_solver(
                    &NoJoint,
                    full,
                    &precrec,
                    &positions,
                    config.max_exact_complement,
                );
                (None, solver)
            };
            clusters.push(ClusterUnit {
                positions,
                joint,
                solver,
            });
        }

        Ok(Fuser {
            method: config.method,
            alpha,
            qualities,
            precrec,
            clustering,
            clusters,
            independent_mask,
            max_exact_complement: config.max_exact_complement,
            memo_capacity: config.memo_capacity,
        })
    }

    /// Number of correlated (non-singleton) cluster units.
    pub fn n_cluster_units(&self) -> usize {
        self.clusters.len()
    }

    /// Global source indices of cluster unit `i`'s members; bit `k` of any
    /// projected mask refers to `positions[k]`.
    pub fn cluster_unit_positions(&self, i: usize) -> &[usize] {
        &self.clusters[i].positions
    }

    /// Cluster unit `i`'s empirical joint parameters, if the fitted method
    /// consumes them (`None` under PrecRec).
    pub fn cluster_joint(&self, i: usize) -> Option<&EmpiricalJoint> {
        self.clusters[i].joint.as_ref()
    }

    /// Mutable access to cluster unit `i`'s empirical joint — the delta
    /// hook incremental ingestion uses to push/patch labelled rows. After
    /// any row change, call [`Fuser::rebuild_cluster_solvers`] so solvers
    /// that precompute from joint values pick up the new parameters.
    pub fn cluster_joint_mut(&mut self, i: usize) -> Option<&mut EmpiricalJoint> {
        self.clusters[i].joint.as_mut()
    }

    /// Replace the per-source quality model (delta hook).
    ///
    /// Incremental callers maintain the estimator's counts under deltas
    /// and hand back recomputed qualities; this rebuilds the PrecRec model
    /// exactly as [`Fuser::fit`] does and propagates `alpha` into every
    /// cluster joint (which recompute their memoised FPRs in place from
    /// maintained counts — no rescan). Does *not* rebuild solvers — batch
    /// row updates first, then call [`Fuser::rebuild_cluster_solvers`]
    /// once.
    ///
    /// The refreshed model is bitwise equal to a from-scratch fit on the
    /// same accumulated labels:
    ///
    /// ```
    /// use corrfuse_core::fuser::{ClusterStrategy, Fuser, FuserConfig, Method};
    /// use corrfuse_core::quality::QualityEstimator;
    /// use corrfuse_core::{DatasetBuilder, TripleId};
    ///
    /// let mut b = DatasetBuilder::new();
    /// let (s1, t1) = b.observe_named("A", "x", "p", "1");
    /// let s2 = b.source("B");
    /// b.observe(s2, t1);
    /// let t2 = b.triple("y", "p", "2");
    /// b.observe(s1, t2);
    /// let t3 = b.triple("z", "p", "3");
    /// b.observe(s2, t3);
    /// b.label(t1, true);
    /// b.label(t2, false);
    /// b.label(t3, true);
    /// let ds = b.build().unwrap();
    /// let gold = ds.gold().unwrap();
    ///
    /// // Fit on the first two labels only, then stream the third in as
    /// // a row delta + quality refresh instead of a refit.
    /// let config = FuserConfig::new(Method::Exact).with_strategy(ClusterStrategy::SingleCluster);
    /// let keep = [TripleId(0), TripleId(1)].into_iter().collect();
    /// let mut patched = Fuser::fit(&config, &ds, &gold.restricted_to(&keep)).unwrap();
    /// let (prov, scope) = patched.cluster_joint(0).unwrap().project_pattern(&ds, t3);
    /// patched.cluster_joint_mut(0).unwrap().push_row(prov, scope, true);
    /// let qualities = QualityEstimator::new().estimate(&ds, gold).unwrap();
    /// patched.refresh_quality(qualities, 0.5).unwrap();
    /// patched.rebuild_cluster_solvers();
    ///
    /// // Delta-refreshed scores == full-rescan (from-scratch) scores.
    /// let fresh = Fuser::fit(&config, &ds, gold).unwrap();
    /// for t in ds.triples() {
    ///     let a = patched.score_triple(&ds, t).unwrap();
    ///     let b = fresh.score_triple(&ds, t).unwrap();
    ///     assert_eq!(a.to_bits(), b.to_bits());
    /// }
    /// ```
    pub fn refresh_quality(&mut self, qualities: Vec<SourceQuality>, alpha: f64) -> Result<()> {
        let precrec = PrecRecModel::from_quality(&qualities, alpha)?;
        self.precrec = precrec;
        self.qualities = qualities;
        self.alpha = alpha;
        for unit in &mut self.clusters {
            if let Some(joint) = &mut unit.joint {
                joint.set_alpha(alpha)?;
            }
        }
        Ok(())
    }

    /// Reconstruct the cluster units' solvers from the current joint
    /// parameters and PrecRec model, exactly as [`Fuser::fit`] built
    /// them. Required after [`Fuser::refresh_quality`] or any joint row
    /// change, because the aggressive/elastic solvers precompute
    /// per-source correlation summaries at construction time.
    ///
    /// Refits only the clusters whose inputs changed: a unit whose joint
    /// reports itself clean ([`EmpiricalJoint::is_dirty`] — no row or
    /// alpha change since its solver was built) has bitwise-identical
    /// solver inputs, so its solver is reused. Units without a joint
    /// (PrecRec) read the refreshed PrecRec model and always rebuild.
    /// Returns how many solvers were rebuilt vs. reused.
    pub fn rebuild_cluster_solvers(&mut self) -> SolverRebuild {
        let method = self.method;
        let max_exact_complement = self.max_exact_complement;
        let precrec = &self.precrec;
        let mut report = SolverRebuild {
            rebuilt: 0,
            reused: 0,
        };
        for unit in &mut self.clusters {
            let full = SourceSet::full(unit.positions.len());
            unit.solver = match &mut unit.joint {
                Some(joint) => {
                    if !joint.take_dirty() {
                        report.reused += 1;
                        continue;
                    }
                    method.build_solver(joint, full, precrec, &unit.positions, max_exact_complement)
                }
                None => method.build_solver(
                    &NoJoint,
                    full,
                    precrec,
                    &unit.positions,
                    max_exact_complement,
                ),
            };
            report.rebuilt += 1;
        }
        report
    }

    /// Replace the clustering with `new_clustering`, reusing every cluster
    /// unit whose membership is unchanged (its joint rows having been
    /// maintained incrementally) and building fresh joints only for
    /// clusters whose membership actually changed — the cluster-level
    /// delta hook behind incremental re-clustering.
    ///
    /// `labelled` supplies the labelled triples **in the caller's row
    /// order** for freshly built joints (see
    /// [`EmpiricalJoint::with_labelled_rows`]): an incremental caller
    /// passes its label-arrival order so row indices stay consistent
    /// across reused and rebuilt cluster joints. The estimates are
    /// order-independent sums, so scores match a from-scratch fit on the
    /// new clustering bitwise.
    ///
    /// Call [`Fuser::rebuild_cluster_solvers`] afterwards (fresh units
    /// are built dirty), as after any joint row change.
    ///
    /// On `Err` (an over-wide cluster under a correlated method, or a
    /// labelled triple out of the dataset's range) the fuser is left
    /// exactly as it was: all fallible work happens before any fitted
    /// state is touched.
    pub fn reconcile_clustering(
        &mut self,
        ds: &Dataset,
        new_clustering: Clustering,
        labelled: &[(TripleId, bool)],
    ) -> Result<ClusterReconcile> {
        let n = ds.n_sources();
        let mut report = ClusterReconcile {
            reused: 0,
            rebuilt: 0,
        };
        // Index the old units by membership for O(1) reuse lookups.
        let old_index: std::collections::HashMap<&[usize], usize> = self
            .clusters
            .iter()
            .enumerate()
            .map(|(i, u)| (u.positions.as_slice(), i))
            .collect();
        // Phase 1 (fallible, read-only): plan each new cluster and build
        // the fresh units. Nothing in `self` mutates yet, so any error
        // leaves the fitted model fully intact.
        enum Plan {
            Reuse(usize),
            Fresh(Box<ClusterUnit>),
        }
        let mut plans = Vec::new();
        let mut independent_mask = BitSet::new(n);
        for s in 0..n {
            independent_mask.set(s, true);
        }
        for members in new_clustering.non_trivial() {
            let positions: Vec<usize> = members.iter().map(|m| m.index()).collect();
            if positions.len() > 64 {
                if self.method.uses_correlations() {
                    // Mirror `Fuser::fit`: wider than the bitmask solvers
                    // support.
                    return Err(FusionError::TooManySources {
                        requested: positions.len(),
                        max: 64,
                    });
                }
                continue;
            }
            for &p in &positions {
                independent_mask.set(p, false);
            }
            if let Some(&i) = old_index.get(positions.as_slice()) {
                report.reused += 1;
                plans.push(Plan::Reuse(i));
                continue;
            }
            report.rebuilt += 1;
            let full = SourceSet::full(positions.len());
            let (joint, solver) = if self.method.uses_correlations() {
                let mut joint =
                    EmpiricalJoint::with_labelled_rows(ds, members.clone(), self.alpha, labelled)?;
                joint.set_memo_capacity(self.memo_capacity);
                // Joint and solver are built in lockstep here, so the
                // fresh unit starts clean: a following
                // `rebuild_cluster_solvers` pass correctly skips it.
                let solver = self.method.build_solver(
                    &joint,
                    full,
                    &self.precrec,
                    &positions,
                    self.max_exact_complement,
                );
                (Some(joint), solver)
            } else {
                let solver = self.method.build_solver(
                    &NoJoint,
                    full,
                    &self.precrec,
                    &positions,
                    self.max_exact_complement,
                );
                (None, solver)
            };
            plans.push(Plan::Fresh(Box::new(ClusterUnit {
                positions,
                joint,
                solver,
            })));
        }
        // Phase 2 (infallible): commit. Clusters are disjoint, so each
        // old index is referenced by at most one reuse plan.
        let mut old: Vec<Option<ClusterUnit>> = self.clusters.drain(..).map(Some).collect();
        self.clusters = plans
            .into_iter()
            .map(|p| match p {
                Plan::Reuse(i) => old[i].take().expect("old unit reused once"),
                Plan::Fresh(unit) => *unit,
            })
            .collect();
        self.clustering = new_clustering;
        self.independent_mask = independent_mask;
        Ok(report)
    }

    /// The fitted method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The prior in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Estimated per-source quality.
    pub fn qualities(&self) -> &[SourceQuality] {
        &self.qualities
    }

    /// The clustering in effect (singletons for PrecRec under the `Auto`
    /// strategy; explicit strategies are honoured for every method).
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// `ln mu` for one triple; `-inf` / `+inf` for certain-false /
    /// certain-true patterns. `NaN` never escapes (clamped to `-inf`).
    pub fn log_mu(&self, ds: &Dataset, t: TripleId) -> Result<f64> {
        let providers = ds.providers(t);
        let scope = ds.scope_mask(t);

        // Independent (singleton) sources: scope ∩ independent_mask.
        let mut indep_scope = scope.clone();
        indep_scope.intersect_with(&self.independent_mask);
        let mut log_mu = self.precrec.log_mu(providers, &indep_scope);

        // Correlated clusters multiply in.
        for unit in &self.clusters {
            let prov = SourceSet(providers.project(&unit.positions));
            let act = SourceSet(scope.project(&unit.positions));
            let prov = prov.intersect(act);
            let mu = unit.mu(prov, act)?;
            if mu == 0.0 {
                return Ok(f64::NEG_INFINITY);
            }
            if mu.is_infinite() {
                return Ok(f64::INFINITY);
            }
            log_mu += mu.ln();
        }
        if log_mu.is_nan() {
            return Ok(f64::NEG_INFINITY);
        }
        Ok(log_mu)
    }

    /// `Pr(t | O_t)` for one triple.
    pub fn score_triple(&self, ds: &Dataset, t: TripleId) -> Result<f64> {
        Ok(posterior_from_log_mu(self.log_mu(ds, t)?, self.alpha))
    }

    /// `Pr(t | O_t)` for every triple, in [`TripleId`] order.
    pub fn score_all(&self, ds: &Dataset) -> Result<Vec<f64>> {
        self.score_all_with(ds, &ScoringEngine::serial())
    }

    /// Parallel [`Fuser::score_all`] over `n_threads` worker threads.
    /// Equivalent to [`Fuser::score_all_with`] and an explicit engine.
    pub fn score_all_parallel(&self, ds: &Dataset, n_threads: usize) -> Result<Vec<f64>> {
        self.score_all_with(ds, &ScoringEngine::with_threads(n_threads))
    }

    /// Score every triple through the given [`ScoringEngine`].
    ///
    /// Scoring is embarrassingly parallel; the engine's workers share this
    /// fitted model immutably, so per-cluster solver state (including the
    /// empirical joint's memoised rate tables behind `RwLock`s) is warmed
    /// once and reused across the whole batch. Parallel results are
    /// bitwise identical to serial results.
    pub fn score_all_with(&self, ds: &Dataset, engine: &ScoringEngine) -> Result<Vec<f64>> {
        engine.map(ds.n_triples(), |i| {
            self.score_triple(ds, TripleId(i as u32))
        })
    }

    /// Binary accept/reject decisions at the given probability threshold
    /// (the paper uses 0.5).
    pub fn decide(&self, ds: &Dataset, threshold: f64) -> Result<Vec<bool>> {
        Ok(self
            .score_all(ds)?
            .into_iter()
            .map(|p| p > threshold)
            .collect())
    }

    /// Convenience: indices of sources fused independently.
    pub fn independent_sources(&self) -> Vec<SourceId> {
        self.independent_mask
            .iter_ones()
            .map(|i| SourceId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn figure1() -> Dataset {
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (1..=5).map(|i| b.source(format!("S{i}"))).collect();
        let rows: [(&str, bool, &[usize]); 10] = [
            ("t1", true, &[1, 2, 4, 5]),
            ("t2", false, &[1, 2]),
            ("t3", true, &[3]),
            ("t4", true, &[2, 3, 4, 5]),
            ("t5", false, &[2, 3]),
            ("t6", true, &[1, 4, 5]),
            ("t7", true, &[1, 2, 3]),
            ("t8", false, &[1, 2, 4, 5]),
            ("t9", false, &[1, 2, 4, 5]),
            ("t10", true, &[1, 3, 4, 5]),
        ];
        for (name, truth, provs) in rows {
            let t = b.triple("Obama", "fact", name);
            for &p in provs {
                b.observe(sources[p - 1], t);
            }
            b.label(t, truth);
        }
        b.build().unwrap()
    }

    fn f1_at_half(ds: &Dataset, scores: &[f64]) -> (f64, f64, f64) {
        let gold = ds.gold().unwrap();
        let (mut tp, mut fp, mut fnn) = (0.0, 0.0, 0.0);
        for t in ds.triples() {
            let yes = scores[t.index()] > 0.5;
            match (yes, gold.get(t).unwrap()) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, true) => fnn += 1.0,
                _ => {}
            }
        }
        let p = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let r = if tp + fnn > 0.0 { tp / (tp + fnn) } else { 0.0 };
        (p, r, crate::prob::f1_score(p, r))
    }

    #[test]
    fn precrec_on_figure1_matches_overview_claim() {
        // §2.3: F1 = .86 (precision .75, recall 1).
        let ds = figure1();
        let fuser =
            Fuser::fit(&FuserConfig::new(Method::PrecRec), &ds, ds.gold().unwrap()).unwrap();
        let scores = fuser.score_all(&ds).unwrap();
        let (p, r, f1) = f1_at_half(&ds, &scores);
        assert!((p - 0.75).abs() < 1e-9, "precision {p}");
        assert!((r - 1.0).abs() < 1e-9, "recall {r}");
        assert!((f1 - 6.0 / 7.0).abs() < 1e-9, "f1 {f1}");
    }

    #[test]
    fn exact_corr_on_figure1_matches_overview_claim() {
        // §2.3: PrecRecCorr reaches F1 = .91 (precision 1, recall .83).
        let ds = figure1();
        let fuser = Fuser::fit(&FuserConfig::new(Method::Exact), &ds, ds.gold().unwrap()).unwrap();
        let scores = fuser.score_all(&ds).unwrap();
        let (p, r, f1) = f1_at_half(&ds, &scores);
        assert!((p - 1.0).abs() < 1e-9, "precision {p}");
        assert!((r - 5.0 / 6.0).abs() < 1e-9, "recall {r}");
        assert!(f1 > 0.9, "f1 {f1}");
    }

    #[test]
    fn exact_corr_rejects_t8() {
        let ds = figure1();
        let fuser = Fuser::fit(&FuserConfig::new(Method::Exact), &ds, ds.gold().unwrap()).unwrap();
        let p_t8 = fuser.score_triple(&ds, TripleId(7)).unwrap();
        assert!(p_t8 < 0.5, "Pr(t8)={p_t8}");
        // While PrecRec wrongly accepts it (Example 3.3).
        let precrec =
            Fuser::fit(&FuserConfig::new(Method::PrecRec), &ds, ds.gold().unwrap()).unwrap();
        assert!(precrec.score_triple(&ds, TripleId(7)).unwrap() > 0.5);
    }

    #[test]
    fn singleton_strategy_degrades_to_precrec() {
        let ds = figure1();
        let corr = Fuser::fit(
            &FuserConfig::new(Method::Exact).with_strategy(ClusterStrategy::Singletons),
            &ds,
            ds.gold().unwrap(),
        )
        .unwrap();
        let indep =
            Fuser::fit(&FuserConfig::new(Method::PrecRec), &ds, ds.gold().unwrap()).unwrap();
        for t in ds.triples() {
            let a = corr.score_triple(&ds, t).unwrap();
            let b = indep.score_triple(&ds, t).unwrap();
            assert!((a - b).abs() < 1e-9, "{t}: {a} vs {b}");
        }
    }

    #[test]
    fn elastic_levels_bracket_exact_on_figure1() {
        let ds = figure1();
        let exact = Fuser::fit(&FuserConfig::new(Method::Exact), &ds, ds.gold().unwrap())
            .unwrap()
            .score_all(&ds)
            .unwrap();
        // Level >= 4 covers any complement in a 5-source cluster: equal.
        let lvl4 = Fuser::fit(
            &FuserConfig::new(Method::Elastic(4)),
            &ds,
            ds.gold().unwrap(),
        )
        .unwrap()
        .score_all(&ds)
        .unwrap();
        for (i, (a, b)) in exact.iter().zip(&lvl4).enumerate() {
            assert!((a - b).abs() < 1e-9, "t{i}: exact {a} vs lvl4 {b}");
        }
    }

    #[test]
    fn aggressive_runs_and_scores_are_probabilities() {
        let ds = figure1();
        let fuser = Fuser::fit(
            &FuserConfig::new(Method::Aggressive),
            &ds,
            ds.gold().unwrap(),
        )
        .unwrap();
        for p in fuser.score_all(&ds).unwrap() {
            assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }

    #[test]
    fn parallel_scores_match_sequential() {
        let ds = figure1();
        let fuser = Fuser::fit(&FuserConfig::new(Method::Exact), &ds, ds.gold().unwrap()).unwrap();
        let seq = fuser.score_all(&ds).unwrap();
        let par = fuser.score_all_parallel(&ds, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn decide_thresholds() {
        let ds = figure1();
        let fuser = Fuser::fit(&FuserConfig::new(Method::Exact), &ds, ds.gold().unwrap()).unwrap();
        let low = fuser.decide(&ds, 0.0).unwrap();
        // threshold 0: everything with positive probability accepted.
        assert!(low.iter().filter(|&&b| b).count() >= 6);
        let high = fuser.decide(&ds, 0.999999).unwrap();
        assert!(high.iter().filter(|&&b| b).count() <= low.iter().filter(|&&b| b).count());
    }

    #[test]
    fn auto_strategy_single_cluster_for_small_n() {
        let ds = figure1();
        let fuser = Fuser::fit(&FuserConfig::new(Method::Exact), &ds, ds.gold().unwrap()).unwrap();
        assert_eq!(fuser.clustering().len(), 1);
        assert!(fuser.independent_sources().is_empty());
    }

    #[test]
    fn explicit_clustering_is_honoured() {
        let ds = figure1();
        // S1+S4+S5 in one cluster, S2/S3 independent.
        let clustering = Clustering::from_assignment(vec![0, 1, 2, 0, 0]);
        let fuser = Fuser::fit(
            &FuserConfig::new(Method::Exact)
                .with_strategy(ClusterStrategy::Explicit(clustering.clone())),
            &ds,
            ds.gold().unwrap(),
        )
        .unwrap();
        assert_eq!(fuser.clustering().clique_sizes(), vec![3]);
        assert_eq!(fuser.independent_sources().len(), 2);
        // Still produces valid probabilities.
        for p in fuser.score_all(&ds).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn refresh_and_rebuild_match_fresh_fit() {
        // Fit on a truncated label set, then feed the held-out labels in
        // through the delta hooks: the patched fuser must score bitwise
        // identically to a fuser fitted from scratch on the full labels.
        let ds = figure1();
        let gold = ds.gold().unwrap();
        let keep: std::collections::HashSet<TripleId> = (0..7u32).map(TripleId).collect();
        let partial = gold.restricted_to(&keep);
        for method in [
            Method::Exact,
            Method::Aggressive,
            Method::Elastic(2),
            Method::PrecRec,
        ] {
            let config = FuserConfig::new(method).with_strategy(ClusterStrategy::SingleCluster);
            let mut patched = Fuser::fit(&config, &ds, &partial).unwrap();
            // Push the held-out rows into the joint (correlated methods).
            for i in 0..patched.n_cluster_units() {
                if patched.cluster_joint(i).is_none() {
                    continue;
                }
                for t in (7..10u32).map(TripleId) {
                    let (prov, scope) = patched.cluster_joint(i).unwrap().project_pattern(&ds, t);
                    patched.cluster_joint_mut(i).unwrap().push_row(
                        prov,
                        scope,
                        gold.get(t).unwrap(),
                    );
                }
            }
            // Recompute per-source quality on the full labels and refresh.
            let qualities = crate::quality::QualityEstimator::new()
                .estimate(&ds, gold)
                .unwrap();
            patched.refresh_quality(qualities, 0.5).unwrap();
            patched.rebuild_cluster_solvers();

            let fresh = Fuser::fit(&config, &ds, gold).unwrap();
            for t in ds.triples() {
                let a = patched.score_triple(&ds, t).unwrap();
                let b = fresh.score_triple(&ds, t).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "{method:?} {t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn reconcile_clustering_matches_fresh_fit() {
        // Fit under one explicit clustering, then reconcile to a changed
        // partition: the unit whose membership survived must be reused,
        // the changed ones rebuilt, and scores must equal a from-scratch
        // fit on the new clustering bitwise.
        let ds = figure1();
        let gold = ds.gold().unwrap();
        let labelled: Vec<(TripleId, bool)> = gold.iter_labelled().collect();
        let before = Clustering::from_assignment(vec![0, 1, 2, 0, 0]); // {S1,S4,S5}
        let after = Clustering::from_assignment(vec![0, 1, 1, 0, 0]); // + {S2,S3}
        for method in [Method::Exact, Method::Aggressive, Method::Elastic(2)] {
            let cfg_before =
                FuserConfig::new(method).with_strategy(ClusterStrategy::Explicit(before.clone()));
            let mut patched = Fuser::fit(&cfg_before, &ds, gold).unwrap();
            let report = patched
                .reconcile_clustering(&ds, after.clone(), &labelled)
                .unwrap();
            assert_eq!((report.reused, report.rebuilt), (1, 1), "{method:?}");
            let rebuilds = patched.rebuild_cluster_solvers();
            // The reused unit's joint is clean: solver reused too.
            assert_eq!(rebuilds.reused, 2, "{method:?}: {rebuilds:?}");
            let cfg_after =
                FuserConfig::new(method).with_strategy(ClusterStrategy::Explicit(after.clone()));
            let fresh = Fuser::fit(&cfg_after, &ds, gold).unwrap();
            for t in ds.triples() {
                let a = patched.score_triple(&ds, t).unwrap();
                let b = fresh.score_triple(&ds, t).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "{method:?} {t}");
            }
        }
    }

    #[test]
    fn invalid_alpha_rejected_at_fit() {
        let ds = figure1();
        let cfg = FuserConfig::new(Method::PrecRec).with_alpha(1.5);
        assert!(Fuser::fit(&cfg, &ds, ds.gold().unwrap()).is_err());
    }

    #[test]
    fn method_names() {
        assert_eq!(Method::PrecRec.name(), "PrecRec");
        assert_eq!(Method::Exact.name(), "PrecRecCorr");
        assert_eq!(Method::Elastic(3).name(), "PrecRecCorr-Lvl3");
        assert_eq!(Method::Aggressive.name(), "PrecRecCorr-Aggr");
        assert!(!Method::PrecRec.uses_correlations());
        assert!(Method::Elastic(0).uses_correlations());
    }
}
