//! Exact correlated fusion (§4.1, Theorem 4.2).
//!
//! With correlations, the likelihoods are inclusion–exclusion sums over the
//! subsets of the non-providing sources:
//!
//! ```text
//! Pr(O_t | t)  = sum_{S* ⊆ S_t̄} (-1)^|S*|  r_{S_t ∪ S*}
//! Pr(O_t | ¬t) = sum_{S* ⊆ S_t̄} (-1)^|S*|  q_{S_t ∪ S*}
//! ```
//!
//! and `mu = Pr(O_t | t) / Pr(O_t | ¬t)`. The term count is `2^|S_t̄|`, so
//! the solver refuses complements beyond a configurable width (the
//! [`crate::fuser::Fuser`] keeps clusters small instead; see
//! [`crate::elastic`] for the polynomial alternative).

use crate::error::{FusionError, Result};
use crate::joint::{JointQuality, SourceSet};
use crate::prob::KahanSum;
use crate::subset::submasks;

/// Default cap on `|S_t̄|` for exact computation (2^25 ≈ 33M terms).
pub const DEFAULT_MAX_COMPLEMENT: usize = 25;

/// The pair `(Pr(O_t | t), Pr(O_t | ¬t))` produced by a correlated solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Likelihoods {
    /// `Pr(O_t | t)` — numerator `R`.
    pub r: f64,
    /// `Pr(O_t | ¬t)` — denominator `Q`.
    pub q: f64,
}

impl Likelihoods {
    /// The likelihood ratio `mu = R / Q`, with the conventions used across
    /// the crate: a non-positive numerator means the observation pattern is
    /// impossible for a true triple (`mu = 0`); a positive numerator with a
    /// non-positive denominator means impossible for a false triple
    /// (`mu = +inf`).
    ///
    /// Tiny negative values from floating-point cancellation are treated as
    /// zero.
    pub fn mu(self) -> f64 {
        let r = if self.r > 1e-15 { self.r } else { 0.0 };
        let q = if self.q > 1e-15 { self.q } else { 0.0 };
        if r == 0.0 {
            0.0
        } else if q == 0.0 {
            f64::INFINITY
        } else {
            r / q
        }
    }
}

/// Exact solver over one cluster described by a [`JointQuality`].
#[derive(Debug, Clone)]
pub struct ExactSolver {
    max_complement: usize,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            max_complement: DEFAULT_MAX_COMPLEMENT,
        }
    }
}

impl ExactSolver {
    /// Solver with the default complement cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solver with a custom cap on the number of non-providing sources.
    pub fn with_max_complement(max_complement: usize) -> Self {
        ExactSolver { max_complement }
    }

    /// Compute `(Pr(O_t|t), Pr(O_t|¬t))` for a triple provided by
    /// `providers`, where `active` is the set of cluster members in scope
    /// for the triple (`providers ⊆ active`).
    pub fn likelihoods<J: JointQuality + ?Sized>(
        &self,
        joint: &J,
        providers: SourceSet,
        active: SourceSet,
    ) -> Result<Likelihoods> {
        debug_assert!(providers.is_subset_of(active));
        let complement = active.minus(providers);
        if complement.count() > self.max_complement {
            return Err(FusionError::TooManySources {
                requested: complement.count(),
                max: self.max_complement,
            });
        }
        let mut r = KahanSum::new();
        let mut q = KahanSum::new();
        for sub in submasks(complement.0) {
            let sign = if (sub.count_ones() & 1) == 0 {
                1.0
            } else {
                -1.0
            };
            let set = providers.union(SourceSet(sub));
            r.add(sign * joint.joint_recall(set));
            q.add(sign * joint.joint_fpr(set));
        }
        Ok(Likelihoods {
            r: r.value(),
            q: q.value(),
        })
    }

    /// The likelihood ratio `mu` (Theorem 4.2).
    pub fn mu<J: JointQuality + ?Sized>(
        &self,
        joint: &J,
        providers: SourceSet,
        active: SourceSet,
    ) -> Result<f64> {
        Ok(self.likelihoods(joint, providers, active)?.mu())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::{IndependentJoint, TableJoint};
    use crate::prob::posterior_from_mu;

    /// Example 4.4's given joint parameters over {S1..S5}.
    fn example_4_4_joint() -> TableJoint {
        let r = vec![2.0 / 3.0, 0.5, 2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0];
        let q = vec![0.5, 2.0 / 3.0, 1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0];
        let mut j = TableJoint::new(r, q).unwrap();
        let s1245 = SourceSet::full(5).without(2);
        j.set_recall(s1245, 0.22);
        j.set_fpr(s1245, 0.22);
        j.set_recall(SourceSet::full(5), 0.11);
        j.set_fpr(SourceSet::full(5), 0.037);
        j
    }

    #[test]
    fn example_4_4_exact_probability_of_t8() {
        // t8 provided by {S1,S2,S4,S5}; S3 does not provide it.
        let joint = example_4_4_joint();
        let providers = SourceSet::full(5).without(2);
        let active = SourceSet::full(5);
        let solver = ExactSolver::new();
        let lk = solver.likelihoods(&joint, providers, active).unwrap();
        // Pr(O|t8) = r_1245 - r_12345 = 0.22 - 0.11 = 0.11
        assert!((lk.r - 0.11).abs() < 1e-12, "R={}", lk.r);
        // Pr(O|¬t8) = q_1245 - q_12345 = 0.22 - 0.037 = 0.183
        assert!((lk.q - 0.183).abs() < 1e-12, "Q={}", lk.q);
        let p = posterior_from_mu(lk.mu(), 0.5);
        // Paper rounds to 0.37.
        assert!((p - 0.11 / (0.11 + 0.183)).abs() < 1e-12);
        assert!((p - 0.37).abs() < 0.01, "Pr(t8)={p}");
        assert!(p < 0.5, "correlations correctly reject t8");
    }

    #[test]
    fn corollary_4_3_exact_equals_independent() {
        // With independent sources Theorem 4.2 degenerates to Theorem 3.1.
        let recalls = vec![0.7, 0.5, 0.3, 0.9];
        let fprs = vec![0.2, 0.1, 0.25, 0.4];
        let joint = IndependentJoint::new(recalls.clone(), fprs.clone()).unwrap();
        let solver = ExactSolver::new();
        let active = SourceSet::full(4);
        for mask in 0..16u64 {
            let providers = SourceSet(mask);
            let mu_exact = solver.mu(&joint, providers, active).unwrap();
            // Theorem 3.1 product form.
            let mut mu_indep = 1.0;
            for k in 0..4 {
                mu_indep *= if providers.contains(k) {
                    recalls[k] / fprs[k]
                } else {
                    (1.0 - recalls[k]) / (1.0 - fprs[k])
                };
            }
            assert!(
                (mu_exact - mu_indep).abs() < 1e-9 * mu_indep.max(1.0),
                "mask={mask:b}: exact {mu_exact} vs indep {mu_indep}"
            );
        }
    }

    #[test]
    fn scenario_1_replicated_sources_do_not_inflate() {
        // §4 Scenario 1: n replicas of one source. Joint recall of any
        // subset is r, joint fpr is q, so mu = r/q, same as one source.
        #[derive(Debug)]
        struct Replicas {
            n: usize,
            r: f64,
            q: f64,
        }
        impl JointQuality for Replicas {
            fn n_members(&self) -> usize {
                self.n
            }
            fn joint_recall(&self, set: SourceSet) -> f64 {
                if set.is_empty() {
                    1.0
                } else {
                    self.r
                }
            }
            fn joint_fpr(&self, set: SourceSet) -> f64 {
                if set.is_empty() {
                    1.0
                } else {
                    self.q
                }
            }
        }
        let joint = Replicas {
            n: 6,
            r: 0.6,
            q: 0.2,
        };
        let solver = ExactSolver::new();
        let active = SourceSet::full(6);
        // All replicas provide t: complement empty, mu = r/q = 3.
        let mu_all = solver.mu(&joint, active, active).unwrap();
        assert!((mu_all - 3.0).abs() < 1e-12);
        // Independent treatment would give (r/q)^6 = 729 — hugely inflated.
        let indep = IndependentJoint::new(vec![0.6; 6], vec![0.2; 6]).unwrap();
        let mu_indep = solver.mu(&indep, active, active).unwrap();
        assert!(mu_indep > 700.0);
    }

    #[test]
    fn scenario_4_complementary_sources_trust_single_provider() {
        // §4 Scenario 4 (second part): with perfectly complementary
        // sources, a triple provided by exactly one source has
        // mu = r/q (not penalised by the n-1 non-providers).
        #[derive(Debug)]
        struct Complementary {
            n: usize,
            r: f64,
            q: f64,
        }
        impl JointQuality for Complementary {
            fn n_members(&self) -> usize {
                self.n
            }
            fn joint_recall(&self, set: SourceSet) -> f64 {
                match set.count() {
                    0 => 1.0,
                    1 => self.r,
                    _ => 0.0, // no overlap at all
                }
            }
            fn joint_fpr(&self, set: SourceSet) -> f64 {
                match set.count() {
                    0 => 1.0,
                    1 => self.q,
                    _ => 0.0,
                }
            }
        }
        let (r, q) = (0.3, 0.05);
        let joint = Complementary { n: 4, r, q };
        let solver = ExactSolver::new();
        let active = SourceSet::full(4);
        let providers = SourceSet::singleton(0);
        let mu_corr = solver.mu(&joint, providers, active).unwrap();
        // Exact: R = r - 3*0 + ... = r (all joint terms vanish), minus the
        // empty... R = sum over subsets of {1,2,3}: r_{0}∪sub. Only sub = ∅
        // survives: R = r. Same for Q.
        assert!((mu_corr - r / q).abs() < 1e-9, "mu={mu_corr}");
        // Independent model penalises the three non-providers.
        let indep = IndependentJoint::new(vec![r; 4], vec![q; 4]).unwrap();
        let mu_indep = solver.mu(&indep, providers, active).unwrap();
        assert!(
            mu_indep < mu_corr,
            "independence must under-score: {mu_indep} vs {mu_corr}"
        );
    }

    #[test]
    fn complement_cap_is_enforced() {
        let joint = IndependentJoint::new(vec![0.5; 30], vec![0.1; 30]).unwrap();
        let solver = ExactSolver::with_max_complement(10);
        let err = solver.mu(&joint, SourceSet::EMPTY, SourceSet::full(30));
        assert!(matches!(err, Err(FusionError::TooManySources { .. })));
        // Within the cap it works.
        let providers = SourceSet::full(25); // complement 5
        assert!(solver.mu(&joint, providers, SourceSet::full(30)).is_ok());
    }

    #[test]
    fn mu_conventions_on_degenerate_likelihoods() {
        assert_eq!(Likelihoods { r: 0.0, q: 0.5 }.mu(), 0.0);
        assert_eq!(Likelihoods { r: -1e-20, q: 0.5 }.mu(), 0.0);
        assert_eq!(Likelihoods { r: 0.3, q: 0.0 }.mu(), f64::INFINITY);
        assert_eq!(Likelihoods { r: 0.0, q: 0.0 }.mu(), 0.0);
        assert!((Likelihoods { r: 0.2, q: 0.4 }.mu() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_active_set_gives_uninformative_mu() {
        let joint = IndependentJoint::new(vec![0.5], vec![0.1]).unwrap();
        let solver = ExactSolver::new();
        // Triple outside every member's scope: R = Q = r_∅ = 1, mu = 1.
        let mu = solver
            .mu(&joint, SourceSet::EMPTY, SourceSet::EMPTY)
            .unwrap();
        assert!((mu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn likelihoods_are_probabilities_for_consistent_joints() {
        // For a genuinely consistent joint model (independence), the
        // inclusion–exclusion sums are probabilities in [0, 1].
        let joint = IndependentJoint::new(vec![0.6, 0.2, 0.8], vec![0.3, 0.1, 0.5]).unwrap();
        let solver = ExactSolver::new();
        let active = SourceSet::full(3);
        for mask in 0..8u64 {
            let lk = solver.likelihoods(&joint, SourceSet(mask), active).unwrap();
            assert!((-1e-12..=1.0 + 1e-12).contains(&lk.r), "R={}", lk.r);
            assert!((-1e-12..=1.0 + 1e-12).contains(&lk.q), "Q={}", lk.q);
        }
    }
}
