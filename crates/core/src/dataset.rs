//! Datasets: sources, their output triples, gold labels, and scopes.
//!
//! A [`Dataset`] is the paper's `(S, O)` pair — a set of sources and the
//! collection of their outputs — optionally annotated with gold labels
//! (known truthfulness) and *domains* that define each source's scope.
//!
//! # Scope semantics
//!
//! Per §2.1, the observation set `O_t` for a triple `t` records that a
//! source `S_i` does **not** provide `t` only if `S_i` provides other data
//! in the domain of `t`; irrelevant sources are not penalised. We model
//! this with a per-triple `domain` tag (default: one global domain). A
//! source's scope is the set of domains in which it provides at least one
//! triple (overridable). Fusion formulas skip out-of-scope sources when
//! accounting for non-providers, and recall denominators count only
//! in-scope true triples.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::bits::BitSet;
use crate::error::{FusionError, Result};
use crate::triple::{Triple, TripleId, TripleInterner};

/// Dense identifier of a source within one [`Dataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

impl SourceId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Domain tag for scope bookkeeping. The default domain is `Domain(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Domain(pub u32);

/// Gold truth labels, indexed by [`TripleId`]. `None` means unlabelled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GoldLabels {
    labels: Vec<Option<bool>>,
}

impl GoldLabels {
    /// Labels with capacity for `n` triples, all unlabelled.
    pub fn new(n: usize) -> Self {
        GoldLabels {
            labels: vec![None; n],
        }
    }

    /// Build from a full assignment (every triple labelled).
    pub fn from_bools(labels: &[bool]) -> Self {
        GoldLabels {
            labels: labels.iter().map(|&b| Some(b)).collect(),
        }
    }

    /// Label for a triple, `None` if unlabelled or out of range.
    #[inline]
    pub fn get(&self, t: TripleId) -> Option<bool> {
        self.labels.get(t.index()).copied().flatten()
    }

    /// Assign a label.
    pub fn set(&mut self, t: TripleId, truth: bool) {
        if t.index() >= self.labels.len() {
            self.labels.resize(t.index() + 1, None);
        }
        self.labels[t.index()] = Some(truth);
    }

    /// Number of labelled triples.
    pub fn labelled_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Number of triples labelled true.
    pub fn true_count(&self) -> usize {
        self.labels.iter().filter(|l| **l == Some(true)).count()
    }

    /// Number of triples labelled false.
    pub fn false_count(&self) -> usize {
        self.labels.iter().filter(|l| **l == Some(false)).count()
    }

    /// Iterate `(triple, truth)` for labelled triples.
    pub fn iter_labelled(&self) -> impl Iterator<Item = (TripleId, bool)> + '_ {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|b| (TripleId(i as u32), b)))
    }

    /// A copy keeping only the labels of `keep`; everything else unlabelled.
    /// Used to carve training subsets out of a gold standard.
    pub fn restricted_to(&self, keep: &HashSet<TripleId>) -> GoldLabels {
        let labels = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if keep.contains(&TripleId(i as u32)) {
                    *l
                } else {
                    None
                }
            })
            .collect();
        GoldLabels { labels }
    }

    /// Empirical prior `alpha` = fraction of labelled triples that are true.
    pub fn empirical_alpha(&self) -> Result<f64> {
        let t = self.true_count();
        let f = self.false_count();
        if t == 0 {
            return Err(FusionError::DegenerateTraining("true"));
        }
        if f == 0 {
            return Err(FusionError::DegenerateTraining("false"));
        }
        Ok(t as f64 / (t + f) as f64)
    }
}

/// A fused data-fusion problem instance: sources, outputs, labels, scopes.
#[derive(Debug, Clone)]
pub struct Dataset {
    source_names: Vec<String>,
    triples: TripleInterner,
    /// Per triple: bitset over sources that provide it.
    providers: Vec<BitSet>,
    /// Per source: triples it provides, in insertion order.
    outputs: Vec<Vec<TripleId>>,
    /// Per triple: its domain.
    domains: Vec<Domain>,
    /// Per source: set of domains in scope.
    scopes: Vec<HashSet<Domain>>,
    gold: Option<GoldLabels>,
}

impl Dataset {
    /// Number of sources.
    pub fn n_sources(&self) -> usize {
        self.source_names.len()
    }

    /// Number of distinct triples (provided by at least one source).
    pub fn n_triples(&self) -> usize {
        self.triples.len()
    }

    /// Source ids in order.
    pub fn sources(&self) -> impl Iterator<Item = SourceId> {
        (0..self.source_names.len() as u32).map(SourceId)
    }

    /// Triple ids in order.
    pub fn triples(&self) -> impl Iterator<Item = TripleId> {
        (0..self.triples.len() as u32).map(TripleId)
    }

    /// Name of a source.
    pub fn source_name(&self, s: SourceId) -> &str {
        &self.source_names[s.index()]
    }

    /// Look up a source id by name.
    pub fn source_by_name(&self, name: &str) -> Option<SourceId> {
        self.source_names
            .iter()
            .position(|n| n == name)
            .map(|i| SourceId(i as u32))
    }

    /// Resolve a triple id.
    pub fn triple(&self, t: TripleId) -> &Triple {
        self.triples.resolve(t)
    }

    /// Look up a triple id by content.
    pub fn triple_id(&self, triple: &Triple) -> Option<TripleId> {
        self.triples.get(triple)
    }

    /// Providers of `t` as a bitset over sources (`S_t` in the paper).
    pub fn providers(&self, t: TripleId) -> &BitSet {
        &self.providers[t.index()]
    }

    /// `S_i |= t`?
    pub fn provides(&self, s: SourceId, t: TripleId) -> bool {
        self.providers[t.index()].get(s.index())
    }

    /// Triples output by a source (`O_i`).
    pub fn output(&self, s: SourceId) -> &[TripleId] {
        &self.outputs[s.index()]
    }

    /// Domain of a triple.
    pub fn domain(&self, t: TripleId) -> Domain {
        self.domains[t.index()]
    }

    /// Whether `t` lies in the scope of `s` — i.e. whether `s` *not*
    /// providing `t` counts as evidence (§2.1).
    pub fn in_scope(&self, s: SourceId, t: TripleId) -> bool {
        self.scopes[s.index()].contains(&self.domains[t.index()])
    }

    /// The full scope of a source: the set of domains in which its
    /// non-provision counts as evidence.
    pub fn scope(&self, s: SourceId) -> &HashSet<Domain> {
        &self.scopes[s.index()]
    }

    /// Sources whose scope covers `t`, as a bitset.
    pub fn scope_mask(&self, t: TripleId) -> BitSet {
        let mut bs = BitSet::new(self.n_sources());
        for s in 0..self.n_sources() {
            if self.scopes[s].contains(&self.domains[t.index()]) {
                bs.set(s, true);
            }
        }
        bs
    }

    /// Gold labels, if this dataset carries them.
    pub fn gold(&self) -> Option<&GoldLabels> {
        self.gold.as_ref()
    }

    /// Gold labels or an error. Most estimation paths need them.
    pub fn require_gold(&self) -> Result<&GoldLabels> {
        self.gold.as_ref().ok_or(FusionError::MissingGold)
    }

    /// Replace the gold labels (e.g. attach labels produced externally).
    pub fn set_gold(&mut self, gold: GoldLabels) {
        self.gold = Some(gold);
    }

    /// Register (or look up) a source by name on an already-built dataset.
    ///
    /// This is a *delta hook* for incremental ingestion
    /// (`corrfuse-stream`): a new source starts with no outputs and an
    /// empty scope, and every triple's provider bitset grows to cover it
    /// (an O(triples) operation, so callers batch source additions).
    /// Registering an existing name returns its id unchanged.
    pub fn add_source(&mut self, name: impl Into<String>) -> SourceId {
        let name = name.into();
        if let Some(id) = self.source_by_name(&name) {
            return id;
        }
        let id = SourceId(self.source_names.len() as u32);
        self.source_names.push(name);
        self.outputs.push(Vec::new());
        self.scopes.push(HashSet::new());
        let n = self.source_names.len();
        for p in &mut self.providers {
            p.grow_to(n);
        }
        id
    }

    /// Intern (or look up) a triple on an already-built dataset.
    ///
    /// Delta hook for incremental ingestion. A new triple starts with no
    /// providers — callers must [`Dataset::observe`] it before scoring it,
    /// mirroring the [`DatasetBuilder::build`] invariant that every triple
    /// has an observation set. Interning an existing triple returns its id
    /// and leaves its domain unchanged.
    pub fn add_triple(&mut self, triple: Triple, domain: Domain) -> TripleId {
        if let Some(id) = self.triples.get(&triple) {
            return id;
        }
        let id = self.triples.intern(triple);
        self.providers.push(BitSet::new(self.n_sources()));
        self.domains.push(domain);
        id
    }

    /// Record `S_i |= t` on an already-built dataset (delta hook).
    ///
    /// Mirrors the builder's semantics: duplicate observations are no-ops,
    /// and providing in a new domain extends the source's scope (the
    /// builder's "domains it provides in" inference). The returned
    /// [`ObserveOutcome`] tells incremental callers exactly what changed so
    /// they can invalidate the right state.
    pub fn observe(&mut self, s: SourceId, t: TripleId) -> Result<ObserveOutcome> {
        if s.index() >= self.n_sources() {
            return Err(FusionError::UnknownSource(format!("{s}")));
        }
        if t.index() >= self.n_triples() {
            return Err(FusionError::TripleOutOfRange(t.index()));
        }
        if self.providers[t.index()].get(s.index()) {
            return Ok(ObserveOutcome {
                newly_provided: false,
                scope_expanded: false,
            });
        }
        self.providers[t.index()].set(s.index(), true);
        self.outputs[s.index()].push(t);
        let scope_expanded = self.scopes[s.index()].insert(self.domains[t.index()]);
        Ok(ObserveOutcome {
            newly_provided: true,
            scope_expanded,
        })
    }

    /// Attach (or overwrite) a gold label on an already-built dataset
    /// (delta hook). Returns the previous label, if any.
    pub fn set_label(&mut self, t: TripleId, truth: bool) -> Result<Option<bool>> {
        if t.index() >= self.n_triples() {
            return Err(FusionError::TripleOutOfRange(t.index()));
        }
        let prev = self.gold.as_ref().and_then(|g| g.get(t));
        match &mut self.gold {
            Some(g) => g.set(t, truth),
            None => {
                let mut g = GoldLabels::new(self.n_triples());
                g.set(t, truth);
                self.gold = Some(g);
            }
        }
        Ok(prev)
    }

    /// Summary statistics, for reports and examples.
    pub fn stats(&self) -> DatasetStats {
        let per_source: Vec<usize> = self.outputs.iter().map(Vec::len).collect();
        let (true_count, false_count) = match &self.gold {
            Some(g) => (g.true_count(), g.false_count()),
            None => (0, 0),
        };
        DatasetStats {
            n_sources: self.n_sources(),
            n_triples: self.n_triples(),
            labelled_true: true_count,
            labelled_false: false_count,
            observations: per_source.iter().sum(),
            max_source_output: per_source.iter().copied().max().unwrap_or(0),
            min_source_output: per_source.iter().copied().min().unwrap_or(0),
        }
    }
}

/// What actually changed when [`Dataset::observe`] applied a claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserveOutcome {
    /// The claim was new (not a duplicate of an existing observation).
    pub newly_provided: bool,
    /// The source's scope gained the triple's domain — every triple in
    /// that domain now counts the source as an in-scope non-provider.
    pub scope_expanded: bool,
}

/// Aggregate statistics over a dataset. See [`Dataset::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Number of sources.
    pub n_sources: usize,
    /// Number of distinct triples.
    pub n_triples: usize,
    /// Triples labelled true.
    pub labelled_true: usize,
    /// Triples labelled false.
    pub labelled_false: usize,
    /// Total `(source, triple)` observations.
    pub observations: usize,
    /// Largest single-source output size.
    pub max_source_output: usize,
    /// Smallest single-source output size.
    pub min_source_output: usize,
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sources, {} triples ({} true / {} false labelled), {} observations",
            self.n_sources,
            self.n_triples,
            self.labelled_true,
            self.labelled_false,
            self.observations
        )
    }
}

/// Incremental builder for [`Dataset`].
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    source_names: Vec<String>,
    source_index: HashMap<String, SourceId>,
    triples: TripleInterner,
    /// (source, triple) observations in insertion order.
    observations: Vec<(SourceId, TripleId)>,
    domains: HashMap<TripleId, Domain>,
    scope_overrides: HashMap<SourceId, HashSet<Domain>>,
    gold: GoldLabels,
    any_gold: bool,
}

impl DatasetBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a source by name.
    pub fn source(&mut self, name: impl Into<String>) -> SourceId {
        let name = name.into();
        if let Some(&id) = self.source_index.get(&name) {
            return id;
        }
        let id = SourceId(self.source_names.len() as u32);
        self.source_index.insert(name.clone(), id);
        self.source_names.push(name);
        id
    }

    /// Register (or look up) a triple.
    pub fn triple(
        &mut self,
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
    ) -> TripleId {
        self.triples.intern(Triple::new(subject, predicate, object))
    }

    /// Record that `source` outputs `triple` (`S_i |= t`).
    pub fn observe(&mut self, source: SourceId, triple: TripleId) {
        self.observations.push((source, triple));
    }

    /// Convenience: register source + triple + observation in one call.
    pub fn observe_named(
        &mut self,
        source: impl Into<String>,
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
    ) -> (SourceId, TripleId) {
        let s = self.source(source);
        let t = self.triple(subject, predicate, object);
        self.observe(s, t);
        (s, t)
    }

    /// Attach a gold truth label to a triple.
    pub fn label(&mut self, triple: TripleId, truth: bool) {
        self.gold.set(triple, truth);
        self.any_gold = true;
    }

    /// Tag a triple with a domain (defaults to `Domain(0)`).
    pub fn set_domain(&mut self, triple: TripleId, domain: Domain) {
        self.domains.insert(triple, domain);
    }

    /// Explicitly set a source's scope, overriding the inferred
    /// "domains it provides in" default.
    pub fn set_scope(&mut self, source: SourceId, domains: impl IntoIterator<Item = Domain>) {
        self.scope_overrides
            .insert(source, domains.into_iter().collect());
    }

    /// Finalise into a [`Dataset`].
    ///
    /// Errors if a triple ends up provided by no source (possible when a
    /// triple was interned but never observed) — such triples have no
    /// observation set `O_t` and are rejected early rather than silently
    /// producing `Pr(t) = prior`.
    pub fn build(self) -> Result<Dataset> {
        let n_sources = self.source_names.len();
        let n_triples = self.triples.len();

        let mut providers = vec![BitSet::new(n_sources); n_triples];
        let mut outputs: Vec<Vec<TripleId>> = vec![Vec::new(); n_sources];
        for (s, t) in &self.observations {
            if !providers[t.index()].get(s.index()) {
                providers[t.index()].set(s.index(), true);
                outputs[s.index()].push(*t);
            }
        }
        for (i, p) in providers.iter().enumerate() {
            if p.is_empty() {
                return Err(FusionError::UnobservedTriple(i));
            }
        }

        let domains: Vec<Domain> = (0..n_triples)
            .map(|i| {
                self.domains
                    .get(&TripleId(i as u32))
                    .copied()
                    .unwrap_or(Domain(0))
            })
            .collect();

        // Default scope: the domains a source provides in.
        let mut scopes: Vec<HashSet<Domain>> = vec![HashSet::new(); n_sources];
        for (s, out) in outputs.iter().enumerate() {
            for t in out {
                scopes[s].insert(domains[t.index()]);
            }
        }
        for (s, domains) in self.scope_overrides {
            scopes[s.index()] = domains;
        }

        let mut gold_labels = self.gold;
        // Make label vector cover all triples.
        if gold_labels.labels_len() < n_triples {
            gold_labels.pad_to(n_triples);
        }

        Ok(Dataset {
            source_names: self.source_names,
            triples: self.triples,
            providers,
            outputs,
            domains,
            scopes,
            gold: if self.any_gold {
                Some(gold_labels)
            } else {
                None
            },
        })
    }
}

impl GoldLabels {
    fn labels_len(&self) -> usize {
        self.labels.len()
    }

    fn pad_to(&mut self, n: usize) {
        if self.labels.len() < n {
            self.labels.resize(n, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s1 = b.source("A");
        let s2 = b.source("B");
        let t1 = b.triple("x", "p", "1");
        let t2 = b.triple("y", "p", "2");
        b.observe(s1, t1);
        b.observe(s1, t2);
        b.observe(s2, t2);
        b.label(t1, true);
        b.label(t2, false);
        b.build().unwrap()
    }

    #[test]
    fn builder_assembles_provider_sets() {
        let ds = tiny();
        assert_eq!(ds.n_sources(), 2);
        assert_eq!(ds.n_triples(), 2);
        let t2 = ds.triple_id(&Triple::new("y", "p", "2")).unwrap();
        assert_eq!(ds.providers(t2).count_ones(), 2);
        let t1 = ds.triple_id(&Triple::new("x", "p", "1")).unwrap();
        assert!(ds.provides(SourceId(0), t1));
        assert!(!ds.provides(SourceId(1), t1));
    }

    #[test]
    fn duplicate_observations_are_deduped() {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        let t = b.triple("x", "p", "1");
        b.observe(s, t);
        b.observe(s, t);
        let ds = b.build().unwrap();
        assert_eq!(ds.output(s).len(), 1);
        assert_eq!(ds.providers(t).count_ones(), 1);
    }

    #[test]
    fn source_registration_is_idempotent() {
        let mut b = DatasetBuilder::new();
        let a1 = b.source("A");
        let a2 = b.source("A");
        assert_eq!(a1, a2);
    }

    #[test]
    fn unprovided_triple_is_rejected() {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        let t1 = b.triple("x", "p", "1");
        let _t2 = b.triple("orphan", "p", "2"); // never observed
        b.observe(s, t1);
        assert!(b.build().is_err());
    }

    #[test]
    fn gold_counts() {
        let ds = tiny();
        let g = ds.gold().unwrap();
        assert_eq!(g.true_count(), 1);
        assert_eq!(g.false_count(), 1);
        assert_eq!(g.labelled_count(), 2);
        assert!((g.empirical_alpha().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_gold_is_error() {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        let t = b.triple("x", "p", "1");
        b.observe(s, t);
        let ds = b.build().unwrap();
        assert!(ds.gold().is_none());
        assert_eq!(ds.require_gold(), Err(FusionError::MissingGold));
    }

    #[test]
    fn default_scope_is_global_single_domain() {
        let ds = tiny();
        for s in ds.sources() {
            for t in ds.triples() {
                assert!(ds.in_scope(s, t));
            }
        }
        let t = TripleId(0);
        assert_eq!(ds.scope_mask(t).count_ones(), 2);
    }

    #[test]
    fn domains_restrict_scope() {
        let mut b = DatasetBuilder::new();
        let s1 = b.source("books");
        let s2 = b.source("bios");
        let t1 = b.triple("book1", "author", "X");
        let t2 = b.triple("person1", "born", "1960");
        b.set_domain(t1, Domain(1));
        b.set_domain(t2, Domain(2));
        b.observe(s1, t1);
        b.observe(s2, t2);
        let ds = b.build().unwrap();
        // s1 provides only in domain 1, so t2 is out of its scope.
        assert!(ds.in_scope(SourceId(0), TripleId(0)));
        assert!(!ds.in_scope(SourceId(0), TripleId(1)));
        assert!(!ds.in_scope(SourceId(1), TripleId(0)));
        assert_eq!(ds.scope_mask(TripleId(0)).count_ones(), 1);
    }

    #[test]
    fn scope_override_wins() {
        let mut b = DatasetBuilder::new();
        let s1 = b.source("A");
        let s2 = b.source("B");
        let t1 = b.triple("x", "p", "1");
        let t2 = b.triple("y", "p", "2");
        b.set_domain(t1, Domain(1));
        b.set_domain(t2, Domain(2));
        b.observe(s1, t1);
        b.observe(s2, t2);
        // Declare that A covers both domains even though it provides in one.
        b.set_scope(s1, [Domain(1), Domain(2)]);
        let ds = b.build().unwrap();
        assert!(ds.in_scope(SourceId(0), TripleId(1)));
    }

    #[test]
    fn restricted_labels_mask_out_rest() {
        let ds = tiny();
        let keep: HashSet<TripleId> = [TripleId(0)].into_iter().collect();
        let restricted = ds.gold().unwrap().restricted_to(&keep);
        assert_eq!(restricted.get(TripleId(0)), Some(true));
        assert_eq!(restricted.get(TripleId(1)), None);
    }

    #[test]
    fn stats_aggregate() {
        let ds = tiny();
        let st = ds.stats();
        assert_eq!(st.n_sources, 2);
        assert_eq!(st.n_triples, 2);
        assert_eq!(st.observations, 3);
        assert_eq!(st.labelled_true, 1);
        assert_eq!(st.max_source_output, 2);
        assert_eq!(st.min_source_output, 1);
        assert!(st.to_string().contains("2 sources"));
    }

    #[test]
    fn empirical_alpha_degenerate_cases() {
        let mut g = GoldLabels::new(2);
        g.set(TripleId(0), true);
        assert!(matches!(
            g.empirical_alpha(),
            Err(FusionError::DegenerateTraining("false"))
        ));
        let mut g = GoldLabels::new(2);
        g.set(TripleId(0), false);
        assert!(matches!(
            g.empirical_alpha(),
            Err(FusionError::DegenerateTraining("true"))
        ));
    }

    #[test]
    fn observe_named_shortcut() {
        let mut b = DatasetBuilder::new();
        let (s, t) = b.observe_named("A", "x", "p", "1");
        let ds = b.build().unwrap();
        assert!(ds.provides(s, t));
        assert_eq!(ds.source_name(s), "A");
    }

    #[test]
    fn delta_hooks_mirror_builder_semantics() {
        let mut ds = tiny();
        // Adding an existing source/triple is a lookup, not a duplicate.
        assert_eq!(ds.add_source("A"), SourceId(0));
        let t1 = ds.add_triple(Triple::new("x", "p", "1"), Domain(0));
        assert_eq!(t1, TripleId(0));
        assert_eq!(ds.n_sources(), 2);
        assert_eq!(ds.n_triples(), 2);

        // A new source grows every provider bitset and starts scope-less.
        let s3 = ds.add_source("C");
        assert_eq!(ds.n_sources(), 3);
        assert_eq!(ds.providers(t1).len(), 3);
        assert!(!ds.in_scope(s3, t1));

        // New triple + first claim: provider recorded, scope inferred.
        let t3 = ds.add_triple(Triple::new("z", "p", "3"), Domain(0));
        assert!(ds.providers(t3).is_empty());
        let oc = ds.observe(s3, t3).unwrap();
        assert!(oc.newly_provided && oc.scope_expanded);
        assert!(ds.in_scope(s3, t1));
        assert_eq!(ds.output(s3), &[t3]);

        // Duplicate claim is a no-op.
        let oc = ds.observe(s3, t3).unwrap();
        assert!(!oc.newly_provided && !oc.scope_expanded);
        assert_eq!(ds.output(s3).len(), 1);

        // Claim in an already-covered domain does not re-expand scope.
        let oc = ds.observe(s3, t1).unwrap();
        assert!(oc.newly_provided && !oc.scope_expanded);

        // Labels: new, overwrite, and previous value reporting.
        assert_eq!(ds.set_label(t3, true).unwrap(), None);
        assert_eq!(ds.set_label(t3, false).unwrap(), Some(true));
        assert_eq!(ds.gold().unwrap().get(t3), Some(false));
    }

    #[test]
    fn delta_hooks_reject_bad_ids() {
        let mut ds = tiny();
        assert!(ds.observe(SourceId(9), TripleId(0)).is_err());
        assert!(ds.observe(SourceId(0), TripleId(9)).is_err());
        assert!(ds.set_label(TripleId(9), true).is_err());
    }

    #[test]
    fn set_label_creates_gold_when_absent() {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        let t = b.triple("x", "p", "1");
        b.observe(s, t);
        let mut ds = b.build().unwrap();
        assert!(ds.gold().is_none());
        ds.set_label(t, true).unwrap();
        assert_eq!(ds.gold().unwrap().get(t), Some(true));
    }

    #[test]
    fn source_by_name_lookup() {
        let ds = tiny();
        assert_eq!(ds.source_by_name("B"), Some(SourceId(1)));
        assert_eq!(ds.source_by_name("Z"), None);
    }
}
