//! Error types for the fusion library.

use std::fmt;

/// Errors produced while building datasets, estimating quality, or fusing.
#[derive(Debug, Clone, PartialEq)]
pub enum FusionError {
    /// The a-priori probability `alpha` must lie strictly inside `(0, 1)`.
    InvalidAlpha(f64),
    /// A probability-valued parameter fell outside `[0, 1]`.
    InvalidProbability {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The derived false-positive rate `q` exceeded 1; `alpha` violates the
    /// validity condition of Theorem 3.5 (`alpha <= p / (p + r - p*r)`).
    FalsePositiveRateOutOfRange {
        /// Source precision.
        precision: f64,
        /// Source recall.
        recall: f64,
        /// Prior probability of truth.
        alpha: f64,
        /// The derived (invalid) false positive rate.
        q: f64,
    },
    /// Operation needs gold labels but the dataset has none (or too few).
    MissingGold,
    /// Referenced a source that does not exist in the dataset.
    UnknownSource(String),
    /// Referenced a triple index outside the dataset.
    TripleOutOfRange(usize),
    /// A triple has no providing source: its observation set `O_t` is
    /// empty, so no posterior is defined. Raised by dataset finalisation
    /// and by stream batches that introduce a triple without claiming it.
    UnobservedTriple(usize),
    /// A cluster exceeded the bitmask width supported by the exact solver.
    TooManySources {
        /// Number of sources requested.
        requested: usize,
        /// Maximum supported by the operation.
        max: usize,
    },
    /// Dataset text-format parse error.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// Underlying I/O failure (message-only to keep the error `Clone`).
    Io(String),
    /// The training set contains no true (or no false) triples, so a quality
    /// metric is undefined.
    DegenerateTraining(&'static str),
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::InvalidAlpha(a) => {
                write!(f, "alpha must be in (0, 1), got {a}")
            }
            FusionError::InvalidProbability { what, value } => {
                write!(f, "{what} must be a probability in [0, 1], got {value}")
            }
            FusionError::FalsePositiveRateOutOfRange {
                precision,
                recall,
                alpha,
                q,
            } => write!(
                f,
                "derived false-positive rate {q} out of range for p={precision}, \
                 r={recall}, alpha={alpha} (Theorem 3.5 requires alpha <= p/(p+r-p*r))"
            ),
            FusionError::MissingGold => {
                write!(f, "operation requires gold labels but none are available")
            }
            FusionError::UnknownSource(name) => write!(f, "unknown source `{name}`"),
            FusionError::TripleOutOfRange(i) => write!(f, "triple index {i} out of range"),
            FusionError::UnobservedTriple(i) => {
                write!(
                    f,
                    "triple {i} has no providing source (empty observation set)"
                )
            }
            FusionError::TooManySources { requested, max } => {
                write!(
                    f,
                    "{requested} sources exceed the supported maximum of {max}"
                )
            }
            FusionError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            FusionError::Io(msg) => write!(f, "i/o error: {msg}"),
            FusionError::DegenerateTraining(what) => {
                write!(f, "degenerate training data: no {what} triples labelled")
            }
        }
    }
}

impl std::error::Error for FusionError {}

impl From<std::io::Error> for FusionError {
    fn from(e: std::io::Error) -> Self {
        FusionError::Io(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, FusionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(FusionError, &str)> = vec![
            (FusionError::InvalidAlpha(1.5), "alpha"),
            (
                FusionError::InvalidProbability {
                    what: "recall",
                    value: -0.1,
                },
                "recall",
            ),
            (FusionError::MissingGold, "gold"),
            (FusionError::UnknownSource("S9".into()), "S9"),
            (FusionError::TripleOutOfRange(42), "42"),
            (FusionError::UnobservedTriple(3), "no providing source"),
            (
                FusionError::TooManySources {
                    requested: 100,
                    max: 64,
                },
                "100",
            ),
            (
                FusionError::Parse {
                    line: 7,
                    msg: "bad field".into(),
                },
                "line 7",
            ),
            (FusionError::Io("disk".into()), "disk"),
            (FusionError::DegenerateTraining("true"), "true"),
        ];
        for (err, needle) in cases {
            let s = err.to_string();
            assert!(s.contains(needle), "{s:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let err: FusionError = io.into();
        assert!(matches!(err, FusionError::Io(_)));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn fpr_error_mentions_condition() {
        let err = FusionError::FalsePositiveRateOutOfRange {
            precision: 0.2,
            recall: 0.9,
            alpha: 0.9,
            q: 3.2,
        };
        assert!(err.to_string().contains("Theorem 3.5"));
    }
}
