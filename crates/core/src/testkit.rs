//! A tiny seeded property-testing harness (in-tree `proptest` stand-in).
//!
//! Offline builds cannot pull `proptest`, so the workspace's invariant
//! tests run on this module instead: a deterministic [`StdRng`]-driven
//! case generator plus a runner that reports the failing case index and
//! seed on panic. The shape is intentionally close to a hand-rolled
//! `proptest!` block — each property is a closure over a [`Gen`], executed
//! for a fixed number of cases.
//!
//! ```
//! use corrfuse_core::testkit::run_cases;
//!
//! run_cases("addition_commutes", 64, |g| {
//!     let (a, b) = (g.f64_in(0.0, 1.0), g.f64_in(0.0, 1.0));
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::StdRng;

/// Per-case value generator handed to each property execution.
#[derive(Debug)]
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.rng.gen_f64()
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `u64` in `[0, bound)`.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.rng.gen_range(0..bound as usize) as u64
    }

    /// A vector of `len` uniform draws from `[lo, hi)`.
    pub fn vec_f64(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// Bernoulli draw.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }
}

/// Derive a stable 64-bit seed from a property name (FNV-1a).
fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `property` for `cases` generated cases. The generator is seeded
/// from `name`, so every run (and every CI machine) sees the same inputs;
/// a failure message names the case index to make reproduction trivial.
pub fn run_cases<F>(name: &str, cases: usize, mut property: F)
where
    F: FnMut(&mut Gen),
{
    let base = seed_of(name);
    for case in 0..cases {
        let mut gen = Gen {
            rng: StdRng::seed_from_u64(base.wrapping_add(case as u64)),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut gen);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property `{name}` failed at case {case}/{cases} (seed {base:#x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut first = Vec::new();
        run_cases("determinism-probe", 5, |g| first.push(g.f64_in(0.0, 1.0)));
        let mut second = Vec::new();
        run_cases("determinism-probe", 5, |g| second.push(g.f64_in(0.0, 1.0)));
        assert_eq!(first, second);
        let mut other = Vec::new();
        run_cases("other-name", 5, |g| other.push(g.f64_in(0.0, 1.0)));
        assert_ne!(first, other);
    }

    #[test]
    fn generators_respect_bounds() {
        run_cases("bounds", 200, |g| {
            let x = g.f64_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let k = g.usize_in(4, 9);
            assert!((4..9).contains(&k));
            let v = g.vec_f64(7, 0.1, 0.2);
            assert_eq!(v.len(), 7);
            assert!(v.iter().all(|x| (0.1..0.2).contains(x)));
            assert!(g.u64_below(16) < 16);
        });
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_name_the_case() {
        run_cases("always-fails", 3, |_| panic!("boom"));
    }
}
