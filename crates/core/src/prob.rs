//! Numeric utilities for probability computations.
//!
//! The fusion formulas multiply many per-source likelihood contributions;
//! with hundreds of sources the products underflow `f64` long before the
//! posterior saturates. All model code therefore works in log space where
//! possible and funnels through the helpers here, which centralise clamping
//! conventions and numerically-careful summation.

use crate::error::{FusionError, Result};

/// Smallest probability we allow before clamping. Chosen so `ln(EPS_PROB)`
/// is far from `f64` extremes while still dominating any real signal.
pub const EPS_PROB: f64 = 1e-12;

/// Clamp a probability to the open interval `(EPS_PROB, 1 - EPS_PROB)`.
///
/// Used where a zero or one would create infinities in ratios (e.g. a source
/// with empirical recall exactly 0 on a tiny training set).
#[inline]
pub fn clamp_prob(p: f64) -> f64 {
    p.clamp(EPS_PROB, 1.0 - EPS_PROB)
}

/// Validate that `p` is a finite probability in `[0, 1]`.
pub fn check_prob(what: &'static str, p: f64) -> Result<f64> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(FusionError::InvalidProbability { what, value: p })
    }
}

/// Validate an a-priori probability `alpha in (0, 1)`.
pub fn check_alpha(alpha: f64) -> Result<f64> {
    if alpha.is_finite() && alpha > 0.0 && alpha < 1.0 {
        Ok(alpha)
    } else {
        Err(FusionError::InvalidAlpha(alpha))
    }
}

/// Logistic sigmoid, numerically stable at both tails.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Natural-log odds of a probability, with clamping so `logit(0)`/`logit(1)`
/// return large finite values instead of infinities.
#[inline]
pub fn logit(p: f64) -> f64 {
    let p = clamp_prob(p);
    (p / (1.0 - p)).ln()
}

/// Posterior probability from a likelihood ratio `mu = Pr(O|t) / Pr(O|not t)`
/// and prior `alpha`, per Theorem 3.1 / 4.2:
///
/// `Pr(t | O) = 1 / (1 + (1 - alpha)/alpha * 1/mu)`.
///
/// `mu <= 0` (which can arise from truncated inclusion–exclusion sums) maps
/// to probability 0; `mu = +inf` maps to 1.
#[inline]
pub fn posterior_from_mu(mu: f64, alpha: f64) -> f64 {
    if !mu.is_finite() {
        if mu.is_nan() {
            return f64::NAN;
        }
        return if mu > 0.0 { 1.0 } else { 0.0 };
    }
    if mu <= 0.0 {
        return 0.0;
    }
    // posterior = sigmoid(ln mu + logit(alpha)); computed via sigmoid for
    // stability when mu is astronomically large or small.
    sigmoid(mu.ln() + logit(alpha))
}

/// Same as [`posterior_from_mu`] but taking `ln(mu)` directly, avoiding the
/// round-trip through linear space for long products.
#[inline]
pub fn posterior_from_log_mu(log_mu: f64, alpha: f64) -> f64 {
    if log_mu.is_nan() {
        return f64::NAN;
    }
    sigmoid(log_mu + logit(alpha))
}

/// Kahan (compensated) summation. The inclusion–exclusion sums of
/// Theorem 4.2 alternate in sign and can cancel almost completely; naive
/// summation loses the small residual that *is* the answer.
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// A fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let y = value - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    /// Current compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum
    }
}

impl std::iter::FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = KahanSum::new();
        for v in iter {
            acc.add(v);
        }
        acc
    }
}

/// Harmonic mean of precision and recall; `0` when both are `0`.
#[inline]
pub fn f1_score(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_matches_definition() {
        for &x in &[-30.0f64, -2.0, -0.5, 0.0, 0.5, 2.0, 30.0] {
            let direct = 1.0 / (1.0 + (-x).exp());
            assert!((sigmoid(x) - direct).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(800.0), 1.0);
        assert_eq!(sigmoid(-800.0), 0.0);
        assert!(sigmoid(-800.0) >= 0.0);
    }

    #[test]
    fn logit_inverts_sigmoid() {
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn posterior_from_mu_matches_theorem_3_1_formula() {
        // Example 3.3: mu = 0.1, alpha = 0.5 => Pr = 1/(1 + 1/0.1) = 0.0909...
        let p = posterior_from_mu(0.1, 0.5);
        assert!((p - 1.0 / 11.0).abs() < 1e-12);
        // mu = 1.6 => 0.6153...
        let p = posterior_from_mu(1.6, 0.5);
        assert!((p - 1.6 / 2.6).abs() < 1e-12);
    }

    #[test]
    fn posterior_edge_cases() {
        assert_eq!(posterior_from_mu(0.0, 0.5), 0.0);
        assert_eq!(posterior_from_mu(-3.0, 0.5), 0.0);
        assert_eq!(posterior_from_mu(f64::INFINITY, 0.5), 1.0);
        assert!(posterior_from_mu(f64::NAN, 0.5).is_nan());
    }

    #[test]
    fn posterior_respects_prior() {
        // Uninformative evidence (mu = 1) returns the prior.
        for &a in &[0.1, 0.5, 0.9] {
            assert!((posterior_from_mu(1.0, a) - a).abs() < 1e-12);
        }
    }

    #[test]
    fn log_and_linear_posterior_agree() {
        for &mu in &[1e-6, 0.3, 1.0, 7.5, 1e9] {
            let lin = posterior_from_mu(mu, 0.3);
            let log = posterior_from_log_mu(mu.ln(), 0.3);
            assert!((lin - log).abs() < 1e-12, "mu={mu}");
        }
    }

    #[test]
    fn kahan_beats_naive_on_cancelling_series() {
        // 1.0 + 1e-16 * 1000: naive summation never leaves 1.0 because each
        // tiny addend rounds away; the compensation preserves them.
        let mut naive = 1.0f64;
        let mut k = KahanSum::new();
        k.add(1.0);
        for _ in 0..1000 {
            naive += 1e-16;
            k.add(1e-16);
        }
        assert_eq!(naive, 1.0, "naive sum loses the addends");
        let want = 1.0 + 1000.0 * 1e-16;
        assert!((k.value() - want).abs() < 1e-15, "kahan = {}", k.value());
    }

    #[test]
    fn kahan_from_iterator() {
        let k: KahanSum = vec![0.1; 10].into_iter().collect();
        assert!((k.value() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn clamp_prob_bounds() {
        assert_eq!(clamp_prob(-1.0), EPS_PROB);
        assert_eq!(clamp_prob(2.0), 1.0 - EPS_PROB);
        assert_eq!(clamp_prob(0.5), 0.5);
    }

    #[test]
    fn check_prob_rejects_out_of_range() {
        assert!(check_prob("x", 0.5).is_ok());
        assert!(check_prob("x", -0.01).is_err());
        assert!(check_prob("x", 1.01).is_err());
        assert!(check_prob("x", f64::NAN).is_err());
    }

    #[test]
    fn check_alpha_rejects_bounds() {
        assert!(check_alpha(0.5).is_ok());
        assert!(check_alpha(0.0).is_err());
        assert!(check_alpha(1.0).is_err());
        assert!(check_alpha(f64::INFINITY).is_err());
    }

    #[test]
    fn f1_handles_zero() {
        assert_eq!(f1_score(0.0, 0.0), 0.0);
        assert!((f1_score(1.0, 0.5) - 2.0 / 3.0).abs() < 1e-12);
    }
}
