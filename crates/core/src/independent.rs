//! PrecRec: Bayesian fusion of independent sources (§3, Theorem 3.1).
//!
//! Given per-source recall `r_i` and false-positive rate `q_i`, the
//! likelihood ratio for a triple `t` is
//!
//! ```text
//! mu = prod_{S_i in S_t} r_i/q_i  *  prod_{S_i in S_t̄} (1-r_i)/(1-q_i)
//! ```
//!
//! and `Pr(t | O_t) = 1 / (1 + (1-alpha)/alpha * 1/mu)`. Sources outside
//! the scope of `t` contribute nothing (§2.1). With hundreds of sources the
//! product spans many orders of magnitude, so we accumulate `ln mu`.

use crate::bits::BitSet;
use crate::dataset::{Dataset, GoldLabels};
use crate::error::{FusionError, Result};
use crate::prob::{check_alpha, clamp_prob, posterior_from_log_mu};
use crate::quality::{QualityEstimator, SourceQuality};
use crate::triple::TripleId;

/// The PrecRec model: per-source log contributions plus the prior.
#[derive(Debug, Clone)]
pub struct PrecRecModel {
    /// `ln(r_i / q_i)` — contribution of a provider.
    log_pos: Vec<f64>,
    /// `ln((1 - r_i) / (1 - q_i))` — contribution of an in-scope non-provider.
    log_neg: Vec<f64>,
    /// The clamped `(r_i, q_i)` pairs behind the log contributions, kept so
    /// adapters (e.g. [`crate::solver::PrecRecSolver`]) can reuse exactly
    /// the rates this model scores with.
    rates: Vec<(f64, f64)>,
    alpha: f64,
}

impl PrecRecModel {
    /// Cap applied to a derived false-positive rate whose Theorem 3.5
    /// value exceeds 1 (the theorem's validity condition is violated: the
    /// configured prior cannot account for the source's error volume).
    ///
    /// An uncapped clamp to `1 - eps` would turn the source's
    /// *non-provision* into near-infinite positive evidence
    /// (`ln((1-r)/(1-q)) -> +inf`) and let one pathological source decide
    /// every triple; `Q_CAP = 0.95` bounds its per-triple influence to
    /// `ln((1-r)/0.05)`, comparable to one very good provider.
    pub const Q_CAP: f64 = 0.95;

    /// Build from already-estimated source quality. `q_i` is derived via
    /// Theorem 3.5; rates are nudged into the open unit interval so every
    /// ratio is finite, and invalid derivations (`q > 1`) are capped at
    /// [`Self::Q_CAP`].
    pub fn from_quality(qualities: &[SourceQuality], alpha: f64) -> Result<Self> {
        check_alpha(alpha)?;
        let mut log_pos = Vec::with_capacity(qualities.len());
        let mut log_neg = Vec::with_capacity(qualities.len());
        let mut rates = Vec::with_capacity(qualities.len());
        for sq in qualities {
            let q_raw = match crate::quality::derive_fpr(sq.precision, sq.recall, alpha) {
                Ok(q) => q,
                Err(FusionError::FalsePositiveRateOutOfRange { .. }) => Self::Q_CAP,
                Err(e) => return Err(e),
            };
            let r = clamp_prob(sq.recall);
            let q = clamp_prob(q_raw);
            log_pos.push((r / q).ln());
            log_neg.push(((1.0 - r) / (1.0 - q)).ln());
            rates.push((r, q));
        }
        Ok(PrecRecModel {
            log_pos,
            log_neg,
            rates,
            alpha,
        })
    }

    /// Build from explicit `(r_i, q_i)` pairs (e.g. synthetic ground truth).
    pub fn from_rates(recalls: &[f64], fprs: &[f64], alpha: f64) -> Result<Self> {
        check_alpha(alpha)?;
        assert_eq!(recalls.len(), fprs.len());
        let mut log_pos = Vec::with_capacity(recalls.len());
        let mut log_neg = Vec::with_capacity(recalls.len());
        let mut rates = Vec::with_capacity(recalls.len());
        for (&r, &q) in recalls.iter().zip(fprs) {
            crate::prob::check_prob("recall", r)?;
            crate::prob::check_prob("false positive rate", q)?;
            let r = clamp_prob(r);
            let q = clamp_prob(q);
            log_pos.push((r / q).ln());
            log_neg.push(((1.0 - r) / (1.0 - q)).ln());
            rates.push((r, q));
        }
        Ok(PrecRecModel {
            log_pos,
            log_neg,
            rates,
            alpha,
        })
    }

    /// Estimate quality from labelled data and build the model in one step
    /// (the paper's protocol: quality from the gold standard, `alpha`
    /// supplied or taken as the empirical true fraction).
    pub fn fit(ds: &Dataset, gold: &GoldLabels, alpha: Option<f64>) -> Result<Self> {
        let alpha = match alpha {
            Some(a) => a,
            None => gold.empirical_alpha()?,
        };
        let qualities = QualityEstimator::new().estimate(ds, gold)?;
        Self::from_quality(&qualities, alpha)
    }

    /// Number of sources the model covers.
    pub fn n_sources(&self) -> usize {
        self.log_pos.len()
    }

    /// The prior `Pr(t) = alpha`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The clamped `(recall, false-positive rate)` pair the model scores
    /// source `s` with (after Theorem 3.5 derivation and capping).
    pub fn effective_rates(&self, s: usize) -> (f64, f64) {
        self.rates[s]
    }

    /// `ln mu` for a triple with the given provider set, counting only
    /// sources in `scope`.
    pub fn log_mu(&self, providers: &BitSet, scope: &BitSet) -> f64 {
        debug_assert_eq!(providers.len(), self.log_pos.len());
        let mut acc = 0.0;
        for s in scope.iter_ones() {
            acc += if providers.get(s) {
                self.log_pos[s]
            } else {
                self.log_neg[s]
            };
        }
        acc
    }

    /// Correctness probability `Pr(t | O_t)` (Theorem 3.1).
    pub fn score(&self, providers: &BitSet, scope: &BitSet) -> f64 {
        posterior_from_log_mu(self.log_mu(providers, scope), self.alpha)
    }

    /// Score one triple of a dataset.
    pub fn score_triple(&self, ds: &Dataset, t: TripleId) -> f64 {
        self.score(ds.providers(t), &ds.scope_mask(t))
    }

    /// Score every triple of a dataset.
    pub fn score_all(&self, ds: &Dataset) -> Vec<f64> {
        ds.triples().map(|t| self.score_triple(ds, t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn figure1() -> Dataset {
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (1..=5).map(|i| b.source(format!("S{i}"))).collect();
        let rows: [(&str, bool, &[usize]); 10] = [
            ("t1", true, &[1, 2, 4, 5]),
            ("t2", false, &[1, 2]),
            ("t3", true, &[3]),
            ("t4", true, &[2, 3, 4, 5]),
            ("t5", false, &[2, 3]),
            ("t6", true, &[1, 4, 5]),
            ("t7", true, &[1, 2, 3]),
            ("t8", false, &[1, 2, 4, 5]),
            ("t9", false, &[1, 2, 4, 5]),
            ("t10", true, &[1, 3, 4, 5]),
        ];
        for (name, truth, provs) in rows {
            let t = b.triple("Obama", "fact", name);
            for &p in provs {
                b.observe(sources[p - 1], t);
            }
            b.label(t, truth);
        }
        b.build().unwrap()
    }

    /// Paper rates (Figure 1b + §3.1): r_i and q_i at alpha = 0.5.
    fn paper_rates() -> (Vec<f64>, Vec<f64>) {
        (
            vec![4.0 / 6.0, 3.0 / 6.0, 4.0 / 6.0, 4.0 / 6.0, 4.0 / 6.0],
            vec![3.0 / 6.0, 4.0 / 6.0, 1.0 / 6.0, 2.0 / 6.0, 2.0 / 6.0],
        )
    }

    #[test]
    fn example_3_3_t2_probability() {
        // t2 provided by {S1,S2}: mu = 0.1, Pr = 0.09.
        let (r, q) = paper_rates();
        let model = PrecRecModel::from_rates(&r, &q, 0.5).unwrap();
        let ds = figure1();
        let t2 = TripleId(1);
        let mu = model.log_mu(ds.providers(t2), &ds.scope_mask(t2)).exp();
        assert!((mu - 0.1).abs() < 1e-9, "mu={mu}");
        let p = model.score_triple(&ds, t2);
        assert!((p - 1.0 / 11.0).abs() < 1e-9, "Pr(t2)={p}");
    }

    #[test]
    fn example_3_3_t8_misclassified_under_independence() {
        // t8 provided by {S1,S2,S4,S5}: mu = 1.6, Pr = 0.62 — wrongly "true".
        let (r, q) = paper_rates();
        let model = PrecRecModel::from_rates(&r, &q, 0.5).unwrap();
        let ds = figure1();
        let t8 = TripleId(7);
        let mu = model.log_mu(ds.providers(t8), &ds.scope_mask(t8)).exp();
        assert!((mu - 1.6).abs() < 1e-9, "mu={mu}");
        let p = model.score_triple(&ds, t8);
        assert!((p - 1.6 / 2.6).abs() < 1e-9);
        assert!(p > 0.5, "independence assumption wrongly accepts t8");
    }

    #[test]
    fn fit_reproduces_from_rates_on_figure1() {
        let ds = figure1();
        let fitted = PrecRecModel::fit(&ds, ds.gold().unwrap(), Some(0.5)).unwrap();
        let (r, q) = paper_rates();
        let manual = PrecRecModel::from_rates(&r, &q, 0.5).unwrap();
        for t in ds.triples() {
            let a = fitted.score_triple(&ds, t);
            let b = manual.score_triple(&ds, t);
            assert!((a - b).abs() < 1e-9, "{t}: {a} vs {b}");
        }
    }

    #[test]
    fn overview_claim_precrec_f1_on_motivating_example() {
        // §2.3: PrecRec achieves precision .75, recall 1 on Figure 1.
        let ds = figure1();
        let model = PrecRecModel::fit(&ds, ds.gold().unwrap(), Some(0.5)).unwrap();
        let gold = ds.gold().unwrap();
        let (mut tp, mut fp, mut fnn) = (0, 0, 0);
        for t in ds.triples() {
            let decided_true = model.score_triple(&ds, t) > 0.5;
            let truth = gold.get(t).unwrap();
            match (decided_true, truth) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fnn += 1,
                _ => {}
            }
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / (tp + fnn) as f64;
        assert!((precision - 0.75).abs() < 1e-9, "precision={precision}");
        assert!((recall - 1.0).abs() < 1e-9, "recall={recall}");
    }

    #[test]
    fn proposition_3_2_good_source_monotonicity() {
        // Adding a good source that provides t increases Pr(t); one that
        // doesn't provide t decreases it. Bad sources do the opposite.
        let base_r = vec![0.6, 0.6];
        let base_q = vec![0.2, 0.2];
        let providers2 = BitSet::from_indices(2, [0]);
        let scope2 = BitSet::from_indices(2, [0, 1]);
        let base = PrecRecModel::from_rates(&base_r, &base_q, 0.5).unwrap();
        let p_base = base.score(&providers2, &scope2);

        // Good extra source (r > q).
        let good = PrecRecModel::from_rates(&[0.6, 0.6, 0.7], &[0.2, 0.2, 0.3], 0.5).unwrap();
        let p_with = good.score(
            &BitSet::from_indices(3, [0, 2]),
            &BitSet::from_indices(3, [0, 1, 2]),
        );
        let p_without = good.score(
            &BitSet::from_indices(3, [0]),
            &BitSet::from_indices(3, [0, 1, 2]),
        );
        assert!(p_with > p_base);
        assert!(p_without < p_base);

        // Bad extra source (r < q).
        let bad = PrecRecModel::from_rates(&[0.6, 0.6, 0.3], &[0.2, 0.2, 0.7], 0.5).unwrap();
        let p_with = bad.score(
            &BitSet::from_indices(3, [0, 2]),
            &BitSet::from_indices(3, [0, 1, 2]),
        );
        let p_without = bad.score(
            &BitSet::from_indices(3, [0]),
            &BitSet::from_indices(3, [0, 1, 2]),
        );
        assert!(p_with < p_base);
        assert!(p_without > p_base);
    }

    #[test]
    fn proposition_3_6_precision_and_recall_ordering() {
        // Higher-precision provider => higher probability (same recall).
        let hi_p =
            PrecRecModel::from_quality(&[SourceQuality::new(0.9, 0.5).unwrap()], 0.5).unwrap();
        let lo_p =
            PrecRecModel::from_quality(&[SourceQuality::new(0.6, 0.5).unwrap()], 0.5).unwrap();
        let providers = BitSet::from_indices(1, [0]);
        let scope = BitSet::from_indices(1, [0]);
        assert!(hi_p.score(&providers, &scope) > lo_p.score(&providers, &scope));

        // Higher-recall good non-provider => lower probability (same precision).
        let hi_r =
            PrecRecModel::from_quality(&[SourceQuality::new(0.8, 0.9).unwrap()], 0.5).unwrap();
        let lo_r =
            PrecRecModel::from_quality(&[SourceQuality::new(0.8, 0.3).unwrap()], 0.5).unwrap();
        let nobody = BitSet::new(1);
        assert!(hi_r.score(&nobody, &scope) < lo_r.score(&nobody, &scope));
    }

    #[test]
    fn out_of_scope_sources_are_ignored() {
        let model = PrecRecModel::from_rates(&[0.8, 0.8], &[0.1, 0.1], 0.5).unwrap();
        let providers = BitSet::from_indices(2, [0]);
        let full_scope = BitSet::from_indices(2, [0, 1]);
        let narrow_scope = BitSet::from_indices(2, [0]);
        // With S2 out of scope its non-provision is not held against t.
        assert!(model.score(&providers, &narrow_scope) > model.score(&providers, &full_scope));
    }

    #[test]
    fn log_space_survives_many_sources() {
        // 500 good sources all providing: probability saturates at 1 and
        // stays finite.
        let n = 500;
        let r = vec![0.8; n];
        let q = vec![0.1; n];
        let model = PrecRecModel::from_rates(&r, &q, 0.5).unwrap();
        let providers = BitSet::from_indices(n, 0..n);
        let scope = BitSet::from_indices(n, 0..n);
        let p = model.score(&providers, &scope);
        assert!(p.is_finite());
        assert!(p > 1.0 - 1e-9);
        // And nobody providing: probability ~ 0.
        let nobody = BitSet::new(n);
        let p = model.score(&nobody, &scope);
        assert!(p < 1e-9);
    }

    #[test]
    fn empirical_alpha_used_when_not_supplied() {
        let ds = figure1();
        let model = PrecRecModel::fit(&ds, ds.gold().unwrap(), None).unwrap();
        assert!((model.alpha() - 0.6).abs() < 1e-12); // 6 true / 10
    }

    #[test]
    fn degenerate_rates_are_clamped_not_fatal() {
        let model = PrecRecModel::from_rates(&[0.0, 1.0], &[0.0, 1.0], 0.5).unwrap();
        let providers = BitSet::from_indices(2, [0, 1]);
        let scope = BitSet::from_indices(2, [0, 1]);
        let p = model.score(&providers, &scope);
        assert!(p.is_finite());
    }

    #[test]
    fn invalid_fpr_source_is_capped_not_explosive() {
        // p=0.33 at alpha=0.5 with r=0.52 drives the Theorem 3.5 q over 1;
        // the cap bounds its influence instead of neutralising it or
        // letting non-provision become +inf evidence.
        let qualities = [
            SourceQuality::new(0.33, 0.52).unwrap(),
            SourceQuality::new(0.8, 0.5).unwrap(),
        ];
        let model = PrecRecModel::from_quality(&qualities, 0.5).unwrap();
        let scope = BitSet::from_indices(2, [0, 1]);
        let only_good = BitSet::from_indices(2, [1]);
        let both = BitSet::from_indices(2, [0, 1]);
        let a = model.score(&only_good, &scope);
        let b = model.score(&both, &scope);
        // The capped bad source still penalises provision...
        assert!(b < a, "{b} should be below {a}");
        // ...but by a bounded amount: the log-odds difference equals
        // ln(r/Q_CAP) - ln((1-r)/(1-Q_CAP)), both finite.
        let max_swing = (0.52f64 / PrecRecModel::Q_CAP).ln().abs()
            + ((1.0 - 0.52f64) / (1.0 - PrecRecModel::Q_CAP)).ln().abs();
        let swing = (crate::prob::logit(a) - crate::prob::logit(b)).abs();
        assert!(swing <= max_swing + 1e-9, "swing {swing} > {max_swing}");
    }

    #[test]
    fn score_all_covers_every_triple() {
        let ds = figure1();
        let model = PrecRecModel::fit(&ds, ds.gold().unwrap(), Some(0.5)).unwrap();
        let scores = model.score_all(&ds);
        assert_eq!(scores.len(), ds.n_triples());
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }
}
