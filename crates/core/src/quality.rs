//! Source quality: precision, recall, and the derived false-positive rate.
//!
//! The paper measures each source `S_i` by precision
//! `p_i = Pr(t | S_i |= t)` (Eq. 1) and recall `r_i = Pr(S_i |= t | t)`
//! (Eq. 2), both computable from labelled training data. The Bayesian
//! models additionally need the false-positive rate
//! `q_i = Pr(S_i |= t | not t)`, which §3.2 shows should *not* be computed
//! directly from labelled false triples (it would be biased by the quality
//! of other sources — Example 3.4). Instead Theorem 3.5 derives it:
//!
//! ```text
//! q_i = alpha / (1 - alpha) * (1 - p_i) / p_i * r_i
//! ```
//!
//! valid when `alpha <= p_i / (p_i + r_i - p_i * r_i)`.

use crate::dataset::{Dataset, GoldLabels, SourceId};
use crate::error::{FusionError, Result};
use crate::prob::{check_alpha, check_prob};

/// Precision/recall of a single source, as estimated from training data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceQuality {
    /// `Pr(t | S |= t)` — fraction of the source's labelled output that is true.
    pub precision: f64,
    /// `Pr(S |= t | t)` — fraction of in-scope labelled-true triples provided.
    pub recall: f64,
}

impl SourceQuality {
    /// Construct with validation.
    pub fn new(precision: f64, recall: f64) -> Result<Self> {
        check_prob("precision", precision)?;
        check_prob("recall", recall)?;
        Ok(SourceQuality { precision, recall })
    }

    /// Derived false-positive rate per Theorem 3.5 (strict: errors if the
    /// validity condition fails and `q` would exceed 1).
    pub fn false_positive_rate(&self, alpha: f64) -> Result<f64> {
        derive_fpr(self.precision, self.recall, alpha)
    }

    /// A source is *good* (Theorem 3.5, second part) iff `p > alpha`,
    /// equivalently `q < r`: it is more likely to provide a true triple
    /// than a false one.
    pub fn is_good(&self, alpha: f64) -> bool {
        self.precision > alpha
    }
}

/// Theorem 3.5: derive `q` from `(p, r, alpha)`.
///
/// Degenerate cases: `p = 0` with `r = 0` yields `q = 0` (the source
/// provides nothing that is labelled; we treat it as uninformative);
/// `p = 0` with `r > 0` is impossible for consistent estimates and is
/// rejected.
pub fn derive_fpr(precision: f64, recall: f64, alpha: f64) -> Result<f64> {
    check_prob("precision", precision)?;
    check_prob("recall", recall)?;
    check_alpha(alpha)?;
    if precision == 0.0 {
        if recall == 0.0 {
            return Ok(0.0);
        }
        return Err(FusionError::InvalidProbability {
            what: "precision (zero with positive recall)",
            value: precision,
        });
    }
    let q = alpha / (1.0 - alpha) * (1.0 - precision) / precision * recall;
    if q > 1.0 {
        return Err(FusionError::FalsePositiveRateOutOfRange {
            precision,
            recall,
            alpha,
            q,
        });
    }
    Ok(q)
}

/// Like [`derive_fpr`] but clamps invalid rates into `[0, 1]` instead of
/// erroring. Useful when `alpha` is fixed by protocol and a noisy source
/// would otherwise abort the whole fit.
pub fn derive_fpr_clamped(precision: f64, recall: f64, alpha: f64) -> f64 {
    match derive_fpr(precision, recall, alpha) {
        Ok(q) => q,
        Err(FusionError::FalsePositiveRateOutOfRange { .. }) => 1.0,
        Err(_) => 0.0,
    }
}

/// The largest `alpha` for which Theorem 3.5 yields a valid `q` for this
/// `(p, r)`: `alpha_max = p / (p + r - p*r)`.
pub fn max_valid_alpha(precision: f64, recall: f64) -> f64 {
    let denom = precision + recall - precision * recall;
    if denom == 0.0 {
        1.0
    } else {
        (precision / denom).min(1.0)
    }
}

/// Estimates per-source [`SourceQuality`] from labelled data.
///
/// `smoothing` adds pseudo-counts (add-`s` smoothing) to numerator and
/// denominator of both metrics; `0.0` reproduces the paper's raw ratios.
#[derive(Debug, Clone, Copy)]
pub struct QualityEstimator {
    /// Pseudo-count added to numerators (`s`) and denominators (`2s`).
    pub smoothing: f64,
}

impl Default for QualityEstimator {
    fn default() -> Self {
        QualityEstimator { smoothing: 0.0 }
    }
}

impl QualityEstimator {
    /// Raw-ratio estimator (paper protocol).
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimator with add-`s` smoothing.
    pub fn smoothed(s: f64) -> Self {
        QualityEstimator { smoothing: s }
    }

    /// Estimate quality for every source.
    ///
    /// Recall is *scope-aware*: the denominator for source `i` counts only
    /// labelled-true triples within `i`'s scope, so complementary sources
    /// are not penalised for domains they never cover (§2.2).
    pub fn estimate(&self, ds: &Dataset, gold: &GoldLabels) -> Result<Vec<SourceQuality>> {
        if gold.labelled_count() == 0 {
            return Err(FusionError::MissingGold);
        }
        let n = ds.n_sources();
        let mut tp = vec![0usize; n]; // labelled-true provided
        let mut fp = vec![0usize; n]; // labelled-false provided
        let mut scope_true = vec![0usize; n]; // labelled-true in scope

        for (t, truth) in gold.iter_labelled() {
            if t.index() >= ds.n_triples() {
                return Err(FusionError::TripleOutOfRange(t.index()));
            }
            let providers = ds.providers(t);
            if truth {
                for s in 0..n {
                    if ds.in_scope(SourceId(s as u32), t) {
                        scope_true[s] += 1;
                        if providers.get(s) {
                            tp[s] += 1;
                        }
                    }
                }
            } else {
                for s in providers.iter_ones() {
                    fp[s] += 1;
                }
            }
        }

        let s = self.smoothing;
        let qualities = (0..n)
            .map(|i| quality_from_counts(tp[i], fp[i], scope_true[i], s))
            .collect();
        Ok(qualities)
    }

    /// Estimate quality for one source (convenience for reports).
    pub fn estimate_one(
        &self,
        ds: &Dataset,
        gold: &GoldLabels,
        source: SourceId,
    ) -> Result<SourceQuality> {
        let all = self.estimate(ds, gold)?;
        all.get(source.index())
            .copied()
            .ok_or_else(|| FusionError::UnknownSource(format!("{source}")))
    }
}

/// [`SourceQuality`] from the estimator's raw counts: `tp` labelled-true
/// triples provided (in scope), `fp` labelled-false triples provided,
/// `scope_true` labelled-true triples in the source's scope.
///
/// This is the single arithmetic behind [`QualityEstimator::estimate`],
/// exposed so incremental callers (`corrfuse-stream`) that maintain the
/// counts under deltas recompute *bit-identical* qualities without
/// rescanning the labelled set.
pub fn quality_from_counts(
    tp: usize,
    fp: usize,
    scope_true: usize,
    smoothing: f64,
) -> SourceQuality {
    let s = smoothing;
    let provided = tp + fp;
    let precision = if provided == 0 && s == 0.0 {
        // No labelled output: uninformative source.
        0.0
    } else {
        (tp as f64 + s) / (provided as f64 + 2.0 * s)
    };
    let recall = if scope_true == 0 && s == 0.0 {
        0.0
    } else {
        (tp as f64 + s) / (scope_true as f64 + 2.0 * s)
    };
    SourceQuality { precision, recall }
}

/// Count-based false-positive rate used by the estimators.
///
/// Substituting the empirical definitions of `p` and `r` into Theorem 3.5
/// collapses to `q = alpha/(1-alpha) * FP / N_true`: the `(1-p)/p * r`
/// product is exactly `FP / N_true`. This form stays defined even when the
/// source has no true positives (where `p = r = 0` makes the ratio form
/// indeterminate), and with the empirical `alpha = N_true / N` it equals
/// the direct rate `FP / N_false`.
pub fn fpr_from_counts(false_positives: usize, n_true: usize, alpha: f64) -> Result<f64> {
    check_alpha(alpha)?;
    if n_true == 0 {
        return Err(FusionError::DegenerateTraining("true"));
    }
    let q = alpha / (1.0 - alpha) * false_positives as f64 / n_true as f64;
    Ok(q.min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    /// Build the paper's Figure 1 dataset (duplicated in corrfuse-synth for
    /// public use; kept inline here so core tests have no cyclic deps).
    fn figure1() -> Dataset {
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (1..=5).map(|i| b.source(format!("S{i}"))).collect();
        // (triple, truth, providers)
        let rows: [(&str, bool, &[usize]); 10] = [
            ("t1", true, &[1, 2, 4, 5]),
            ("t2", false, &[1, 2]),
            ("t3", true, &[3]),
            ("t4", true, &[2, 3, 4, 5]),
            ("t5", false, &[2, 3]),
            ("t6", true, &[1, 4, 5]),
            ("t7", true, &[1, 2, 3]),
            ("t8", false, &[1, 2, 4, 5]),
            ("t9", false, &[1, 2, 4, 5]),
            ("t10", true, &[1, 3, 4, 5]),
        ];
        for (name, truth, provs) in rows {
            let t = b.triple("Obama", "fact", name);
            for &p in provs {
                b.observe(sources[p - 1], t);
            }
            b.label(t, truth);
        }
        b.build().unwrap()
    }

    #[test]
    fn figure_1b_source_quality() {
        let ds = figure1();
        let q = QualityEstimator::new()
            .estimate(&ds, ds.gold().unwrap())
            .unwrap();
        let expect = [
            (4.0 / 7.0, 4.0 / 6.0), // S1: 0.57, 0.67
            (3.0 / 7.0, 3.0 / 6.0), // S2: 0.43, 0.5
            (4.0 / 5.0, 4.0 / 6.0), // S3: 0.8, 0.67
            (4.0 / 6.0, 4.0 / 6.0), // S4: 0.67, 0.67
            (4.0 / 6.0, 4.0 / 6.0), // S5: 0.67, 0.67
        ];
        for (i, (p, r)) in expect.iter().enumerate() {
            assert!((q[i].precision - p).abs() < 1e-12, "S{} precision", i + 1);
            assert!((q[i].recall - r).abs() < 1e-12, "S{} recall", i + 1);
        }
    }

    #[test]
    fn figure_1_false_positive_rates() {
        // Paper (§3.1): q1=0.5, q2=0.67, q3=0.167, q4=q5=0.33 at alpha=0.5.
        let ds = figure1();
        let q = QualityEstimator::new()
            .estimate(&ds, ds.gold().unwrap())
            .unwrap();
        let expect = [0.5, 4.0 / 6.0, 1.0 / 6.0, 2.0 / 6.0, 2.0 / 6.0];
        for (i, want) in expect.iter().enumerate() {
            let got = q[i].false_positive_rate(0.5).unwrap();
            assert!(
                (got - want).abs() < 1e-12,
                "q{} got {got} want {want}",
                i + 1
            );
        }
    }

    #[test]
    fn theorem_3_5_worked_example() {
        // §3.2: p=0.57 (4/7), r=0.67 (4/6), alpha=0.5 -> q = 0.5.
        let q = derive_fpr(4.0 / 7.0, 4.0 / 6.0, 0.5).unwrap();
        assert!((q - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fpr_counts_form_matches_ratio_form() {
        // q = alpha/(1-alpha) * (1-p)/p * r  ==  alpha/(1-alpha) * FP/Ntrue.
        let (tp, fp, n_true) = (4.0, 3.0, 6.0);
        let p = tp / (tp + fp);
        let r = tp / n_true;
        for &alpha in &[0.2, 0.5, 0.6] {
            let via_ratio = derive_fpr(p, r, alpha).unwrap();
            let via_counts = fpr_from_counts(fp as usize, n_true as usize, alpha).unwrap();
            assert!((via_ratio - via_counts).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_alpha_rejected() {
        assert!(derive_fpr(0.5, 0.5, 0.0).is_err());
        assert!(derive_fpr(0.5, 0.5, 1.0).is_err());
    }

    #[test]
    fn q_out_of_range_detected_and_clamped_variant() {
        // Low precision + high alpha pushes q over 1.
        let err = derive_fpr(0.1, 0.9, 0.9);
        assert!(matches!(
            err,
            Err(FusionError::FalsePositiveRateOutOfRange { .. })
        ));
        assert_eq!(derive_fpr_clamped(0.1, 0.9, 0.9), 1.0);
    }

    #[test]
    fn max_valid_alpha_is_the_boundary() {
        for &(p, r) in &[(0.6, 0.4), (0.9, 0.9), (0.3, 0.8)] {
            let a_max = max_valid_alpha(p, r);
            // Just below the boundary: valid.
            assert!(derive_fpr(p, r, a_max - 1e-9).is_ok());
            // Just above: invalid (when boundary < 1).
            if a_max < 1.0 - 1e-9 {
                assert!(derive_fpr(p, r, a_max + 1e-9).is_err());
            }
        }
    }

    #[test]
    fn good_source_iff_precision_above_alpha() {
        // Theorem 3.5: p > alpha => q < r.
        for &(p, r, alpha) in &[(0.6, 0.5, 0.5), (0.8, 0.3, 0.5), (0.52, 0.9, 0.5)] {
            let sq = SourceQuality::new(p, r).unwrap();
            assert!(sq.is_good(alpha));
            let q = sq.false_positive_rate(alpha).unwrap();
            assert!(q < r, "p={p} r={r}: q={q} should be < r");
        }
        // p < alpha => q > r.
        let sq = SourceQuality::new(0.4, 0.5).unwrap();
        let q = sq.false_positive_rate(0.5).unwrap();
        assert!(!sq.is_good(0.5));
        assert!(q > sq.recall);
    }

    #[test]
    fn degenerate_zero_precision_zero_recall() {
        assert_eq!(derive_fpr(0.0, 0.0, 0.5).unwrap(), 0.0);
        assert!(derive_fpr(0.0, 0.5, 0.5).is_err());
    }

    #[test]
    fn estimator_requires_labels() {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        let t = b.triple("x", "p", "1");
        b.observe(s, t);
        let ds = b.build().unwrap();
        let empty = GoldLabels::new(1);
        assert!(QualityEstimator::new().estimate(&ds, &empty).is_err());
    }

    #[test]
    fn smoothing_pulls_towards_half() {
        let ds = figure1();
        let raw = QualityEstimator::new()
            .estimate(&ds, ds.gold().unwrap())
            .unwrap();
        let smoothed = QualityEstimator::smoothed(5.0)
            .estimate(&ds, ds.gold().unwrap())
            .unwrap();
        for (r, s) in raw.iter().zip(&smoothed) {
            assert!((s.precision - 0.5).abs() <= (r.precision - 0.5).abs() + 1e-12);
            assert!((s.recall - 0.5).abs() <= (r.recall - 0.5).abs() + 1e-12);
        }
    }

    #[test]
    fn scope_aware_recall_ignores_out_of_scope_truths() {
        use crate::dataset::Domain;
        let mut b = DatasetBuilder::new();
        let s1 = b.source("A"); // covers domain 1 only
        let s2 = b.source("B"); // covers both
        let t1 = b.triple("x", "p", "1");
        let t2 = b.triple("y", "p", "2");
        b.set_domain(t1, Domain(1));
        b.set_domain(t2, Domain(2));
        b.observe(s1, t1);
        b.observe(s2, t1);
        b.observe(s2, t2);
        b.label(t1, true);
        b.label(t2, true);
        let ds = b.build().unwrap();
        let q = QualityEstimator::new()
            .estimate(&ds, ds.gold().unwrap())
            .unwrap();
        // A provides 1 of the 1 true triples in its scope -> recall 1.0,
        // despite providing 1 of 2 overall.
        assert!((q[0].recall - 1.0).abs() < 1e-12);
        assert!((q[1].recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_one_matches_bulk() {
        let ds = figure1();
        let bulk = QualityEstimator::new()
            .estimate(&ds, ds.gold().unwrap())
            .unwrap();
        let one = QualityEstimator::new()
            .estimate_one(&ds, ds.gold().unwrap(), SourceId(2))
            .unwrap();
        assert_eq!(bulk[2], one);
    }

    #[test]
    fn quality_from_counts_matches_estimator_special_cases() {
        // Uninformative source: no labelled output, nothing in scope.
        let q = quality_from_counts(0, 0, 0, 0.0);
        assert_eq!((q.precision, q.recall), (0.0, 0.0));
        // Smoothing overrides the zero-count special case.
        let q = quality_from_counts(0, 0, 0, 1.0);
        assert_eq!((q.precision, q.recall), (0.5, 0.5));
        // Plain ratios.
        let q = quality_from_counts(4, 3, 6, 0.0);
        assert_eq!(q.precision, 4.0 / 7.0);
        assert_eq!(q.recall, 4.0 / 6.0);
    }

    #[test]
    fn source_quality_validation() {
        assert!(SourceQuality::new(1.1, 0.5).is_err());
        assert!(SourceQuality::new(0.5, -0.1).is_err());
        assert!(SourceQuality::new(0.5, 0.5).is_ok());
    }
}
