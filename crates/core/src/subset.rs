//! Enumeration of subsets of a `u64` bitmask.
//!
//! The exact solver (Theorem 4.2) sums over *all* subsets of the
//! non-providing sources; the elastic approximation (Algorithm 1) sums over
//! subsets of a fixed cardinality per level. Both loops live here so they
//! can be tested in isolation and shared between solvers.

/// Iterate over every submask of `mask`, including the empty set and `mask`
/// itself. Yields `2^popcount(mask)` items.
///
/// Uses the standard decrement-and-mask walk, which enumerates submasks in
/// decreasing numeric order; order is unspecified for callers.
pub fn submasks(mask: u64) -> SubmaskIter {
    SubmaskIter {
        mask,
        current: mask,
        done: false,
    }
}

/// Iterator over all submasks of a mask. See [`submasks`].
#[derive(Debug, Clone)]
pub struct SubmaskIter {
    mask: u64,
    current: u64,
    done: bool,
}

impl Iterator for SubmaskIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.done {
            return None;
        }
        let item = self.current;
        if self.current == 0 {
            self.done = true;
        } else {
            self.current = (self.current - 1) & self.mask;
        }
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        // Remaining count is current's rank within submasks + 1; cheap bound:
        let total = 1usize << self.mask.count_ones().min(63);
        (1, Some(total))
    }
}

/// Iterate over submasks of `mask` that have exactly `k` bits set.
///
/// Yields `C(popcount(mask), k)` masks in lexicographic order of the chosen
/// bit-index combinations.
pub fn submasks_of_size(mask: u64, k: usize) -> FixedSizeSubmaskIter {
    let bits: Vec<u8> = (0..64).filter(|&b| mask >> b & 1 == 1).collect();
    let n = bits.len();
    FixedSizeSubmaskIter {
        bits,
        indices: (0..k).map(|i| i as u8).collect(),
        k,
        n,
        done: k > n,
    }
}

/// Iterator over fixed-cardinality submasks. See [`submasks_of_size`].
#[derive(Debug, Clone)]
pub struct FixedSizeSubmaskIter {
    /// Positions of set bits in the parent mask.
    bits: Vec<u8>,
    /// Current combination, as indices into `bits`.
    indices: Vec<u8>,
    k: usize,
    n: usize,
    done: bool,
}

impl Iterator for FixedSizeSubmaskIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.done {
            return None;
        }
        let mask = self
            .indices
            .iter()
            .fold(0u64, |m, &i| m | 1u64 << self.bits[i as usize]);
        // Advance to the next combination (standard odometer).
        if self.k == 0 {
            self.done = true;
            return Some(mask);
        }
        let mut i = self.k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if (self.indices[i] as usize) < self.n - self.k + i {
                self.indices[i] += 1;
                for j in i + 1..self.k {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                break;
            }
        }
        Some(mask)
    }
}

/// Binomial coefficient `C(n, k)` with saturation (returns `usize::MAX` on
/// overflow). Used for cost estimates before running elastic levels.
pub fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: usize = 1;
    for i in 0..k {
        acc = match acc.checked_mul(n - i) {
            Some(v) => v / (i + 1),
            None => return usize::MAX,
        };
    }
    acc
}

/// Number of terms the elastic approximation evaluates for one triple with
/// `complement_size` non-providing sources at level `lambda`:
/// `sum_{l=1}^{lambda} C(complement_size, l)`.
pub fn elastic_term_count(complement_size: usize, lambda: usize) -> usize {
    (1..=lambda.min(complement_size))
        .map(|l| binomial(complement_size, l))
        .fold(0usize, usize::saturating_add)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn submasks_enumerates_power_set() {
        let mask = 0b1011u64;
        let got: HashSet<u64> = submasks(mask).collect();
        let expected: HashSet<u64> = [
            0b0000, 0b0001, 0b0010, 0b0011, 0b1000, 0b1001, 0b1010, 0b1011,
        ]
        .into_iter()
        .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn submasks_of_zero_is_just_empty() {
        let got: Vec<u64> = submasks(0).collect();
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn submasks_count_matches_power_of_two() {
        for mask in [0b1u64, 0b111, 0b10101, 0xFF] {
            let count = submasks(mask).count();
            assert_eq!(count, 1 << mask.count_ones());
        }
    }

    #[test]
    fn fixed_size_submasks_have_right_cardinality_and_count() {
        let mask = 0b110110u64; // 4 bits set
        for k in 0..=4 {
            let got: Vec<u64> = submasks_of_size(mask, k).collect();
            assert_eq!(got.len(), binomial(4, k), "k={k}");
            for m in &got {
                assert_eq!(m.count_ones() as usize, k);
                assert_eq!(m & !mask, 0, "subset of parent");
            }
            // All distinct.
            let set: HashSet<u64> = got.iter().copied().collect();
            assert_eq!(set.len(), got.len());
        }
    }

    #[test]
    fn fixed_size_submasks_k_zero() {
        let got: Vec<u64> = submasks_of_size(0b101, 0).collect();
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn fixed_size_submasks_k_too_large() {
        let got: Vec<u64> = submasks_of_size(0b11, 3).collect();
        assert!(got.is_empty());
    }

    #[test]
    fn fixed_size_union_over_k_equals_power_set() {
        let mask = 0b11101u64;
        let n = mask.count_ones() as usize;
        let mut all: HashSet<u64> = HashSet::new();
        for k in 0..=n {
            all.extend(submasks_of_size(mask, k));
        }
        let expected: HashSet<u64> = submasks(mask).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(60, 30), 118_264_581_564_861_424);
    }

    #[test]
    fn elastic_term_count_sums_binomials() {
        // complement of 5 sources, lambda 2: C(5,1)+C(5,2) = 5+10.
        assert_eq!(elastic_term_count(5, 2), 15);
        assert_eq!(elastic_term_count(5, 0), 0);
        // lambda beyond the complement saturates at the full power set minus empty.
        assert_eq!(elastic_term_count(3, 10), 7);
    }

    #[test]
    fn high_bit_masks_work() {
        let mask = 1u64 << 63 | 1u64 << 2;
        let got: Vec<u64> = submasks(mask).collect();
        assert_eq!(got.len(), 4);
        let pairs: Vec<u64> = submasks_of_size(mask, 2).collect();
        assert_eq!(pairs, vec![mask]);
    }
}
