//! Plain-text persistence for datasets.
//!
//! The format is a line-oriented TSV dialect (no external format crates):
//!
//! ```text
//! #corrfuse-dataset v1
//! S<TAB>source-name
//! O<TAB>source-index<TAB>domain,domain,...  (optional; explicit scope override)
//! D<TAB>triple-index<TAB>domain            (optional; default domain 0)
//! T<TAB>subject<TAB>predicate<TAB>object<TAB>label<TAB>provider,provider,...
//! ```
//!
//! `label` is `1` (true), `0` (false) or `?` (unlabelled). Providers are
//! comma-separated indices into the `S` lines, in file order. Triples are
//! written in [`TripleId`] order so a round-trip preserves ids. Tab and
//! newline characters inside fields are escaped (`\t`, `\n`, `\\`).
//!
//! An `O` record pins a source's scope to an explicit domain set (an
//! empty set is legal: `O<TAB>3<TAB>` followed by nothing). It is only
//! written for sources whose scope differs from the provision-inferred
//! default, so files without overrides are unchanged from the base
//! dialect.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::dataset::{Dataset, DatasetBuilder, Domain, SourceId};
use crate::error::{FusionError, Result};

const HEADER: &str = "#corrfuse-dataset v1";

/// Escape a field for the TSV dialect (`\t`, `\n`, `\\`), appending to
/// `out`. Public so dialect extensions (e.g. the `corrfuse-stream`
/// journal) share one escaping policy.
pub fn escape(field: &str, out: &mut String) {
    for c in field.chars() {
        match c {
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
}

/// Inverse of [`escape`]. `line` is the 1-based line number reported in
/// parse errors (every `FusionError::Parse` in this dialect and its
/// extensions is 1-based).
pub fn unescape(field: &str, line: usize) -> Result<String> {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            other => {
                return Err(FusionError::Parse {
                    line,
                    msg: format!(
                        "bad escape sequence \\{}",
                        other.map(String::from).unwrap_or_default()
                    ),
                })
            }
        }
    }
    Ok(out)
}

/// Serialise a dataset to the text format.
pub fn to_string(ds: &Dataset) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for s in ds.sources() {
        out.push_str("S\t");
        escape(ds.source_name(s), &mut out);
        out.push('\n');
    }
    for s in ds.sources() {
        let inferred: std::collections::HashSet<Domain> =
            ds.output(s).iter().map(|&t| ds.domain(t)).collect();
        if *ds.scope(s) != inferred {
            let mut domains: Vec<u32> = ds.scope(s).iter().map(|d| d.0).collect();
            domains.sort_unstable();
            let list: Vec<String> = domains.iter().map(u32::to_string).collect();
            let _ = writeln!(out, "O\t{}\t{}", s.0, list.join(","));
        }
    }
    for t in ds.triples() {
        let d = ds.domain(t);
        if d != Domain(0) {
            let _ = writeln!(out, "D\t{}\t{}", t.index(), d.0);
        }
    }
    for t in ds.triples() {
        let triple = ds.triple(t);
        out.push_str("T\t");
        escape(&triple.subject, &mut out);
        out.push('\t');
        escape(&triple.predicate, &mut out);
        out.push('\t');
        escape(&triple.object, &mut out);
        out.push('\t');
        match ds.gold().and_then(|g| g.get(t)) {
            Some(true) => out.push('1'),
            Some(false) => out.push('0'),
            None => out.push('?'),
        }
        out.push('\t');
        let providers: Vec<String> = ds.providers(t).iter_ones().map(|s| s.to_string()).collect();
        out.push_str(&providers.join(","));
        out.push('\n');
    }
    out
}

/// Parse a dataset from the text format.
pub fn from_str(text: &str) -> Result<Dataset> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == HEADER => {}
        Some((_, l)) => {
            return Err(FusionError::Parse {
                line: 1,
                msg: format!("expected header `{HEADER}`, found `{l}`"),
            })
        }
        None => {
            return Err(FusionError::Parse {
                line: 1,
                msg: "empty input".to_string(),
            })
        }
    }

    let mut builder = DatasetBuilder::new();
    let mut sources: Vec<SourceId> = Vec::new();
    // (triple index, domain, 1-based line of the D record for errors).
    let mut pending_domains: Vec<(usize, u32, usize)> = Vec::new();
    // (source index, domains, 1-based line of the O record for errors).
    let mut pending_scopes: Vec<(usize, Vec<u32>, usize)> = Vec::new();
    let mut triple_count = 0usize;

    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let tag = fields.next().unwrap_or_default();
        match tag {
            "S" => {
                let name = fields.next().ok_or_else(|| FusionError::Parse {
                    line: lineno,
                    msg: "S line missing name".to_string(),
                })?;
                sources.push(builder.source(unescape(name, lineno)?));
            }
            "O" => {
                let s: usize = fields.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                    FusionError::Parse {
                        line: lineno,
                        msg: "O line needs a source index".to_string(),
                    }
                })?;
                let mut domains = Vec::new();
                for d in fields
                    .next()
                    .unwrap_or_default()
                    .split(',')
                    .filter(|d| !d.is_empty())
                {
                    domains.push(d.parse().map_err(|_| FusionError::Parse {
                        line: lineno,
                        msg: format!("bad scope domain `{d}`"),
                    })?);
                }
                pending_scopes.push((s, domains, lineno));
            }
            "D" => {
                let t: usize = fields.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                    FusionError::Parse {
                        line: lineno,
                        msg: "D line needs a triple index".to_string(),
                    }
                })?;
                let d: u32 = fields.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                    FusionError::Parse {
                        line: lineno,
                        msg: "D line needs a domain id".to_string(),
                    }
                })?;
                pending_domains.push((t, d, lineno));
            }
            "T" => {
                let mut next = |what: &str| -> Result<String> {
                    fields
                        .next()
                        .ok_or_else(|| FusionError::Parse {
                            line: lineno,
                            msg: format!("T line missing {what}"),
                        })
                        .and_then(|f| unescape(f, lineno))
                };
                let subject = next("subject")?;
                let predicate = next("predicate")?;
                let object = next("object")?;
                let label = next("label")?;
                let providers = next("providers")?;
                let t = builder.triple(subject, predicate, object);
                if t.index() != triple_count {
                    return Err(FusionError::Parse {
                        line: lineno,
                        msg: "duplicate triple".to_string(),
                    });
                }
                triple_count += 1;
                match label.as_str() {
                    "1" => builder.label(t, true),
                    "0" => builder.label(t, false),
                    "?" => {}
                    other => {
                        return Err(FusionError::Parse {
                            line: lineno,
                            msg: format!("bad label `{other}` (want 1/0/?)"),
                        })
                    }
                }
                for p in providers.split(',').filter(|p| !p.is_empty()) {
                    let s: usize = p.parse().map_err(|_| FusionError::Parse {
                        line: lineno,
                        msg: format!("bad provider index `{p}`"),
                    })?;
                    let &sid = sources.get(s).ok_or_else(|| FusionError::Parse {
                        line: lineno,
                        msg: format!("provider index {s} out of range"),
                    })?;
                    builder.observe(sid, t);
                }
            }
            other => {
                return Err(FusionError::Parse {
                    line: lineno,
                    msg: format!("unknown record tag `{other}`"),
                })
            }
        }
    }
    for (t, d, lineno) in pending_domains {
        if t >= triple_count {
            return Err(FusionError::Parse {
                line: lineno,
                msg: format!("domain for unknown triple {t}"),
            });
        }
        builder.set_domain(crate::triple::TripleId(t as u32), Domain(d));
    }
    for (s, domains, lineno) in pending_scopes {
        let &sid = sources.get(s).ok_or_else(|| FusionError::Parse {
            line: lineno,
            msg: format!("scope for unknown source {s}"),
        })?;
        builder.set_scope(sid, domains.into_iter().map(Domain));
    }
    builder.build()
}

/// Write a dataset to a file.
pub fn save(ds: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path, to_string(ds))?;
    Ok(())
}

/// Read a dataset from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Dataset> {
    let text = fs::read_to_string(path)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s1 = b.source("wiki-extractor");
        let s2 = b.source("infobox extractor");
        let t1 = b.triple("Obama", "profession", "president");
        let t2 = b.triple("Obama", "died", "1982");
        let t3 = b.triple("weird\tname", "has\nnewline", "back\\slash");
        b.observe(s1, t1);
        b.observe(s2, t1);
        b.observe(s1, t2);
        b.observe(s2, t3);
        b.label(t1, true);
        b.label(t2, false);
        b.set_domain(t3, Domain(7));
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = sample();
        let text = to_string(&ds);
        let back = from_str(&text).unwrap();
        assert_eq!(back.n_sources(), ds.n_sources());
        assert_eq!(back.n_triples(), ds.n_triples());
        for t in ds.triples() {
            assert_eq!(back.triple(t), ds.triple(t));
            assert_eq!(
                back.providers(t).iter_ones().collect::<Vec<_>>(),
                ds.providers(t).iter_ones().collect::<Vec<_>>()
            );
            assert_eq!(
                back.gold().and_then(|g| g.get(t)),
                ds.gold().and_then(|g| g.get(t))
            );
            assert_eq!(back.domain(t), ds.domain(t));
        }
        for s in ds.sources() {
            assert_eq!(back.source_name(s), ds.source_name(s));
        }
    }

    #[test]
    fn escaping_special_characters() {
        let ds = sample();
        let text = to_string(&ds);
        assert!(text.contains("weird\\tname"));
        assert!(text.contains("has\\nnewline"));
        assert!(text.contains("back\\\\slash"));
        let back = from_str(&text).unwrap();
        let t3 = back
            .triples()
            .find(|&t| back.triple(t).subject == "weird\tname")
            .expect("escaped triple survives");
        assert_eq!(back.triple(t3).predicate, "has\nnewline");
        assert_eq!(back.triple(t3).object, "back\\slash");
    }

    #[test]
    fn header_is_required() {
        assert!(from_str("S\tfoo\n").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn bad_label_rejected() {
        let text = format!("{HEADER}\nS\tA\nT\tx\tp\tv\t2\t0\n");
        let err = from_str(&text).unwrap_err();
        assert!(err.to_string().contains("bad label"));
    }

    #[test]
    fn provider_out_of_range_rejected() {
        let text = format!("{HEADER}\nS\tA\nT\tx\tp\tv\t1\t3\n");
        let err = from_str(&text).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn unknown_tag_rejected() {
        let text = format!("{HEADER}\nX\tboom\n");
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = format!("{HEADER}\n\n# a comment\nS\tA\nT\tx\tp\tv\t1\t0\n");
        let ds = from_str(&text).unwrap();
        assert_eq!(ds.n_triples(), 1);
    }

    #[test]
    fn scope_overrides_roundtrip() {
        let mut b = DatasetBuilder::new();
        let s1 = b.source("books");
        let s2 = b.source("bios");
        let t1 = b.triple("b1", "author", "X");
        let t2 = b.triple("p1", "born", "1960");
        b.set_domain(t1, Domain(1));
        b.set_domain(t2, Domain(2));
        b.observe(s1, t1);
        b.observe(s2, t2);
        b.label(t1, true);
        b.label(t2, false);
        // books covers both domains despite providing in one; bios is
        // pinned to an *empty* scope.
        b.set_scope(s1, [Domain(1), Domain(2)]);
        b.set_scope(s2, []);
        let ds = b.build().unwrap();
        let text = to_string(&ds);
        assert!(text.contains("O\t0\t1,2"), "{text}");
        assert!(text.contains("O\t1\t"), "{text}");
        let back = from_str(&text).unwrap();
        for s in ds.sources() {
            assert_eq!(back.scope(s), ds.scope(s), "{s}");
        }
        // Default-scope sources emit no O record.
        let plain = sample();
        assert!(!to_string(&plain).contains("\nO\t"));
    }

    #[test]
    fn scope_record_errors() {
        let text = format!("{HEADER}\nS\tA\nO\t9\t0\nT\tx\tp\tv\t1\t0\n");
        let err = from_str(&text).unwrap_err();
        assert!(err.to_string().contains("unknown source 9"), "{err}");
        let text = format!("{HEADER}\nS\tA\nO\t0\tbad\nT\tx\tp\tv\t1\t0\n");
        let err = from_str(&text).unwrap_err();
        assert!(err.to_string().contains("bad scope domain"), "{err}");
        let text = format!("{HEADER}\nS\tA\nO\n");
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn domain_for_unknown_triple_names_its_line() {
        // The D record sits on (1-based) line 3; the error must say so
        // rather than the old placeholder line 0.
        let text = format!("{HEADER}\nS\tA\nD\t7\t2\nT\tx\tp\tv\t1\t0\n");
        match from_str(&text).unwrap_err() {
            FusionError::Parse { line, msg } => {
                assert_eq!(line, 3, "{msg}");
                assert!(msg.contains("unknown triple 7"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_errors_report_one_based_lines() {
        // A bad label on the third line of the file.
        let text = format!("{HEADER}\nS\tA\nT\tx\tp\tv\t2\t0\n");
        match from_str(&text).unwrap_err() {
            FusionError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
        // A bad escape in a field names the line holding the field.
        let text = format!("{HEADER}\nS\tbad\\x\n");
        match from_str(&text).unwrap_err() {
            FusionError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let ds = sample();
        let dir = std::env::temp_dir().join("corrfuse-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.tsv");
        save(&ds, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.n_triples(), ds.n_triples());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load("/nonexistent/corrfuse-nope.tsv").unwrap_err();
        assert!(matches!(err, FusionError::Io(_)));
    }

    #[test]
    fn unlabelled_triples_roundtrip() {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        let t1 = b.triple("x", "p", "1");
        let t2 = b.triple("y", "p", "2");
        b.observe(s, t1);
        b.observe(s, t2);
        b.label(t1, true);
        let ds = b.build().unwrap();
        let back = from_str(&to_string(&ds)).unwrap();
        let g = back.gold().unwrap();
        assert_eq!(g.get(crate::triple::TripleId(0)), Some(true));
        assert_eq!(g.get(crate::triple::TripleId(1)), None);
    }
}
