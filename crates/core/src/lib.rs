//! # corrfuse-core
//!
//! Correlation-aware data fusion (truth discovery), reproducing
//! *"Fusing Data with Correlations"* (Pochampally, Das Sarma, Dong, Meliou,
//! Srivastava — SIGMOD 2014).
//!
//! Many applications integrate data from sources that are individually
//! unreliable *and* mutually correlated: extractors sharing rules make the
//! same mistakes (positive correlation), sources covering complementary
//! domains rarely overlap (negative correlation). Voting and classic
//! independence-based fusion mis-handle both. This crate implements the
//! paper's models under **independent-triple, open-world** semantics:
//!
//! * [`independent::PrecRecModel`] — **PrecRec** (§3): Bayesian fusion from
//!   per-source precision/recall, Theorem 3.1.
//! * [`exact::ExactSolver`] — **PrecRecCorr** (§4.1): exact inclusion–
//!   exclusion over joint source quality, Theorem 4.2.
//! * [`aggressive::AggressiveSolver`] — linear-time approximation (§4.2).
//! * [`elastic::ElasticSolver`] — level-λ elastic approximation (§4.3,
//!   Algorithm 1), trading accuracy for cost between the two.
//! * [`cluster`] — pairwise-correlation source clustering for datasets
//!   with hundreds of sources (§5).
//! * [`solver::CorrelationSolver`] — the trait all of the above solvers
//!   implement; [`fuser::Fuser`] dispatches every method through it.
//! * [`engine::ScoringEngine`] — chunk-stealing batch scorer shared by the
//!   serial and parallel paths (parallel output is bitwise identical).
//! * [`fuser::Fuser`] — one-stop API combining all of the above.
//!
//! This crate is the model layer of the corrfuse stack (core → stream →
//! serve → net); `docs/ARCHITECTURE.md` describes the layering and
//! states the workspace-wide trust-anchor invariant every layer is
//! pinned to. The core math itself — the dataset → quality →
//! joint-counts → solver → score pipeline, the subset-memo design, the
//! incremental count and lift-graph maintenance, and what exactly makes
//! the incremental path bitwise-trustworthy — is documented as a book in
//! `docs/INTERNALS.md`.
//!
//! ## Quick start
//!
//! ```
//! use corrfuse_core::dataset::DatasetBuilder;
//! use corrfuse_core::fuser::{Fuser, FuserConfig, Method};
//!
//! let mut b = DatasetBuilder::new();
//! // Two extractors agree on a fact, a third provides a conflicting one.
//! let (s1, t1) = b.observe_named("extractor-A", "Obama", "profession", "president");
//! let s2 = b.source("extractor-B");
//! b.observe(s2, t1);
//! let t2 = b.triple("Obama", "died", "1982");
//! b.observe(s1, t2);
//! b.label(t1, true);
//! b.label(t2, false);
//! let ds = b.build().unwrap();
//!
//! let fuser = Fuser::fit(&FuserConfig::new(Method::PrecRec), &ds, ds.gold().unwrap()).unwrap();
//! let scores = fuser.score_all(&ds).unwrap();
//! assert!(scores[t1.index()] > scores[t2.index()]);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggressive;
pub mod bits;
pub mod cluster;
pub mod dataset;
pub mod elastic;
pub mod engine;
pub mod error;
pub mod exact;
pub mod fuser;
pub mod independent;
pub mod io;
pub mod joint;
pub mod prob;
pub mod quality;
pub mod rng;
pub mod solver;
pub mod subset;
pub mod testkit;
pub mod triple;

pub use dataset::{Dataset, DatasetBuilder, Domain, GoldLabels, ObserveOutcome, SourceId};
pub use engine::ScoringEngine;
pub use error::{FusionError, Result};
pub use fuser::{ClusterStrategy, Fuser, FuserConfig, Method};
pub use joint::{CacheStats, EmpiricalJoint, JointQuality, SourceSet};
pub use quality::SourceQuality;
pub use solver::{CorrelationSolver, PrecRecSolver};
pub use triple::{Triple, TripleId};
