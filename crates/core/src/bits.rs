//! A compact dynamic bitset used to record, per triple, which sources
//! provide it.
//!
//! The observation matrix is extremely sparse in the source dimension for
//! realistic workloads (the BOOK dataset has hundreds of sources, each
//! providing a handful of triples), but every fusion formula asks set
//! questions — "do all sources in `S*` provide `t`?", "which cluster members
//! provide `t`?" — that map directly onto word-parallel bit operations.

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A fixed-capacity bitset over source indices `0..len`.
///
/// Capacity is set at construction; all binary operations require equal
/// lengths (enforced with debug assertions, as mismatches are programmer
/// errors rather than data errors).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitSet{{")?;
        let mut first = true;
        for i in self.iter_ones() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl BitSet {
    /// An empty bitset with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Build from an iterator of set bit positions.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut bs = BitSet::new(len);
        for i in indices {
            bs.set(i, true);
        }
        bs
    }

    /// Bit capacity.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Grow the capacity to `len` bits, preserving existing bits; new bits
    /// are clear. No-op when `len <= self.len()`. Used by the streaming
    /// delta path when a new source joins an existing dataset.
    pub fn grow_to(&mut self, len: usize) {
        if len > self.len {
            self.words.resize(len.div_ceil(WORD_BITS), 0);
            self.len = len;
        }
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set or clear bit `i`. Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if value {
            self.words[w] |= 1u64 << b;
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Read bit `i`. Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        (self.words[w] >> b) & 1 == 1
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate positions of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// `true` iff every bit set in `self` is also set in `other`.
    ///
    /// This is the core primitive behind joint-recall estimation:
    /// `S* |= t` iff `S*` is a subset of the providers of `t`.
    #[inline]
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Count of bits set in both.
    #[inline]
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Project the members listed in `positions` down to a `u64` mask:
    /// output bit `k` is set iff `self.get(positions[k])`.
    ///
    /// This is how a global provider set becomes a per-cluster
    /// [`SourceSet`](crate::joint::SourceSet) for the exact/elastic solvers.
    /// Panics if `positions.len() > 64`.
    pub fn project(&self, positions: &[usize]) -> u64 {
        assert!(
            positions.len() <= 64,
            "cannot project {} positions into u64",
            positions.len()
        );
        let mut mask = 0u64;
        for (k, &p) in positions.iter().enumerate() {
            if self.get(p) {
                mask |= 1u64 << k;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let bs = BitSet::new(100);
        assert!(bs.is_empty());
        assert_eq!(bs.count_ones(), 0);
        assert_eq!(bs.len(), 100);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut bs = BitSet::new(200);
        for &i in &[0, 1, 63, 64, 65, 127, 128, 199] {
            bs.set(i, true);
            assert!(bs.get(i), "bit {i}");
        }
        assert_eq!(bs.count_ones(), 8);
        bs.set(64, false);
        assert!(!bs.get(64));
        assert_eq!(bs.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut bs = BitSet::new(10);
        bs.set(10, true);
    }

    #[test]
    fn iter_ones_ascending() {
        let bs = BitSet::from_indices(150, [3, 70, 149, 64]);
        let got: Vec<usize> = bs.iter_ones().collect();
        assert_eq!(got, vec![3, 64, 70, 149]);
    }

    #[test]
    fn subset_relation() {
        let small = BitSet::from_indices(130, [5, 100]);
        let big = BitSet::from_indices(130, [5, 100, 128]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        let empty = BitSet::new(130);
        assert!(empty.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
    }

    #[test]
    fn intersection_count_counts_shared() {
        let a = BitSet::from_indices(96, [1, 2, 3, 80]);
        let b = BitSet::from_indices(96, [2, 3, 90]);
        assert_eq!(a.intersection_count(&b), 2);
    }

    #[test]
    fn union_and_intersection_in_place() {
        let mut a = BitSet::from_indices(70, [1, 65]);
        let b = BitSet::from_indices(70, [2, 65]);
        a.union_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 2, 65]);
        a.intersect_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![2, 65]);
    }

    #[test]
    fn project_maps_positions_to_low_bits() {
        let bs = BitSet::from_indices(300, [10, 200, 250]);
        // positions: [200, 10, 99] -> bits 0 and 1 set, bit 2 clear.
        let mask = bs.project(&[200, 10, 99]);
        assert_eq!(mask, 0b011);
    }

    #[test]
    fn project_empty_positions() {
        let bs = BitSet::from_indices(10, [1]);
        assert_eq!(bs.project(&[]), 0);
    }

    #[test]
    fn debug_format_lists_members() {
        let bs = BitSet::from_indices(10, [1, 7]);
        assert_eq!(format!("{bs:?}"), "BitSet{1,7}");
    }

    #[test]
    fn grow_preserves_and_extends() {
        let mut bs = BitSet::from_indices(10, [1, 9]);
        bs.grow_to(130);
        assert_eq!(bs.len(), 130);
        assert_eq!(bs.iter_ones().collect::<Vec<_>>(), vec![1, 9]);
        bs.set(129, true);
        assert!(bs.get(129));
        // Shrinking is a no-op.
        bs.grow_to(5);
        assert_eq!(bs.len(), 130);
    }

    #[test]
    fn from_indices_dedups() {
        let bs = BitSet::from_indices(8, [3, 3, 3]);
        assert_eq!(bs.count_ones(), 1);
    }
}
