//! The scoring engine: one code path for serial and parallel batch
//! scoring.
//!
//! Scoring a dataset is embarrassingly parallel — each triple's posterior
//! is independent — but the naive "split into `n_threads` equal ranges"
//! approach loses badly when work is skewed (exact-solver triples with
//! wide complements take orders of magnitude longer than singletons).
//! [`ScoringEngine`] instead chunks the index space and lets scoped worker
//! threads *steal* the next chunk from a shared atomic cursor, the same
//! dynamic schedule rayon's `par_iter` uses. The API is deliberately
//! rayon-shaped so the implementation can be swapped for rayon's pool
//! when external dependencies are available; in this offline workspace the
//! workers are `std::thread::scope` threads.
//!
//! Determinism: every triple's score is written to its own index of the
//! output buffer and is computed by the same closure in both modes, so
//! parallel output is **bitwise identical** to serial output regardless of
//! thread count or scheduling order.
//!
//! State reuse: workers share the fitted model immutably (`F: Sync`), so
//! per-cluster solver state — e.g. [`crate::joint::EmpiricalJoint`]'s
//! memoised joint-rate tables behind `RwLock`s — is warmed by every chunk
//! and reused across the whole batch instead of being rebuilt per thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::error::Result;

/// Number of triples a chunk covers by default. Small enough to balance
/// skewed workloads, large enough that the atomic cursor is cold.
pub const DEFAULT_CHUNK_SIZE: usize = 256;

/// Batches smaller than this always run serially: thread spawn overhead
/// dominates any possible win.
pub const MIN_PARALLEL_BATCH: usize = 64;

/// A batch scoring executor; see the module docs.
#[derive(Debug, Clone)]
pub struct ScoringEngine {
    threads: usize,
    chunk_size: usize,
}

impl Default for ScoringEngine {
    /// The default engine is parallel over the machine's available cores.
    fn default() -> Self {
        Self::parallel()
    }
}

impl ScoringEngine {
    /// Engine that scores on the calling thread only.
    pub fn serial() -> Self {
        ScoringEngine {
            threads: 1,
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// Engine parallel over `std::thread::available_parallelism` workers.
    pub fn parallel() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::with_threads(n)
    }

    /// Engine with an explicit worker count (`0` and `1` both mean serial).
    pub fn with_threads(threads: usize) -> Self {
        ScoringEngine {
            threads: threads.max(1),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// Override the chunk size (mostly for tests and benches).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Evaluate `score(i)` for every `i in 0..n` and collect the results in
    /// index order. The first error (by chunk order) aborts the remaining
    /// work and is returned.
    pub fn map<F>(&self, n: usize, score: F) -> Result<Vec<f64>>
    where
        F: Fn(usize) -> Result<f64> + Sync,
    {
        let n_chunks = n.div_ceil(self.chunk_size);
        let workers = self.threads.min(n_chunks);
        // A single worker (small batch, one chunk, or serial engine) gains
        // nothing from the thread + slot scaffolding: run inline.
        if workers <= 1 || n < MIN_PARALLEL_BATCH {
            return (0..n).map(score).collect();
        }

        let mut out = vec![0.0f64; n];
        let cursor = AtomicUsize::new(0);
        // Lowest failing chunk index seen so far; chunks beyond it are
        // skipped, chunks before it still run so the *earliest* error is
        // the one reported regardless of scheduling.
        let min_failed = AtomicUsize::new(usize::MAX);
        let failure: Mutex<Option<(usize, crate::error::FusionError)>> = Mutex::new(None);

        {
            // Chunks are disjoint `&mut` windows of the output; each is
            // owned by whichever worker wins its cursor slot.
            let slots: Vec<Mutex<&mut [f64]>> =
                out.chunks_mut(self.chunk_size).map(Mutex::new).collect();
            let run_worker = || loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    return;
                }
                if c > min_failed.load(Ordering::Relaxed) {
                    continue;
                }
                let mut slice = slots[c].lock().expect("chunk slot poisoned");
                let base = c * self.chunk_size;
                for (off, cell) in slice.iter_mut().enumerate() {
                    match score(base + off) {
                        Ok(v) => *cell = v,
                        Err(e) => {
                            min_failed.fetch_min(c, Ordering::Relaxed);
                            let mut f = failure.lock().expect("failure slot poisoned");
                            match f.as_ref() {
                                Some((prev, _)) if *prev <= c => {}
                                _ => *f = Some((c, e)),
                            }
                            break;
                        }
                    }
                }
            };
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers).map(|_| s.spawn(run_worker)).collect();
                for h in handles {
                    h.join().expect("scoring worker panicked");
                }
            });
        }

        match failure.into_inner().expect("failure slot poisoned") {
            Some((_, e)) => Err(e),
            None => Ok(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FusionError;

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        // A score function with enough floating-point texture that any
        // order-dependence would show.
        let f = |i: usize| Ok(((i as f64).sin() * 1e6).cos() / (i as f64 + 0.5));
        let n = 10_000;
        let serial = ScoringEngine::serial().map(n, f).unwrap();
        for threads in [2, 3, 8, 64] {
            let par = ScoringEngine::with_threads(threads)
                .with_chunk_size(17)
                .map(n, f)
                .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn small_batches_run_serially() {
        let engine = ScoringEngine::with_threads(8);
        let out = engine.map(10, |i| Ok(i as f64)).unwrap();
        assert_eq!(out, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch() {
        assert!(ScoringEngine::parallel()
            .map(0, |_| Ok(1.0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn errors_propagate_from_parallel_workers() {
        let engine = ScoringEngine::with_threads(4).with_chunk_size(8);
        let err = engine
            .map(1000, |i| {
                if i == 137 {
                    Err(FusionError::TripleOutOfRange(i))
                } else {
                    Ok(0.0)
                }
            })
            .unwrap_err();
        assert_eq!(err, FusionError::TripleOutOfRange(137));
    }

    #[test]
    fn earliest_chunk_error_wins() {
        // Two failing indices; the one in the earlier chunk must be
        // reported no matter which worker hits its chunk first.
        let engine = ScoringEngine::with_threads(8).with_chunk_size(4);
        for _ in 0..20 {
            let err = engine
                .map(1000, |i| {
                    if i == 100 || i == 900 {
                        Err(FusionError::TripleOutOfRange(i))
                    } else {
                        Ok(0.0)
                    }
                })
                .unwrap_err();
            assert_eq!(err, FusionError::TripleOutOfRange(100));
        }
    }

    #[test]
    fn thread_zero_means_serial() {
        assert_eq!(ScoringEngine::with_threads(0).threads(), 1);
        let out = ScoringEngine::with_threads(0)
            .map(5, |i| Ok(i as f64))
            .unwrap();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn default_is_parallel() {
        assert!(ScoringEngine::default().threads() >= 1);
        assert_eq!(ScoringEngine::default().chunk_size(), DEFAULT_CHUNK_SIZE);
    }
}
