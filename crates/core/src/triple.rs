//! Knowledge triples and their interning.
//!
//! A *triple* is the paper's unit of data: `{subject, predicate, object}`
//! (§2.1). Equivalently a cell of a database table — `{row-entity,
//! column-attribute, value}`. Sources output sets of triples; fusion decides
//! which are true. Triples are compared across sources by exact equality
//! (the paper assumes schema mapping and reference reconciliation have
//! already been applied), so we intern them into dense integer ids that all
//! downstream structures index by.

use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned triple within one [`crate::dataset::Dataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TripleId(pub u32);

impl TripleId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TripleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A knowledge triple `{subject, predicate, object}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Row entity / RDF subject, e.g. `Obama`.
    pub subject: String,
    /// Attribute / RDF predicate, e.g. `profession`.
    pub predicate: String,
    /// Value / RDF object, e.g. `president`.
    pub object: String,
}

impl Triple {
    /// Construct a triple from anything string-like.
    pub fn new(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
    ) -> Self {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}, {}, {}}}",
            self.subject, self.predicate, self.object
        )
    }
}

/// Bidirectional map between [`Triple`]s and dense [`TripleId`]s.
#[derive(Debug, Clone, Default)]
pub struct TripleInterner {
    by_triple: HashMap<Triple, TripleId>,
    by_id: Vec<Triple>,
}

impl TripleInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `triple`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, triple: Triple) -> TripleId {
        if let Some(&id) = self.by_triple.get(&triple) {
            return id;
        }
        let id = TripleId(self.by_id.len() as u32);
        self.by_triple.insert(triple.clone(), id);
        self.by_id.push(triple);
        id
    }

    /// Look up a triple's id without interning.
    pub fn get(&self, triple: &Triple) -> Option<TripleId> {
        self.by_triple.get(triple).copied()
    }

    /// Resolve an id back to its triple. Panics on out-of-range ids, which
    /// can only arise from mixing ids across datasets.
    pub fn resolve(&self, id: TripleId) -> &Triple {
        &self.by_id[id.index()]
    }

    /// Number of interned triples.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate `(id, triple)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TripleId, &Triple)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, t)| (TripleId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = TripleInterner::new();
        let a = interner.intern(Triple::new("Obama", "profession", "president"));
        let b = interner.intern(Triple::new("Obama", "profession", "president"));
        assert_eq!(a, b);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn distinct_triples_get_distinct_ids() {
        let mut interner = TripleInterner::new();
        let a = interner.intern(Triple::new("Obama", "profession", "president"));
        let b = interner.intern(Triple::new("Obama", "profession", "lawyer"));
        let c = interner.intern(Triple::new("Obama", "spouse", "Michelle"));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let mut interner = TripleInterner::new();
        for i in 0..10 {
            let id = interner.intern(Triple::new(format!("e{i}"), "p", "v"));
            assert_eq!(id.index(), i);
        }
        assert_eq!(interner.resolve(TripleId(7)).subject, "e7");
    }

    #[test]
    fn get_does_not_intern() {
        let mut interner = TripleInterner::new();
        let t = Triple::new("a", "b", "c");
        assert_eq!(interner.get(&t), None);
        let id = interner.intern(t.clone());
        assert_eq!(interner.get(&t), Some(id));
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut interner = TripleInterner::new();
        interner.intern(Triple::new("x", "p", "1"));
        interner.intern(Triple::new("y", "p", "2"));
        let ids: Vec<u32> = interner.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn display_formats() {
        let t = Triple::new("Obama", "spouse", "Michelle");
        assert_eq!(t.to_string(), "{Obama, spouse, Michelle}");
        assert_eq!(TripleId(3).to_string(), "t3");
    }

    #[test]
    fn triples_differing_in_any_field_are_distinct() {
        let base = Triple::new("s", "p", "o");
        assert_ne!(base, Triple::new("s2", "p", "o"));
        assert_ne!(base, Triple::new("s", "p2", "o"));
        assert_ne!(base, Triple::new("s", "p", "o2"));
    }
}
