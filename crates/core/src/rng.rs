//! Small, fast, dependency-free pseudo-random number generation.
//!
//! The workspace builds on air-gapped machines, so instead of the `rand`
//! crate this module provides the subset of its API the project uses:
//! [`StdRng::seed_from_u64`], [`StdRng::gen_f64`], [`StdRng::gen_bool`]
//! and [`StdRng::gen_range`]. The generator is xoshiro256++ (Blackman &
//! Vigna), seeded through SplitMix64 exactly as the reference
//! implementation recommends — statistically strong for simulation
//! workloads and deterministic across platforms, which is what the
//! synthetic replicas and the Gibbs sampler need. It is **not**
//! cryptographically secure.

/// xoshiro256++ generator. [`StdRng`] aliases this type so call sites read
/// like `rand` and can migrate to the real crate by swapping one import.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

/// Drop-in stand-in for `rand::rngs::StdRng` (see module docs).
pub type StdRng = Xoshiro256PlusPlus;

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256PlusPlus {
    /// Deterministically seed the generator from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[range.start, range.end)`. Panics on an empty
    /// range, mirroring `rand`.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = (range.end - range.start) as u64;
        // Lemire's unbiased multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let lo = m as u64;
            if lo >= span {
                return range.start + (m >> 64) as usize;
            }
            let threshold = span.wrapping_neg() % span;
            if lo >= threshold {
                return range.start + (m >> 64) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = rng.gen_range(3..13);
            assert!((3..13).contains(&k));
            seen[k - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        // Width-1 range is the identity.
        assert_eq!(rng.gen_range(42..43), 42);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        StdRng::seed_from_u64(0).gen_range(5..5);
    }
}
