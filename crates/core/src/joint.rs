//! Joint quality of source subsets: the paper's correlation measure.
//!
//! Correlation between sources is captured by *joint precision*
//! `p_{S*} = Pr(t | S* |= t)` and *joint recall* `r_{S*} = Pr(S* |= t | t)`
//! (Eqs. 3–4), where `S* |= t` means every source in `S*` outputs `t`.
//! The correlated models additionally need the *joint false-positive rate*
//! `q_{S*} = Pr(S* |= t | ¬t)`, derived from `p` and `r` exactly as in
//! Theorem 3.5 (the derivation goes through unchanged for sets).
//!
//! Within a cluster of up to 64 sources, subsets are `u64` bitmasks
//! ([`SourceSet`]); the [`JointQuality`] trait abstracts where the numbers
//! come from (empirical training data, hand-specified tables, or pure
//! independence products for testing the corollaries).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::dataset::{Dataset, GoldLabels, SourceId};
use crate::error::{FusionError, Result};
use crate::prob::check_alpha;
use crate::triple::TripleId;

/// Number of lock shards in a [`ShardedMemo`]. A small fixed power of two:
/// enough to spread the scoring engine's workers across locks, cheap
/// enough to clear on invalidation.
const MEMO_SHARDS: usize = 16;

/// Cumulative hit/miss counters of a memo cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to recompute (and then populated the cache).
    pub misses: u64,
}

/// Counters of the incremental (delta) maintenance of an
/// [`EmpiricalJoint`]'s subset-count state.
///
/// `delta_rows` counts row mutations ([`EmpiricalJoint::push_row`] /
/// [`EmpiricalJoint::set_row`]) that were absorbed by updating the
/// memoised subset counts in place; `rescans` counts full passes over the
/// row store (one per memo miss — see the full-rescan conditions on
/// [`EmpiricalJoint::invalidate_caches`]); `invalidations` counts
/// explicit whole-cache drops. A healthy streaming workload shows
/// `delta_rows` growing while `rescans` stays near the number of
/// *distinct* subsets ever queried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JointDeltaStats {
    /// Row mutations absorbed by delta-updating memoised subset counts.
    pub delta_rows: u64,
    /// Full row-store scans (exactly one per memo miss).
    pub rescans: u64,
    /// Explicit [`EmpiricalJoint::invalidate_caches`] calls.
    pub invalidations: u64,
    /// Memoised subsets currently held (occupancy gauge; summing over
    /// joints gives total tracked entries).
    pub memo_entries: u64,
    /// Entries evicted by the memo's capacity bound
    /// ([`EmpiricalJoint::set_memo_capacity`]); each evicted subset pays
    /// one rescan if touched again.
    pub memo_evictions: u64,
}

impl JointDeltaStats {
    /// Element-wise sum (for aggregating per-cluster joints;
    /// `memo_entries` sums to total occupancy).
    pub fn merged(self, other: JointDeltaStats) -> JointDeltaStats {
        JointDeltaStats {
            delta_rows: self.delta_rows + other.delta_rows,
            rescans: self.rescans + other.rescans,
            invalidations: self.invalidations + other.invalidations,
            memo_entries: self.memo_entries + other.memo_entries,
            memo_evictions: self.memo_evictions + other.memo_evictions,
        }
    }
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was queried.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Element-wise sum (for aggregating per-cluster caches).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// Exact joint counts of one source subset over the labelled row store:
/// the integer state behind both joint rates.
///
/// `n_true` is the number of labelled-true rows whose scope covers the
/// whole subset (the recall denominator), `tp` of those how many the
/// whole subset provides, and `fp` the labelled-false rows the whole
/// subset provides within scope. These are plain sums over rows, so they
/// can be maintained under row deltas by adding/retracting a single
/// row's contribution — which is what keeps
/// [`EmpiricalJoint::push_row`] / [`EmpiricalJoint::set_row`] /
/// [`EmpiricalJoint::set_alpha`] O(memoised subsets) instead of
/// O(rows × subsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubsetCounts {
    /// Labelled-true rows with the whole subset in scope.
    pub n_true: usize,
    /// Labelled-true in-scope rows provided by the whole subset.
    pub tp: usize,
    /// Labelled-false rows provided (in scope) by the whole subset.
    pub fp: usize,
}

impl SubsetCounts {
    /// Add (`delta = 1`) or retract (`delta = -1`) one row's contribution
    /// for the subset `mask`. Mirrors the scan in `EmpiricalJoint::counts`
    /// term by term, so a maintained count always equals a fresh rescan.
    #[inline]
    fn apply_row(&mut self, mask: u64, row: (u64, u64, bool), delta: isize) {
        fn bump(v: &mut usize, delta: isize) {
            *v = v.checked_add_signed(delta).expect("subset count underflow");
        }
        let (providers, scope, truth) = row;
        if truth {
            if mask & !scope == 0 {
                bump(&mut self.n_true, delta);
                if mask & !providers == 0 {
                    bump(&mut self.tp, delta);
                }
            }
        } else if mask & !scope == 0 && mask & !providers == 0 {
            bump(&mut self.fp, delta);
        }
    }

    /// `r_{S*}` from counts — the single float expression shared by the
    /// rescan fallback and the delta path (bitwise equality by
    /// construction).
    #[inline]
    fn recall_value(&self) -> f64 {
        if self.n_true == 0 {
            0.0
        } else {
            self.tp as f64 / self.n_true as f64
        }
    }

    /// `q_{S*}` from counts (Theorem 3.5 in count form, see
    /// `quality::fpr_from_counts`). Stays defined when `tp = 0`.
    #[inline]
    fn fpr_value(&self, alpha: f64) -> f64 {
        if self.n_true == 0 {
            0.0
        } else {
            (alpha / (1.0 - alpha) * self.fp as f64 / self.n_true as f64).min(1.0)
        }
    }
}

/// One memoised subset: its exact counts plus both derived rates.
#[derive(Debug, Clone, Copy)]
struct JointEntry {
    counts: SubsetCounts,
    recall: f64,
    fpr: f64,
}

impl JointEntry {
    fn from_counts(counts: SubsetCounts, alpha: f64) -> JointEntry {
        JointEntry {
            counts,
            recall: counts.recall_value(),
            fpr: counts.fpr_value(alpha),
        }
    }
}

/// One memoised subset plus its last-touch stamp (for LRU eviction).
/// The stamp is a relaxed atomic so cache *reads* can refresh it under
/// the shard's read lock.
#[derive(Debug)]
struct MemoSlot {
    entry: JointEntry,
    stamp: AtomicU64,
}

/// A fixed-shard concurrent memo table `u64 -> JointEntry` with hit/miss
/// counters and an optional capacity bound.
///
/// [`EmpiricalJoint`] memoises per-subset counts and joint rates behind
/// this: a single `RwLock<HashMap>` serialises every reader on the write
/// path once the scoring engine fans out, while sharding by key hash
/// keeps workers on (mostly) disjoint locks. Counters are relaxed
/// atomics — they feed benchmarks and reports, not control flow. Row
/// deltas walk every shard under `&mut self` (no lock contention: the
/// mutable borrow proves no reader exists).
///
/// With a capacity set ([`ShardedMemo::set_capacity`]), each shard holds
/// at most `ceil(capacity / MEMO_SHARDS)` entries; inserting past that
/// evicts the shard's least-recently-touched slot. Eviction is purely a
/// memory bound, never a correctness concern: a re-touched evicted
/// subset takes the ordinary miss path (one `scan_counts` rescan), which
/// the delta-vs-rescan property pins bitwise equal to the maintained
/// entry it replaced.
#[derive(Debug, Default)]
struct ShardedMemo {
    shards: [RwLock<HashMap<u64, MemoSlot>>; MEMO_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Monotone touch clock feeding the slots' LRU stamps.
    clock: AtomicU64,
    evictions: AtomicU64,
    /// Per-shard entry cap; `None` = unbounded.
    shard_cap: Option<usize>,
}

impl ShardedMemo {
    fn new() -> Self {
        Self::default()
    }

    /// Bound the total entry count (`None` lifts the bound). Shrinks
    /// over-full shards immediately, coldest entries first.
    fn set_capacity(&mut self, max_entries: Option<usize>) {
        self.shard_cap = max_entries.map(|m| m.div_ceil(MEMO_SHARDS).max(1));
        if let Some(cap) = self.shard_cap {
            for shard in &mut self.shards {
                let map = shard.get_mut().unwrap();
                while map.len() > cap {
                    Self::evict_coldest(map, &self.evictions);
                }
            }
        }
    }

    fn evict_coldest(map: &mut HashMap<u64, MemoSlot>, evictions: &AtomicU64) {
        let coldest = map
            .iter()
            .min_by_key(|(_, slot)| slot.stamp.load(Ordering::Relaxed))
            .map(|(&k, _)| k);
        if let Some(k) = coldest {
            map.remove(&k);
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    #[inline]
    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, MemoSlot>> {
        // Fibonacci hash then keep the top bits: subset masks are dense in
        // the low bits, so modulo alone would alias neighbouring sets.
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 60) as usize % MEMO_SHARDS]
    }

    /// Look up `key`, bumping the hit/miss counter (and, on a hit, the
    /// slot's LRU stamp).
    fn get(&self, key: u64) -> Option<JointEntry> {
        let guard = self.shard(key).read().unwrap();
        let found = guard.get(&key).map(|slot| {
            slot.stamp.store(self.tick(), Ordering::Relaxed);
            slot.entry
        });
        drop(guard);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: u64, value: JointEntry) {
        let stamp = self.tick();
        let mut map = self.shard(key).write().unwrap();
        if let Some(cap) = self.shard_cap {
            while !map.contains_key(&key) && map.len() >= cap {
                Self::evict_coldest(&mut map, &self.evictions);
            }
        }
        map.insert(
            key,
            MemoSlot {
                entry: value,
                stamp: AtomicU64::new(stamp),
            },
        );
    }

    /// Apply `f` to every memoised entry, in place. Requires `&mut self`,
    /// so no scoring reader can observe a half-updated table.
    fn update_entries(&mut self, mut f: impl FnMut(u64, &mut JointEntry)) {
        for shard in &mut self.shards {
            for (mask, slot) in shard.get_mut().unwrap().iter_mut() {
                f(*mask, &mut slot.entry);
            }
        }
    }

    /// Drop every memoised entry (counters are cumulative and survive).
    fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap().clear();
        }
    }

    /// Current total occupancy across shards.
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// A subset of the members of one cluster, as a bitmask. Bit `k` refers to
/// the cluster's `k`-th member (cluster-local numbering), not to a global
/// [`SourceId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceSet(pub u64);

impl SourceSet {
    /// The empty set.
    pub const EMPTY: SourceSet = SourceSet(0);

    /// Set containing the single member `k`.
    #[inline]
    pub fn singleton(k: usize) -> Self {
        debug_assert!(k < 64);
        SourceSet(1u64 << k)
    }

    /// Set of the first `n` members (the full cluster).
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= 64, "cluster width {n} exceeds 64");
        if n == 64 {
            SourceSet(u64::MAX)
        } else {
            SourceSet((1u64 << n) - 1)
        }
    }

    /// Does the set contain member `k`?
    #[inline]
    pub fn contains(self, k: usize) -> bool {
        self.0 >> k & 1 == 1
    }

    /// Set with member `k` added.
    #[inline]
    pub fn with(self, k: usize) -> Self {
        SourceSet(self.0 | 1u64 << k)
    }

    /// Set with member `k` removed.
    #[inline]
    pub fn without(self, k: usize) -> Self {
        SourceSet(self.0 & !(1u64 << k))
    }

    /// Union.
    #[inline]
    pub fn union(self, other: SourceSet) -> Self {
        SourceSet(self.0 | other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn minus(self, other: SourceSet) -> Self {
        SourceSet(self.0 & !other.0)
    }

    /// Intersection.
    #[inline]
    pub fn intersect(self, other: SourceSet) -> Self {
        SourceSet(self.0 & other.0)
    }

    /// Is `self` a subset of `other`?
    #[inline]
    pub fn is_subset_of(self, other: SourceSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of members.
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate member indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let k = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(k)
            }
        })
    }
}

/// Provider of joint recall / joint false-positive rate for arbitrary
/// subsets of a cluster's members.
///
/// Conventions: `r_∅ = q_∅ = 1` (the empty conjunction is vacuously true),
/// and implementations must be *monotone*: `S ⊆ S'` implies
/// `r_{S'} <= r_S` and `q_{S'} <= q_S` (requiring more sources to agree can
/// only shrink the probability). Empirical estimates satisfy this by
/// construction.
pub trait JointQuality {
    /// Number of members in the cluster this instance describes.
    fn n_members(&self) -> usize;

    /// `r_{S*} = Pr(S* |= t | t)`.
    fn joint_recall(&self, set: SourceSet) -> f64;

    /// `q_{S*} = Pr(S* |= t | ¬t)`.
    fn joint_fpr(&self, set: SourceSet) -> f64;

    /// Single-source recall `r_k`.
    fn member_recall(&self, k: usize) -> f64 {
        self.joint_recall(SourceSet::singleton(k))
    }

    /// Single-source false-positive rate `q_k`.
    fn member_fpr(&self, k: usize) -> f64 {
        self.joint_fpr(SourceSet::singleton(k))
    }
}

/// Joint quality estimated from labelled training data.
///
/// For each labelled triple we pre-project its provider set and scope set
/// onto the cluster members; the first query of a distinct subset is one
/// pass over those rows, after which its exact `(n_true, tp, fp)` counts
/// ([`SubsetCounts`]) and both derived rates are memoised (the exact
/// solver re-queries the same subsets for every triple). Row deltas
/// ([`EmpiricalJoint::push_row`] / [`EmpiricalJoint::set_row`]) and prior
/// changes ([`EmpiricalJoint::set_alpha`]) update the memoised state in
/// place instead of invalidating it, so a hot streaming path never pays
/// the O(rows) rescan twice for the same subset.
#[derive(Debug)]
pub struct EmpiricalJoint {
    members: Vec<SourceId>,
    /// (projected providers, projected scope, truth) per labelled triple.
    rows: Vec<(u64, u64, bool)>,
    alpha: f64,
    /// Memoised per-subset counts + derived recall/FPR.
    memo: ShardedMemo,
    /// Whether any memo-visible input (rows, alpha) changed since the
    /// last [`crate::fuser::Fuser::rebuild_cluster_solvers`] consumed it.
    dirty: bool,
    /// Row deltas absorbed incrementally (see [`JointDeltaStats`]).
    delta_rows: u64,
    /// Explicit whole-cache invalidations (atomic: the invalidation
    /// entry point takes `&self`).
    invalidations: AtomicU64,
}

impl EmpiricalJoint {
    /// Build for the given cluster members over the labelled triples of
    /// `gold`.
    pub fn new(
        ds: &Dataset,
        gold: &GoldLabels,
        members: Vec<SourceId>,
        alpha: f64,
    ) -> Result<Self> {
        let labelled: Vec<(TripleId, bool)> = gold.iter_labelled().collect();
        Self::with_labelled_rows(ds, members, alpha, &labelled)
    }

    /// Build for the given cluster members with the labelled triples in an
    /// explicit, caller-chosen row order.
    ///
    /// [`EmpiricalJoint::new`] stores rows in [`TripleId`] order; an
    /// incremental caller that has been appending rows in label-*arrival*
    /// order uses this to rebuild a cluster joint whose row indices stay
    /// consistent with its sibling clusters (the estimates themselves are
    /// order-independent sums, so both orders yield bitwise-identical
    /// rates).
    pub fn with_labelled_rows(
        ds: &Dataset,
        members: Vec<SourceId>,
        alpha: f64,
        labelled: &[(TripleId, bool)],
    ) -> Result<Self> {
        check_alpha(alpha)?;
        if members.len() > 64 {
            return Err(FusionError::TooManySources {
                requested: members.len(),
                max: 64,
            });
        }
        if labelled.is_empty() {
            return Err(FusionError::MissingGold);
        }
        let positions: Vec<usize> = members.iter().map(|s| s.index()).collect();
        let mut rows = Vec::with_capacity(labelled.len());
        for &(t, truth) in labelled {
            if t.index() >= ds.n_triples() {
                return Err(FusionError::TripleOutOfRange(t.index()));
            }
            let providers = ds.providers(t).project(&positions);
            let mut scope = 0u64;
            for (k, &s) in members.iter().enumerate() {
                if ds.in_scope(s, t) {
                    scope |= 1u64 << k;
                }
            }
            rows.push((providers, scope, truth));
        }
        Ok(EmpiricalJoint {
            members,
            rows,
            alpha,
            memo: ShardedMemo::new(),
            dirty: false,
            delta_rows: 0,
            invalidations: AtomicU64::new(0),
        })
    }

    /// The cluster members (bit `k` of any [`SourceSet`] refers to
    /// `members()[k]`).
    pub fn members(&self) -> &[SourceId] {
        &self.members
    }

    /// Cluster-local bit position of a source, if it is a member.
    pub fn member_position(&self, s: SourceId) -> Option<usize> {
        self.members.iter().position(|&m| m == s)
    }

    /// The prior used for the Theorem 3.5 joint-FPR derivation.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Replace the prior. Joint recalls are alpha-free; every memoised
    /// subset's FPR is recomputed in place from its maintained counts
    /// (`q = alpha/(1-alpha) · fp/n_true`), so no memo entry is dropped
    /// and no row is rescanned. A no-op when the value is unchanged.
    pub fn set_alpha(&mut self, alpha: f64) -> Result<()> {
        check_alpha(alpha)?;
        if alpha != self.alpha {
            self.alpha = alpha;
            self.memo
                .update_entries(|_, e| e.fpr = e.counts.fpr_value(alpha));
            self.dirty = true;
        }
        Ok(())
    }

    /// Number of labelled rows backing the estimates.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// One labelled row: `(projected providers, projected scope, truth)`.
    pub fn row(&self, idx: usize) -> (u64, u64, bool) {
        self.rows[idx]
    }

    /// Append a labelled row (a newly labelled triple), delta-updating the
    /// maintained counts of every memoised subset in place — no memo entry
    /// is dropped and no rescan is triggered. Delta hook for incremental
    /// ingestion: the counts are order-independent sums over rows, so
    /// appending in label-arrival order yields bit-identical values to a
    /// from-scratch build.
    ///
    /// ```
    /// use corrfuse_core::joint::{EmpiricalJoint, JointQuality, SourceSet};
    /// use corrfuse_core::{DatasetBuilder, TripleId};
    ///
    /// let mut b = DatasetBuilder::new();
    /// let (s1, t1) = b.observe_named("A", "x", "p", "1");
    /// let s2 = b.source("B");
    /// b.observe(s2, t1);
    /// let t2 = b.triple("y", "p", "2");
    /// b.observe(s1, t2);
    /// b.label(t1, true);
    /// b.label(t2, false);
    /// let ds = b.build().unwrap();
    /// let members: Vec<_> = ds.sources().collect();
    ///
    /// // Fit on only the first label, warm a subset, then stream the
    /// // second label in as a row delta.
    /// let keep = [TripleId(0)].into_iter().collect();
    /// let partial = ds.gold().unwrap().restricted_to(&keep);
    /// let mut inc = EmpiricalJoint::new(&ds, &partial, members.clone(), 0.5).unwrap();
    /// let probe = SourceSet::singleton(0);
    /// let _ = inc.joint_fpr(probe); // memoise (one rescan)
    /// let (prov, scope) = inc.project_pattern(&ds, TripleId(1));
    /// inc.push_row(prov, scope, false);
    ///
    /// // The delta-updated value is bitwise equal to a fresh build that
    /// // rescans everything — and the warm entry answered without a
    /// // second rescan.
    /// let fresh = EmpiricalJoint::new(&ds, ds.gold().unwrap(), members, 0.5).unwrap();
    /// assert_eq!(inc.joint_fpr(probe).to_bits(), fresh.joint_fpr(probe).to_bits());
    /// assert_eq!(inc.delta_stats().rescans, 1);
    /// assert_eq!(inc.delta_stats().delta_rows, 1);
    /// ```
    pub fn push_row(&mut self, providers: u64, scope: u64, truth: bool) {
        let row = (providers, scope, truth);
        self.rows.push(row);
        let alpha = self.alpha;
        self.memo.update_entries(|mask, e| {
            e.counts.apply_row(mask, row, 1);
            *e = JointEntry::from_counts(e.counts, alpha);
        });
        self.delta_rows += 1;
        self.dirty = true;
    }

    /// Overwrite a row in place (a claim or scope change touched an
    /// already-labelled triple), retracting the old row's contribution
    /// from every memoised subset and adding the new one — the memo stays
    /// warm. A no-op when the row is unchanged. Errors on an out-of-range
    /// index.
    pub fn set_row(&mut self, idx: usize, providers: u64, scope: u64, truth: bool) -> Result<()> {
        match self.rows.get_mut(idx) {
            None => Err(FusionError::TripleOutOfRange(idx)),
            Some(row) => {
                let next = (providers, scope, truth);
                if *row != next {
                    let prev = *row;
                    *row = next;
                    let alpha = self.alpha;
                    self.memo.update_entries(|mask, e| {
                        e.counts.apply_row(mask, prev, -1);
                        e.counts.apply_row(mask, next, 1);
                        *e = JointEntry::from_counts(e.counts, alpha);
                    });
                    self.delta_rows += 1;
                    self.dirty = true;
                }
                Ok(())
            }
        }
    }

    /// Drop every memoised subset (counts and rates). The next query of
    /// each subset pays one full O(rows) rescan; hit/miss counters are
    /// cumulative and survive.
    ///
    /// Since row deltas and prior changes are absorbed in place, nothing
    /// in the maintenance path calls this any more. The **only**
    /// conditions that still force a full rescan are: (1) the first query
    /// of a subset never seen by this instance, (2) any query after an
    /// explicit `invalidate_caches` (kept public as a memory-release /
    /// defensive escape hatch), and (3) construction of a new
    /// `EmpiricalJoint` — e.g. when re-clustering changes a cluster's
    /// membership, which changes the projection every row is stored
    /// under.
    pub fn invalidate_caches(&self) {
        self.memo.clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative hit/miss counters of the subset memo.
    pub fn cache_stats(&self) -> CacheStats {
        self.memo.stats()
    }

    /// Bound the subset memo to roughly `max_entries` live entries
    /// (`None` lifts the bound). Past the bound, inserting a fresh
    /// subset evicts the least-recently-touched one in its shard; a
    /// re-touched evicted subset simply pays the ordinary miss-path
    /// rescan, so scores are unaffected — this is purely a memory
    /// ceiling for long sessions that sweep many distinct subsets.
    pub fn set_memo_capacity(&mut self, max_entries: Option<usize>) {
        self.memo.set_capacity(max_entries);
    }

    /// Cumulative incremental-maintenance counters (row deltas absorbed
    /// in place vs. full rescans paid, plus memo occupancy/evictions).
    pub fn delta_stats(&self) -> JointDeltaStats {
        JointDeltaStats {
            delta_rows: self.delta_rows,
            rescans: self.memo.stats().misses,
            invalidations: self.invalidations.load(Ordering::Relaxed),
            memo_entries: self.memo.len() as u64,
            memo_evictions: self.memo.evictions.load(Ordering::Relaxed),
        }
    }

    /// Whether any memo-visible input (rows, alpha) changed since
    /// [`EmpiricalJoint::take_dirty`] last ran. Solver-rebuild scheduling
    /// reads this to skip clusters whose parameters are bitwise
    /// unchanged.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Read and clear the dirty flag (see [`EmpiricalJoint::is_dirty`]).
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    /// Project a triple's provider and scope sets onto this cluster's
    /// members — the row this joint would store for `t` if it were
    /// labelled. Delta hook used to build [`EmpiricalJoint::push_row`] /
    /// [`EmpiricalJoint::set_row`] arguments from live dataset state.
    pub fn project_pattern(&self, ds: &Dataset, t: TripleId) -> (u64, u64) {
        let positions: Vec<usize> = self.members.iter().map(|s| s.index()).collect();
        let providers = ds.providers(t).project(&positions);
        let mut scope = 0u64;
        for (k, &s) in self.members.iter().enumerate() {
            if ds.in_scope(s, t) {
                scope |= 1u64 << k;
            }
        }
        (providers, scope)
    }

    /// The exact joint counts for `set`, by one full pass over the row
    /// store. This is the **rescan fallback** that pins the incremental
    /// path: a delta-maintained [`SubsetCounts`] must always equal this
    /// scan (enforced by a testkit property over random row streams).
    pub fn scan_counts(&self, set: SourceSet) -> SubsetCounts {
        let m = set.0;
        let mut counts = SubsetCounts::default();
        for &(providers, scope, truth) in &self.rows {
            if truth {
                if m & !scope == 0 {
                    counts.n_true += 1;
                    if m & !providers == 0 {
                        counts.tp += 1;
                    }
                }
            } else if m & !scope == 0 && m & !providers == 0 {
                counts.fp += 1;
            }
        }
        counts
    }

    /// The memoised entry for `set`, rescanning on a miss.
    fn entry(&self, set: SourceSet) -> JointEntry {
        if let Some(e) = self.memo.get(set.0) {
            return e;
        }
        let e = JointEntry::from_counts(self.scan_counts(set), self.alpha);
        self.memo.insert(set.0, e);
        e
    }

    /// The memoised joint counts for `set` (delta-maintained; rescans on
    /// the first query of a subset). Exposed so callers correlating many
    /// subsets (clustering, reports) share the maintained state.
    pub fn counts(&self, set: SourceSet) -> SubsetCounts {
        self.entry(set).counts
    }

    /// Joint precision `p_{S*}` — `None` when no labelled triple is jointly
    /// provided (no support). Exposed for reports (Fig 1b) and clustering.
    pub fn joint_precision(&self, set: SourceSet) -> Option<f64> {
        let SubsetCounts { tp, fp, .. } = self.counts(set);
        if tp + fp == 0 {
            None
        } else {
            Some(tp as f64 / (tp + fp) as f64)
        }
    }
}

impl JointQuality for EmpiricalJoint {
    fn n_members(&self) -> usize {
        self.members.len()
    }

    fn joint_recall(&self, set: SourceSet) -> f64 {
        if set.is_empty() {
            return 1.0;
        }
        self.entry(set).recall
    }

    fn joint_fpr(&self, set: SourceSet) -> f64 {
        if set.is_empty() {
            return 1.0;
        }
        // Theorem 3.5 in count form: q = alpha/(1-alpha) * FP / N_true
        // (see `quality::fpr_from_counts`). Stays defined when TP = 0.
        self.entry(set).fpr
    }
}

/// Placeholder joint for solvers that precompute everything at
/// construction time and never read joint parameters (e.g. the PrecRec
/// adapter). Returns the vacuous `r_∅ = q_∅ = 1` for every subset.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoJoint;

impl JointQuality for NoJoint {
    fn n_members(&self) -> usize {
        0
    }

    fn joint_recall(&self, _set: SourceSet) -> f64 {
        1.0
    }

    fn joint_fpr(&self, _set: SourceSet) -> f64 {
        1.0
    }
}

/// Joint quality of perfectly independent sources: products of per-source
/// rates. Used to validate Corollaries 4.3 / 4.6 and as a fallback.
#[derive(Debug, Clone)]
pub struct IndependentJoint {
    recalls: Vec<f64>,
    fprs: Vec<f64>,
}

impl IndependentJoint {
    /// Build from per-source recall and false-positive rate.
    pub fn new(recalls: Vec<f64>, fprs: Vec<f64>) -> Result<Self> {
        if recalls.len() != fprs.len() {
            return Err(FusionError::InvalidProbability {
                what: "recalls/fprs length mismatch",
                value: f64::NAN,
            });
        }
        if recalls.len() > 64 {
            return Err(FusionError::TooManySources {
                requested: recalls.len(),
                max: 64,
            });
        }
        for &r in &recalls {
            crate::prob::check_prob("recall", r)?;
        }
        for &q in &fprs {
            crate::prob::check_prob("false positive rate", q)?;
        }
        Ok(IndependentJoint { recalls, fprs })
    }
}

impl JointQuality for IndependentJoint {
    fn n_members(&self) -> usize {
        self.recalls.len()
    }

    fn joint_recall(&self, set: SourceSet) -> f64 {
        set.iter().map(|k| self.recalls[k]).product()
    }

    fn joint_fpr(&self, set: SourceSet) -> f64 {
        set.iter().map(|k| self.fprs[k]).product()
    }
}

/// Joint quality with explicit per-subset overrides and an independence
/// fallback. This mirrors how the paper's worked examples (4.4, 4.7, 4.10)
/// specify parameters: a handful of joint values are "given", everything
/// else defaults to products.
#[derive(Debug, Clone)]
pub struct TableJoint {
    base: IndependentJoint,
    recall_overrides: HashMap<u64, f64>,
    fpr_overrides: HashMap<u64, f64>,
}

impl TableJoint {
    /// Start from independent per-source rates.
    pub fn new(recalls: Vec<f64>, fprs: Vec<f64>) -> Result<Self> {
        Ok(TableJoint {
            base: IndependentJoint::new(recalls, fprs)?,
            recall_overrides: HashMap::new(),
            fpr_overrides: HashMap::new(),
        })
    }

    /// Override `r_{S*}` for one subset.
    pub fn set_recall(&mut self, set: SourceSet, value: f64) -> &mut Self {
        self.recall_overrides.insert(set.0, value);
        self
    }

    /// Override `q_{S*}` for one subset.
    pub fn set_fpr(&mut self, set: SourceSet, value: f64) -> &mut Self {
        self.fpr_overrides.insert(set.0, value);
        self
    }
}

impl JointQuality for TableJoint {
    fn n_members(&self) -> usize {
        self.base.n_members()
    }

    fn joint_recall(&self, set: SourceSet) -> f64 {
        match self.recall_overrides.get(&set.0) {
            Some(&v) => v,
            None => self.base.joint_recall(set),
        }
    }

    fn joint_fpr(&self, set: SourceSet) -> f64 {
        match self.fpr_overrides.get(&set.0) {
            Some(&v) => v,
            None => self.base.joint_fpr(set),
        }
    }
}

/// Correlation factor `C_{S*} = r_{S*} / prod_i r_i` (Eq. 16). Values above
/// 1 indicate positive correlation on true triples, below 1 negative
/// correlation; 1 is independence. Returns 1 when undefined (a member has
/// zero recall).
pub fn correlation_true(joint: &impl JointQuality, set: SourceSet) -> f64 {
    let denom: f64 = set.iter().map(|k| joint.member_recall(k)).product();
    if denom == 0.0 {
        1.0
    } else {
        joint.joint_recall(set) / denom
    }
}

/// Correlation factor `C¬_{S*} = q_{S*} / prod_i q_i` (Eq. 17) — the same
/// measure on false triples.
pub fn correlation_false(joint: &impl JointQuality, set: SourceSet) -> f64 {
    let denom: f64 = set.iter().map(|k| joint.member_fpr(k)).product();
    if denom == 0.0 {
        1.0
    } else {
        joint.joint_fpr(set) / denom
    }
}

/// Per-source correlation summaries used by the aggressive and elastic
/// approximations.
///
/// `cr[k] = C⁺_k · r_k = r_cluster / r_{cluster \ k}` and
/// `cq[k] = C⁻_k · q_k = q_cluster / q_{cluster \ k}` (Eqs. 14–15 times the
/// member's own rate — this "effective rate" form is what the formulas
/// consume and avoids dividing by `r_k`). When the denominator has no
/// support the member falls back to independence (`cr[k] = r_k`).
#[derive(Debug, Clone, PartialEq)]
pub struct PerSourceCorrelation {
    /// Effective recall `C⁺_k · r_k` per member.
    pub cr: Vec<f64>,
    /// Effective false-positive rate `C⁻_k · q_k` per member.
    pub cq: Vec<f64>,
}

impl PerSourceCorrelation {
    /// Compute for the given cluster.
    pub fn compute<J: JointQuality + ?Sized>(joint: &J, cluster: SourceSet) -> Self {
        let n = joint.n_members();
        let r_full = joint.joint_recall(cluster);
        let q_full = joint.joint_fpr(cluster);
        let mut cr = vec![0.0; n];
        let mut cq = vec![0.0; n];
        for k in 0..n {
            if !cluster.contains(k) {
                continue;
            }
            let rest = cluster.without(k);
            let r_rest = joint.joint_recall(rest);
            let q_rest = joint.joint_fpr(rest);
            cr[k] = if r_rest > 0.0 {
                r_full / r_rest
            } else {
                joint.member_recall(k)
            };
            cq[k] = if q_rest > 0.0 {
                q_full / q_rest
            } else {
                joint.member_fpr(k)
            };
        }
        PerSourceCorrelation { cr, cq }
    }

    /// The raw `C⁺_k` factor (Eq. 14), for reporting (Figure 3).
    pub fn cplus(&self, joint: &impl JointQuality, k: usize) -> f64 {
        let r = joint.member_recall(k);
        if r == 0.0 {
            1.0
        } else {
            self.cr[k] / r
        }
    }

    /// The raw `C⁻_k` factor (Eq. 15), for reporting (Figure 3).
    pub fn cminus(&self, joint: &impl JointQuality, k: usize) -> f64 {
        let q = joint.member_fpr(k);
        if q == 0.0 {
            1.0
        } else {
            self.cq[k] / q
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn figure1() -> Dataset {
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (1..=5).map(|i| b.source(format!("S{i}"))).collect();
        let rows: [(&str, bool, &[usize]); 10] = [
            ("t1", true, &[1, 2, 4, 5]),
            ("t2", false, &[1, 2]),
            ("t3", true, &[3]),
            ("t4", true, &[2, 3, 4, 5]),
            ("t5", false, &[2, 3]),
            ("t6", true, &[1, 4, 5]),
            ("t7", true, &[1, 2, 3]),
            ("t8", false, &[1, 2, 4, 5]),
            ("t9", false, &[1, 2, 4, 5]),
            ("t10", true, &[1, 3, 4, 5]),
        ];
        for (name, truth, provs) in rows {
            let t = b.triple("Obama", "fact", name);
            for &p in provs {
                b.observe(sources[p - 1], t);
            }
            b.label(t, truth);
        }
        b.build().unwrap()
    }

    fn fig1_joint() -> EmpiricalJoint {
        let ds = figure1();
        let members: Vec<SourceId> = ds.sources().collect();
        EmpiricalJoint::new(&ds, ds.gold().unwrap(), members, 0.5).unwrap()
    }

    fn set(members: &[usize]) -> SourceSet {
        members
            .iter()
            .fold(SourceSet::EMPTY, |acc, &k| acc.with(k - 1))
    }

    #[test]
    fn source_set_basics() {
        let s = SourceSet::singleton(3).with(5);
        assert!(s.contains(3) && s.contains(5) && !s.contains(4));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(s.without(3), SourceSet::singleton(5));
        assert!(SourceSet::EMPTY.is_empty());
        assert!(s.is_subset_of(SourceSet::full(10)));
        assert!(!SourceSet::full(10).is_subset_of(s));
        assert_eq!(SourceSet::full(3).0, 0b111);
        assert_eq!(SourceSet::full(64).0, u64::MAX);
        assert_eq!(s.minus(SourceSet::singleton(5)), SourceSet::singleton(3));
        assert_eq!(
            s.intersect(SourceSet::singleton(5)),
            SourceSet::singleton(5)
        );
        assert_eq!(s.union(SourceSet::singleton(0)).count(), 3);
    }

    #[test]
    fn figure_1b_joint_precision_and_recall() {
        let j = fig1_joint();
        // {S2,S3}: joint prec 0.67, joint rec 0.33.
        assert!((j.joint_precision(set(&[2, 3])).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((j.joint_recall(set(&[2, 3])) - 2.0 / 6.0).abs() < 1e-12);
        // {S1,S3}: joint prec 1, joint rec 0.33.
        assert!((j.joint_precision(set(&[1, 3])).unwrap() - 1.0).abs() < 1e-12);
        assert!((j.joint_recall(set(&[1, 3])) - 2.0 / 6.0).abs() < 1e-12);
        // {S1,S2,S4}: joint prec 0.33, joint rec 0.167.
        assert!((j.joint_precision(set(&[1, 2, 4])).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((j.joint_recall(set(&[1, 2, 4])) - 1.0 / 6.0).abs() < 1e-12);
        // {S1,S4,S5}: joint prec 0.6, joint rec 0.5.
        assert!((j.joint_precision(set(&[1, 4, 5])).unwrap() - 0.6).abs() < 1e-12);
        assert!((j.joint_recall(set(&[1, 4, 5])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_set_conventions() {
        let j = fig1_joint();
        assert_eq!(j.joint_recall(SourceSet::EMPTY), 1.0);
        assert_eq!(j.joint_fpr(SourceSet::EMPTY), 1.0);
    }

    #[test]
    fn singleton_joint_matches_source_quality() {
        let j = fig1_joint();
        // Matches Figure 1b per-source numbers.
        assert!((j.member_recall(0) - 4.0 / 6.0).abs() < 1e-12);
        assert!((j.member_fpr(0) - 0.5).abs() < 1e-12);
        assert!((j.member_fpr(2) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn example_2_3_correlation_signs() {
        let j = fig1_joint();
        // S1,S4,S5 positively correlated: joint recall 0.5 > 0.3 product.
        let c = correlation_true(&j, set(&[1, 4, 5]));
        assert!(c > 1.0, "C145={c}");
        // S1,S3 negatively correlated: joint recall 0.33 < 0.45 product.
        let c = correlation_true(&j, set(&[1, 3]));
        assert!(c < 1.0, "C13={c}");
    }

    #[test]
    fn paper_correlation_factor_values() {
        let j = fig1_joint();
        // §4.2: C45 = 0.67/(0.67*0.67) = 1.5.
        assert!((correlation_true(&j, set(&[4, 5])) - 1.5).abs() < 0.01);
        // C13 = 0.33/(0.67*0.67) = 0.75.
        assert!((correlation_true(&j, set(&[1, 3])) - 0.75).abs() < 0.01);
        // C23 = 1 (independent on true triples).
        assert!((correlation_true(&j, set(&[2, 3])) - 1.0).abs() < 0.01);
        // On false triples, C¬23 from the count-based definitions:
        // q23 = FP_23/N_true = 1/6, q2*q3 = (4/6)(1/6) => C¬23 = 1.5.
        // (The paper's prose quotes C¬23 = 0.5, which is inconsistent with
        // its own Eq. 17 on the Figure 1 counts; see DESIGN.md deviations.)
        assert!((correlation_false(&j, set(&[2, 3])) - 1.5).abs() < 0.01);
    }

    #[test]
    fn joint_monotonicity() {
        let j = fig1_joint();
        // Adding members can only shrink joint recall/fpr.
        for base in 0..32u64 {
            let s = SourceSet(base);
            for k in 0..5 {
                if s.contains(k) {
                    continue;
                }
                let bigger = s.with(k);
                assert!(j.joint_recall(bigger) <= j.joint_recall(s) + 1e-12);
                assert!(j.joint_fpr(bigger) <= j.joint_fpr(s) + 1e-12);
            }
        }
    }

    #[test]
    fn cache_is_consistent() {
        let j = fig1_joint();
        let s = set(&[1, 4, 5]);
        let first = j.joint_recall(s);
        let second = j.joint_recall(s);
        assert_eq!(first, second);
    }

    #[test]
    fn independent_joint_is_product() {
        let j = IndependentJoint::new(vec![0.5, 0.4, 0.9], vec![0.1, 0.2, 0.3]).unwrap();
        let s = SourceSet::full(3);
        assert!((j.joint_recall(s) - 0.5 * 0.4 * 0.9).abs() < 1e-12);
        assert!((j.joint_fpr(s) - 0.1 * 0.2 * 0.3).abs() < 1e-12);
        assert!((correlation_true(&j, s) - 1.0).abs() < 1e-12);
        assert!((correlation_false(&j, s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_joint_validation() {
        assert!(IndependentJoint::new(vec![0.5], vec![0.1, 0.2]).is_err());
        assert!(IndependentJoint::new(vec![1.5], vec![0.1]).is_err());
        assert!(IndependentJoint::new(vec![0.5; 65], vec![0.1; 65]).is_err());
    }

    #[test]
    fn table_joint_overrides_and_falls_back() {
        let mut j = TableJoint::new(vec![0.5, 0.5], vec![0.1, 0.1]).unwrap();
        j.set_recall(SourceSet::full(2), 0.4);
        assert_eq!(j.joint_recall(SourceSet::full(2)), 0.4);
        // Singleton falls back to the base.
        assert_eq!(j.joint_recall(SourceSet::singleton(0)), 0.5);
        j.set_fpr(SourceSet::singleton(1), 0.05);
        assert_eq!(j.joint_fpr(SourceSet::singleton(1)), 0.05);
        assert!((j.joint_fpr(SourceSet::full(2)) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn per_source_correlation_independent_is_identity() {
        let j = IndependentJoint::new(vec![0.5, 0.4, 0.9], vec![0.1, 0.2, 0.3]).unwrap();
        let c = PerSourceCorrelation::compute(&j, SourceSet::full(3));
        for k in 0..3 {
            assert!((c.cr[k] - j.member_recall(k)).abs() < 1e-12);
            assert!((c.cq[k] - j.member_fpr(k)).abs() < 1e-12);
            assert!((c.cplus(&j, k) - 1.0).abs() < 1e-12);
            assert!((c.cminus(&j, k) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn figure_3_correlation_parameters_from_table() {
        // Example 4.7 / Figure 3 with the paper's *given* joint parameters:
        // r_12345 = 0.11, q_12345 = 0.037, per-source r/q from Figure 1b.
        let r = vec![2.0 / 3.0, 0.5, 2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0];
        let q = vec![0.5, 2.0 / 3.0, 1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0];
        let mut j = TableJoint::new(r, q).unwrap();
        let full = SourceSet::full(5);
        j.set_recall(full, 0.11);
        j.set_fpr(full, 0.037);
        // Leave-one-out joint values chosen to reproduce Figure 3:
        // C+_1 = 0.11/(0.67*0.167) = 1  => r_{2345} = 0.167 * ... solve:
        // cr[0] = r_full / r_rest; C+_1 = cr[0]/r_1.
        j.set_recall(full.without(0), 0.11 / (1.0 * 2.0 / 3.0)); // C+1=1
        j.set_recall(full.without(1), 0.11 / (1.0 * 0.5)); // C+2=1
        j.set_recall(full.without(2), 0.11 / (0.75 * 2.0 / 3.0)); // C+3=0.75
        j.set_recall(full.without(3), 0.11 / (1.5 * 2.0 / 3.0)); // C+4=1.5
        j.set_recall(full.without(4), 0.11 / (1.5 * 2.0 / 3.0)); // C+5=1.5
        j.set_fpr(full.without(0), 0.037 / (2.0 * 0.5)); // C-1=2
        j.set_fpr(full.without(1), 0.037 / (1.0 * 2.0 / 3.0)); // C-2=1
        j.set_fpr(full.without(2), 0.037 / (1.0 / 6.0)); // C-3=1
        j.set_fpr(full.without(3), 0.037 / (3.0 / 3.0)); // C-4=3
        j.set_fpr(full.without(4), 0.037 / (3.0 / 3.0)); // C-5=3
        let c = PerSourceCorrelation::compute(&j, full);
        let want_plus = [1.0, 1.0, 0.75, 1.5, 1.5];
        let want_minus = [2.0, 1.0, 1.0, 3.0, 3.0];
        for k in 0..5 {
            assert!(
                (c.cplus(&j, k) - want_plus[k]).abs() < 1e-9,
                "C+{} = {}",
                k + 1,
                c.cplus(&j, k)
            );
            assert!(
                (c.cminus(&j, k) - want_minus[k]).abs() < 1e-9,
                "C-{} = {}",
                k + 1,
                c.cminus(&j, k)
            );
        }
    }

    #[test]
    fn per_source_correlation_zero_support_falls_back() {
        // All-but-one joint recall is 0 => fall back to member recall.
        let mut j = TableJoint::new(vec![0.5, 0.5], vec![0.1, 0.1]).unwrap();
        j.set_recall(SourceSet::singleton(1), 0.0);
        // cluster {0,1}: rest of 0 is {1} with r=0 -> fallback cr[0]=r_0.
        let c = PerSourceCorrelation::compute(&j, SourceSet::full(2));
        assert_eq!(c.cr[0], 0.5);
    }

    #[test]
    fn too_many_members_rejected() {
        let ds = figure1();
        let members: Vec<SourceId> = (0..65).map(SourceId).collect();
        let err = EmpiricalJoint::new(&ds, ds.gold().unwrap(), members, 0.5);
        assert!(matches!(err, Err(FusionError::TooManySources { .. })));
    }

    #[test]
    fn cache_counters_and_invalidation() {
        let j = fig1_joint();
        let s = set(&[1, 4, 5]);
        assert_eq!(j.cache_stats(), CacheStats::default());
        let first = j.joint_recall(s); // miss
        let _ = j.joint_recall(s); // hit
        let stats = j.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // Invalidation keeps counters but drops entries: next query misses
        // and recomputes the same value from the unchanged rows.
        j.invalidate_caches();
        assert_eq!(j.joint_recall(s), first);
        assert_eq!(j.cache_stats().misses, 2);
    }

    #[test]
    fn memo_eviction_bounds_entries_and_keeps_rates_bitwise() {
        let mut bounded = fig1_joint();
        bounded.set_memo_capacity(Some(4)); // 1 entry per shard
        let unbounded = fig1_joint();
        // Sweep the whole subset lattice twice: far more distinct
        // subsets than the bound, so eviction must kick in, and every
        // (re)computed rate must still match the unbounded memo bitwise.
        for round in 0..2 {
            for mask in 1..32u64 {
                let s = SourceSet(mask);
                assert_eq!(
                    bounded.joint_recall(s).to_bits(),
                    unbounded.joint_recall(s).to_bits(),
                    "r mask {mask:b} round {round}"
                );
                assert_eq!(
                    bounded.joint_fpr(s).to_bits(),
                    unbounded.joint_fpr(s).to_bits(),
                    "q mask {mask:b} round {round}"
                );
            }
        }
        let stats = bounded.delta_stats();
        // Per-shard cap is ceil(4/16) = 1, so at most MEMO_SHARDS live.
        assert!(
            stats.memo_entries <= MEMO_SHARDS as u64,
            "occupancy {} over bound",
            stats.memo_entries
        );
        assert!(stats.memo_evictions > 0);
        // Evicted subsets re-enter through the miss path: strictly more
        // rescans than the unbounded memo paid for the same queries.
        assert!(stats.rescans > unbounded.delta_stats().rescans);
        assert_eq!(stats.invalidations, 0);
    }

    #[test]
    fn memo_capacity_shrinks_existing_entries() {
        let mut j = fig1_joint();
        for mask in 1..32u64 {
            let _ = j.joint_recall(SourceSet(mask));
        }
        assert_eq!(j.delta_stats().memo_entries, 31);
        j.set_memo_capacity(Some(4));
        let stats = j.delta_stats();
        assert!(stats.memo_entries <= MEMO_SHARDS as u64);
        assert_eq!(
            stats.memo_evictions,
            31 - stats.memo_entries,
            "every entry over the bound was evicted"
        );
        // Row deltas keep maintaining the surviving entries in place.
        let row = j.row(0);
        j.set_row(0, 0, row.1, row.2).unwrap();
        let fresh = fig1_joint_after(|f| {
            let r = f.row(0);
            f.set_row(0, 0, r.1, r.2).unwrap();
        });
        for mask in 1..32u64 {
            let s = SourceSet(mask);
            assert_eq!(j.joint_recall(s).to_bits(), fresh.joint_recall(s).to_bits());
            assert_eq!(j.joint_fpr(s).to_bits(), fresh.joint_fpr(s).to_bits());
        }
    }

    fn fig1_joint_after(mutate: impl FnOnce(&mut EmpiricalJoint)) -> EmpiricalJoint {
        let mut j = fig1_joint();
        mutate(&mut j);
        j
    }

    #[test]
    fn row_maintenance_matches_fresh_build() {
        let ds = figure1();
        let gold = ds.gold().unwrap();
        let members: Vec<SourceId> = ds.sources().collect();
        // Build incrementally: start from the first 6 labelled triples,
        // push the rest as rows, then patch one row.
        let keep: std::collections::HashSet<TripleId> = (0..6u32).map(TripleId).collect();
        let partial = gold.restricted_to(&keep);
        let mut inc = EmpiricalJoint::new(&ds, &partial, members.clone(), 0.5).unwrap();
        assert_eq!(inc.n_rows(), 6);
        // Warm a cache entry, then mutate rows — values must track.
        let probe = set(&[1, 4, 5]);
        let _ = inc.joint_recall(probe);
        for t in (6..10u32).map(TripleId) {
            let (prov, scope) = inc.project_pattern(&ds, t);
            inc.push_row(prov, scope, gold.get(t).unwrap());
        }
        let full = EmpiricalJoint::new(&ds, gold, members, 0.5).unwrap();
        for mask in 0..32u64 {
            let s = SourceSet(mask);
            assert_eq!(inc.joint_recall(s), full.joint_recall(s), "r mask {mask:b}");
            assert_eq!(inc.joint_fpr(s), full.joint_fpr(s), "q mask {mask:b}");
        }
        // set_row keeps the cache warm whether or not the row changed...
        let row = inc.row(0);
        let before = inc.cache_stats();
        inc.set_row(0, row.0, row.1, row.2).unwrap();
        let _ = inc.joint_recall(probe);
        assert_eq!(inc.cache_stats().hits, before.hits + 1);
        // ...and a real change delta-updates the estimate in place: the
        // re-query is another hit, with the shifted value.
        let r_before = inc.joint_recall(probe);
        let hits_before = inc.cache_stats().hits;
        inc.set_row(0, 0, row.1, row.2).unwrap(); // t1 loses all providers
        assert!(inc.joint_recall(probe) < r_before);
        assert_eq!(inc.cache_stats().hits, hits_before + 1);
        assert!(inc.set_row(99, 0, 0, true).is_err());
    }

    /// The incremental-maintenance trust anchor: under random streams of
    /// `push_row` / `set_row` / `set_alpha` with interleaved (cache-
    /// warming) queries, every memoised subset's counts stay equal to the
    /// exact full-rescan fallback, and both derived rates stay bitwise
    /// equal to the count formulas applied to those rescanned counts.
    #[test]
    fn delta_maintenance_matches_rescan_on_random_row_streams() {
        use crate::testkit::run_cases;
        run_cases("joint_delta_vs_rescan", 16, |g| {
            let n_members = g.usize_in(1, 6);
            let n_masks = 1u64 << n_members;
            let mut b = DatasetBuilder::new();
            let sources: Vec<_> = (0..n_members).map(|i| b.source(format!("S{i}"))).collect();
            let t = b.triple("seed", "p", "v");
            b.observe(sources[0], t);
            b.label(t, g.bool(0.5));
            let ds = b.build().unwrap();
            let members: Vec<SourceId> = ds.sources().collect();
            let mut alpha = 0.5;
            let mut joint = EmpiricalJoint::new(&ds, ds.gold().unwrap(), members, alpha).unwrap();
            // Half the cases run under a tight memo bound: eviction must
            // be invisible to every value below (evicted subsets rescan).
            if g.bool(0.5) {
                joint.set_memo_capacity(Some(g.usize_in(1, 8)));
            }
            let random_row = |g: &mut crate::testkit::Gen| {
                let scope = g.u64_below(n_masks);
                // Providers are a subset of the scope, like real rows.
                (g.u64_below(n_masks) & scope, scope, g.bool(0.5))
            };
            for step in 0..24 {
                // Warm a random slice of the subset lattice before
                // mutating, so deltas hit a partially-warm memo.
                for _ in 0..g.usize_in(0, 4) {
                    let m = SourceSet(g.u64_below(n_masks));
                    let _ = joint.joint_recall(m);
                    let _ = joint.joint_fpr(m);
                }
                match g.usize_in(0, 4) {
                    0 if step > 0 => {
                        let idx = g.usize_in(0, joint.n_rows());
                        let (p, s, tr) = random_row(g);
                        joint.set_row(idx, p, s, tr).unwrap();
                    }
                    1 => {
                        alpha = g.f64_in(0.05, 0.95);
                        joint.set_alpha(alpha).unwrap();
                    }
                    _ => {
                        let (p, s, tr) = random_row(g);
                        joint.push_row(p, s, tr);
                    }
                }
                for mask in 0..n_masks {
                    let set = SourceSet(mask);
                    let scanned = joint.scan_counts(set);
                    assert_eq!(joint.counts(set), scanned, "mask {mask:b}");
                    if set.is_empty() {
                        continue;
                    }
                    let want_r = if scanned.n_true == 0 {
                        0.0
                    } else {
                        scanned.tp as f64 / scanned.n_true as f64
                    };
                    let want_q = if scanned.n_true == 0 {
                        0.0
                    } else {
                        (alpha / (1.0 - alpha) * scanned.fp as f64 / scanned.n_true as f64).min(1.0)
                    };
                    assert_eq!(joint.joint_recall(set).to_bits(), want_r.to_bits());
                    assert_eq!(joint.joint_fpr(set).to_bits(), want_q.to_bits());
                }
            }
            // The whole stream was absorbed without a single invalidation:
            // rescans only ever came from first-touch memo misses.
            assert_eq!(joint.delta_stats().invalidations, 0);
        });
    }

    #[test]
    fn set_alpha_scales_fpr_only() {
        let mut j = fig1_joint();
        let s = set(&[2, 3]);
        let r = j.joint_recall(s);
        let q_half = j.joint_fpr(s);
        j.set_alpha(0.25).unwrap();
        assert_eq!(j.joint_recall(s), r);
        // q = alpha/(1-alpha) * FP/N_true: 0.25 -> one third of the 0.5 value.
        assert!((j.joint_fpr(s) - q_half / 3.0).abs() < 1e-12);
        assert!(j.set_alpha(1.5).is_err());
    }

    #[test]
    fn member_position_lookup() {
        let j = fig1_joint();
        assert_eq!(j.member_position(SourceId(3)), Some(3));
        assert_eq!(j.member_position(SourceId(9)), None);
    }

    #[test]
    fn no_support_subset_has_zero_joint_recall() {
        let j = fig1_joint();
        // No triple is provided by all five sources in Figure 1.
        assert_eq!(j.joint_recall(SourceSet::full(5)), 0.0);
        assert_eq!(j.joint_fpr(SourceSet::full(5)), 0.0);
        assert_eq!(j.joint_precision(SourceSet::full(5)), None);
    }
}
