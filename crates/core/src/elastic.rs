//! Elastic approximation (§4.3, Algorithm 1).
//!
//! Starts from the aggressive approximation with the *level-0 adjustment*
//! already applied — the degree-`|S_t|` coefficient uses the exact joint
//! rate of the providers:
//!
//! ```text
//! R = r_{S_t} * prod_{S_i in S_t̄} (1 - C⁺_i r_i)
//! Q = q_{S_t} * prod_{S_i in S_t̄} (1 - C⁻_i q_i)
//! ```
//!
//! then, for each level `l = 1..=lambda`, replaces the approximate
//! coefficient of every degree-`|S_t|+l` term with the exact joint rate:
//!
//! ```text
//! R += (-1)^l * ( r_{S_t ∪ S*}  -  r_{S_t} * prod_{S_i in S*} C⁺_i r_i )
//! ```
//!
//! over all `S* ⊆ S_t̄` with `|S*| = l` (and symmetrically for `Q`). At
//! `lambda = |S_t̄|` every coefficient is exact and the result equals
//! Theorem 4.2; cost is `O(n^lambda)` per triple (Proposition 4.11).

use crate::exact::Likelihoods;
use crate::joint::{JointQuality, PerSourceCorrelation, SourceSet};
use crate::prob::KahanSum;
use crate::subset::submasks_of_size;

/// Elastic solver for one cluster: per-source correlation parameters plus
/// the adjustment level `lambda`.
#[derive(Debug, Clone)]
pub struct ElasticSolver {
    /// Effective recalls `C⁺_k r_k`.
    cr: Vec<f64>,
    /// Effective false-positive rates `C⁻_k q_k`.
    cq: Vec<f64>,
    /// Adjustment level `lambda >= 0` (0 = aggressive + level-0 adjustment).
    level: usize,
}

impl ElasticSolver {
    /// Derive correlation parameters from `joint` over `cluster`.
    pub fn new<J: JointQuality + ?Sized>(joint: &J, cluster: SourceSet, level: usize) -> Self {
        let corr = PerSourceCorrelation::compute(joint, cluster);
        ElasticSolver {
            cr: corr.cr,
            cq: corr.cq,
            level,
        }
    }

    /// Build from explicit effective rates (tests / worked examples).
    pub fn from_effective_rates(cr: Vec<f64>, cq: Vec<f64>, level: usize) -> Self {
        assert_eq!(cr.len(), cq.len());
        ElasticSolver { cr, cq, level }
    }

    /// The configured level `lambda`.
    pub fn level(&self) -> usize {
        self.level
    }

    /// `(R, Q)` per Algorithm 1 for a triple provided by `providers`, with
    /// `active` cluster members in scope.
    pub fn likelihoods<J: JointQuality + ?Sized>(
        &self,
        joint: &J,
        providers: SourceSet,
        active: SourceSet,
    ) -> Likelihoods {
        debug_assert!(providers.is_subset_of(active));
        let complement = active.minus(providers);

        // Lines 1–2: level-0 base.
        let r_st = joint.joint_recall(providers);
        let q_st = joint.joint_fpr(providers);
        let mut r_base = r_st;
        let mut q_base = q_st;
        for k in complement.iter() {
            r_base *= 1.0 - self.cr[k];
            q_base *= 1.0 - self.cq[k];
        }
        let mut r = KahanSum::new();
        let mut q = KahanSum::new();
        r.add(r_base);
        q.add(q_base);

        // Lines 3–7: per-level corrections.
        let max_level = self.level.min(complement.count());
        for l in 1..=max_level {
            let sign = if l % 2 == 0 { 1.0 } else { -1.0 };
            for sub in submasks_of_size(complement.0, l) {
                let sub = SourceSet(sub);
                let set = providers.union(sub);
                let mut approx_r = r_st;
                let mut approx_q = q_st;
                for k in sub.iter() {
                    approx_r *= self.cr[k];
                    approx_q *= self.cq[k];
                }
                r.add(sign * (joint.joint_recall(set) - approx_r));
                q.add(sign * (joint.joint_fpr(set) - approx_q));
            }
        }
        Likelihoods {
            r: r.value(),
            q: q.value(),
        }
    }

    /// Likelihood ratio `mu` at this solver's level.
    pub fn mu<J: JointQuality + ?Sized>(
        &self,
        joint: &J,
        providers: SourceSet,
        active: SourceSet,
    ) -> f64 {
        let lk = self.likelihoods(joint, providers, active);
        if lk.q.abs() < 1e-300 {
            if lk.r > 0.0 {
                return f64::INFINITY;
            }
            return 0.0;
        }
        let mu = lk.r / lk.q;
        if mu.is_nan() {
            0.0
        } else {
            mu
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSolver;
    use crate::joint::{IndependentJoint, TableJoint};

    /// Example 4.10: the paper's given joint parameters for t8.
    fn example_joint() -> TableJoint {
        let r = vec![2.0 / 3.0, 0.5, 2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0];
        let q = vec![0.5, 2.0 / 3.0, 1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0];
        let mut j = TableJoint::new(r, q).unwrap();
        let s1245 = SourceSet::full(5).without(2);
        j.set_recall(s1245, 0.22);
        j.set_fpr(s1245, 0.22);
        j.set_recall(SourceSet::full(5), 0.11);
        j.set_fpr(SourceSet::full(5), 0.037);
        j
    }

    /// Figure 3 effective rates (C⁺_i r_i, C⁻_i q_i).
    fn figure3_rates() -> (Vec<f64>, Vec<f64>) {
        let r = [2.0 / 3.0, 0.5, 2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0];
        let q = [0.5, 2.0 / 3.0, 1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0];
        let cplus = [1.0, 1.0, 0.75, 1.5, 1.5];
        let cminus = [2.0, 1.0, 1.0, 3.0, 3.0];
        (
            r.iter().zip(&cplus).map(|(a, b)| a * b).collect(),
            q.iter().zip(&cminus).map(|(a, b)| a * b).collect(),
        )
    }

    #[test]
    fn example_4_10_level_0_mu() {
        // Level-0: mu = (0.22/0.22) * (1 - 0.75*0.67)/(1 - 0.167) = 0.6.
        let joint = example_joint();
        let (cr, cq) = figure3_rates();
        let solver = ElasticSolver::from_effective_rates(cr, cq, 0);
        let providers = SourceSet::full(5).without(2);
        let mu = solver.mu(&joint, providers, SourceSet::full(5));
        assert!((mu - 0.6).abs() < 0.01, "mu={mu}");
    }

    #[test]
    fn example_4_10_level_1_matches_exact() {
        // Level-1 covers the whole complement (|S_t̄| = 1): equals exact.
        let joint = example_joint();
        let (cr, cq) = figure3_rates();
        let solver = ElasticSolver::from_effective_rates(cr, cq, 1);
        let providers = SourceSet::full(5).without(2);
        let mu1 = solver.mu(&joint, providers, SourceSet::full(5));
        let exact = ExactSolver::new()
            .mu(&joint, providers, SourceSet::full(5))
            .unwrap();
        assert!((mu1 - exact).abs() < 1e-9, "{mu1} vs {exact}");
        // Paper: ~0.59 with their rounding; exact arithmetic ~0.601.
        assert!((mu1 - 0.6).abs() < 0.02, "mu={mu1}");
    }

    #[test]
    fn elastic_at_full_level_equals_exact_for_any_joint() {
        // Construct a correlated joint over 5 sources (mixture copula) and
        // check level = |complement| reproduces Theorem 4.2 exactly.
        #[derive(Debug)]
        struct Mixture;
        impl JointQuality for Mixture {
            fn n_members(&self) -> usize {
                5
            }
            fn joint_recall(&self, set: SourceSet) -> f64 {
                // 0.5 * prod(hi) + 0.5 * prod(lo): a valid exchangeable joint.
                if set.is_empty() {
                    return 1.0;
                }
                let k = set.count() as i32;
                0.5 * 0.9f64.powi(k) + 0.5 * 0.2f64.powi(k)
            }
            fn joint_fpr(&self, set: SourceSet) -> f64 {
                if set.is_empty() {
                    return 1.0;
                }
                let k = set.count() as i32;
                0.5 * 0.4f64.powi(k) + 0.5 * 0.05f64.powi(k)
            }
        }
        let joint = Mixture;
        let exact = ExactSolver::new();
        let active = SourceSet::full(5);
        for mask in 0..32u64 {
            let providers = SourceSet(mask);
            let lam = active.minus(providers).count();
            let solver = ElasticSolver::new(&joint, active, lam);
            let mu_elastic = solver.mu(&joint, providers, active);
            let mu_exact = exact.mu(&joint, providers, active).unwrap();
            let tol = 1e-9 * mu_exact.abs().max(1.0);
            assert!(
                (mu_elastic - mu_exact).abs() < tol,
                "mask={mask:b}: elastic {mu_elastic} vs exact {mu_exact}"
            );
        }
    }

    #[test]
    fn elastic_level_zero_equals_aggressive_with_level0_adjustment() {
        // For independent joints, every level gives the same answer as the
        // independent product (Corollary 4.6 extends to elastic).
        let recalls = vec![0.7, 0.5, 0.3, 0.6];
        let fprs = vec![0.2, 0.1, 0.25, 0.15];
        let joint = IndependentJoint::new(recalls.clone(), fprs.clone()).unwrap();
        let active = SourceSet::full(4);
        for level in 0..=4 {
            let solver = ElasticSolver::new(&joint, active, level);
            for mask in 0..16u64 {
                let providers = SourceSet(mask);
                let mu = solver.mu(&joint, providers, active);
                let mut expected = 1.0;
                for k in 0..4 {
                    expected *= if providers.contains(k) {
                        recalls[k] / fprs[k]
                    } else {
                        (1.0 - recalls[k]) / (1.0 - fprs[k])
                    };
                }
                assert!(
                    (mu - expected).abs() < 1e-9,
                    "level={level} mask={mask:b}: {mu} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn levels_converge_towards_exact() {
        // Monotone convergence is not guaranteed (the paper notes level-2
        // can be worse than level-1 on ReVerb), but the final level is
        // exact and intermediate levels should be finite.
        #[derive(Debug)]
        struct Corr;
        impl JointQuality for Corr {
            fn n_members(&self) -> usize {
                6
            }
            fn joint_recall(&self, set: SourceSet) -> f64 {
                if set.is_empty() {
                    return 1.0;
                }
                let k = set.count() as i32;
                0.7 * 0.8f64.powi(k) + 0.3 * 0.1f64.powi(k)
            }
            fn joint_fpr(&self, set: SourceSet) -> f64 {
                if set.is_empty() {
                    return 1.0;
                }
                let k = set.count() as i32;
                0.2 * 0.6f64.powi(k) + 0.8 * 0.02f64.powi(k)
            }
        }
        let joint = Corr;
        let active = SourceSet::full(6);
        let providers = SourceSet(0b000011);
        let exact = ExactSolver::new().mu(&joint, providers, active).unwrap();
        let mut gaps = Vec::new();
        for level in 0..=4 {
            let solver = ElasticSolver::new(&joint, active, level);
            let mu = solver.mu(&joint, providers, active);
            assert!(mu.is_finite());
            gaps.push((mu - exact).abs());
        }
        // Final level gap is (near) zero.
        assert!(gaps[4] < 1e-9, "gaps={gaps:?}");
        // And it's the smallest gap observed.
        assert!(gaps[4] <= gaps[0] + 1e-12);
    }

    #[test]
    fn level_beyond_complement_is_saturating() {
        let joint = IndependentJoint::new(vec![0.5, 0.6], vec![0.1, 0.2]).unwrap();
        let active = SourceSet::full(2);
        let providers = SourceSet::singleton(0);
        let at2 = ElasticSolver::new(&joint, active, 2).mu(&joint, providers, active);
        let at9 = ElasticSolver::new(&joint, active, 9).mu(&joint, providers, active);
        assert_eq!(at2, at9);
    }

    #[test]
    fn degenerate_zero_denominator() {
        let joint = IndependentJoint::new(vec![0.5], vec![0.0]).unwrap();
        let solver = ElasticSolver::new(&joint, SourceSet::full(1), 0);
        let mu = solver.mu(&joint, SourceSet::singleton(0), SourceSet::full(1));
        assert_eq!(mu, f64::INFINITY);
    }
}
