//! Aggressive approximation (§4.2, Definition 4.5).
//!
//! Replaces each source's recall `r_i` (resp. fpr `q_i`) with the
//! correlation-weighted effective rate `C⁺_i r_i` (resp. `C⁻_i q_i`) and
//! then applies the independent-sources product of Theorem 3.1:
//!
//! ```text
//! mu_aggr = prod_{S_i in S_t} (C⁺_i r_i)/(C⁻_i q_i)
//!         * prod_{S_i in S_t̄} (1 - C⁺_i r_i)/(1 - C⁻_i q_i)
//! ```
//!
//! Linear in the number of sources and needs only `2n + 1` correlation
//! parameters, but Proposition 4.8 warns it degenerates under extreme
//! correlation (replicas collapse to the prior; fully complementary
//! sources can make a factor negative, i.e. no valid probability). The
//! solver computes the raw value and leaves interpretation of non-positive
//! `mu` to [`crate::prob::posterior_from_mu`], which maps it to 0.

use crate::exact::Likelihoods;
use crate::joint::{JointQuality, PerSourceCorrelation, SourceSet};

/// Precomputed aggressive-approximation solver for one cluster.
#[derive(Debug, Clone)]
pub struct AggressiveSolver {
    /// Effective recalls `C⁺_k r_k` per member.
    cr: Vec<f64>,
    /// Effective false-positive rates `C⁻_k q_k` per member.
    cq: Vec<f64>,
}

impl AggressiveSolver {
    /// Derive the `2n` correlation parameters from a joint-quality model
    /// over the given cluster.
    pub fn new<J: JointQuality + ?Sized>(joint: &J, cluster: SourceSet) -> Self {
        let corr = PerSourceCorrelation::compute(joint, cluster);
        AggressiveSolver {
            cr: corr.cr,
            cq: corr.cq,
        }
    }

    /// Build directly from effective rates (used by tests mirroring the
    /// paper's Figure 3 parameters).
    pub fn from_effective_rates(cr: Vec<f64>, cq: Vec<f64>) -> Self {
        assert_eq!(cr.len(), cq.len());
        AggressiveSolver { cr, cq }
    }

    /// Effective recall of member `k` (`C⁺_k r_k`).
    pub fn effective_recall(&self, k: usize) -> f64 {
        self.cr[k]
    }

    /// Effective false-positive rate of member `k` (`C⁻_k q_k`).
    pub fn effective_fpr(&self, k: usize) -> f64 {
        self.cq[k]
    }

    /// `(Pr(O_t|t), Pr(O_t|¬t))` under the aggressive approximation for a
    /// triple provided by `providers` with `active` members in scope.
    pub fn likelihoods(&self, providers: SourceSet, active: SourceSet) -> Likelihoods {
        debug_assert!(providers.is_subset_of(active));
        let mut r = 1.0;
        let mut q = 1.0;
        for k in active.iter() {
            if providers.contains(k) {
                r *= self.cr[k];
                q *= self.cq[k];
            } else {
                r *= 1.0 - self.cr[k];
                q *= 1.0 - self.cq[k];
            }
        }
        Likelihoods { r, q }
    }

    /// Likelihood ratio `mu_aggr` (Eq. 13).
    pub fn mu(&self, providers: SourceSet, active: SourceSet) -> f64 {
        let lk = self.likelihoods(providers, active);
        // Unlike the exact solver we keep the raw ratio when both parts are
        // well-signed; a negative factor (Prop 4.8) yields mu <= 0 which the
        // posterior maps to 0.
        if lk.q == 0.0 {
            if lk.r > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            let mu = lk.r / lk.q;
            if mu.is_nan() {
                0.0
            } else {
                mu
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::IndependentJoint;
    use crate::prob::posterior_from_mu;

    #[test]
    fn example_4_7_t8_aggressive_probability() {
        // Figure 3 parameters: C+ = [1,1,0.75,1.5,1.5], C- = [2,1,1,3,3];
        // r = [0.67,0.5,0.67,0.67,0.67], q = [0.5,0.67,0.167,0.33,0.33].
        // The paper computes mu_aggr = 0.3 and Pr(t8) = 0.23.
        let r = [2.0 / 3.0, 0.5, 2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0];
        let q = [0.5, 2.0 / 3.0, 1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0];
        let cplus = [1.0, 1.0, 0.75, 1.5, 1.5];
        let cminus = [2.0, 1.0, 1.0, 3.0, 3.0];
        let cr: Vec<f64> = r.iter().zip(&cplus).map(|(a, b)| a * b).collect();
        let cq: Vec<f64> = q.iter().zip(&cminus).map(|(a, b)| a * b).collect();
        let solver = AggressiveSolver::from_effective_rates(cr, cq);
        let providers = SourceSet::full(5).without(2); // {S1,S2,S4,S5}
        let mu = solver.mu(providers, SourceSet::full(5));
        // Exact arithmetic gives ~0.308; the paper rounds to 0.3.
        assert!((mu - 0.3).abs() < 0.02, "mu={mu}");
        let p = posterior_from_mu(mu, 0.5);
        assert!((p - 0.23).abs() < 0.015, "Pr(t8)={p}");
        assert!(p < 0.5);
    }

    #[test]
    fn corollary_4_6_independent_sources_reduce_to_precrec() {
        let recalls = vec![0.7, 0.5, 0.3];
        let fprs = vec![0.2, 0.1, 0.25];
        let joint = IndependentJoint::new(recalls.clone(), fprs.clone()).unwrap();
        let solver = AggressiveSolver::new(&joint, SourceSet::full(3));
        for mask in 0..8u64 {
            let providers = SourceSet(mask);
            let mu = solver.mu(providers, SourceSet::full(3));
            let mut expected = 1.0;
            for k in 0..3 {
                expected *= if providers.contains(k) {
                    recalls[k] / fprs[k]
                } else {
                    (1.0 - recalls[k]) / (1.0 - fprs[k])
                };
            }
            assert!(
                (mu - expected).abs() < 1e-9,
                "mask={mask:b}: {mu} vs {expected}"
            );
        }
    }

    #[test]
    fn proposition_4_8_replicas_collapse_to_prior() {
        // All sources identical replicas: r_{S*} = r, q_{S*} = q for any
        // non-empty S*. Then C+_i r_i = r/r = 1 and C-_i q_i = 1, so for a
        // provided triple mu = 1 — i.e. probability alpha, regardless of
        // the actual source quality.
        #[derive(Debug)]
        struct Replicas;
        impl JointQuality for Replicas {
            fn n_members(&self) -> usize {
                3
            }
            fn joint_recall(&self, set: SourceSet) -> f64 {
                if set.is_empty() {
                    1.0
                } else {
                    0.6
                }
            }
            fn joint_fpr(&self, set: SourceSet) -> f64 {
                if set.is_empty() {
                    1.0
                } else {
                    0.2
                }
            }
        }
        let solver = AggressiveSolver::new(&Replicas, SourceSet::full(3));
        let mu = solver.mu(SourceSet::full(3), SourceSet::full(3));
        assert!((mu - 1.0).abs() < 1e-9, "mu={mu}");
        for &alpha in &[0.3, 0.5, 0.8] {
            assert!((posterior_from_mu(mu, alpha) - alpha).abs() < 1e-9);
        }
    }

    #[test]
    fn proposition_4_8_complementary_sources_invalid() {
        // Pairwise-complementary sources: joint recall of the full cluster
        // and of any leave-one-out set is 0, so the fallback makes
        // cr[k] = r_k, but the aggressive estimate for a singleton provider
        // still multiplies (1 - cr) factors from the complement; with
        // perfect complementarity the exact answer would not penalise, so
        // aggressive deviates. The stronger failure: if cr[k] > 1 the
        // non-provider factor goes negative and mu is not a probability.
        let solver = AggressiveSolver::from_effective_rates(
            vec![1.2, 0.5], // cr[0] > 1: over-unit effective recall
            vec![0.1, 0.1],
        );
        let mu = solver.mu(SourceSet::singleton(1), SourceSet::full(2));
        assert!(mu < 0.0, "negative mu signals invalid probability: {mu}");
        assert_eq!(posterior_from_mu(mu, 0.5), 0.0);
    }

    #[test]
    fn scope_restriction_drops_members() {
        let joint = IndependentJoint::new(vec![0.8, 0.8], vec![0.1, 0.1]).unwrap();
        let solver = AggressiveSolver::new(&joint, SourceSet::full(2));
        let providers = SourceSet::singleton(0);
        let mu_full = solver.mu(providers, SourceSet::full(2));
        let mu_narrow = solver.mu(providers, SourceSet::singleton(0));
        // Without the second member's negative evidence, mu is higher.
        assert!(mu_narrow > mu_full);
        assert!((mu_narrow - 8.0).abs() < 1e-9);
    }

    #[test]
    fn zero_fpr_gives_infinite_mu_for_providers() {
        let solver = AggressiveSolver::from_effective_rates(vec![0.5], vec![0.0]);
        let mu = solver.mu(SourceSet::singleton(0), SourceSet::singleton(0));
        assert_eq!(mu, f64::INFINITY);
        assert_eq!(posterior_from_mu(mu, 0.5), 1.0);
    }
}
