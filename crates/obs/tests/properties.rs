//! Seeded property tests for the histogram and registry, on the
//! workspace testkit: merge associativity/commutativity, percentile
//! bracketing against exact order statistics, top-bucket saturation,
//! and a multi-thread registry hammer.

use std::sync::Arc;

use corrfuse_core::testkit::{run_cases, Gen};
use corrfuse_obs::histogram::bucket_bounds;
use corrfuse_obs::{Histogram, HistogramSnapshot, Registry, BUCKETS};

/// A snapshot of random observations spanning many buckets (skewed so
/// zeros, small values and huge values all appear).
fn random_snapshot(g: &mut Gen) -> HistogramSnapshot {
    let h = Histogram::new();
    for _ in 0..g.usize_in(0, 40) {
        let v = match g.usize_in(0, 3) {
            0 => 0,
            1 => g.u64_below(1 << 10),
            2 => g.u64_below(1 << 40),
            _ => u64::MAX - g.u64_below(1 << 30),
        };
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn merge_is_associative_and_commutative() {
    run_cases("obs_merge_associative", 200, |g| {
        let (a, b, c) = (random_snapshot(g), random_snapshot(g), random_snapshot(g));
        assert_eq!(a.merged(&b), b.merged(&a));
        assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        // Merging the empty snapshot is the identity.
        assert_eq!(a.merged(&HistogramSnapshot::empty()), a);
    });
}

/// The quantile estimate always lands in the same log₂ bucket as the
/// exact order statistic it approximates (the 2× relative-error
/// contract), and never exceeds the observed max.
#[test]
fn percentiles_bracket_exact_order_statistics() {
    run_cases("obs_percentile_bracketing", 200, |g| {
        let n = g.usize_in(1, 60);
        let mut values: Vec<u64> = (0..n)
            .map(|_| match g.usize_in(0, 2) {
                0 => g.u64_below(1 << 8),
                1 => g.u64_below(1 << 30),
                _ => g.u64_below(u64::MAX),
            })
            .collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).max(1);
            let exact = values[rank - 1];
            let estimate = snap.quantile(q);
            let (lo, hi) = bucket_bounds(
                (0..BUCKETS)
                    .find(|&i| {
                        let (l, h) = bucket_bounds(i);
                        l <= exact && exact <= h
                    })
                    .expect("bucket tiling covers u64"),
            );
            assert!(
                lo <= estimate && estimate <= hi,
                "q={q} exact={exact} estimate={estimate} bucket=[{lo},{hi}]"
            );
            assert!(estimate <= snap.max);
        }
    });
}

#[test]
fn top_bucket_absorbs_everything_beyond_2_pow_62() {
    run_cases("obs_top_bucket_saturation", 100, |g| {
        let h = Histogram::new();
        let mut huge = 0u64;
        for _ in 0..g.usize_in(1, 30) {
            let v = if g.bool(0.5) {
                huge += 1;
                (1u64 << 62) + g.u64_below(u64::MAX - (1 << 62))
            } else {
                g.u64_below(1 << 62)
            };
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets[BUCKETS - 1], huge);
        if huge > 0 {
            // The estimate for the top of the distribution stays inside
            // the saturated bucket, capped at the observed max.
            assert!(snap.quantile(1.0) >= 1 << 62);
            assert!(snap.quantile(1.0) <= snap.max);
        }
    });
}

/// Many threads resolving the same names and hammering the metrics:
/// every handle resolves to the same slot, nothing is lost, and the
/// final snapshot adds up exactly.
#[test]
fn registry_survives_concurrent_hammering() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 5_000;
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                // Resolve inside the thread, racing the other inserters.
                let counter = registry.counter("hammer_total");
                let gauge = registry.gauge("hammer_gauge");
                let hist = registry.histogram("hammer_ns");
                for k in 0..PER_THREAD {
                    counter.inc();
                    gauge.add(if i % 2 == 0 { 1 } else { -1 });
                    hist.record(k);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        registry.counter("hammer_total").get(),
        THREADS as u64 * PER_THREAD
    );
    assert_eq!(registry.gauge("hammer_gauge").get(), 0);
    let snap = registry.histogram("hammer_ns").snapshot();
    assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    assert_eq!(snap.max, PER_THREAD - 1);
    // The registry listing sees exactly the three hammered metrics.
    assert_eq!(registry.snapshot().len(), 3);
}
