//! Toggleable stopwatch for hot-path stage timing.

use std::time::Instant;

use crate::histogram::Histogram;

/// A started-or-disabled stopwatch.
///
/// `Span::start(enabled)` reads the monotonic clock only when `enabled`
/// is true; a disabled span is a `None` and every observation on it is
/// a constant 0 with no clock read and no histogram touch. This is the
/// mechanism behind the layer toggles (`FuserConfig::with_spans` etc.):
/// with the toggle off the instrumented code paths do no timing work at
/// all, which is what keeps the bitwise-equivalence suites unperturbed
/// and the overhead contract in `docs/OBSERVABILITY.md` honest.
#[derive(Debug, Clone, Copy)]
pub struct Span(Option<Instant>);

impl Span {
    /// Start timing if `enabled`, otherwise return an inert span.
    #[inline]
    pub fn start(enabled: bool) -> Self {
        Span(if enabled { Some(Instant::now()) } else { None })
    }

    /// A span that never records anything.
    #[inline]
    pub fn disabled() -> Self {
        Span(None)
    }

    /// Whether this span is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since `start`, or 0 when disabled. Saturates at
    /// `u64::MAX` (≈584 years), which no real stage reaches.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        match self.0 {
            Some(t0) => u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            None => 0,
        }
    }

    /// Record the elapsed time into `hist` and return it. Disabled
    /// spans record nothing and return 0.
    #[inline]
    pub fn record(&self, hist: &Histogram) -> u64 {
        match self.0 {
            Some(_) => {
                let ns = self.elapsed_ns();
                hist.record(ns);
                ns
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let hist = Histogram::new();
        let span = Span::disabled();
        assert!(!span.enabled());
        assert_eq!(span.elapsed_ns(), 0);
        assert_eq!(span.record(&hist), 0);
        assert_eq!(hist.count(), 0);
    }

    #[test]
    fn enabled_span_records() {
        let hist = Histogram::new();
        let span = Span::start(true);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let ns = span.record(&hist);
        assert!(ns >= 1_000_000, "slept 1ms but measured {ns}ns");
        assert_eq!(hist.count(), 1);
        assert!(hist.snapshot().max >= 1_000_000);
    }
}
