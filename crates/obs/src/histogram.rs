//! Fixed-memory log₂ latency histogram with mergeable snapshots.
//!
//! A [`Histogram`] is 64 relaxed-atomic buckets plus count / sum / max —
//! a few hundred bytes that absorb any number of `u64` observations
//! (nanoseconds, bytes, queue depths…) without allocating. Bucket `k`
//! covers one power-of-two range, so relative quantile error is bounded
//! at 2× worst case across the full `u64` domain, which is plenty for
//! latency work where the interesting distinctions are 10µs vs 100µs,
//! not 41µs vs 43µs.
//!
//! Reads go through [`Histogram::snapshot`]; snapshots are plain data
//! and merge associatively ([`HistogramSnapshot::merged`]), so per-shard
//! histograms combine in any grouping to the same global view.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in a [`Histogram`]. Bucket 0 holds only zeros;
/// bucket `k` for `1 ≤ k ≤ 62` covers `[2^(k-1), 2^k - 1]`; the top
/// bucket (63) saturates, covering `[2^62, u64::MAX]`.
pub const BUCKETS: usize = 64;

/// Index of the bucket that absorbs `v`.
///
/// `0` maps to bucket 0; otherwise the bucket is `64 − leading_zeros`,
/// clamped to [`BUCKETS`]` − 1` so values at and beyond `2^62` all land
/// in the saturated top bucket.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `idx`.
///
/// The bracketing property pinned by the testkit suite: for every
/// recorded `v`, `bucket_bounds(bucket_of(v))` contains `v`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < BUCKETS, "bucket index out of range");
    match idx {
        0 => (0, 0),
        _ if idx == BUCKETS - 1 => (1u64 << (BUCKETS - 2), u64::MAX),
        _ => (1u64 << (idx - 1), (1u64 << idx) - 1),
    }
}

/// Lock-free log₂ histogram. All updates are relaxed atomic adds on
/// fixed storage — safe to share across shard workers via `Arc` and to
/// hammer from many threads (the registry hammer test does exactly
/// that).
///
/// Cross-field consistency is deliberately loose: a reader racing a
/// writer may see `count` without the matching bucket increment. That
/// is fine for monitoring (snapshots are taken between batches in
/// practice) and is what buys the zero-coordination hot path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state into a plain-data snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`], suitable for merging, wire
/// transport and quantile readout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow, like the
    /// live histogram's relaxed adds).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Merge `other` into a new snapshot. Elementwise bucket sums, sum
    /// of counts/sums, max of maxima — associative and commutative, so
    /// shard snapshots can be folded in any order.
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            buckets: std::array::from_fn(|i| self.buckets[i].wrapping_add(other.buckets[i])),
            count: self.count.wrapping_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by walking buckets and
    /// interpolating linearly within the target bucket. Returns 0 for
    /// an empty snapshot. The estimate is always inside the target
    /// bucket's bounds, so the worst-case relative error is the bucket
    /// width (2×).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(idx);
                // Cap the top of the interpolation range at the
                // observed max: it is a real observation and tighter
                // than the open-ended bucket ceiling.
                let hi = hi.min(self.max).max(lo);
                let within = (rank - seen - 1) as f64 / n as f64;
                return lo + ((hi - lo) as f64 * within) as u64;
            }
            seen += n;
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of observed values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_matches_bounds() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, u64::MAX / 2, u64::MAX] {
            let idx = bucket_of(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn bucket_bounds_tile_the_domain() {
        // Consecutive buckets abut with no gaps or overlaps.
        for idx in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (lo_next, _) = bucket_bounds(idx + 1);
            assert_eq!(hi + 1, lo_next, "gap between bucket {idx} and {}", idx + 1);
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_011);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
    }

    #[test]
    fn quantiles_of_uniform_run() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Log buckets: estimates are coarse but must bracket sanely.
        let p50 = s.p50();
        assert!((256..=1000).contains(&p50), "p50={p50}");
        assert!(s.p99() <= 1000);
        assert!(s.p99() >= s.p50());
        assert!(s.quantile(1.0) <= s.max);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_is_commutative_here() {
        let a = {
            let h = Histogram::new();
            h.record(3);
            h.record(70);
            h.snapshot()
        };
        let b = {
            let h = Histogram::new();
            h.record(1_000_000);
            h.snapshot()
        };
        assert_eq!(a.merged(&b), b.merged(&a));
        assert_eq!(a.merged(&b).count, 3);
        assert_eq!(a.merged(&b).max, 1_000_000);
    }

    #[test]
    fn top_bucket_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 62);
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 3);
    }
}
