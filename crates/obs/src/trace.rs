//! Bounded ring of recent batch traces with stage breakdowns.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One processed batch's timing breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchTrace {
    /// Monotonic sequence number assigned by the ring on push.
    pub seq: u64,
    /// Free-form origin label, e.g. `"shard-3"` or `"net"`.
    pub label: String,
    /// End-to-end time for the batch in nanoseconds.
    pub total_ns: u64,
    /// `(stage name, nanoseconds)` pairs in execution order. Stages
    /// need not sum to `total_ns`; untimed gaps are normal.
    pub stages: Vec<(String, u64)>,
}

/// Overwrite-oldest buffer of the last `capacity` [`BatchTrace`]s.
///
/// Pushes take a short mutex (traces are per-batch, not per-event, so
/// contention is negligible next to the batch work itself) and memory
/// is bounded by construction: once full, each push drops the oldest
/// trace. Disabled instrumentation never constructs traces at all.
#[derive(Debug)]
pub struct TraceRing {
    inner: Mutex<Inner>,
    capacity: usize,
}

#[derive(Debug)]
struct Inner {
    next_seq: u64,
    ring: VecDeque<BatchTrace>,
}

impl TraceRing {
    /// A ring keeping the last `capacity` traces (capacity 0 is
    /// clamped to 1 so pushes always retain something).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner {
                next_seq: 0,
                ring: VecDeque::with_capacity(capacity),
            }),
            capacity,
        }
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a trace, assigning its sequence number; evicts the
    /// oldest entry when full. Returns the assigned sequence number.
    pub fn push(&self, label: &str, total_ns: u64, stages: Vec<(String, u64)>) -> u64 {
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(BatchTrace {
            seq,
            label: label.to_string(),
            total_ns,
            stages,
        });
        seq
    }

    /// Copy out the retained traces, oldest first.
    pub fn traces(&self) -> Vec<BatchTrace> {
        self.inner
            .lock()
            .expect("trace ring poisoned")
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Number of currently retained traces.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").ring.len()
    }

    /// Whether no traces have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the retained traces as JSON lines (one object per
    /// trace), oldest first. Hand-rolled — the workspace has no serde
    /// — with labels and stage names JSON-string-escaped.
    pub fn dump_json_lines(&self) -> String {
        let mut out = String::new();
        for t in self.traces() {
            out.push_str(&format!(
                "{{\"seq\":{},\"label\":{},\"total_ns\":{},\"stages\":{{",
                t.seq,
                json_string(&t.label),
                t.total_ns
            ));
            for (i, (stage, ns)) in t.stages.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_string(stage), ns));
            }
            out.push_str("}}\n");
        }
        out
    }
}

/// Minimal JSON string encoder: quotes, backslashes and control
/// characters escaped, everything else passed through.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let ring = TraceRing::new(4);
        ring.push(
            "shard-0",
            100,
            vec![("refit".into(), 60), ("rescore".into(), 30)],
        );
        let traces = ring.traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].seq, 0);
        assert_eq!(traces[0].stages[0], ("refit".to_string(), 60));
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push("s", i, vec![]);
        }
        let traces = ring.traces();
        assert_eq!(traces.len(), 3);
        assert_eq!(
            traces.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(traces[0].total_ns, 2);
    }

    #[test]
    fn json_lines_shape() {
        let ring = TraceRing::new(2);
        ring.push("shard \"a\"", 42, vec![("q\nwait".into(), 7)]);
        let dump = ring.dump_json_lines();
        assert_eq!(dump.lines().count(), 1);
        assert_eq!(
            dump.trim_end(),
            "{\"seq\":0,\"label\":\"shard \\\"a\\\"\",\"total_ns\":42,\"stages\":{\"q\\nwait\":7}}"
        );
    }

    #[test]
    fn zero_capacity_clamped() {
        let ring = TraceRing::new(0);
        ring.push("x", 1, vec![]);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.capacity(), 1);
    }
}
