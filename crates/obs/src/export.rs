//! Prometheus-style text exposition of a registry snapshot.

use crate::registry::{MetricSample, MetricValue};

/// Render samples as Prometheus-style text:
///
/// * counters and gauges as `name value`,
/// * histograms as `name{quantile="0.5"} v` / `"0.9"` / `"0.99"` plus
///   `name_count`, `name_sum` and `name_max` lines.
///
/// Samples are rendered in the order given; [`crate::Registry::snapshot`]
/// already sorts by name, so the exposition is deterministic for a
/// given registry state. This is the payload behind the
/// `metrics_dump` example and the shape documented in
/// `docs/OBSERVABILITY.md`.
pub fn render_text(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for s in samples {
        match &s.value {
            MetricValue::Counter(v) => out.push_str(&format!("{} {v}\n", s.name)),
            MetricValue::Gauge(v) => out.push_str(&format!("{} {v}\n", s.name)),
            MetricValue::Histogram(h) => {
                for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "{}{{quantile=\"{label}\"}} {}\n",
                        s.name,
                        h.quantile(q)
                    ));
                }
                out.push_str(&format!("{}_count {}\n", s.name, h.count));
                out.push_str(&format!("{}_sum {}\n", s.name, h.sum));
                out.push_str(&format!("{}_max {}\n", s.name, h.max));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn renders_all_kinds() {
        let r = Registry::new();
        r.counter("batches").add(3);
        r.gauge("depth").set(-2);
        r.histogram("lat_ns").record(100);
        let text = render_text(&r.snapshot());
        assert!(text.contains("batches 3\n"));
        assert!(text.contains("depth -2\n"));
        assert!(text.contains("lat_ns{quantile=\"0.5\"}"));
        assert!(text.contains("lat_ns{quantile=\"0.99\"}"));
        assert!(text.contains("lat_ns_count 1\n"));
        assert!(text.contains("lat_ns_max 100\n"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_text(&[]), "");
    }
}
