//! Lock-free, insert-only registry of named metrics.
//!
//! The registry is a fixed-capacity open-addressing table whose slots
//! are `OnceLock`s: registration races are settled by whichever thread
//! wins the slot initialization, lookups are wait-free loads, and no
//! entry is ever removed or rehashed. That makes `counter` / `gauge` /
//! `histogram` safe to call from any thread at any time — though the
//! intended pattern (and the only hot-path-safe one) is to resolve
//! handles once at wiring time and clone the `Arc`s into workers.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::trace::TraceRing;

/// Slots in the registry table. Power of two so probing wraps with a
/// mask. 512 named metrics is far beyond the stack's catalog (~40
/// names in `docs/OBSERVABILITY.md`); overflow degrades gracefully to
/// detached metrics rather than panicking.
const CAPACITY: usize = 512;

/// Default capacity of the registry's built-in [`TraceRing`].
const TRACE_CAPACITY: usize = 64;

/// Monotonically increasing counter (`AtomicU64`, relaxed).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (`AtomicI64`, relaxed).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Slot {
    name: String,
    metric: Metric,
}

/// One named metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Registered metric name.
    pub name: String,
    /// The value read at snapshot time.
    pub value: MetricValue,
}

/// Snapshot value of a single metric.
///
/// The histogram arm is boxed: a snapshot is 64 bucket counts, and
/// most samples in a registry dump are bare counters/gauges.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A full histogram snapshot.
    Histogram(Box<HistogramSnapshot>),
}

/// Lock-free table of named metrics plus a bounded trace ring.
///
/// Metrics are created on first use and live for the registry's
/// lifetime. Two degenerate cases return a *detached* metric — a live,
/// usable handle that simply isn't listed in [`Registry::snapshot`] —
/// instead of panicking: registering more than the fixed capacity, and
/// re-registering a name under a different metric kind. Both indicate
/// a wiring bug, and monitoring plumbing must never take the process
/// down over one.
#[derive(Debug)]
pub struct Registry {
    slots: Box<[OnceLock<Slot>]>,
    traces: TraceRing,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with the default trace-ring capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(TRACE_CAPACITY)
    }

    /// An empty registry whose trace ring keeps the last
    /// `trace_capacity` batch traces.
    pub fn with_trace_capacity(trace_capacity: usize) -> Self {
        Self {
            slots: (0..CAPACITY).map(|_| OnceLock::new()).collect(),
            traces: TraceRing::new(trace_capacity),
        }
    }

    /// The registry's bounded ring of recent batch traces.
    pub fn traces(&self) -> &TraceRing {
        &self.traces
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::default()))) {
            Some(Metric::Counter(c)) => Arc::clone(c),
            _ => Arc::new(Counter::default()),
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Some(Metric::Gauge(g)) => Arc::clone(g),
            _ => Arc::new(Gauge::default()),
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Some(Metric::Histogram(h)) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// FNV-1a, the same dependency-free hash the rest of the stack
    /// uses for non-adversarial keys.
    fn hash(name: &str) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h as usize
    }

    /// Probe for `name`, inserting via `make` on first sight. Returns
    /// `None` when the table is full (caller falls back to a detached
    /// metric). The returned reference points into the winning slot,
    /// whichever thread initialized it.
    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Option<&Metric> {
        let mask = CAPACITY - 1;
        let start = Self::hash(name) & mask;
        let mut make = Some(make);
        for probe in 0..CAPACITY {
            let slot = &self.slots[(start + probe) & mask];
            let init = slot.get_or_init(|| Slot {
                name: name.to_string(),
                // `make` is consumed at most once: if this closure runs,
                // this thread won the slot and the loop returns below.
                metric: (make.take().expect("slot init ran twice"))(),
            });
            if init.name == name {
                return Some(&init.metric);
            }
        }
        None
    }

    /// Read every registered metric, sorted by name for stable output.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let mut out: Vec<MetricSample> = self
            .slots
            .iter()
            .filter_map(|slot| slot.get())
            .map(|s| MetricSample {
                name: s.name.clone(),
                value: match &s.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

// The registry is shared across shard workers and the net server via
// `Arc<Registry>`; everything inside is atomics, OnceLock, or the
// mutex-guarded trace ring.
const _: () = {
    const fn assert_sync<T: Send + Sync>() {}
    assert_sync::<Registry>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.counter("c").inc();
        r.gauge("g").set(-3);
        r.histogram("h").record(1000);

        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].name, "c");
        assert_eq!(snap[0].value, MetricValue::Counter(6));
        assert_eq!(snap[1].value, MetricValue::Gauge(-3));
        match &snap[2].value {
            MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn kind_mismatch_returns_detached() {
        let r = Registry::new();
        r.counter("x").inc();
        // Same name, wrong kind: caller gets a live but unlisted gauge.
        let g = r.gauge("x");
        g.set(42);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].value, MetricValue::Counter(1));
    }

    #[test]
    fn overflow_returns_detached_not_panic() {
        let r = Registry::new();
        for i in 0..CAPACITY {
            r.counter(&format!("m{i}")).inc();
        }
        let extra = r.counter("one_too_many");
        extra.inc(); // usable, just unlisted
        assert_eq!(extra.get(), 1);
        assert_eq!(r.snapshot().len(), CAPACITY);
    }

    #[test]
    fn snapshot_is_sorted() {
        let r = Registry::new();
        for name in ["zebra", "alpha", "mid"] {
            r.counter(name).inc();
        }
        let names: Vec<_> = r.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["alpha", "mid", "zebra"]);
    }
}
