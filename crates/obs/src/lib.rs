//! # corrfuse-obs
//!
//! In-tree, zero-dependency observability for the corrfuse stack: a
//! lock-free [`Registry`] of named counters, gauges and log₂ latency
//! [`Histogram`]s, a [`Span`] stopwatch that compiles down to two
//! `Instant` reads when enabled and nothing when disabled, a bounded
//! [`TraceRing`] of recent batch traces, and a Prometheus-style text
//! exposition ([`export::render_text`]).
//!
//! The stack's layers (core → stream → serve → net) carry counter-style
//! stats since PR 3–6, but nothing measured *time*: there was no way to
//! see where a batch's latency goes — queue wait vs. refit vs. journal
//! fsync vs. wire. This crate supplies the primitives; the layers above
//! thread them through behind per-layer toggles
//! (`FuserConfig::with_spans`, `RouterConfig::with_metrics`,
//! `ServerConfig::with_metrics`), and `corrfuse-net`'s `METRICS` frame
//! carries a registry snapshot to remote operators. `docs/OBSERVABILITY.md`
//! is the operator-facing catalog of every metric and span stage.
//!
//! # Design constraints
//!
//! * **Hot-path safe.** All metric updates are relaxed atomic
//!   operations on fixed-size storage — no locks, no allocation, no
//!   syscalls. Handles are `Arc`s resolved once at wiring time, so the
//!   per-record cost is a few atomic adds.
//! * **Fixed memory.** A [`Histogram`] is 64 + 3 atomics regardless of
//!   how many values it absorbs; the [`Registry`] is a fixed-capacity
//!   insert-only table; the [`TraceRing`] overwrites its oldest entry.
//! * **Mergeable.** [`HistogramSnapshot::merged`] is associative and
//!   commutative (elementwise bucket sums, max of maxima), so per-shard
//!   histograms can be combined in any grouping without changing the
//!   result — the property the testkit suite pins.
//! * **Near-free when off.** A disabled [`Span`] records nothing and
//!   reads no clock; the instrumented layers skip every registry touch
//!   when their toggle is off, keeping the trust anchor's
//!   bitwise-equivalence suites byte-identical.
//!
//! ## Quick start
//!
//! ```
//! use corrfuse_obs::{Registry, Span};
//!
//! let registry = Registry::new();
//! let batches = registry.counter("ingest_batches");
//! let latency = registry.histogram("ingest_ns");
//!
//! // Hot path: one counter bump + one histogram record per batch.
//! let span = Span::start(true);
//! // ... do the work ...
//! batches.inc();
//! span.record(&latency);
//!
//! let text = corrfuse_obs::export::render_text(&registry.snapshot());
//! assert!(text.contains("ingest_batches 1"));
//! assert!(text.contains("ingest_ns_count 1"));
//! ```

#![warn(rust_2018_idioms)]
#![deny(missing_docs)]

pub mod export;
pub mod histogram;
pub mod registry;
pub mod span;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, MetricSample, MetricValue, Registry};
pub use span::Span;
pub use trace::{BatchTrace, TraceRing};
