//! Router throughput: multi-shard ingest scaling over the
//! single-session baseline.
//!
//! The workload is a skewed 8-tenant event stream (Zipf tenant sizes,
//! ~30% labels, interleaved arrival). One iteration runs the whole
//! serving pipeline: construct the router (per-shard seed fits), ingest
//! every message through the async front door, and flush.
//!
//! `shards_1` is the single-session baseline: all eight tenants share
//! one `StreamSession` behind one worker. `shards_4` / `shards_8` split
//! them across independent sessions. Sharding wins even on one core
//! because the expensive deltas — label batches forcing a model
//! refresh, new sources forcing a full refit — cost O(shard dataset),
//! not O(total dataset): a hot tenant's refit no longer rescans every
//! cold tenant's triples. On multi-core hardware the shard workers also
//! run genuinely in parallel.
//!
//! The acceptance bar for the subsystem is `shards_4 <= shards_1` (no
//! regression from routing) with visible improvement on this workload;
//! see BENCH_PR3.json for the recorded numbers.

use std::time::Duration;

use corrfuse_bench::harness::Criterion;
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_core::fuser::{FuserConfig, Method};
use corrfuse_serve::{RouterConfig, ShardRouter, TenantId};
use corrfuse_synth::{multi_tenant_events, MultiTenantSpec, MultiTenantStream};

const N_TENANTS: usize = 8;

fn workload() -> MultiTenantStream {
    let spec = MultiTenantSpec {
        n_tenants: N_TENANTS,
        triples_largest: if corrfuse_bench::quick() { 120 } else { 600 },
        skew: 1.0,
        n_sources: 4,
        batches_largest: 8,
        label_fraction: 0.3,
        seed: 777,
    };
    multi_tenant_events(&spec).unwrap()
}

fn run_pipeline(stream: &MultiTenantStream, n_shards: usize) -> u64 {
    let router = ShardRouter::new(
        FuserConfig::new(Method::Exact),
        RouterConfig::new(n_shards).with_batching(128, Duration::from_millis(1)),
        stream
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect(),
    )
    .unwrap();
    for (tenant, events) in &stream.messages {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    router.flush().unwrap();
    let stats = router.shutdown().unwrap();
    let agg = stats.aggregate();
    assert_eq!(agg.ingest_errors, 0, "{:?}", agg.last_error);
    agg.ingested_events
}

fn bench_router(c: &mut Criterion) {
    let stream = workload();
    eprintln!(
        "  workload: {} tenants, {} messages, {} events",
        N_TENANTS,
        stream.messages.len(),
        stream.n_events()
    );
    let mut group = c.benchmark_group("router_throughput");
    group.sample_size(5);
    for n_shards in [1usize, 4, 8] {
        group.bench_function(&format!("shards_{n_shards}"), |b| {
            b.iter(|| run_pipeline(&stream, n_shards))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
