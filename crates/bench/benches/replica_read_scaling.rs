//! Read-replica scaling: `SCORES` read throughput against a single
//! leader versus the same leader with two caught-up followers answering
//! reads from their own replicated state.
//!
//! Setup (outside the timed loop): build the leader with the
//! replication tap enabled, stream the 8-tenant workload in, connect
//! two followers and wait until their applied epochs reach the
//! leader's. One iteration then fires a fixed budget of tenant score
//! reads from concurrent TCP readers. Three variants:
//!
//! * `leader_only` — every reader on the leader: the baseline
//!   aggregate, bounded by the leader's per-shard state locks.
//! * `leader_plus_2_followers` — the same readers and read budget
//!   spread across the three serving endpoints. On a multi-core host
//!   this is the direct wall-clock demonstration of read scaling; on a
//!   single-core host all endpoints time-share one CPU and the number
//!   stays flat (it still checks the replicated path adds no
//!   per-request cost).
//! * `follower_single_endpoint` — every reader on one follower: a
//!   replica's standalone service rate. Fleet read capacity — the
//!   scale-out headline when each replica runs on its own machine — is
//!   `leader_only + 2 x follower_single_endpoint` reads/s; that derived
//!   ratio (>= 1.5x the leader alone) is what BENCH_PR8.json records,
//!   together with this machine's core count.

use std::sync::Arc;
use std::time::{Duration, Instant};

use corrfuse_bench::harness::Criterion;
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_core::fuser::{FuserConfig, Method};
use corrfuse_net::server::spawn;
use corrfuse_net::wire::WireMetricValue;
use corrfuse_net::{Client, Server, ServerConfig};
use corrfuse_replica::{
    spawn as spawn_follower, Follower, FollowerConfig, FollowerServer, FollowerServerConfig,
    FollowerServerHandle,
};
use corrfuse_serve::{ReplicationConfig, RouterConfig, ShardRouter, TenantId};
use corrfuse_synth::{multi_tenant_events, MultiTenantSpec, MultiTenantStream};

const N_TENANTS: usize = 8;
const N_SHARDS: usize = 2;
const N_READERS: usize = 12;

fn workload() -> MultiTenantStream {
    let spec = MultiTenantSpec {
        n_tenants: N_TENANTS,
        // Large tenants on purpose: a score read gathers the whole
        // tenant under the shard-core lock, and the bench needs that
        // hold time (not the loopback round-trip) to be the bottleneck.
        triples_largest: if corrfuse_bench::quick() {
            1_500
        } else {
            6_000
        },
        skew: 1.0,
        n_sources: 4,
        batches_largest: 8,
        label_fraction: 0.3,
        seed: 888,
    };
    multi_tenant_events(&spec).unwrap()
}

fn reads_per_iter() -> usize {
    if corrfuse_bench::quick() {
        600
    } else {
        4_800
    }
}

/// A serving topology: the leader plus any caught-up follower servers,
/// with everything needed to tear it down again.
struct Topology {
    leader_addr: String,
    follower_addrs: Vec<String>,
    followers: Vec<Arc<Follower>>,
    follower_handles: Vec<FollowerServerHandle>,
    follower_joins: Vec<std::thread::JoinHandle<corrfuse_replica::Result<()>>>,
    leader_handle: corrfuse_net::server::ServerHandle,
    leader_join: std::thread::JoinHandle<corrfuse_net::Result<corrfuse_serve::RouterStats>>,
}

fn build_topology(stream: &MultiTenantStream, n_followers: usize) -> Topology {
    let config = FuserConfig::new(Method::Exact);
    let router = ShardRouter::new(
        config.clone(),
        RouterConfig::new(N_SHARDS)
            .with_batching(128, Duration::from_millis(1))
            .with_replication(ReplicationConfig::new()),
        stream
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect(),
    )
    .unwrap();
    let server = Server::bind("127.0.0.1:0", router, ServerConfig::new()).unwrap();
    let leader_addr = server.local_addr().unwrap().to_string();
    let (leader_handle, leader_join) = spawn(server).unwrap();

    // Fill the leader, then read its per-shard epochs off the gauges.
    let mut client = Client::connect(&leader_addr).unwrap();
    for (tenant, events) in &stream.messages {
        client.ingest(TenantId(*tenant), events).unwrap();
    }
    client.flush().unwrap();
    let metrics = client.metrics().unwrap();
    let targets: Vec<u64> = (0..N_SHARDS)
        .map(|s| {
            let name = format!("serve_epoch_shard_{s}");
            match metrics.iter().find(|m| m.name == name).unwrap().value {
                WireMetricValue::Gauge(v) => v as u64,
                _ => unreachable!("epoch gauges are gauges"),
            }
        })
        .collect();
    drop(client);

    let mut followers = Vec::new();
    let mut follower_addrs = Vec::new();
    let mut follower_handles = Vec::new();
    let mut follower_joins = Vec::new();
    for _ in 0..n_followers {
        let follower = Arc::new(
            Follower::connect(
                &leader_addr,
                FollowerConfig::new(config.clone()).with_catchup_timeout(Duration::from_secs(10)),
            )
            .unwrap(),
        );
        let deadline = Instant::now() + Duration::from_secs(20);
        while follower
            .applied_epochs()
            .iter()
            .zip(&targets)
            .any(|(a, t)| a < t)
        {
            assert!(Instant::now() < deadline, "follower never caught up");
            std::thread::sleep(Duration::from_millis(2));
        }
        let fserver = FollowerServer::bind(
            "127.0.0.1:0",
            Arc::clone(&follower),
            FollowerServerConfig::new(),
        )
        .unwrap();
        follower_addrs.push(fserver.local_addr().unwrap().to_string());
        let (h, j) = spawn_follower(fserver).unwrap();
        followers.push(follower);
        follower_handles.push(h);
        follower_joins.push(j);
    }
    Topology {
        leader_addr,
        follower_addrs,
        followers,
        follower_handles,
        follower_joins,
        leader_handle,
        leader_join,
    }
}

impl Topology {
    /// Serving endpoints, leader first.
    fn endpoints(&self) -> Vec<&str> {
        std::iter::once(self.leader_addr.as_str())
            .chain(self.follower_addrs.iter().map(String::as_str))
            .collect()
    }

    fn teardown(self) {
        for h in &self.follower_handles {
            h.stop();
        }
        for j in self.follower_joins {
            j.join().unwrap().unwrap();
        }
        for f in &self.followers {
            f.shutdown();
        }
        self.leader_handle.stop();
        self.leader_join.join().unwrap().unwrap();
    }
}

/// Fire `total` tenant score reads from `N_READERS` concurrent TCP
/// readers spread round-robin over `endpoints`. Returns events read, so
/// the work can't be optimised away.
fn run_reads(endpoints: &[&str], tenants: usize, total: usize) -> u64 {
    let per_reader = total / N_READERS;
    let counts: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N_READERS)
            .map(|r| {
                let addr = endpoints[r % endpoints.len()].to_string();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let mut read = 0u64;
                    for i in 0..per_reader {
                        let tenant = TenantId(((r + i) % tenants) as u32);
                        read += client.scores(tenant).unwrap().len() as u64;
                    }
                    read
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    counts.iter().sum()
}

fn bench_replica_reads(c: &mut Criterion) {
    let stream = workload();
    eprintln!(
        "  workload: {} tenants over {} shards, {} events; {} readers x {} reads/iter",
        N_TENANTS,
        N_SHARDS,
        stream.n_events(),
        N_READERS,
        reads_per_iter() / N_READERS,
    );
    let mut group = c.benchmark_group("replica_read_scaling");
    group.sample_size(5);

    let leader_only = build_topology(&stream, 0);
    let endpoints = leader_only.endpoints();
    group.bench_function("leader_only", |b| {
        b.iter(|| run_reads(&endpoints, N_TENANTS, reads_per_iter()))
    });
    drop(endpoints);
    leader_only.teardown();

    let replicated = build_topology(&stream, 2);
    let endpoints = replicated.endpoints();
    group.bench_function("leader_plus_2_followers", |b| {
        b.iter(|| run_reads(&endpoints, N_TENANTS, reads_per_iter()))
    });
    let one_follower = [endpoints[1]];
    group.bench_function("follower_single_endpoint", |b| {
        b.iter(|| run_reads(&one_follower, N_TENANTS, reads_per_iter()))
    });
    drop(endpoints);
    replicated.teardown();

    group.finish();
}

criterion_group!(benches, bench_replica_reads);
criterion_main!(benches);
