//! Ablation (DESIGN.md §6): how exact, elastic and aggressive solvers scale
//! with cluster width. Exact is exponential in the complement; elastic-2 is
//! quadratic; aggressive linear.

use corrfuse_bench::harness::{BenchmarkId, Criterion};
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_core::aggressive::AggressiveSolver;
use corrfuse_core::elastic::ElasticSolver;
use corrfuse_core::exact::ExactSolver;
use corrfuse_core::joint::{IndependentJoint, SourceSet};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    group.sample_size(10);
    for n in [6usize, 10, 14, 18] {
        let joint = IndependentJoint::new(vec![0.4; n], vec![0.1; n]).unwrap();
        let active = SourceSet::full(n);
        // A triple provided by 2 sources: complement n-2.
        let providers = SourceSet::EMPTY.with(0).with(1);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            let solver = ExactSolver::new();
            b.iter(|| solver.mu(&joint, providers, active).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("elastic2", n), &n, |b, _| {
            let solver = ElasticSolver::new(&joint, active, 2);
            b.iter(|| solver.mu(&joint, providers, active))
        });
        group.bench_with_input(BenchmarkId::new("aggressive", n), &n, |b, _| {
            let solver = AggressiveSolver::new(&joint, active);
            b.iter(|| solver.mu(providers, active))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
