//! Reactor back-end scaling: ingest throughput against the
//! thread-per-connection back end, and the cost of holding an idle
//! connection fleet on each.
//!
//! * `threads_4_clients` / `reactor_4_clients` — the same 4-producer
//!   loopback ingest as `net_throughput`, once per back end. Both drive
//!   the identical session machine, so the delta is pure transport:
//!   blocking reads on parked threads versus one `poll(2)` loop.
//! * `reactor_4_clients_idle_fleet` — the same ingest while the reactor
//!   additionally holds a fleet of idle, handshaken connections (2 000,
//!   or 300 under `CORRFUSE_QUICK`): the price active traffic pays for
//!   registered-but-silent peers is the per-wakeup `poll(2)` scan.
//! * `idle_hold_{threads,reactor}` — establish + ping + tear down a
//!   fleet of idle connections: the footprint axis. The thread back end
//!   pays one parked thread (stack, scheduler) per connection, the
//!   reactor one file descriptor and a slab slot; the fleet is capped
//!   far below the idle-scale test's 10⁴ so the thread back end can
//!   play at all.
//!
//! Recorded numbers live in BENCH_PR10.json.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use corrfuse_bench::harness::Criterion;
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_core::fuser::{FuserConfig, Method};
use corrfuse_net::server::spawn;
use corrfuse_net::{
    raise_nofile_limit, Client, ClientConfig, Frame, Request, Response, Server, ServerConfig,
};
use corrfuse_serve::{RouterConfig, ShardRouter, TenantId};
use corrfuse_synth::{multi_tenant_events, MultiTenantSpec, MultiTenantStream};

const N_TENANTS: usize = 8;
const N_SHARDS: usize = 4;
const N_CLIENTS: usize = 4;

fn workload() -> MultiTenantStream {
    let spec = MultiTenantSpec {
        n_tenants: N_TENANTS,
        triples_largest: if corrfuse_bench::quick() { 120 } else { 600 },
        skew: 1.0,
        n_sources: 4,
        batches_largest: 8,
        label_fraction: 0.3,
        seed: 777,
    };
    multi_tenant_events(&spec).unwrap()
}

fn build_router(stream: &MultiTenantStream) -> ShardRouter {
    ShardRouter::new(
        FuserConfig::new(Method::Exact),
        RouterConfig::new(N_SHARDS).with_batching(128, Duration::from_millis(1)),
        stream
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect(),
    )
    .unwrap()
}

fn idle_connect(addr: &std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    Request::Hello {
        min_version: 1,
        max_version: 1,
        credential: None,
    }
    .to_frame()
    .write_to(&mut s)
    .unwrap();
    s.flush().unwrap();
    let frame = Frame::read_from(&mut s).unwrap().unwrap();
    assert!(matches!(
        Response::from_frame(&frame),
        Ok(Response::HelloOk { .. })
    ));
    s
}

/// One full ingest run: construct, stream through `n_clients` loopback
/// producers while `n_idle` handshaken connections sit registered,
/// flush, shut down. Returns ingested events for the throughput line.
fn run_ingest(stream: &MultiTenantStream, reactor: bool, n_idle: usize) -> u64 {
    let server = Server::bind(
        "127.0.0.1:0",
        build_router(stream),
        ServerConfig::new()
            .reactor(reactor)
            .with_max_connections(n_idle + 32),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let (handle, join) = spawn(server).unwrap();
    let idle: Vec<TcpStream> = (0..n_idle).map(|_| idle_connect(&addr)).collect();
    std::thread::scope(|scope| {
        for c in 0..N_CLIENTS {
            let addr = addr.to_string();
            let messages = &stream.messages;
            scope.spawn(move || {
                let mut client =
                    Client::connect_with(&addr, ClientConfig::new().with_max_in_flight(64))
                        .unwrap();
                for (tenant, events) in messages {
                    if *tenant as usize % N_CLIENTS == c {
                        client.ingest(TenantId(*tenant), events).unwrap();
                    }
                }
                client.flush().unwrap();
            });
        }
    });
    drop(idle);
    handle.stop();
    let stats = join.join().unwrap().unwrap();
    let agg = stats.aggregate();
    assert_eq!(agg.ingest_errors, 0, "{:?}", agg.last_error);
    agg.ingested_events
}

/// Establish a fleet of idle connections, prove each is live with one
/// PING round trip, and tear the fleet down.
fn run_idle_hold(stream: &MultiTenantStream, reactor: bool, n_idle: usize) -> usize {
    let server = Server::bind(
        "127.0.0.1:0",
        build_router(stream),
        ServerConfig::new()
            .reactor(reactor)
            .with_max_connections(n_idle + 8),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let (handle, join) = spawn(server).unwrap();
    let mut idle: Vec<TcpStream> = (0..n_idle).map(|_| idle_connect(&addr)).collect();
    let ping = Request::Ping.to_frame().encode();
    for s in &mut idle {
        s.write_all(&ping).unwrap();
        s.flush().unwrap();
        let frame = Frame::read_from(s).unwrap().unwrap();
        assert!(matches!(Response::from_frame(&frame), Ok(Response::Pong)));
    }
    let held = idle.len();
    drop(idle);
    handle.stop();
    join.join().unwrap().unwrap();
    held
}

fn bench_reactor(c: &mut Criterion) {
    let stream = workload();
    let fleet = if corrfuse_bench::quick() { 300 } else { 2_000 };
    let hold = if corrfuse_bench::quick() { 128 } else { 512 };
    raise_nofile_limit((fleet * 2 + 512) as u64);
    eprintln!(
        "  workload: {} tenants over {} shards, {} messages, {} events; idle fleet {}, hold {}",
        N_TENANTS,
        N_SHARDS,
        stream.messages.len(),
        stream.n_events(),
        fleet,
        hold
    );
    let mut group = c.benchmark_group("reactor_idle_scale");
    group.sample_size(5);
    group.bench_function("threads_4_clients", |b| {
        b.iter(|| run_ingest(&stream, false, 0))
    });
    group.bench_function("reactor_4_clients", |b| {
        b.iter(|| run_ingest(&stream, true, 0))
    });
    group.bench_function("reactor_4_clients_idle_fleet", |b| {
        b.iter(|| run_ingest(&stream, true, fleet))
    });
    group.bench_function("idle_hold_threads", |b| {
        b.iter(|| run_idle_hold(&stream, false, hold))
    });
    group.bench_function("idle_hold_reactor", |b| {
        b.iter(|| run_idle_hold(&stream, true, hold))
    });
    group.finish();
}

criterion_group!(benches, bench_reactor);
criterion_main!(benches);
