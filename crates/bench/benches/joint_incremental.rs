//! Incremental core maintenance vs. the pre-PR rescan/full-refit paths.
//!
//! Two costs moved in this subsystem:
//!
//! * **Subset re-warm** — before, any `push_row` / `set_row` dropped an
//!   `EmpiricalJoint`'s whole memo, so the next query of *every* warm
//!   subset paid an O(rows) rescan. Now row deltas patch the maintained
//!   `(n_true, tp, fp)` counts of each memoised subset in place.
//!   `rewarm_after_row_delta/incremental` measures a row patch plus a
//!   re-query of 64 warm subsets; `rewarm_after_row_delta/invalidate_rescan`
//!   performs the identical work through the old path (explicit
//!   invalidation, every query rescans). `set_row` and `push_row` share
//!   the same maintenance code (one count delta per memoised subset), so
//!   the patch variant stands in for both.
//!
//! * **Label-flip refit under data-driven `Auto` clustering** — before,
//!   any label change re-ran `Fuser::fit` from scratch (quality scan,
//!   pairwise-lift scan, joint rebuilds, cold memos). Now the lift graph
//!   absorbs the delta, the partition is re-derived from maintained
//!   counts, and only changed clusters refit.
//!   `label_flip_refit/incremental` measures one real
//!   `StreamSession::ingest` of a flip batch; `label_flip_refit/full_fit`
//!   measures what the pre-PR fallback paid for the same flip: a fresh
//!   `Fuser::fit` plus re-scoring every distinct observation pattern once
//!   with cold joint memos (the pattern dedup itself predates this PR, so
//!   it is granted to both sides).
//!
//! The acceptance bar (BENCH_PR5) is >= 5x on both ratios. The workload
//! has the shape that makes fusion streams hot in practice: many triples
//! sharing few distinct provider patterns (co-firing extractor groups),
//! everything labelled, sources above the cluster cap so `Auto`
//! clustering is data-driven.

use std::collections::HashMap;

use corrfuse_bench::harness::{black_box, Criterion};
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_core::dataset::{Dataset, DatasetBuilder, SourceId};
use corrfuse_core::fuser::{Fuser, FuserConfig, Method};
use corrfuse_core::joint::{EmpiricalJoint, JointQuality, SourceSet};
use corrfuse_core::rng::StdRng;
use corrfuse_core::triple::TripleId;
use corrfuse_stream::{Event, RefitLevel, StreamSession};

const N_SOURCES: usize = 16;
const N_PATTERNS: usize = 48;

/// A labelled world whose provider sets repeat: every triple draws one of
/// `N_PATTERNS` co-firing patterns built over four source groups.
fn patterned_world(n_triples: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Pattern pool: a couple of groups fire together plus random extras.
    let groups: [&[usize]; 4] = [&[0, 1, 2], &[3, 4], &[5, 6, 7], &[8, 9]];
    let mut pool: Vec<Vec<usize>> = Vec::with_capacity(N_PATTERNS);
    for _ in 0..N_PATTERNS {
        let mut members = Vec::new();
        for g in groups.iter() {
            if rng.gen_bool(0.45) {
                members.extend_from_slice(g);
            }
        }
        for s in 10..N_SOURCES {
            if rng.gen_bool(0.3) {
                members.push(s);
            }
        }
        if members.is_empty() {
            members.push(rng.gen_range(0..N_SOURCES));
        }
        pool.push(members);
    }
    let mut b = DatasetBuilder::new();
    let sources: Vec<SourceId> = (0..N_SOURCES).map(|i| b.source(format!("S{i}"))).collect();
    for i in 0..n_triples {
        let t = b.triple(format!("e{i}"), "p", "v");
        for &s in &pool[rng.gen_range(0..N_PATTERNS)] {
            b.observe(sources[s], t);
        }
        b.label(t, rng.gen_bool(0.55));
    }
    b.build().unwrap()
}

/// Re-score every distinct `(domain, provider-set)` pattern once — the
/// pattern-deduped re-scoring both the pre-PR and post-PR session paths
/// perform after a model refresh.
fn score_patterns(fuser: &Fuser, ds: &Dataset) -> f64 {
    let mut reps: HashMap<Vec<u64>, TripleId> = HashMap::new();
    for t in ds.triples() {
        let key: Vec<u64> = ds.providers(t).iter_ones().map(|s| s as u64).collect();
        reps.entry(key).or_insert(t);
    }
    let mut acc = 0.0;
    for &t in reps.values() {
        acc += fuser.score_triple(ds, t).unwrap();
    }
    acc
}

fn bench_rewarm(c: &mut Criterion) {
    let n_rows = if corrfuse_bench::quick() { 800 } else { 4000 };
    let ds = patterned_world(n_rows, 99);
    let gold = ds.gold().unwrap().clone();
    let members: Vec<SourceId> = ds.sources().collect();

    let mut group = c.benchmark_group("joint_incremental");
    group.sample_size(20);

    // 64 probe subsets over the first 6 members — the lattice slice the
    // exact solver hammers.
    let probes: Vec<SourceSet> = (1u64..65).map(SourceSet).collect();
    let warm_all = |j: &EmpiricalJoint| {
        let mut acc = 0.0;
        for &s in &probes {
            acc += j.joint_recall(s) + j.joint_fpr(s);
        }
        acc
    };

    let mut inc = EmpiricalJoint::new(&ds, &gold, members.clone(), 0.5).unwrap();
    warm_all(&inc);
    let flip_row = |j: &mut EmpiricalJoint, step: usize| {
        // Patch a rotating row: toggle one provider bit back and forth.
        let idx = step % j.n_rows();
        let (prov, scope, truth) = j.row(idx);
        j.set_row(idx, prov ^ 1, scope | 1, truth).unwrap();
    };
    let mut step = 0usize;
    group.bench_function("rewarm_after_row_delta/incremental", |b| {
        b.iter(|| {
            flip_row(&mut inc, step);
            step += 1;
            black_box(warm_all(&inc))
        })
    });

    let mut old = EmpiricalJoint::new(&ds, &gold, members.clone(), 0.5).unwrap();
    warm_all(&old);
    let mut step = 0usize;
    group.bench_function("rewarm_after_row_delta/invalidate_rescan", |b| {
        b.iter(|| {
            flip_row(&mut old, step);
            step += 1;
            // The pre-PR behaviour: any row change dropped the memo, so
            // every warm subset rescans the rows on its next query.
            old.invalidate_caches();
            black_box(warm_all(&old))
        })
    });
    group.finish();
}

fn bench_label_flip(c: &mut Criterion) {
    let n_triples = if corrfuse_bench::quick() { 800 } else { 4000 };
    let ds = patterned_world(n_triples, 7);
    let mut config = FuserConfig::new(Method::Exact);
    // 16 sources over a cap of 6: `Auto` clustering is data-driven.
    config.cluster.max_cluster_size = 6;
    config.cluster.min_support = 2;

    let mut group = c.benchmark_group("joint_incremental");
    group.sample_size(20);

    let mut session = StreamSession::new(config.clone(), ds.clone()).unwrap();
    // Steady-state flip cycle over a rotating set of triples.
    let gold = ds.gold().unwrap().clone();
    let mut flips: Vec<(TripleId, bool)> = ds
        .triples()
        .take(64)
        .map(|t| (t, gold.get(t).unwrap()))
        .collect();
    // Sanity: a flip must take the incremental path, not the full
    // fallback (no sources are added).
    let probe = session
        .ingest(&[Event::label(flips[0].0, !flips[0].1)])
        .unwrap();
    assert_ne!(probe.refit, RefitLevel::Full, "flip fell back to full");
    let undo = session
        .ingest(&[Event::label(flips[0].0, flips[0].1)])
        .unwrap();
    assert_ne!(undo.refit, RefitLevel::Full);
    let mut step = 0usize;
    group.bench_function("label_flip_refit/incremental", |b| {
        b.iter(|| {
            let i = step % flips.len();
            let (t, current) = flips[i];
            let next = !current;
            flips[i].1 = next;
            step += 1;
            black_box(
                session
                    .ingest(&[Event::label(t, next)])
                    .unwrap()
                    .rescored
                    .len(),
            )
        })
    });

    // The pre-PR fallback for the same flip: fresh `Fuser::fit` (quality
    // scan, pairwise-lift scan, joint rebuilds) + pattern-deduped
    // re-scoring with cold joint memos.
    group.bench_function("label_flip_refit/full_fit", |b| {
        b.iter(|| {
            let fuser = Fuser::fit(&config, &ds, ds.gold().unwrap()).unwrap();
            black_box(score_patterns(&fuser, &ds))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rewarm, bench_label_flip);
criterion_main!(benches);
