//! Joint-parameter estimation cost (DESIGN.md §6 ablation 3): cold
//! (uncached) vs warm (memoised) joint recall queries over the REVERB
//! replica, plus full-model fit cost.

use corrfuse_bench::harness::Criterion;
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_core::joint::{EmpiricalJoint, JointQuality, SourceSet};

fn bench_joint(c: &mut Criterion) {
    let ds = corrfuse_bench::reverb().unwrap();
    let gold = ds.gold().unwrap().clone();
    let members: Vec<_> = ds.sources().collect();

    let mut group = c.benchmark_group("joint_quality");
    group.sample_size(20);
    group.bench_function("build", |b| {
        b.iter(|| EmpiricalJoint::new(&ds, &gold, members.clone(), 0.5).unwrap())
    });
    group.bench_function("cold_queries", |b| {
        b.iter(|| {
            // Fresh instance per iteration: every query scans the rows.
            let joint = EmpiricalJoint::new(&ds, &gold, members.clone(), 0.5).unwrap();
            let mut acc = 0.0;
            for mask in 1u64..64 {
                acc += joint.joint_recall(SourceSet(mask));
            }
            acc
        })
    });
    let warm = EmpiricalJoint::new(&ds, &gold, members.clone(), 0.5).unwrap();
    for mask in 1u64..64 {
        warm.joint_recall(SourceSet(mask));
    }
    group.bench_function("warm_queries", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for mask in 1u64..64 {
                acc += warm.joint_recall(SourceSet(mask));
            }
            acc
        })
    });
    // The sharded memo exposes hit/miss counters: the warm loop should be
    // all hits after its 63-query warm-up.
    let stats = warm.cache_stats();
    eprintln!(
        "  joint_quality/warm_queries: memo hit rate {:.2}% ({} hits / {} misses)",
        100.0 * stats.hit_rate(),
        stats.hits,
        stats.misses,
    );
    group.finish();
}

criterion_group!(benches, bench_joint);
criterion_main!(benches);
