//! Streaming throughput: incremental ingest vs. naive refit.
//!
//! The workload is a synthetic 8-source world, half of it labelled, fused
//! with the exact correlated solver. Three costs are measured per delta:
//!
//! * `naive_refit_score_all` — what a non-incremental deployment pays for
//!   *any* delta: `Fuser::fit` + `score_all` over the whole dataset;
//! * `ingest_claims_8x3` — the fast path: a micro-batch of 8 new
//!   unlabelled triples with 3 claims each (no model refresh, only the
//!   new triples re-score);
//! * `ingest_labels_4` — the model path: 4 label events per batch (the
//!   quality model refreshes from maintained counters and every distinct
//!   observation pattern re-scores once through the score cache).
//!
//! The acceptance bar for the subsystem is `naive_refit_score_all /
//! ingest_claims_8x3 >= 5` on this workload; in practice the gap is
//! orders of magnitude. Note the ingest benches mutate their session, so
//! the claims session grows over the run — growth only adds unlabelled
//! triples, which the fast path never revisits.

use corrfuse_bench::harness::Criterion;
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_core::dataset::{Dataset, DatasetBuilder, SourceId};
use corrfuse_core::engine::ScoringEngine;
use corrfuse_core::fuser::{Fuser, FuserConfig, Method};
use corrfuse_core::rng::StdRng;
use corrfuse_core::triple::TripleId;
use corrfuse_stream::{Event, StreamSession};

const N_SOURCES: usize = 8;

/// An 8-source world with claims for every triple but labels for only
/// every other one, so the label bench has unlabelled triples to consume.
fn universe(n_triples: usize) -> Dataset {
    let spec = corrfuse_synth::SynthSpec::uniform(N_SOURCES, 0.8, 0.5, n_triples, 0.5, 4242);
    let full = corrfuse_synth::generate(&spec).unwrap();
    let gold = full.gold().unwrap();
    let mut b = DatasetBuilder::new();
    for s in full.sources() {
        b.source(full.source_name(s));
    }
    for t in full.triples() {
        let triple = full.triple(t);
        let id = b.triple(
            triple.subject.clone(),
            triple.predicate.clone(),
            triple.object.clone(),
        );
        for s in full.providers(t).iter_ones() {
            b.observe(SourceId(s as u32), id);
        }
        if t.index() % 2 == 0 {
            b.label(id, gold.get(t).unwrap());
        }
    }
    b.build().unwrap()
}

fn bench_stream(c: &mut Criterion) {
    let n = if corrfuse_bench::quick() { 600 } else { 4000 };
    let ds = universe(n);
    let config = FuserConfig::new(Method::Exact);
    let gold = ds.gold().unwrap().clone();

    let mut group = c.benchmark_group("stream_throughput");
    group.sample_size(10);

    // Baseline: the O(dataset) cost every delta pays without streaming.
    group.bench_function("naive_refit_score_all", |b| {
        b.iter(|| {
            let fuser = Fuser::fit(&config, &ds, &gold).unwrap();
            fuser.score_all(&ds).unwrap()
        })
    });

    // Fast path: new unlabelled triples with claims.
    let mut claims_session =
        StreamSession::with_engine(config.clone(), ds.clone(), ScoringEngine::serial()).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let mut minted = 0usize;
    group.bench_function("ingest_claims_8x3", |b| {
        b.iter(|| {
            let base = claims_session.dataset().n_triples();
            let mut batch = Vec::with_capacity(8 * 4);
            for k in 0..8 {
                batch.push(Event::add_triple(
                    "live",
                    "attr",
                    format!("v{}", minted + k),
                ));
                let t = TripleId((base + k) as u32);
                // Three distinct sources (stride 3 is coprime with 8).
                let s0 = rng.gen_range(0..N_SOURCES);
                for off in 0..3 {
                    batch.push(Event::claim(
                        SourceId(((s0 + off * 3) % N_SOURCES) as u32),
                        t,
                    ));
                }
            }
            minted += 8;
            claims_session.ingest(&batch).unwrap()
        })
    });
    eprintln!(
        "  ingest_claims_8x3: session grew to {} triples, score cache {:.1}% hits",
        claims_session.dataset().n_triples(),
        100.0 * claims_session.score_cache_stats().hit_rate(),
    );

    // Model path: label previously-unlabelled triples (wrapping around by
    // flipping the label, so every batch really changes the model).
    let unlabelled: Vec<TripleId> = ds.triples().filter(|&t| gold.get(t).is_none()).collect();
    let mut label_session =
        StreamSession::with_engine(config.clone(), ds.clone(), ScoringEngine::serial()).unwrap();
    let mut cursor = 0usize;
    group.bench_function("ingest_labels_4", |b| {
        b.iter(|| {
            let mut batch = Vec::with_capacity(4);
            for k in 0..4 {
                let i = cursor + k;
                let truth = (i / unlabelled.len()).is_multiple_of(2);
                batch.push(Event::label(unlabelled[i % unlabelled.len()], truth));
            }
            cursor += 4;
            label_session.ingest(&batch).unwrap()
        })
    });
    eprintln!(
        "  ingest_labels_4: score cache {:.1}% hits, joint memo {:.1}% hits",
        100.0 * label_session.score_cache_stats().hit_rate(),
        100.0 * label_session.joint_cache_stats().hit_rate(),
    );
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
