//! Network front-door throughput: TCP loopback ingestion versus the
//! in-process router, over the skewed 8-tenant stream.
//!
//! One iteration runs the whole pipeline: construct the router
//! (per-shard seed fits), ingest every message, flush, shut down.
//! `direct` calls `ShardRouter::ingest` in-process (the PR3 baseline);
//! the `tcp_*` variants put the `corrfuse-net` server in front and
//! stream the same messages through real loopback connections —
//! framing, CRC, journal-codec encode/decode and syscalls included —
//! with producers partitioned by `tenant % n_clients`, each pipelining
//! up to 64 batches.
//!
//! The acceptance bar is sanity, not parity: the wire adds per-batch
//! overhead, so `tcp_4_clients` must stay within a small constant
//! factor of `direct` (see BENCH_PR4.json for recorded numbers), and
//! multi-client TCP must not be slower than single-client TCP.

use std::time::Duration;

use corrfuse_bench::harness::Criterion;
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_core::fuser::{FuserConfig, Method};
use corrfuse_net::server::spawn;
use corrfuse_net::{Client, ClientConfig, Server, ServerConfig};
use corrfuse_serve::{RouterConfig, ShardRouter, TenantId};
use corrfuse_synth::{multi_tenant_events, MultiTenantSpec, MultiTenantStream};

const N_TENANTS: usize = 8;
const N_SHARDS: usize = 4;

fn workload() -> MultiTenantStream {
    let spec = MultiTenantSpec {
        n_tenants: N_TENANTS,
        triples_largest: if corrfuse_bench::quick() { 120 } else { 600 },
        skew: 1.0,
        n_sources: 4,
        batches_largest: 8,
        label_fraction: 0.3,
        seed: 777,
    };
    multi_tenant_events(&spec).unwrap()
}

fn build_router(stream: &MultiTenantStream) -> ShardRouter {
    ShardRouter::new(
        FuserConfig::new(Method::Exact),
        RouterConfig::new(N_SHARDS).with_batching(128, Duration::from_millis(1)),
        stream
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect(),
    )
    .unwrap()
}

fn run_direct(stream: &MultiTenantStream) -> u64 {
    let router = build_router(stream);
    for (tenant, events) in &stream.messages {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    router.flush().unwrap();
    let stats = router.shutdown().unwrap();
    let agg = stats.aggregate();
    assert_eq!(agg.ingest_errors, 0, "{:?}", agg.last_error);
    agg.ingested_events
}

fn run_tcp(stream: &MultiTenantStream, n_clients: usize) -> u64 {
    let server = Server::bind("127.0.0.1:0", build_router(stream), ServerConfig::new()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let (handle, join) = spawn(server).unwrap();
    std::thread::scope(|scope| {
        for c in 0..n_clients {
            let addr = addr.clone();
            let messages = &stream.messages;
            scope.spawn(move || {
                let mut client =
                    Client::connect_with(&addr, ClientConfig::new().with_max_in_flight(64))
                        .unwrap();
                for (tenant, events) in messages {
                    if *tenant as usize % n_clients == c {
                        client.ingest(TenantId(*tenant), events).unwrap();
                    }
                }
                client.flush().unwrap();
            });
        }
    });
    handle.stop();
    let stats = join.join().unwrap().unwrap();
    let agg = stats.aggregate();
    assert_eq!(agg.ingest_errors, 0, "{:?}", agg.last_error);
    agg.ingested_events
}

fn bench_net(c: &mut Criterion) {
    let stream = workload();
    eprintln!(
        "  workload: {} tenants over {} shards, {} messages, {} events",
        N_TENANTS,
        N_SHARDS,
        stream.messages.len(),
        stream.n_events()
    );
    let mut group = c.benchmark_group("net_throughput");
    group.sample_size(5);
    group.bench_function("direct", |b| b.iter(|| run_direct(&stream)));
    for n_clients in [1usize, 4] {
        group.bench_function(&format!("tcp_{n_clients}_clients"), |b| {
            b.iter(|| run_tcp(&stream, n_clients))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
