//! Cost curve of the elastic approximation (Figure 5a's runtime axis):
//! fit+score at levels 0..=4 plus the exact solver on REVERB.

use corrfuse_bench::harness::{BenchmarkId, Criterion};
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_eval::harness::{run_method, MethodSpec};

fn bench_levels(c: &mut Criterion) {
    let ds = corrfuse_bench::reverb().unwrap();
    let mut group = c.benchmark_group("elastic_levels");
    group.sample_size(10);
    for level in 0..=4usize {
        group.bench_with_input(BenchmarkId::new("level", level), &ds, |b, ds| {
            b.iter(|| run_method(ds, &MethodSpec::Elastic(level)).unwrap())
        });
    }
    group.bench_with_input(BenchmarkId::new("exact", 0usize), &ds, |b, ds| {
        b.iter(|| run_method(ds, &MethodSpec::PrecRecCorr).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);
