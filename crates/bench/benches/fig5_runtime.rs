//! Criterion counterpart of Figure 5b: per-method fit+score cost on the
//! REVERB and RESTAURANT replicas. (The `fig5_runtime` binary prints the
//! full table including BOOK; this bench gives statistically solid
//! comparisons for the small datasets.)

use corrfuse_bench::harness::{BenchmarkId, Criterion};
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_eval::harness::{run_method, MethodSpec};

fn methods() -> Vec<MethodSpec> {
    vec![
        MethodSpec::Union(50.0),
        MethodSpec::ThreeEstimates,
        MethodSpec::PrecRec,
        MethodSpec::PrecRecCorr,
        MethodSpec::Elastic(3),
        MethodSpec::Aggressive,
    ]
}

fn bench_fig5(c: &mut Criterion) {
    let reverb = corrfuse_bench::reverb().unwrap();
    let restaurant = corrfuse_bench::restaurant().unwrap();
    let mut group = c.benchmark_group("fig5b");
    group.sample_size(10);
    for (name, ds) in [("reverb", &reverb), ("restaurant", &restaurant)] {
        for m in methods() {
            group.bench_with_input(BenchmarkId::new(m.name(), name), ds, |b, ds| {
                b.iter(|| run_method(ds, &m).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
