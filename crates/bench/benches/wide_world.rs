//! Wide-world scaling: sparse lift graph + sketch tier vs. the dense
//! pre-PR pair enumeration.
//!
//! Tiers run over `corrfuse_synth::wide_world` worlds (10-source
//! domains, one planted 3-clique per domain) at 10³/10⁴/10⁵ sources:
//!
//! * `sparse_fit/<n>` — `LiftGraph::build` with the sketch tier on, plus
//!   deriving the clustering: the post-PR fit path. Work scales with
//!   observations + co-scoped candidates, not sources².
//! * `sparse_refit/<n>` — steady-state incremental refit: one label
//!   flip absorbed through `relabel`, candidate re-admission, and a
//!   fresh clustering.
//! * `dense_fit/<n>` — the pre-PR batch path (`pairwise_correlations` +
//!   `cluster_from_pairs`): every source pair enumerated, O(sources² ·
//!   labelled). Kept as the baseline the ≥5x acceptance ratio is
//!   measured against; the 10⁴ tier runs in full mode only (a single
//!   dense pass there is minutes, which is the point).
//!
//! Structure sizes (tracked pairs vs. co-scoped candidates vs. the
//! all-pairs table a dense graph would hold) are printed per tier — the
//! "memory ceiling" half of the acceptance criteria.
//!
//! `CORRFUSE_QUICK=1` restricts everything to the 10³ tier (CI smoke).

use corrfuse_bench::harness::{black_box, Criterion};
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_core::cluster::{
    cluster_from_pairs, pairwise_correlations, ClusterConfig, LiftGraph, SketchParams,
};
use corrfuse_core::dataset::Dataset;
use corrfuse_core::triple::TripleId;
use corrfuse_synth::{wide_world, WideWorldSpec};

fn sketch_cfg() -> ClusterConfig {
    ClusterConfig {
        // Above the wide world's coin-flip noise floor, below its
        // planted clique strength (ln 4) — see the generator docs.
        ln_threshold: 2.5f64.ln(),
        sketch: SketchParams::on(),
        ..ClusterConfig::default()
    }
}

fn world(n_sources: usize) -> (WideWorldSpec, Dataset) {
    let spec = WideWorldSpec::new(n_sources);
    let ds = wide_world(&spec).expect("wide world generates");
    (spec, ds)
}

fn bench_sparse(c: &mut Criterion) {
    let tiers: &[usize] = if corrfuse_bench::quick() {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let cfg = sketch_cfg();
    let mut group = c.benchmark_group("wide_world");
    group.sample_size(10);
    for &n in tiers {
        let (spec, mut ds) = world(n);
        let gold = ds.gold().unwrap().clone();
        group.bench_function(&format!("sparse_fit/{n}"), |b| {
            b.iter(|| {
                let graph = LiftGraph::build(&ds, &gold, &cfg);
                black_box(graph.clustering().len())
            })
        });

        // Structure-size report: what the sparse graph holds vs. what a
        // co-scoped-only table and the dense all-pairs table would.
        let graph = LiftGraph::build(&ds, &gold, &cfg);
        let stats = graph.stats();
        let width = spec.sources_per_domain;
        let candidates = spec.n_domains() * width * (width - 1) / 2;
        eprintln!(
            "  wide_world/structures/{n}: tracked {} pairs \
             (sketch pruned {}), co-scoped candidates {}, dense table {}",
            stats.pairs_exact,
            stats.pairs_sketch_pruned,
            candidates,
            n * (n - 1) / 2,
        );

        // Steady-state refit: one label flip per iteration, absorbed
        // incrementally (flipping the same triple back and forth keeps
        // the world statistically unchanged).
        let mut graph = LiftGraph::build(&ds, &gold, &cfg);
        let t = TripleId(0);
        let mut truth = gold.get(t).unwrap();
        group.bench_function(&format!("sparse_refit/{n}"), |b| {
            b.iter(|| {
                let next = !truth;
                ds.set_label(t, next).unwrap();
                graph.relabel(&ds, t, Some(truth), next);
                truth = next;
                graph.take_changed();
                graph.admit_candidates(&ds);
                black_box(graph.clustering().len())
            })
        });
    }
    group.finish();
}

fn bench_dense_baseline(c: &mut Criterion) {
    let tiers: &[(usize, usize)] = if corrfuse_bench::quick() {
        &[(1_000, 10)]
    } else {
        // One dense sample at 10⁴ is already minutes of work — that gap
        // is the measurement.
        &[(1_000, 10), (10_000, 1)]
    };
    let cfg = ClusterConfig {
        sketch: SketchParams::default(),
        ..sketch_cfg()
    };
    let mut group = c.benchmark_group("wide_world");
    for &(n, samples) in tiers {
        let (_, ds) = world(n);
        let gold = ds.gold().unwrap().clone();
        group.sample_size(samples);
        group.bench_function(&format!("dense_fit/{n}"), |b| {
            b.iter(|| {
                let pairs = pairwise_correlations(&ds, &gold, &cfg).expect("labelled world");
                black_box(cluster_from_pairs(ds.n_sources(), pairs, &cfg).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse, bench_dense_baseline);
criterion_main!(benches);
