//! Observability overhead guard: identical ingest workloads with
//! instrumentation off (the default) and on, plus the raw cost of the
//! histogram record primitive everything funnels into.
//!
//! Pairs: a stationary label-flip session workload under
//! `FuserConfig::spans` (the contract number — every iteration costs
//! the same, so the comparison is clean), the minting-claims fast path
//! under the same toggle (noisier; session grows), and the full
//! two-shard router pipeline under `RouterConfig::with_metrics`.
//!
//! The contract (docs/OBSERVABILITY.md): enabling spans adds only
//! clock reads around pipeline stages and a `StageTimings` copy onto
//! each outcome, and must cost ≤3% on the stream/router throughput
//! workloads. Run with `CORRFUSE_BENCH_JSON=BENCH_PR7.json` to record
//! the comparison.

use std::sync::Arc;
use std::time::Duration;

use corrfuse_bench::harness::{black_box, Criterion};
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_core::dataset::{Dataset, DatasetBuilder, SourceId};
use corrfuse_core::engine::ScoringEngine;
use corrfuse_core::fuser::{FuserConfig, Method};
use corrfuse_core::rng::StdRng;
use corrfuse_core::triple::TripleId;
use corrfuse_obs::{Histogram, Registry};
use corrfuse_serve::{RouterConfig, ShardRouter, TenantId};
use corrfuse_stream::{Event, StreamSession};

const N_SOURCES: usize = 8;

/// Same world shape as `stream_throughput`: claims everywhere, labels on
/// every other triple, so both sessions run the identical fast path.
fn universe(n_triples: usize) -> Dataset {
    let spec = corrfuse_synth::SynthSpec::uniform(N_SOURCES, 0.8, 0.5, n_triples, 0.5, 4242);
    let full = corrfuse_synth::generate(&spec).unwrap();
    let gold = full.gold().unwrap();
    let mut b = DatasetBuilder::new();
    for s in full.sources() {
        b.source(full.source_name(s));
    }
    for t in full.triples() {
        let triple = full.triple(t);
        let id = b.triple(
            triple.subject.clone(),
            triple.predicate.clone(),
            triple.object.clone(),
        );
        for s in full.providers(t).iter_ones() {
            b.observe(SourceId(s as u32), id);
        }
        if t.index() % 2 == 0 {
            b.label(id, gold.get(t).unwrap());
        }
    }
    b.build().unwrap()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let n = if corrfuse_bench::quick() { 400 } else { 2000 };
    let ds = universe(n);

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);

    // A *stationary* ingest workload, spans off then on (the two ids
    // differ only in the `FuserConfig::spans` toggle): every iteration
    // flips the same 4 gold labels, forcing the identical model refresh
    // + rescore each time. Labels are not absorbing, so the session
    // does not grow and samples stay comparable — a minting-claims
    // workload here drowns the span cost in allocator growth noise.
    for (id, spans) in [
        ("ingest_labels_flip_spans_off", false),
        ("ingest_labels_flip_spans_on", true),
    ] {
        let config = FuserConfig::new(Method::Exact).with_spans(spans);
        let mut session =
            StreamSession::with_engine(config, ds.clone(), ScoringEngine::serial()).unwrap();
        let mut parity = false;
        group.bench_function(id, |b| {
            b.iter(|| {
                parity = !parity;
                let batch: Vec<Event> = (0..4)
                    .map(|k| Event::label(TripleId(2 * k), (k % 2 == 0) == parity))
                    .collect();
                session.ingest(&batch).unwrap()
            })
        });
    }

    // The claims fast path, same toggle: the minting micro-batch
    // workload of `stream_throughput`. The session grows across
    // iterations, so this pair is noisier than the label flips —
    // compare minima, and treat the stationary pair above as the
    // contract number.
    for (id, spans) in [
        ("ingest_claims_spans_off", false),
        ("ingest_claims_spans_on", true),
    ] {
        let config = FuserConfig::new(Method::Exact).with_spans(spans);
        let mut session =
            StreamSession::with_engine(config, ds.clone(), ScoringEngine::serial()).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut minted = 0usize;
        group.bench_function(id, |b| {
            b.iter(|| {
                let base = session.dataset().n_triples();
                let mut batch = Vec::with_capacity(8 * 4);
                for k in 0..8 {
                    batch.push(Event::add_triple(
                        "live",
                        "attr",
                        format!("v{}", minted + k),
                    ));
                    let t = TripleId((base + k) as u32);
                    let s0 = rng.gen_range(0..N_SOURCES);
                    for off in 0..3 {
                        batch.push(Event::claim(
                            SourceId(((s0 + off * 3) % N_SOURCES) as u32),
                            t,
                        ));
                    }
                }
                minted += 8;
                session.ingest(&batch).unwrap()
            })
        });
    }

    // The full serving pipeline with and without a metrics registry:
    // `RouterConfig::with_metrics` turns on shard-stage histograms,
    // batch traces and per-session spans all at once. Same skewed
    // multi-tenant workload as `router_throughput`.
    let stream = {
        let spec = corrfuse_synth::MultiTenantSpec {
            n_tenants: 8,
            triples_largest: if corrfuse_bench::quick() { 120 } else { 600 },
            skew: 1.0,
            n_sources: 4,
            batches_largest: 8,
            label_fraction: 0.3,
            seed: 777,
        };
        corrfuse_synth::multi_tenant_events(&spec).unwrap()
    };
    for (id, metrics) in [
        ("router_shards_2_metrics_off", false),
        ("router_shards_2_metrics_on", true),
    ] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let mut config = RouterConfig::new(2).with_batching(128, Duration::from_millis(1));
                if metrics {
                    config = config.with_metrics(Arc::new(Registry::new()));
                }
                let router = ShardRouter::new(
                    FuserConfig::new(Method::Exact),
                    config,
                    stream
                        .seeds
                        .iter()
                        .map(|(t, ds)| (TenantId(*t), ds.clone()))
                        .collect(),
                )
                .unwrap();
                for (tenant, events) in &stream.messages {
                    router.ingest(TenantId(*tenant), events.clone()).unwrap();
                }
                router.flush().unwrap();
                let stats = router.shutdown().unwrap();
                stats.aggregate().ingested_events
            })
        });
    }

    // The primitive every enabled span funnels into: one relaxed-atomic
    // histogram record. This is the per-stage marginal cost floor.
    let hist = Histogram::new();
    let mut v = 0u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_add(977);
            hist.record(black_box(v & 0xFFFF));
        })
    });
    eprintln!(
        "  histogram_record: {} observations, p50 {} ns",
        hist.count(),
        hist.snapshot().p50(),
    );
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
