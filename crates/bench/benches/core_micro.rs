//! Micro-benchmarks of the core substrates: bitset projection, subset
//! enumeration, PrecRec scoring throughput.

use corrfuse_bench::harness::{black_box, Criterion};
use corrfuse_bench::{criterion_group, criterion_main};
use corrfuse_core::bits::BitSet;
use corrfuse_core::independent::PrecRecModel;
use corrfuse_core::subset::{submasks, submasks_of_size};

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_micro");

    let bs = BitSet::from_indices(333, (0..333).filter(|i| i % 7 == 0));
    let positions: Vec<usize> = (0..22).map(|k| k * 15).collect();
    group.bench_function("bitset_project_22_of_333", |b| {
        b.iter(|| black_box(&bs).project(black_box(&positions)))
    });

    group.bench_function("submasks_2pow16", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for m in submasks(0xFFFF) {
                acc ^= m;
            }
            acc
        })
    });
    group.bench_function("submasks_of_size_3_of_20", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for m in submasks_of_size((1 << 20) - 1, 3) {
                acc ^= m;
            }
            acc
        })
    });

    let ds = corrfuse_bench::reverb().unwrap();
    let model = PrecRecModel::fit(&ds, ds.gold().unwrap(), Some(0.5)).unwrap();
    group.bench_function("precrec_score_all_reverb", |b| {
        b.iter(|| model.score_all(&ds))
    });
    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
