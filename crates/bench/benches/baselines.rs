//! Baseline throughput: voting, the Galland estimators and one LTM
//! configuration on the REVERB replica.

use corrfuse_baselines::estimates::{cosine, three_estimates, two_estimates, EstimatesConfig};
use corrfuse_baselines::ltm::{run as ltm, LtmConfig};
use corrfuse_baselines::voting::UnionK;
use corrfuse_bench::harness::Criterion;
use corrfuse_bench::{criterion_group, criterion_main};

fn bench_baselines(c: &mut Criterion) {
    let ds = corrfuse_bench::reverb().unwrap();
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("union50_score", |b| {
        let u = UnionK::majority();
        b.iter(|| u.score_all(&ds))
    });
    let cfg = EstimatesConfig::default();
    group.bench_function("two_estimates", |b| b.iter(|| two_estimates(&ds, &cfg)));
    group.bench_function("three_estimates", |b| b.iter(|| three_estimates(&ds, &cfg)));
    group.bench_function("cosine", |b| b.iter(|| cosine(&ds, &cfg)));
    let ltm_cfg = LtmConfig {
        burn_in: 10,
        samples: 10,
        thin: 1,
        ..Default::default()
    };
    group.bench_function("ltm_20_sweeps", |b| b.iter(|| ltm(&ds, &ltm_cfg)));
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
