//! An in-tree micro-benchmark harness exposing the subset of the
//! `criterion` API the benches use.
//!
//! Offline builds cannot pull `criterion`, so bench targets (compiled with
//! `harness = false`) run on this module instead: same `Criterion` /
//! `benchmark_group` / `bench_function` / `bench_with_input` surface, same
//! `criterion_group!` / `criterion_main!` macros, so swapping the real
//! crate back in is a one-line import change per bench.
//!
//! Methodology: after a warm-up, each benchmark takes `sample_size`
//! samples; a sample times a batch of iterations sized so one batch takes
//! roughly [`TARGET_SAMPLE_NANOS`]. Reported statistics are the min /
//! median / mean / max of per-iteration times across samples.
//!
//! Environment knobs:
//!
//! * `CORRFUSE_QUICK=1` — shrink warm-up and sample counts (CI smoke).
//! * `CORRFUSE_BENCH_JSON=path` — append one JSON line per benchmark, so
//!   runs can be captured (e.g. `BENCH_PR1.json`) and compared across PRs.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock cost of one timing sample.
pub const TARGET_SAMPLE_NANOS: u64 = 20_000_000;

/// Top-level benchmark driver (criterion-compatible shape).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: if quick() { 3 } else { 12 },
        }
    }
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier, like criterion's.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Quick mode wins: CI smoke runs should stay fast no matter what
        // the bench requests.
        if !quick() {
            self.sample_size = n.max(2);
        }
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), &mut f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.label.clone(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (report separator; kept for API parity).
    pub fn finish(self) {}

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let full_id = format!("{}/{id}", self.name);
        match Summary::from_samples(&bencher.samples) {
            Some(summary) => {
                eprintln!(
                    "  {full_id}: median {} (min {}, mean {}, p99 {}, max {}, {} samples)",
                    fmt_nanos(summary.median_ns),
                    fmt_nanos(summary.min_ns),
                    fmt_nanos(summary.mean_ns),
                    fmt_nanos(summary.p99_ns as f64),
                    fmt_nanos(summary.max_ns),
                    summary.samples,
                );
                summary.append_json(&full_id);
            }
            None => eprintln!("  {full_id}: no samples recorded"),
        }
    }
}

/// Per-benchmark timing driver handed to the bench closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration nanoseconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, criterion-style: warm up, calibrate a batch size,
    /// then record `sample_size` samples of batched iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up & calibration: run until we know the per-iteration cost.
        let calibration_budget = if quick() {
            Duration::from_millis(20)
        } else {
            Duration::from_millis(200)
        };
        let start = Instant::now();
        let mut calibration_iters = 0u64;
        while start.elapsed() < calibration_budget {
            black_box(routine());
            calibration_iters += 1;
            if calibration_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = start.elapsed().as_nanos() as u64 / calibration_iters.max(1);
        let batch = (TARGET_SAMPLE_NANOS / per_iter.max(1)).clamp(1, 1_000_000);
        let batch = if quick() { batch.min(100) } else { batch };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let nanos = t0.elapsed().as_nanos() as f64;
            self.samples.push(nanos / batch as f64);
        }
    }
}

/// Summary statistics of one benchmark's samples (per-iteration nanos).
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean of samples.
    pub mean_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Histogram-estimated 50th percentile (log₂-bucket resolution;
    /// the exact `median_ns` stays the headline number, this one exists
    /// to exercise the same [`corrfuse_obs::Histogram`] the serving
    /// stack reports through).
    pub p50_ns: u64,
    /// Histogram-estimated 99th percentile — the tail-latency figure
    /// the exact min/median/max row cannot show.
    pub p99_ns: u64,
    /// Number of samples taken.
    pub samples: usize,
}

impl Summary {
    fn from_samples(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let hist = corrfuse_obs::Histogram::new();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for &s in &sorted {
            hist.record(s.max(0.0).round() as u64);
        }
        let snap = hist.snapshot();
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Some(Summary {
            min_ns: sorted[0],
            median_ns: median,
            mean_ns: sorted.iter().sum::<f64>() / n as f64,
            max_ns: sorted[n - 1],
            p50_ns: snap.p50(),
            p99_ns: snap.p99(),
            samples: n,
        })
    }

    fn append_json(&self, id: &str) {
        let Ok(path) = std::env::var("CORRFUSE_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let line = format!(
            "{{\"id\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"mean_ns\":{:.1},\"max_ns\":{:.1},\"p50_ns\":{},\"p99_ns\":{},\"samples\":{}}}\n",
            id.replace('"', "'"),
            self.median_ns,
            self.min_ns,
            self.mean_ns,
            self.max_ns,
            self.p50_ns,
            self.p99_ns,
            self.samples,
        );
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("  (could not append to {path}: {e})");
        }
    }
}

fn quick() -> bool {
    std::env::var("CORRFUSE_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declare a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = Summary::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 2.0);
        assert_eq!(s.max_ns, 3.0);
        assert!((s.mean_ns - 2.0).abs() < 1e-12);
        assert_eq!(s.samples, 3);
        // Histogram percentiles bracket the exact statistics (log₂
        // buckets: within the recorded range, ordered).
        assert!(s.p50_ns >= 1 && s.p50_ns <= 3, "p50={}", s.p50_ns);
        assert!(s.p99_ns >= s.p50_ns && s.p99_ns <= 3, "p99={}", s.p99_ns);
        assert!(Summary::from_samples(&[]).is_none());
        let even = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((even.median_ns - 2.5).abs() < 1e-12);
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(fmt_nanos(12.0), "12 ns");
        assert_eq!(fmt_nanos(1_500.0), "1.50 µs");
        assert_eq!(fmt_nanos(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_nanos(3_100_000_000.0), "3.100 s");
    }

    #[test]
    fn benchmark_id_label() {
        let id = BenchmarkId::new("exact", 14);
        assert_eq!(id.label, "exact/14");
    }

    #[test]
    fn bencher_records_samples() {
        // No env mutation (it would leak across concurrently-running
        // tests); a small sample size keeps this fast either way.
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(2);
        let mut bencher = Bencher {
            sample_size: 2,
            samples: Vec::new(),
        };
        bencher.iter(|| std::hint::black_box(1 + 1));
        assert_eq!(bencher.samples.len(), 2);
        assert!(bencher.samples.iter().all(|&ns| ns >= 0.0));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
