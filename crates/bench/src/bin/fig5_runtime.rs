//! Regenerates Figure 5b: the runtime table (FIG5B).

use corrfuse_eval::experiments::runtime;
use corrfuse_eval::MethodSpec;

fn main() {
    corrfuse_bench::banner("Figure 5b: method runtimes");
    let reverb = corrfuse_bench::reverb().expect("reverb");
    let restaurant = corrfuse_bench::restaurant().expect("restaurant");
    let book = if corrfuse_bench::quick() {
        corrfuse_bench::book_small().expect("book")
    } else {
        corrfuse_bench::book().expect("book")
    };
    let datasets = [
        ("REVERB", &reverb),
        ("RESTAURANT", &restaurant),
        ("BOOK", &book),
    ];
    let methods = [
        MethodSpec::Union(25.0),
        MethodSpec::Union(50.0),
        MethodSpec::Union(75.0),
        MethodSpec::ThreeEstimates,
        MethodSpec::ltm_default(),
        MethodSpec::PrecRec,
        MethodSpec::PrecRecCorr,
        MethodSpec::Elastic(3),
    ];
    // With per-book scopes the exact solver is feasible on BOOK (active
    // cluster members per triple are only the sellers covering the book).
    let skip: [(&str, &str); 0] = [];
    let res = runtime::run(&datasets, &methods, &skip).expect("runtimes");
    println!("{}", res.render());
    println!("(absolute numbers are host-specific; compare rows, not the paper's seconds)");
}
