//! Regenerates Figure 5a: elastic approximation level sweep (FIG5A).

use corrfuse_eval::experiments::elastic_levels;

fn main() {
    corrfuse_bench::banner("Figure 5a: elastic approximation levels");
    let max_level = if corrfuse_bench::quick() { 3 } else { 5 };

    let reverb = corrfuse_bench::reverb().expect("reverb");
    let sweep = elastic_levels::run(&reverb, "REVERB", max_level, true).expect("reverb sweep");
    println!("{}", sweep.render());

    let restaurant = corrfuse_bench::restaurant().expect("restaurant");
    let sweep =
        elastic_levels::run(&restaurant, "RESTAURANT", max_level, true).expect("restaurant sweep");
    println!("{}", sweep.render());

    // BOOK: clusters up to 22 sources make the exact solver infeasible
    // here; the sweep stops at the highest practical level (cf. paper
    // Figure 5b where exact BOOK took ~2h on EC2).
    let book = corrfuse_bench::book_small().expect("book");
    let sweep = elastic_levels::run(&book, "BOOK(small)", 3, false).expect("book sweep");
    println!("{}", sweep.render());
}
