//! Regenerates Figure 7: synthetic correlated-source scenarios.

use corrfuse_eval::experiments::synthetic;

fn main() {
    corrfuse_bench::banner("Figure 7: synthetic data, correlated sources");
    let reps = corrfuse_bench::sweep_reps();
    let seed = corrfuse_bench::seeds::SYNTH + 7;
    println!("(F1 averaged over {reps} repetitions)");
    println!("{}", synthetic::fig7(reps, seed).expect("fig7").render());
}
