//! Regenerates Figure 1b, Figure 1c and the worked examples (FIG1 in
//! DESIGN.md).

fn main() {
    corrfuse_bench::banner("Figure 1: motivating example (Barack Obama extractions)");
    let result = corrfuse_eval::experiments::fig1::run().expect("figure 1 experiment");
    println!("{}", result.render());
}
