//! Regenerates Figure 6a/6b/6c: synthetic independent-source sweeps.

use corrfuse_eval::experiments::synthetic;

fn main() {
    corrfuse_bench::banner("Figure 6: synthetic data, independent sources");
    let reps = corrfuse_bench::sweep_reps();
    let seed = corrfuse_bench::seeds::SYNTH;
    println!("(F1 averaged over {reps} repetitions)");
    println!("{}", synthetic::fig6a(reps, seed).expect("fig6a").render());
    println!("{}", synthetic::fig6b(reps, seed).expect("fig6b").render());
    println!("{}", synthetic::fig6c(reps, seed).expect("fig6c").render());
}
