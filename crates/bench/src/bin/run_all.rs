//! Runs every experiment binary's workload in sequence — the one-shot
//! regeneration of all paper tables and figures. Expect minutes of wall
//! time in the default configuration; set CORRFUSE_QUICK=1 for a smoke run.

use corrfuse_core::cluster::ClusterConfig;
use corrfuse_eval::experiments::{
    book_copy, discovery, elastic_levels, fig1, realworld, runtime, synthetic,
};
use corrfuse_eval::{evaluate_method, MethodSpec};

fn main() {
    let t0 = std::time::Instant::now();

    corrfuse_bench::banner("FIG1: motivating example");
    println!("{}", fig1::run().expect("fig1").render());

    let reverb = corrfuse_bench::reverb().expect("reverb");
    let restaurant = corrfuse_bench::restaurant().expect("restaurant");
    let book = if corrfuse_bench::quick() {
        corrfuse_bench::book_small().expect("book")
    } else {
        corrfuse_bench::book().expect("book")
    };

    corrfuse_bench::banner("FIG4: real-world replicas");
    for (name, ds, corr) in [
        ("REVERB", &reverb, MethodSpec::PrecRecCorr),
        ("RESTAURANT", &restaurant, MethodSpec::PrecRecCorr),
        ("BOOK", &book, MethodSpec::PrecRecCorr),
    ] {
        println!("dataset: {}", ds.stats());
        println!("{}", realworld::run(ds, name, corr).expect(name).render());
    }

    corrfuse_bench::banner("FIG5a: elastic levels");
    let max_level = if corrfuse_bench::quick() { 2 } else { 4 };
    println!(
        "{}",
        elastic_levels::run(&reverb, "REVERB", max_level, true)
            .expect("fig5a reverb")
            .render()
    );
    println!(
        "{}",
        elastic_levels::run(&restaurant, "RESTAURANT", max_level, true)
            .expect("fig5a restaurant")
            .render()
    );

    corrfuse_bench::banner("FIG5b: runtimes");
    let datasets = [
        ("REVERB", &reverb),
        ("RESTAURANT", &restaurant),
        ("BOOK", &book),
    ];
    let methods = [
        MethodSpec::Union(25.0),
        MethodSpec::Union(50.0),
        MethodSpec::Union(75.0),
        MethodSpec::ThreeEstimates,
        MethodSpec::ltm_default(),
        MethodSpec::PrecRec,
        MethodSpec::PrecRecCorr,
        MethodSpec::Elastic(3),
    ];
    // With per-book scopes the exact solver is feasible on BOOK too.
    let skip: [(&str, &str); 0] = [];
    println!(
        "{}",
        runtime::run(&datasets, &methods, &skip)
            .expect("fig5b")
            .render()
    );

    corrfuse_bench::banner("FIG6 + FIG7: synthetic sweeps");
    let reps = corrfuse_bench::sweep_reps();
    let seed = corrfuse_bench::seeds::SYNTH;
    println!("(F1 averaged over {reps} repetitions)");
    println!("{}", synthetic::fig6a(reps, seed).expect("fig6a").render());
    println!("{}", synthetic::fig6b(reps, seed).expect("fig6b").render());
    println!("{}", synthetic::fig6c(reps, seed).expect("fig6c").render());
    println!(
        "{}",
        synthetic::fig7(reps, seed + 7).expect("fig7").render()
    );

    corrfuse_bench::banner("TBL-CORR: discovered correlations");
    let cfg = ClusterConfig::default();
    println!(
        "{}",
        discovery::run(&reverb, "REVERB", 8, &cfg)
            .expect("disc")
            .render()
    );
    println!(
        "{}",
        discovery::run(&restaurant, "RESTAURANT", 8, &cfg)
            .expect("disc")
            .render()
    );
    println!(
        "{}",
        discovery::run(&book, "BOOK", 12, &cfg)
            .expect("disc")
            .render()
    );

    corrfuse_bench::banner("BOOK-COPY: ACCU / ACCUCOPY");
    let mut extra = Vec::new();
    for spec in [MethodSpec::PrecRec, MethodSpec::Elastic(3)] {
        let rep = evaluate_method(&book, &spec).expect("fusion baseline");
        extra.push((rep.name, rep.prf));
    }
    println!(
        "{}",
        book_copy::run(&book, extra).expect("book copy").render()
    );

    println!("\ntotal wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
