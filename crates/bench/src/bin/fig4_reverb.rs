//! Regenerates Figure 4a: the REVERB comparison (FIG4A in DESIGN.md).

use corrfuse_eval::experiments::realworld;
use corrfuse_eval::MethodSpec;

fn main() {
    corrfuse_bench::banner("Figure 4a: REVERB replica");
    let ds = corrfuse_bench::reverb().expect("reverb replica");
    println!("dataset: {}", ds.stats());
    let res = realworld::run(&ds, "REVERB", MethodSpec::PrecRecCorr).expect("figure 4a");
    println!("{}", res.render());
}
