//! Regenerates Figure 4c: the BOOK comparison (FIG4C in DESIGN.md).
//!
//! BOOK has hundreds of sources, so PrecRecCorr runs with correlation
//! clustering and the level-3 elastic approximation standing in for the
//! exact solution (the paper's Figure 5 shows level-3 matches exact).

use corrfuse_eval::experiments::realworld;
use corrfuse_eval::MethodSpec;

fn main() {
    corrfuse_bench::banner("Figure 4c: BOOK replica");
    let ds = if corrfuse_bench::quick() {
        corrfuse_bench::book_small().expect("book replica")
    } else {
        corrfuse_bench::book().expect("book replica")
    };
    println!("dataset: {}", ds.stats());
    let corr = if corrfuse_bench::quick() {
        MethodSpec::Elastic(3)
    } else {
        // With per-book scopes, each triple's active cluster members are
        // only the sellers covering that book, so the exact solver's
        // complement stays small and Theorem 4.2 is feasible even here.
        MethodSpec::PrecRecCorr
    };
    let res = realworld::run(&ds, "BOOK", corr).expect("figure 4c");
    println!("{}", res.render());
}
