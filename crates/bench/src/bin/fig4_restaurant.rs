//! Regenerates Figure 4b: the RESTAURANT comparison (FIG4B in DESIGN.md).

use corrfuse_eval::experiments::realworld;
use corrfuse_eval::MethodSpec;

fn main() {
    corrfuse_bench::banner("Figure 4b: RESTAURANT replica");
    let ds = corrfuse_bench::restaurant().expect("restaurant replica");
    println!("dataset: {}", ds.stats());
    let res = realworld::run(&ds, "RESTAURANT", MethodSpec::PrecRecCorr).expect("figure 4b");
    println!("{}", res.render());
}
