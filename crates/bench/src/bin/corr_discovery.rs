//! Regenerates the §5.1 "Discovered correlations" analysis (TBL-CORR).

use corrfuse_core::cluster::ClusterConfig;
use corrfuse_eval::experiments::discovery;

fn main() {
    corrfuse_bench::banner("Discovered correlations (paper section 5.1)");
    let cfg = ClusterConfig::default();

    let reverb = corrfuse_bench::reverb().expect("reverb");
    println!(
        "{}",
        discovery::run(&reverb, "REVERB", 8, &cfg)
            .expect("reverb")
            .render()
    );

    let restaurant = corrfuse_bench::restaurant().expect("restaurant");
    println!(
        "{}",
        discovery::run(&restaurant, "RESTAURANT", 8, &cfg)
            .expect("restaurant")
            .render()
    );

    let book = if corrfuse_bench::quick() {
        corrfuse_bench::book_small().expect("book")
    } else {
        corrfuse_bench::book().expect("book")
    };
    println!(
        "{}",
        discovery::run(&book, "BOOK", 12, &cfg)
            .expect("book")
            .render()
    );
}
