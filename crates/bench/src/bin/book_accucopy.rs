//! Regenerates the §5.1 BOOK comparison with copy detection (BOOK-COPY):
//! ACCU and ACCUCOPY (single-truth, closed world) against PrecRec and
//! PrecRecCorr (elastic level 3) at the author-triple level.

use corrfuse_eval::experiments::book_copy;
use corrfuse_eval::{evaluate_method, MethodSpec};

fn main() {
    corrfuse_bench::banner("BOOK: copy detection (Dong et al. 2009) vs correlation-aware fusion");
    let ds = if corrfuse_bench::quick() {
        corrfuse_bench::book_small().expect("book")
    } else {
        corrfuse_bench::book().expect("book")
    };
    println!("dataset: {}", ds.stats());

    let mut extra = Vec::new();
    for spec in [MethodSpec::PrecRec, MethodSpec::Elastic(3)] {
        let rep = evaluate_method(&ds, &spec).expect("fusion baseline");
        extra.push((rep.name, rep.prf));
    }
    let res = book_copy::run(&ds, extra).expect("book copy comparison");
    println!("{}", res.render());
}
