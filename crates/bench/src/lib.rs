//! # corrfuse-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! | binary | artifact |
//! |--------|----------|
//! | `fig1_motivating` | Figure 1b/1c + worked examples |
//! | `fig4_reverb` / `fig4_restaurant` / `fig4_book` | Figure 4a/b/c |
//! | `fig5_elastic` | Figure 5a |
//! | `fig5_runtime` | Figure 5b |
//! | `fig6_synthetic` | Figure 6a/6b/6c |
//! | `fig7_correlated` | Figure 7 |
//! | `corr_discovery` | §5.1 discovered correlations |
//! | `book_accucopy` | §5.1 ACCU/ACCUCOPY comparison |
//! | `run_all` | everything above, in order |
//!
//! Criterion benches (in `benches/`) measure the runtime side: method
//! costs (Figure 5b), elastic level cost curves, exact-vs-approximation
//! scaling, joint-quality memoisation, and baseline throughput.
//!
//! Set `CORRFUSE_QUICK=1` to shrink repetition counts (CI smoke runs).

use corrfuse_core::dataset::Dataset;
use corrfuse_core::error::Result;

pub mod harness;

/// Fixed seeds so every run regenerates identical replicas.
pub mod seeds {
    /// REVERB replica seed.
    pub const REVERB: u64 = 41;
    /// RESTAURANT replica seed.
    pub const RESTAURANT: u64 = 42;
    /// Synthetic sweep base seed.
    pub const SYNTH: u64 = 4242;
}

/// The REVERB replica used by all benches.
pub fn reverb() -> Result<Dataset> {
    corrfuse_synth::replicas::reverb(seeds::REVERB)
}

/// The RESTAURANT replica used by all benches.
pub fn restaurant() -> Result<Dataset> {
    corrfuse_synth::replicas::restaurant(seeds::RESTAURANT)
}

/// The BOOK replica used by all benches.
pub fn book() -> Result<Dataset> {
    corrfuse_synth::replicas::book_default()
}

/// A reduced BOOK replica for quick runs and criterion benches.
pub fn book_small() -> Result<Dataset> {
    corrfuse_synth::replicas::book(&corrfuse_synth::replicas::BookConfig {
        n_books: 80,
        n_sources: 120,
        ..Default::default()
    })
}

/// Repetition count for synthetic sweeps: 10 (the paper's setting) unless
/// `CORRFUSE_QUICK` is set.
pub fn sweep_reps() -> usize {
    if quick() {
        2
    } else {
        10
    }
}

/// Is quick mode enabled?
pub fn quick() -> bool {
    std::env::var("CORRFUSE_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_build() {
        assert_eq!(reverb().unwrap().n_sources(), 6);
        assert_eq!(restaurant().unwrap().n_sources(), 7);
        assert_eq!(book_small().unwrap().n_sources(), 120);
    }

    #[test]
    fn quick_mode_reduces_reps() {
        // Not set in the test environment by default.
        if !quick() {
            assert_eq!(sweep_reps(), 10);
        }
    }
}
