//! Ingest events and the append-only [`DeltaLog`].

use corrfuse_core::dataset::{Domain, SourceId};
use corrfuse_core::triple::{Triple, TripleId};

/// One ingest event against a live session.
///
/// Sources and triples are referenced by the session's dense ids, which
/// are assigned in event order: an [`Event::AddSource`] /
/// [`Event::AddTriple`] for unseen content takes the next free id, while
/// re-registering known content is a no-op (mirroring
/// [`corrfuse_core::DatasetBuilder`]'s interning). This makes a recorded
/// event stream deterministic to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Register a new source by name.
    AddSource {
        /// Source display name (the dataset's dedup key).
        name: String,
    },
    /// Intern a new triple with its domain.
    AddTriple {
        /// The triple content.
        triple: Triple,
        /// Scope domain (use `Domain(0)` for single-domain workloads).
        domain: Domain,
    },
    /// A new claim/provider edge: `source |= triple`.
    Claim {
        /// The claiming source.
        source: SourceId,
        /// The claimed triple.
        triple: TripleId,
    },
    /// Attach (or overwrite) a gold truth label.
    Label {
        /// The labelled triple.
        triple: TripleId,
        /// Its truth value.
        truth: bool,
    },
}

impl Event {
    /// Shorthand for [`Event::AddSource`].
    pub fn add_source(name: impl Into<String>) -> Event {
        Event::AddSource { name: name.into() }
    }

    /// Shorthand for [`Event::AddTriple`] in the default domain.
    pub fn add_triple(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
    ) -> Event {
        Event::add_triple_in(subject, predicate, object, Domain(0))
    }

    /// Shorthand for [`Event::AddTriple`] with an explicit domain.
    pub fn add_triple_in(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
        domain: Domain,
    ) -> Event {
        Event::AddTriple {
            triple: Triple::new(subject, predicate, object),
            domain,
        }
    }

    /// Shorthand for [`Event::Claim`].
    pub fn claim(source: SourceId, triple: TripleId) -> Event {
        Event::Claim { source, triple }
    }

    /// Shorthand for [`Event::Label`].
    pub fn label(triple: TripleId, truth: bool) -> Event {
        Event::Label { triple, truth }
    }
}

/// Append-only in-memory log of every event a session has applied, with
/// batch boundaries preserved so the stream can be replayed with the same
/// micro-batching (and therefore the same refit/re-score cadence).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaLog {
    events: Vec<Event>,
    /// End index (exclusive) into `events` of each batch, ascending.
    batch_ends: Vec<usize>,
}

impl DeltaLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one batch (empty batches are recorded too — they carry no
    /// events but keep replay cadence faithful).
    pub fn push_batch(&mut self, batch: &[Event]) {
        self.events.extend_from_slice(batch);
        self.batch_ends.push(self.events.len());
    }

    /// Total number of events across all batches.
    pub fn n_events(&self) -> usize {
        self.events.len()
    }

    /// Number of batches.
    pub fn n_batches(&self) -> usize {
        self.batch_ends.len()
    }

    /// True when no batch has been recorded.
    pub fn is_empty(&self) -> bool {
        self.batch_ends.is_empty()
    }

    /// All events in application order, batch boundaries elided.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The `i`-th batch.
    pub fn batch(&self, i: usize) -> &[Event] {
        let start = if i == 0 { 0 } else { self.batch_ends[i - 1] };
        &self.events[start..self.batch_ends[i]]
    }

    /// Iterate batches in order.
    pub fn batches(&self) -> impl Iterator<Item = &[Event]> {
        (0..self.n_batches()).map(|i| self.batch(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_preserves_batch_boundaries() {
        let mut log = DeltaLog::new();
        log.push_batch(&[Event::add_source("A"), Event::add_triple("x", "p", "1")]);
        log.push_batch(&[]);
        log.push_batch(&[Event::label(TripleId(0), true)]);
        assert_eq!(log.n_batches(), 3);
        assert_eq!(log.n_events(), 3);
        assert_eq!(log.batch(0).len(), 2);
        assert_eq!(log.batch(1).len(), 0);
        assert_eq!(log.batch(2), &[Event::label(TripleId(0), true)]);
        let sizes: Vec<usize> = log.batches().map(<[Event]>::len).collect();
        assert_eq!(sizes, vec![2, 0, 1]);
        assert!(!log.is_empty());
        assert!(DeltaLog::new().is_empty());
    }

    #[test]
    fn event_constructors() {
        assert_eq!(
            Event::add_triple("x", "p", "1"),
            Event::AddTriple {
                triple: Triple::new("x", "p", "1"),
                domain: Domain(0)
            }
        );
        assert_eq!(
            Event::claim(SourceId(1), TripleId(2)),
            Event::Claim {
                source: SourceId(1),
                triple: TripleId(2)
            }
        );
    }
}
