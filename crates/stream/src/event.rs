//! Ingest events and the append-only [`DeltaLog`].

use corrfuse_core::dataset::{Domain, SourceId};
use corrfuse_core::triple::{Triple, TripleId};

/// One ingest event against a live session.
///
/// Sources and triples are referenced by the session's dense ids, which
/// are assigned in event order: an [`Event::AddSource`] /
/// [`Event::AddTriple`] for unseen content takes the next free id, while
/// re-registering known content is a no-op (mirroring
/// [`corrfuse_core::DatasetBuilder`]'s interning). This makes a recorded
/// event stream deterministic to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Register a new source by name.
    AddSource {
        /// Source display name (the dataset's dedup key).
        name: String,
    },
    /// Intern a new triple with its domain.
    AddTriple {
        /// The triple content.
        triple: Triple,
        /// Scope domain (use `Domain(0)` for single-domain workloads).
        domain: Domain,
    },
    /// A new claim/provider edge: `source |= triple`.
    Claim {
        /// The claiming source.
        source: SourceId,
        /// The claimed triple.
        triple: TripleId,
    },
    /// Attach (or overwrite) a gold truth label.
    Label {
        /// The labelled triple.
        triple: TripleId,
        /// Its truth value.
        truth: bool,
    },
}

impl Event {
    /// Shorthand for [`Event::AddSource`].
    pub fn add_source(name: impl Into<String>) -> Event {
        Event::AddSource { name: name.into() }
    }

    /// Shorthand for [`Event::AddTriple`] in the default domain.
    pub fn add_triple(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
    ) -> Event {
        Event::add_triple_in(subject, predicate, object, Domain(0))
    }

    /// Shorthand for [`Event::AddTriple`] with an explicit domain.
    pub fn add_triple_in(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
        domain: Domain,
    ) -> Event {
        Event::AddTriple {
            triple: Triple::new(subject, predicate, object),
            domain,
        }
    }

    /// Shorthand for [`Event::Claim`].
    pub fn claim(source: SourceId, triple: TripleId) -> Event {
        Event::Claim { source, triple }
    }

    /// Shorthand for [`Event::Label`].
    pub fn label(triple: TripleId, truth: bool) -> Event {
        Event::Label { triple, truth }
    }
}

/// Retention policy for a session's in-memory [`DeltaLog`].
///
/// `KeepAll` preserves the full replayable history in memory; on a
/// long-running session that is an unbounded leak. Once events are
/// durably journaled the in-memory copy is redundant, so bounded
/// retention truncates the oldest batches while the journal remains the
/// replay source of record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogRetention {
    /// Keep every batch (the historical behaviour).
    #[default]
    KeepAll,
    /// Keep only the most recent `n` batches in memory; older batches are
    /// dropped (their counts remain visible through
    /// [`DeltaLog::dropped_batches`] / [`DeltaLog::dropped_events`]).
    LastBatches(usize),
}

/// In-memory log of the events a session has applied, with batch
/// boundaries preserved so the stream can be replayed with the same
/// micro-batching (and therefore the same refit/re-score cadence).
///
/// By default the log is append-only; under a bounded [`LogRetention`]
/// the oldest batches are truncated ([`DeltaLog::retain_last`]), in which
/// case [`DeltaLog::events`] holds only the retained suffix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaLog {
    events: Vec<Event>,
    /// End index (exclusive) into `events` of each retained batch,
    /// ascending.
    batch_ends: Vec<usize>,
    /// Batches truncated by retention.
    dropped_batches: usize,
    /// Events truncated by retention.
    dropped_events: usize,
}

impl DeltaLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one batch (empty batches are recorded too — they carry no
    /// events but keep replay cadence faithful).
    pub fn push_batch(&mut self, batch: &[Event]) {
        self.events.extend_from_slice(batch);
        self.batch_ends.push(self.events.len());
    }

    /// Total number of events across all batches.
    pub fn n_events(&self) -> usize {
        self.events.len()
    }

    /// Number of batches.
    pub fn n_batches(&self) -> usize {
        self.batch_ends.len()
    }

    /// True when no batch has been recorded.
    pub fn is_empty(&self) -> bool {
        self.batch_ends.is_empty()
    }

    /// All events in application order, batch boundaries elided.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The `i`-th batch.
    pub fn batch(&self, i: usize) -> &[Event] {
        let start = if i == 0 { 0 } else { self.batch_ends[i - 1] };
        &self.events[start..self.batch_ends[i]]
    }

    /// Iterate batches in order.
    pub fn batches(&self) -> impl Iterator<Item = &[Event]> {
        (0..self.n_batches()).map(|i| self.batch(i))
    }

    /// Drop the `n` oldest retained batches (saturating). Returns the
    /// number of events dropped.
    pub fn drop_oldest_batches(&mut self, n: usize) -> usize {
        let n = n.min(self.batch_ends.len());
        if n == 0 {
            return 0;
        }
        let cut = self.batch_ends[n - 1];
        self.events.drain(..cut);
        self.batch_ends.drain(..n);
        for end in &mut self.batch_ends {
            *end -= cut;
        }
        self.dropped_batches += n;
        self.dropped_events += cut;
        cut
    }

    /// Apply a retention policy: keep only the most recent `keep`
    /// batches. Returns the number of events dropped.
    pub fn retain_last(&mut self, keep: usize) -> usize {
        self.drop_oldest_batches(self.batch_ends.len().saturating_sub(keep))
    }

    /// Batches truncated by retention since the log was created.
    pub fn dropped_batches(&self) -> usize {
        self.dropped_batches
    }

    /// Events truncated by retention since the log was created.
    pub fn dropped_events(&self) -> usize {
        self.dropped_events
    }

    /// Total batches ever recorded (retained + dropped).
    pub fn total_batches(&self) -> usize {
        self.dropped_batches + self.n_batches()
    }

    /// Total events ever recorded (retained + dropped).
    pub fn total_events(&self) -> usize {
        self.dropped_events + self.n_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_preserves_batch_boundaries() {
        let mut log = DeltaLog::new();
        log.push_batch(&[Event::add_source("A"), Event::add_triple("x", "p", "1")]);
        log.push_batch(&[]);
        log.push_batch(&[Event::label(TripleId(0), true)]);
        assert_eq!(log.n_batches(), 3);
        assert_eq!(log.n_events(), 3);
        assert_eq!(log.batch(0).len(), 2);
        assert_eq!(log.batch(1).len(), 0);
        assert_eq!(log.batch(2), &[Event::label(TripleId(0), true)]);
        let sizes: Vec<usize> = log.batches().map(<[Event]>::len).collect();
        assert_eq!(sizes, vec![2, 0, 1]);
        assert!(!log.is_empty());
        assert!(DeltaLog::new().is_empty());
    }

    #[test]
    fn retention_truncates_oldest_batches() {
        let mut log = DeltaLog::new();
        log.push_batch(&[Event::add_source("A"), Event::add_triple("x", "p", "1")]);
        log.push_batch(&[Event::label(TripleId(0), true)]);
        log.push_batch(&[Event::claim(SourceId(0), TripleId(0))]);
        assert_eq!(log.retain_last(2), 2);
        assert_eq!(log.n_batches(), 2);
        assert_eq!(log.n_events(), 2);
        assert_eq!(log.dropped_batches(), 1);
        assert_eq!(log.dropped_events(), 2);
        assert_eq!(log.total_batches(), 3);
        assert_eq!(log.total_events(), 4);
        // Retained batches re-index from zero.
        assert_eq!(log.batch(0), &[Event::label(TripleId(0), true)]);
        assert_eq!(log.batch(1), &[Event::claim(SourceId(0), TripleId(0))]);
        // Larger keep is a no-op; keep 0 empties the log.
        assert_eq!(log.retain_last(5), 0);
        assert_eq!(log.retain_last(0), 2);
        assert!(log.is_empty());
        assert_eq!(log.total_batches(), 3);
        // Appending after truncation keeps working.
        log.push_batch(&[Event::label(TripleId(0), false)]);
        assert_eq!(log.batch(0), &[Event::label(TripleId(0), false)]);
        assert_eq!(log.drop_oldest_batches(10), 1);
    }

    #[test]
    fn event_constructors() {
        assert_eq!(
            Event::add_triple("x", "p", "1"),
            Event::AddTriple {
                triple: Triple::new("x", "p", "1"),
                domain: Domain(0)
            }
        );
        assert_eq!(
            Event::claim(SourceId(1), TripleId(2)),
            Event::Claim {
                source: SourceId(1),
                triple: TripleId(2)
            }
        );
    }
}
