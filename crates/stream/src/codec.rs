//! The `#corrfuse-journal v1` *event codec*: the line-oriented encoding
//! of [`Event`]s and batch boundaries, factored out of [`crate::journal`]
//! so every transport that carries event batches speaks one dialect.
//!
//! Two consumers share this module:
//!
//! * [`crate::journal`] — the on-disk append-only session history (a
//!   dataset snapshot followed by encoded batches);
//! * `corrfuse-net` — the wire protocol's `INGEST` frame payload is
//!   exactly one encoded batch ([`encode_batch`]), which makes a captured
//!   wire stream *replayable as a journal*: concatenate the payloads
//!   after a snapshot prefix and the result parses as a journal file.
//!
//! The encoding is TSV-per-line, reusing [`corrfuse_core::io::escape`]
//! for field content, with one line per event and a `+B` line closing
//! each batch:
//!
//! ```text
//! +S<TAB>source-name                                  (AddSource)
//! +T<TAB>subject<TAB>predicate<TAB>object<TAB>domain  (AddTriple)
//! +C<TAB>source-index<TAB>triple-index                (Claim)
//! +L<TAB>triple-index<TAB>0|1                         (Label)
//! +B                                                  (batch boundary)
//! ```
//!
//! Every line — including the last — ends in `\n`, so encoded batches
//! concatenate cleanly and a torn append can only damage the final line.
//! Parse errors report the 1-based line number handed in by the caller,
//! so journal files can surface absolute file positions while wire
//! payloads report payload-relative ones.

use corrfuse_core::dataset::{Domain, SourceId};
use corrfuse_core::error::{FusionError, Result};
use corrfuse_core::io::{escape, unescape};
use corrfuse_core::triple::{Triple, TripleId};

use crate::event::Event;

/// The batch-boundary tag (a complete line of its own).
pub const BOUNDARY_TAG: &str = "+B";

/// Serialise one event as a codec line (no trailing newline).
pub fn event_line(ev: &Event) -> String {
    match ev {
        Event::AddSource { name } => {
            let mut out = String::from("+S\t");
            escape(name, &mut out);
            out
        }
        Event::AddTriple { triple, domain } => {
            let mut out = String::from("+T\t");
            escape(&triple.subject, &mut out);
            out.push('\t');
            escape(&triple.predicate, &mut out);
            out.push('\t');
            escape(&triple.object, &mut out);
            out.push('\t');
            out.push_str(&domain.0.to_string());
            out
        }
        Event::Claim { source, triple } => format!("+C\t{}\t{}", source.0, triple.0),
        Event::Label { triple, truth } => {
            format!("+L\t{}\t{}", triple.0, if *truth { 1 } else { 0 })
        }
    }
}

/// Append one encoded batch — its event lines plus the closing `+B`
/// line, every line `\n`-terminated — to `out`.
pub fn write_batch(batch: &[Event], out: &mut String) {
    for ev in batch {
        out.push_str(&event_line(ev));
        out.push('\n');
    }
    out.push_str(BOUNDARY_TAG);
    out.push('\n');
}

/// One encoded batch as a standalone string (the wire payload form).
pub fn encode_batch(batch: &[Event]) -> String {
    let mut out = String::new();
    write_batch(batch, &mut out);
    out
}

/// A decoded codec line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Line {
    /// An event line (`+S` / `+T` / `+C` / `+L`).
    Event(Event),
    /// The `+B` batch boundary.
    Boundary,
}

/// Decode one codec line. `lineno` is the 1-based line number reported
/// in parse errors (journal files pass absolute file positions, wire
/// payloads pass payload-relative ones). Trailing `\r` is tolerated.
pub fn parse_line(raw: &str, lineno: usize) -> Result<Line> {
    let line = raw.trim_end_matches('\r');
    let mut fields = line.split('\t');
    let tag = fields.next().unwrap_or_default();
    match tag {
        BOUNDARY_TAG => Ok(Line::Boundary),
        "+S" => {
            let name = fields.next().ok_or_else(|| FusionError::Parse {
                line: lineno,
                msg: "+S line missing name".to_string(),
            })?;
            Ok(Line::Event(Event::AddSource {
                name: unescape(name, lineno)?,
            }))
        }
        "+T" => {
            let mut next = |what: &str| -> Result<String> {
                fields
                    .next()
                    .ok_or_else(|| FusionError::Parse {
                        line: lineno,
                        msg: format!("+T line missing {what}"),
                    })
                    .and_then(|f| unescape(f, lineno))
            };
            let subject = next("subject")?;
            let predicate = next("predicate")?;
            let object = next("object")?;
            let domain: u32 = next("domain")?.parse().map_err(|_| FusionError::Parse {
                line: lineno,
                msg: "+T line needs a numeric domain".to_string(),
            })?;
            Ok(Line::Event(Event::AddTriple {
                triple: Triple::new(subject, predicate, object),
                domain: Domain(domain),
            }))
        }
        "+C" => {
            let s = index_field(&mut fields, "+C", "source index", lineno)?;
            let t = index_field(&mut fields, "+C", "triple index", lineno)?;
            Ok(Line::Event(Event::Claim {
                source: SourceId(s),
                triple: TripleId(t),
            }))
        }
        "+L" => {
            let t: u32 = index_field(&mut fields, "+L", "triple index", lineno)?;
            let truth = match fields.next() {
                Some("1") => true,
                Some("0") => false,
                other => {
                    return Err(FusionError::Parse {
                        line: lineno,
                        msg: format!(
                            "+L label must be 0 or 1, got `{}`",
                            other.unwrap_or_default()
                        ),
                    })
                }
            };
            Ok(Line::Event(Event::Label {
                triple: TripleId(t),
                truth,
            }))
        }
        other => Err(FusionError::Parse {
            line: lineno,
            msg: format!("unknown journal tag `{other}`"),
        }),
    }
}

/// Decoded batches plus whether the final run of events was left open
/// (no closing `+B`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedBatches {
    /// The decoded batches, in order. A trailing run without `+B` is
    /// included as the final (partial) batch.
    pub batches: Vec<Vec<Event>>,
    /// True when the final batch had no closing boundary (a crash
    /// mid-append, or a truncated wire payload).
    pub open_tail: bool,
}

/// Decode a sequence of `(1-based lineno, raw line)` pairs into batches.
/// Blank lines and `#`-comments are skipped, mirroring the journal's
/// event section. This is the shared walk behind [`crate::journal::parse`]
/// and the wire decoder ([`parse_batches`]).
pub fn parse_batch_lines<'a>(
    lines: impl Iterator<Item = (usize, &'a str)>,
) -> Result<ParsedBatches> {
    let mut batches: Vec<Vec<Event>> = Vec::new();
    let mut current: Vec<Event> = Vec::new();
    let mut open = false;
    for (lineno, raw) in lines {
        let line = raw.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_line(line, lineno)? {
            Line::Boundary => {
                batches.push(std::mem::take(&mut current));
                open = false;
            }
            Line::Event(ev) => {
                current.push(ev);
                open = true;
            }
        }
    }
    if open {
        batches.push(current);
    }
    Ok(ParsedBatches {
        batches,
        open_tail: open,
    })
}

/// Decode standalone codec text (e.g. a wire payload) into batches.
/// Line numbers in errors are relative to `text` (1-based).
pub fn parse_batches(text: &str) -> Result<ParsedBatches> {
    parse_batch_lines(text.lines().enumerate().map(|(i, l)| (i + 1, l)))
}

fn index_field<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    tag: &str,
    what: &str,
    lineno: usize,
) -> Result<u32> {
    fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| FusionError::Parse {
            line: lineno,
            msg: format!("{tag} line needs a {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event::add_source("A\twith tab"),
            Event::add_triple_in("x\ny", "p", "1", Domain(3)),
            Event::claim(SourceId(0), TripleId(7)),
            Event::label(TripleId(7), true),
        ]
    }

    #[test]
    fn batch_roundtrip_preserves_events() {
        let text = encode_batch(&sample());
        assert!(text.ends_with("+B\n"), "batches are self-terminating");
        let parsed = parse_batches(&text).unwrap();
        assert_eq!(parsed.batches, vec![sample()]);
        assert!(!parsed.open_tail);
    }

    #[test]
    fn concatenated_batches_parse_in_order() {
        let mut text = encode_batch(&sample());
        text.push_str(&encode_batch(&[Event::label(TripleId(0), false)]));
        let parsed = parse_batches(&text).unwrap();
        assert_eq!(parsed.batches.len(), 2);
        assert_eq!(parsed.batches[1], vec![Event::label(TripleId(0), false)]);
    }

    #[test]
    fn open_tail_is_reported() {
        let parsed = parse_batches("+C\t0\t0\n").unwrap();
        assert!(parsed.open_tail);
        assert_eq!(
            parsed.batches,
            vec![vec![Event::claim(SourceId(0), TripleId(0))]]
        );
        // An empty closed batch is just the boundary.
        let parsed = parse_batches("+B\n").unwrap();
        assert!(!parsed.open_tail);
        assert_eq!(parsed.batches, vec![Vec::new()]);
    }

    #[test]
    fn errors_carry_the_caller_lineno() {
        match parse_line("+L\t0\t7", 42).unwrap_err() {
            FusionError::Parse { line, msg } => {
                assert_eq!(line, 42);
                assert!(msg.contains("0 or 1"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse_line("+X\tboom", 1).is_err());
        assert!(parse_line("+S", 1).is_err());
        assert!(parse_line("+T\ta\tb", 1).is_err());
        assert!(parse_line("+T\ta\tb\tc\tnot-a-number", 1).is_err());
        assert!(parse_line("+C\t1", 1).is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let parsed = parse_batches("# comment\n\n+C\t0\t0\n+B\n").unwrap();
        assert_eq!(parsed.batches.len(), 1);
    }
}
