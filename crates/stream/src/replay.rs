//! Reference semantics: rebuild the accumulated dataset from a seed plus
//! an event stream through the ordinary [`DatasetBuilder`].
//!
//! This is the specification the incremental path is tested against: for
//! any seed and replayable event sequence,
//! `Fuser::fit(accumulate(seed, events))` must score bitwise identically
//! to an [`crate::IncrementalFuser`] that ingested the same events. The
//! builder route is O(dataset) — it exists for verification, snapshot
//! compaction, and offline reprocessing, not for serving.
//!
//! One documented divergence: explicit scope *overrides* on the seed are
//! not replayed (there is no override event), so `accumulate` reproduces
//! the builder's default provision-inferred scopes.

use corrfuse_core::dataset::{Dataset, DatasetBuilder};
use corrfuse_core::error::Result;

use crate::event::Event;

/// Rebuild the dataset a seed plus `events` accumulates to.
///
/// Sources and triples re-register in id order, so every id embedded in
/// `events` resolves to the same entity it named in the live session.
pub fn accumulate(seed: &Dataset, events: &[Event]) -> Result<Dataset> {
    let mut b = DatasetBuilder::new();
    for s in seed.sources() {
        b.source(seed.source_name(s));
    }
    for t in seed.triples() {
        let triple = seed.triple(t);
        let id = b.triple(
            triple.subject.clone(),
            triple.predicate.clone(),
            triple.object.clone(),
        );
        debug_assert_eq!(id, t, "seed triples must re-register in id order");
        b.set_domain(id, seed.domain(t));
        if let Some(truth) = seed.gold().and_then(|g| g.get(t)) {
            b.label(id, truth);
        }
    }
    for s in seed.sources() {
        for &t in seed.output(s) {
            b.observe(s, t);
        }
    }
    let mut n_triples = seed.n_triples();
    for ev in events {
        match ev {
            Event::AddSource { name } => {
                b.source(name.clone());
            }
            Event::AddTriple { triple, domain } => {
                let id = b.triple(
                    triple.subject.clone(),
                    triple.predicate.clone(),
                    triple.object.clone(),
                );
                // Mirror `Dataset::add_triple`: re-interning an existing
                // triple leaves its domain unchanged.
                if id.index() >= n_triples {
                    n_triples += 1;
                    b.set_domain(id, *domain);
                }
            }
            Event::Claim { source, triple } => b.observe(*source, *triple),
            Event::Label { triple, truth } => b.label(*triple, *truth),
        }
    }
    b.build()
}
