//! [`IncrementalFuser`]: apply ingest deltas to a fitted model and
//! re-score only what changed.
//!
//! # How a batch is absorbed
//!
//! The fitted state of a [`Fuser`] factors into three layers with very
//! different update costs, and each event type dirties the cheapest layer
//! that covers it:
//!
//! 1. **Nothing** — a claim on an *unlabelled* triple changes no
//!    estimator count and no joint row. Only that triple's own posterior
//!    moves: re-score it, done. This is the dominant event type in a
//!    stream and the fast path the whole subsystem exists for.
//! 2. **Quality model** — a label (or a claim touching a labelled
//!    triple) shifts per-source counts and per-cluster joint rows. The
//!    estimator's counts are maintained incrementally, so the refresh is
//!    O(sources) for the PrecRec model plus O(changed rows) for the
//!    joints — their memo caches are invalidated per cluster, not
//!    rebuilt — and every triple is re-scored *through the pattern
//!    cache* (each distinct `(domain, providers)` pattern once).
//! 3. **Clustering** — under data-driven clustering (`Auto` over more
//!    sources than the cluster cap) a label or scope change can move the
//!    pairwise lifts enough to re-partition the sources. The lift-graph
//!    counts are maintained incrementally
//!    ([`corrfuse_core::cluster::LiftGraph`]); when the re-derived
//!    partition actually differs, only the clusters whose membership
//!    changed are refitted ([`Fuser::reconcile_clustering`]) — unchanged
//!    clusters keep their incrementally-maintained joints.
//! 4. **Everything** — a new source changes model dimensionality (and
//!    the pair universe of the lift graph), so the incremental path
//!    falls back to a full [`Fuser::fit`].
//!
//! # Equivalence invariant
//!
//! Every maintained count is an integer and every refreshed parameter is
//! recomputed by the same floating-point expressions `Fuser::fit` uses
//! ([`quality_from_counts`], [`Fuser::refresh_quality`],
//! [`Fuser::rebuild_cluster_solvers`]), so after any batch the scores are
//! **bitwise identical** to a from-scratch fit on the accumulated
//! dataset. `tests/streaming_equivalence.rs` enforces this property over
//! random event streams.
//!
//! # Scope semantics
//!
//! New claims extend a source's scope by provision, exactly like
//! [`corrfuse_core::DatasetBuilder`]'s default inference. Seeds that used
//! explicit scope *overrides* keep them for their original domains, but a
//! source claiming into a brand-new domain still joins that domain's
//! scope — there is no override event.

use std::collections::{BTreeSet, HashMap};

use corrfuse_core::cluster::{Clustering, LiftGraph, LiftGraphStats};
use corrfuse_core::dataset::{Dataset, Domain, SourceId};
use corrfuse_core::engine::ScoringEngine;
use corrfuse_core::error::{FusionError, Result};
use corrfuse_core::fuser::{ClusterReconcile, ClusterStrategy, Fuser, FuserConfig};
use corrfuse_core::joint::{CacheStats, JointDeltaStats};
use corrfuse_core::quality::{quality_from_counts, SourceQuality};
use corrfuse_core::triple::TripleId;
use corrfuse_obs::Span;

use crate::cache::{ScoreCache, ScoreKey};
use crate::event::Event;

/// How much of the fitted model one batch forced to be rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RefitLevel {
    /// Claims on unlabelled triples only: the model is untouched and only
    /// the touched triples (plus any re-scoped domain) were re-scored.
    None,
    /// Per-source counts or joint rows changed: quality model and solvers
    /// were refreshed from maintained counters and all triples re-scored
    /// through the pattern cache.
    Model,
    /// The pairwise lifts moved enough to change the data-driven
    /// clustering: the partition was re-derived from the maintained
    /// lift-graph counts and only clusters whose membership changed were
    /// refitted (the rest keep their incrementally-maintained joints);
    /// quality model refreshed and all triples re-scored through the
    /// pattern cache.
    Cluster,
    /// The source set changed: full `Fuser::fit` fallback.
    Full,
}

/// One re-scored triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredTriple {
    /// The triple.
    pub triple: TripleId,
    /// Its score before the batch; `None` for triples new in this batch.
    pub before: Option<f64>,
    /// Its score after the batch.
    pub after: f64,
}

/// Per-stage wall-clock breakdown of one ingest, collected only when
/// [`FuserConfig::spans`] is on (see `docs/OBSERVABILITY.md` for the
/// stage map). Stages don't sum to the outcome's `elapsed_ns`: event
/// application and bookkeeping run between them untimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Lift-sketch admission / candidate rescan time.
    pub sketch_ns: u64,
    /// Model/cluster/full refit time (0 on a [`RefitLevel::None`] batch).
    pub refit_ns: u64,
    /// Re-scoring time through the engine.
    pub rescore_ns: u64,
}

/// What one [`IncrementalFuser::ingest`] call did.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// The refit level the batch forced.
    pub refit: RefitLevel,
    /// Every triple whose score was recomputed, with before/after values.
    pub rescored: Vec<ScoredTriple>,
    /// Score-cache hits/misses attributable to this batch.
    pub cache: CacheStats,
    /// On a [`RefitLevel::Cluster`] batch, how many cluster units were
    /// reused vs. refitted by the re-clustering.
    pub reconcile: Option<ClusterReconcile>,
    /// End-to-end ingest time in nanoseconds. Always measured — two
    /// clock reads per batch — so callers can attribute slow ingests to
    /// their [`RefitLevel`] without enabling full tracing.
    pub elapsed_ns: u64,
    /// Per-stage breakdown; `Some` only when [`FuserConfig::spans`] is
    /// enabled.
    pub stages: Option<StageTimings>,
}

/// Dirt accumulated while applying one batch of events.
#[derive(Debug, Default)]
struct Dirt {
    /// Triples whose own observation pattern changed.
    touched: BTreeSet<TripleId>,
    /// Domains whose scope mask changed (a source's scope expanded).
    rescoped: BTreeSet<Domain>,
    /// Quality counts or joint rows changed.
    model: bool,
    /// Source set changed.
    full: bool,
    /// Triples introduced by this batch (must end it with >= 1 claim).
    new_triples: Vec<TripleId>,
}

/// A [`Fuser`] that stays fitted under ingest deltas. See module docs.
#[derive(Debug)]
pub struct IncrementalFuser {
    config: FuserConfig,
    ds: Dataset,
    fuser: Fuser,
    /// Per-source estimator counts (see [`quality_from_counts`]).
    tp: Vec<usize>,
    fp: Vec<usize>,
    scope_true: Vec<usize>,
    /// Gold totals for the empirical prior.
    n_true: usize,
    n_false: usize,
    /// Joint-row index of each labelled triple (rows are shared across
    /// clusters: every cluster's `EmpiricalJoint` stores the same
    /// labelled triples in the same order).
    row_of: HashMap<TripleId, usize>,
    /// The labelled triples in row (label-arrival) order — the inverse of
    /// `row_of`, handed to `Fuser::reconcile_clustering` so freshly built
    /// cluster joints keep consistent row indices.
    labelled_order: Vec<(TripleId, bool)>,
    /// Maintained pairwise-lift counts; `Some` exactly when the
    /// clustering is data-driven (`Auto` over more sources than the
    /// cluster cap), rebuilt whenever the full-refit path runs.
    lift: Option<LiftGraph>,
    /// Per-domain triple index, for scope-expansion invalidation.
    triples_by_domain: HashMap<Domain, Vec<TripleId>>,
    labelled_by_domain: HashMap<Domain, Vec<TripleId>>,
    true_by_domain: HashMap<Domain, usize>,
    /// Current posterior per triple.
    scores: Vec<f64>,
    cache: ScoreCache,
}

impl IncrementalFuser {
    /// Fit on a seed snapshot (which must carry gold labels — the paper's
    /// training protocol) and score every triple once.
    pub fn fit(config: FuserConfig, seed: Dataset, engine: &ScoringEngine) -> Result<Self> {
        let gold = seed.require_gold()?.clone();
        let fuser = Fuser::fit(&config, &seed, &gold)?;
        let mut inc = IncrementalFuser {
            config,
            scores: vec![f64::NAN; seed.n_triples()],
            ds: seed,
            fuser,
            tp: Vec::new(),
            fp: Vec::new(),
            scope_true: Vec::new(),
            n_true: 0,
            n_false: 0,
            row_of: HashMap::new(),
            labelled_order: Vec::new(),
            lift: None,
            triples_by_domain: HashMap::new(),
            labelled_by_domain: HashMap::new(),
            true_by_domain: HashMap::new(),
            cache: ScoreCache::new(),
        };
        inc.rebuild_index_state();
        let all: Vec<TripleId> = inc.ds.triples().collect();
        inc.rescore(&all, engine)?;
        Ok(inc)
    }

    /// The accumulated dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// The currently fitted model.
    pub fn fuser(&self) -> &Fuser {
        &self.fuser
    }

    /// The fit configuration.
    pub fn config(&self) -> &FuserConfig {
        &self.config
    }

    /// Current posterior per triple, in [`TripleId`] order.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Cumulative score-cache counters.
    pub fn score_cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cumulative joint-rate memo counters, aggregated over all cluster
    /// joints of the current model.
    pub fn joint_cache_stats(&self) -> CacheStats {
        (0..self.fuser.n_cluster_units())
            .filter_map(|i| self.fuser.cluster_joint(i))
            .fold(CacheStats::default(), |acc, j| acc.merged(j.cache_stats()))
    }

    /// Cumulative incremental-maintenance counters (row deltas absorbed
    /// in place vs. full rescans), aggregated over all cluster joints of
    /// the current model. Counters restart when a full refit rebuilds the
    /// joints.
    pub fn joint_delta_stats(&self) -> JointDeltaStats {
        (0..self.fuser.n_cluster_units())
            .filter_map(|i| self.fuser.cluster_joint(i))
            .fold(JointDeltaStats::default(), |acc, j| {
                acc.merged(j.delta_stats())
            })
    }

    /// Lift-graph occupancy counters (exact pairs tracked, pairs the
    /// sketch tier declined to admit). Zero when clustering is not
    /// data-driven — there is no maintained lift graph then.
    pub fn lift_stats(&self) -> LiftGraphStats {
        self.lift.as_ref().map(LiftGraph::stats).unwrap_or_default()
    }

    /// Apply one batch of events, refresh exactly the dirtied model
    /// layers, and re-score the dirtied triples through `engine`.
    ///
    /// # Atomicity
    ///
    /// The batch is validated up front ([`Self::validate_batch`]), so
    /// input errors — unknown source/triple ids, a new triple without a
    /// claim — are reported *before* any state mutates: an `Err` from bad
    /// input leaves the session exactly as it was. Errors arising later,
    /// in the model-refresh stage (e.g. a degenerate empirical prior
    /// after a relabel), surface after the dataset has already absorbed
    /// the batch; treat the session as poisoned then and rebuild it from
    /// the journal or a snapshot.
    pub fn ingest(&mut self, batch: &[Event], engine: &ScoringEngine) -> Result<IngestOutcome> {
        let spans = self.config.spans;
        let total_span = Span::start(true);
        self.validate_batch(batch)?;
        let stats_before = self.cache.stats();
        let dirt = self.apply(batch)?;
        // Under data-driven clustering, re-derive the partition from the
        // maintained lift counts — but only when a count actually moved,
        // and refit only if the partition differs. (Scope expansions can
        // move pair counts without dirtying the quality model, so this
        // check is independent of `dirt.model`.)
        let sketch_span = Span::start(spans);
        let mut new_clustering: Option<Clustering> = None;
        if !dirt.full {
            if let Some(lift) = &mut self.lift {
                if lift.take_changed() {
                    lift.admit_candidates(&self.ds);
                    let derived = lift.clustering();
                    if derived != *self.fuser.clustering() {
                        new_clustering = Some(derived);
                    }
                }
            }
        }
        let sketch_ns = sketch_span.elapsed_ns();
        let refit = if dirt.full {
            RefitLevel::Full
        } else if new_clustering.is_some() {
            RefitLevel::Cluster
        } else if dirt.model {
            RefitLevel::Model
        } else {
            RefitLevel::None
        };
        let mut reconcile = None;
        let refit_span = Span::start(spans);
        match refit {
            RefitLevel::Full => {
                let gold = self.ds.require_gold()?.clone();
                self.fuser = Fuser::fit(&self.config, &self.ds, &gold)?;
                self.rebuild_index_state();
                self.cache.flush();
            }
            RefitLevel::Cluster => {
                self.refresh_quality()?;
                let derived = new_clustering
                    .take()
                    .expect("cluster refit has a partition");
                reconcile = Some(self.fuser.reconcile_clustering(
                    &self.ds,
                    derived,
                    &self.labelled_order,
                )?);
                self.fuser.rebuild_cluster_solvers();
                self.cache.flush();
            }
            RefitLevel::Model => {
                self.refresh_quality()?;
                self.fuser.rebuild_cluster_solvers();
                self.cache.flush();
            }
            RefitLevel::None => {
                for &d in &dirt.rescoped {
                    self.cache.invalidate_domain(d);
                }
            }
        }
        let refit_ns = refit_span.elapsed_ns();
        let rescore_span = Span::start(spans);
        let rescored = match refit {
            RefitLevel::None => {
                let dirty: Vec<TripleId> = dirt.touched.iter().copied().collect();
                self.rescore(&dirty, engine)?
            }
            _ => {
                let all: Vec<TripleId> = self.ds.triples().collect();
                self.rescore(&all, engine)?
            }
        };
        let rescore_ns = rescore_span.elapsed_ns();
        let stats_after = self.cache.stats();
        Ok(IngestOutcome {
            refit,
            rescored,
            cache: CacheStats {
                hits: stats_after.hits - stats_before.hits,
                misses: stats_after.misses - stats_before.misses,
            },
            reconcile,
            elapsed_ns: total_span.elapsed_ns(),
            stages: spans.then_some(StageTimings {
                sketch_ns,
                refit_ns,
                rescore_ns,
            }),
        })
    }

    /// Refresh the PrecRec model and every cluster joint's prior from the
    /// maintained per-source counts, exactly as `Fuser::fit` would
    /// recompute them.
    fn refresh_quality(&mut self) -> Result<()> {
        let qualities: Vec<SourceQuality> = (0..self.ds.n_sources())
            .map(|s| quality_from_counts(self.tp[s], self.fp[s], self.scope_true[s], 0.0))
            .collect();
        let alpha = self.alpha_now()?;
        self.fuser.refresh_quality(qualities, alpha)
    }

    /// Is the clustering derived from the labelled data itself? `Auto`
    /// over more sources than the cluster cap re-clusters on lift
    /// changes, so such sessions maintain a [`LiftGraph`] and reconcile
    /// the partition whenever its counts move.
    fn clustering_is_data_driven(&self) -> bool {
        matches!(self.config.strategy, ClusterStrategy::Auto)
            && self.config.method.uses_correlations()
            && self.ds.n_sources() > self.config.cluster.max_cluster_size.min(64)
    }

    /// The prior `Fuser::fit` would use right now.
    fn alpha_now(&self) -> Result<f64> {
        match self.config.alpha {
            Some(a) => Ok(a),
            // Mirrors `GoldLabels::empirical_alpha` on maintained totals.
            None if self.n_true == 0 => Err(FusionError::DegenerateTraining("true")),
            None if self.n_false == 0 => Err(FusionError::DegenerateTraining("false")),
            None => Ok(self.n_true as f64 / (self.n_true + self.n_false) as f64),
        }
    }

    /// Recompute every maintained index from the dataset (initial fit and
    /// full-refit fallback).
    fn rebuild_index_state(&mut self) {
        let n = self.ds.n_sources();
        self.tp = vec![0; n];
        self.fp = vec![0; n];
        self.scope_true = vec![0; n];
        self.n_true = 0;
        self.n_false = 0;
        self.row_of.clear();
        self.labelled_order.clear();
        self.lift = None;
        self.triples_by_domain.clear();
        self.labelled_by_domain.clear();
        self.true_by_domain.clear();
        let triples: Vec<TripleId> = self.ds.triples().collect();
        for &t in &triples {
            self.triples_by_domain
                .entry(self.ds.domain(t))
                .or_default()
                .push(t);
        }
        let Some(gold) = self.ds.gold().cloned() else {
            return;
        };
        for (row, (t, truth)) in gold.iter_labelled().enumerate() {
            self.row_of.insert(t, row);
            self.labelled_order.push((t, truth));
            let d = self.ds.domain(t);
            self.labelled_by_domain.entry(d).or_default().push(t);
            if truth {
                *self.true_by_domain.entry(d).or_default() += 1;
            }
            self.count_label(t, truth, 1);
        }
        if self.clustering_is_data_driven() {
            self.lift = Some(LiftGraph::build(&self.ds, &gold, &self.config.cluster));
        }
    }

    /// Reject a batch before touching any state: every referenced id must
    /// resolve (counting the sources/triples the batch itself introduces)
    /// and every introduced triple must be claimed within the batch (the
    /// builder invariant: no triple without an observation set). After
    /// this passes, [`Self::apply`] cannot fail on input.
    fn validate_batch(&self, batch: &[Event]) -> Result<()> {
        let mut n_sources = self.ds.n_sources();
        let mut n_triples = self.ds.n_triples();
        let mut new_names: Vec<&str> = Vec::new();
        let mut new_triples: Vec<(usize, &corrfuse_core::Triple)> = Vec::new();
        let mut claimed: BTreeSet<usize> = BTreeSet::new();
        for ev in batch {
            match ev {
                Event::AddSource { name } => {
                    if self.ds.source_by_name(name).is_none() && !new_names.contains(&name.as_str())
                    {
                        new_names.push(name);
                        n_sources += 1;
                    }
                }
                Event::AddTriple { triple, .. } => {
                    if self.ds.triple_id(triple).is_none()
                        && !new_triples.iter().any(|(_, t)| *t == triple)
                    {
                        new_triples.push((n_triples, triple));
                        n_triples += 1;
                    }
                }
                Event::Claim { source, triple } => {
                    if source.index() >= n_sources {
                        return Err(FusionError::UnknownSource(format!("{source}")));
                    }
                    if triple.index() >= n_triples {
                        return Err(FusionError::TripleOutOfRange(triple.index()));
                    }
                    claimed.insert(triple.index());
                }
                Event::Label { triple, .. } => {
                    if triple.index() >= n_triples {
                        return Err(FusionError::TripleOutOfRange(triple.index()));
                    }
                }
            }
        }
        for (id, _) in &new_triples {
            if !claimed.contains(id) {
                return Err(FusionError::UnobservedTriple(*id));
            }
        }
        Ok(())
    }

    /// Apply a batch without re-scoring, accumulating dirt. Input errors
    /// were already ruled out by [`Self::validate_batch`]; the residual
    /// checks here are defence in depth.
    fn apply(&mut self, batch: &[Event]) -> Result<Dirt> {
        let mut dirt = Dirt::default();
        for ev in batch {
            self.apply_event(ev, &mut dirt)?;
        }
        for &t in &dirt.new_triples {
            if self.ds.providers(t).is_empty() {
                return Err(FusionError::UnobservedTriple(t.index()));
            }
        }
        Ok(dirt)
    }

    fn apply_event(&mut self, ev: &Event, dirt: &mut Dirt) -> Result<()> {
        match ev {
            Event::AddSource { name } => {
                if self.ds.source_by_name(name).is_none() {
                    self.ds.add_source(name.clone());
                    // Keep the counter vectors indexable for later events
                    // in this batch; the full-refit fallback recomputes
                    // them from scratch afterwards anyway.
                    self.tp.push(0);
                    self.fp.push(0);
                    self.scope_true.push(0);
                    dirt.full = true;
                }
            }
            Event::AddTriple { triple, domain } => {
                if self.ds.triple_id(triple).is_none() {
                    let t = self.ds.add_triple(triple.clone(), *domain);
                    self.triples_by_domain.entry(*domain).or_default().push(t);
                    self.scores.push(f64::NAN);
                    dirt.new_triples.push(t);
                    dirt.touched.insert(t);
                }
            }
            Event::Claim { source, triple } => self.apply_claim(*source, *triple, dirt)?,
            Event::Label { triple, truth } => self.apply_label(*triple, *truth, dirt)?,
        }
        Ok(())
    }

    fn apply_claim(&mut self, s: SourceId, t: TripleId, dirt: &mut Dirt) -> Result<()> {
        let outcome = self.ds.observe(s, t)?;
        if !outcome.newly_provided {
            return Ok(());
        }
        dirt.touched.insert(t);
        let d = self.ds.domain(t);
        // One clone serves both the lift updates and `refresh_rows`
        // below (scope expansion touches the same labelled triples).
        let labelled_in_domain = if outcome.scope_expanded {
            self.labelled_by_domain.get(&d).cloned().unwrap_or_default()
        } else {
            Vec::new()
        };
        // Maintain the pairwise-lift counts (data-driven clustering
        // only). A batch that already forced a full refit skips this:
        // the graph is rebuilt from scratch afterwards, and new sources
        // may have outgrown its pair universe.
        if !dirt.full {
            if let Some(mut lift) = self.lift.take() {
                let truth_of = |inc: &Self, x: TripleId| inc.ds.gold().and_then(|g| g.get(x));
                if outcome.scope_expanded {
                    // Every labelled triple of `d` now counts `s` in its
                    // pairwise scope intersections; the claimed triple's
                    // own provision rides along in the same update.
                    for &x in &labelled_in_domain {
                        let truth = truth_of(self, x).expect("labelled_by_domain is labelled");
                        lift.source_entered_scope(&self.ds, s, x, truth);
                    }
                } else if let Some(truth) = truth_of(self, t) {
                    lift.source_provided(&self.ds, s, t, truth);
                }
                self.lift = Some(lift);
            }
        }
        if outcome.scope_expanded {
            // Every triple in `d` gains an in-scope non-provider: their
            // scope masks (and scores) change even though their provider
            // sets do not.
            if let Some(ts) = self.triples_by_domain.get(&d) {
                dirt.touched.extend(ts.iter().copied());
            }
            dirt.rescoped.insert(d);
            // Newly in-scope labelled-true triples enter the source's
            // recall denominator (the freshly claimed triple included, if
            // labelled true — its tp contribution is counted below).
            let gained = self.true_by_domain.get(&d).copied().unwrap_or(0);
            if gained > 0 {
                self.scope_true[s.index()] += gained;
                dirt.model = true;
            }
            // The scope bit of every labelled row in `d` flips for any
            // cluster containing this source.
            if self.refresh_rows(&labelled_in_domain)? {
                dirt.model = true;
            }
        }
        if let Some(truth) = self.ds.gold().and_then(|g| g.get(t)) {
            if truth {
                // After `observe`, the source's scope covers `d`, so the
                // in-scope check only guards exotic scope-override seeds.
                if self.ds.in_scope(s, t) {
                    self.tp[s.index()] += 1;
                }
            } else {
                self.fp[s.index()] += 1;
            }
            dirt.model = true;
            self.refresh_rows(&[t])?;
        }
        Ok(())
    }

    fn apply_label(&mut self, t: TripleId, truth: bool, dirt: &mut Dirt) -> Result<()> {
        let prev = self.ds.set_label(t, truth)?;
        if prev == Some(truth) {
            return Ok(());
        }
        dirt.model = true;
        // Labels leave providers and scopes untouched, so the lift-graph
        // delta is a polarity swap of this one triple's contribution.
        // (Skipped once a full refit is pending — the graph is rebuilt.)
        if !dirt.full {
            if let Some(mut lift) = self.lift.take() {
                lift.relabel(&self.ds, t, prev, truth);
                self.lift = Some(lift);
            }
        }
        let d = self.ds.domain(t);
        match prev {
            None => {
                self.count_label(t, truth, 1);
                if truth {
                    *self.true_by_domain.entry(d).or_default() += 1;
                }
                self.labelled_by_domain.entry(d).or_default().push(t);
                // Append the new row to every cluster joint, in
                // label-arrival order (the estimates are order-free sums).
                let row = self.row_of.len();
                self.row_of.insert(t, row);
                self.labelled_order.push((t, truth));
                for i in 0..self.fuser.n_cluster_units() {
                    let Some(joint) = self.fuser.cluster_joint(i) else {
                        continue;
                    };
                    let (prov, scope) = joint.project_pattern(&self.ds, t);
                    self.fuser
                        .cluster_joint_mut(i)
                        .expect("joint checked above")
                        .push_row(prov, scope, truth);
                }
            }
            Some(old) => {
                // A relabel: retract the old contribution, add the new.
                self.labelled_order[self.row_of[&t]].1 = truth;
                self.count_label(t, old, -1);
                if old {
                    *self.true_by_domain.entry(d).or_default() -= 1;
                }
                self.count_label(t, truth, 1);
                if truth {
                    *self.true_by_domain.entry(d).or_default() += 1;
                }
                self.refresh_rows(&[t])?;
            }
        }
        Ok(())
    }

    /// Add (`delta = 1`) or retract (`delta = -1`) one labelled triple's
    /// contribution to the estimator counts, mirroring
    /// [`corrfuse_core::quality::QualityEstimator::estimate`]'s loops.
    fn count_label(&mut self, t: TripleId, truth: bool, delta: isize) {
        fn bump(v: &mut usize, delta: isize) {
            *v = v
                .checked_add_signed(delta)
                .expect("estimator count underflow");
        }
        if truth {
            bump(&mut self.n_true, delta);
            for s in 0..self.ds.n_sources() {
                if self.ds.in_scope(SourceId(s as u32), t) {
                    bump(&mut self.scope_true[s], delta);
                    if self.ds.provides(SourceId(s as u32), t) {
                        bump(&mut self.tp[s], delta);
                    }
                }
            }
        } else {
            bump(&mut self.n_false, delta);
            let providers: Vec<usize> = self.ds.providers(t).iter_ones().collect();
            for s in providers {
                bump(&mut self.fp[s], delta);
            }
        }
    }

    /// Recompute the joint rows of the given labelled triples from live
    /// dataset state, in every cluster. Unlabelled triples are skipped.
    /// Returns whether any row actually changed (which invalidated that
    /// cluster's memo caches).
    fn refresh_rows(&mut self, triples: &[TripleId]) -> Result<bool> {
        let mut changed = false;
        for i in 0..self.fuser.n_cluster_units() {
            if self.fuser.cluster_joint(i).is_none() {
                continue;
            }
            for &t in triples {
                let Some(&row) = self.row_of.get(&t) else {
                    continue;
                };
                let truth = self
                    .ds
                    .gold()
                    .and_then(|g| g.get(t))
                    .expect("indexed row for unlabelled triple");
                let joint = self.fuser.cluster_joint(i).expect("joint checked above");
                let (prov, scope) = joint.project_pattern(&self.ds, t);
                if joint.row(row) != (prov, scope, truth) {
                    self.fuser
                        .cluster_joint_mut(i)
                        .expect("joint checked above")
                        .set_row(row, prov, scope, truth)?;
                    changed = true;
                }
            }
        }
        Ok(changed)
    }

    /// Re-score `dirty` triples: deduplicate by `(domain, providers)`
    /// pattern, score each unique uncached pattern once through the
    /// engine (deterministically — parallel output is bitwise identical
    /// to serial), memoise, and assign.
    fn rescore(&mut self, dirty: &[TripleId], engine: &ScoringEngine) -> Result<Vec<ScoredTriple>> {
        enum Slot {
            Cached(f64),
            Miss(usize),
        }
        let mut miss_reps: Vec<TripleId> = Vec::new();
        let mut miss_index: HashMap<ScoreKey, usize> = HashMap::new();
        let mut slots: Vec<(TripleId, Slot)> = Vec::with_capacity(dirty.len());
        for &t in dirty {
            let key = (self.ds.domain(t), self.ds.providers(t).clone());
            if let Some(i) = miss_index.get(&key) {
                // Within-batch duplicate of a pattern already queued.
                slots.push((t, Slot::Miss(*i)));
            } else if let Some(v) = self.cache.get(&key) {
                slots.push((t, Slot::Cached(v)));
            } else {
                let i = miss_reps.len();
                miss_index.insert(key, i);
                miss_reps.push(t);
                slots.push((t, Slot::Miss(i)));
            }
        }
        let ds = &self.ds;
        let fuser = &self.fuser;
        let values = engine.map(miss_reps.len(), |i| fuser.score_triple(ds, miss_reps[i]))?;
        for (key, &i) in &miss_index {
            self.cache.insert(key.clone(), values[i]);
        }
        let mut out = Vec::with_capacity(slots.len());
        for (t, slot) in slots {
            let after = match slot {
                Slot::Cached(v) => v,
                Slot::Miss(i) => values[i],
            };
            let before = self.scores[t.index()];
            out.push(ScoredTriple {
                triple: t,
                before: if before.is_nan() { None } else { Some(before) },
                after,
            });
            self.scores[t.index()] = after;
        }
        Ok(out)
    }
}
