//! `#corrfuse-journal v1`: append-only session persistence.
//!
//! The journal extends the `corrfuse_core::io` TSV dialect. A file is a
//! seed snapshot (the embedded `#corrfuse-dataset v1` section, verbatim)
//! followed by event lines, one per ingest event, with `+B` marking batch
//! boundaries:
//!
//! ```text
//! #corrfuse-journal v1
//! #seed
//! #corrfuse-dataset v1
//! S<TAB>source-name
//! T<TAB>subject<TAB>predicate<TAB>object<TAB>label<TAB>providers
//! #events
//! +S<TAB>source-name                                  (AddSource)
//! +T<TAB>subject<TAB>predicate<TAB>object<TAB>domain  (AddTriple)
//! +C<TAB>source-index<TAB>triple-index                (Claim)
//! +L<TAB>triple-index<TAB>0|1                         (Label)
//! +B                                                  (batch boundary)
//! ```
//!
//! Field escaping is shared with the dataset dialect
//! ([`corrfuse_core::io::escape`]). Appending is the only mutation — a
//! session's whole history replays from the top — and every parse error
//! reports the 1-based line number *in the journal file*, including
//! errors inside the embedded seed section. A trailing run of events
//! without a closing `+B` (e.g. after a crash mid-append) is replayed as
//! a final partial batch.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use corrfuse_core::dataset::{Dataset, Domain, SourceId};
use corrfuse_core::error::{FusionError, Result};
use corrfuse_core::io::{escape, unescape};
use corrfuse_core::triple::{Triple, TripleId};

use crate::event::Event;

/// First line of every journal file.
pub const HEADER: &str = "#corrfuse-journal v1";
const SEED_MARK: &str = "#seed";
const EVENTS_MARK: &str = "#events";

/// Serialise one event as a journal line (no trailing newline).
fn event_line(ev: &Event) -> String {
    match ev {
        Event::AddSource { name } => {
            let mut out = String::from("+S\t");
            escape(name, &mut out);
            out
        }
        Event::AddTriple { triple, domain } => {
            let mut out = String::from("+T\t");
            escape(&triple.subject, &mut out);
            out.push('\t');
            escape(&triple.predicate, &mut out);
            out.push('\t');
            escape(&triple.object, &mut out);
            out.push('\t');
            out.push_str(&domain.0.to_string());
            out
        }
        Event::Claim { source, triple } => format!("+C\t{}\t{}", source.0, triple.0),
        Event::Label { triple, truth } => {
            format!("+L\t{}\t{}", triple.0, if *truth { 1 } else { 0 })
        }
    }
}

/// The snapshot prefix of a journal: header, seed section, events marker.
fn snapshot_string(seed: &Dataset) -> String {
    // `io::to_string` ends with a newline, so the marker lands on its own
    // line.
    format!(
        "{HEADER}\n{SEED_MARK}\n{}{EVENTS_MARK}\n",
        corrfuse_core::io::to_string(seed)
    )
}

/// Write a snapshot-only journal (a seed and no events yet).
pub fn write_snapshot(path: impl AsRef<Path>, seed: &Dataset) -> Result<()> {
    fs::write(path, snapshot_string(seed))?;
    Ok(())
}

/// An open journal file accepting appended batches.
#[derive(Debug)]
pub struct JournalWriter {
    file: fs::File,
}

impl JournalWriter {
    /// Create (or truncate) a journal at `path` with `seed` as its
    /// snapshot, ready to append batches.
    pub fn create(path: impl AsRef<Path>, seed: &Dataset) -> Result<JournalWriter> {
        write_snapshot(path.as_ref(), seed)?;
        Self::append(path)
    }

    /// Open an existing journal for appending, validating its header.
    /// Only the first line is read — journals grow without bound and this
    /// runs on every restore.
    pub fn append(path: impl AsRef<Path>) -> Result<JournalWriter> {
        let mut first_line = String::new();
        {
            use std::io::BufRead as _;
            let mut reader = std::io::BufReader::new(fs::File::open(path.as_ref())?);
            reader.read_line(&mut first_line)?;
        }
        if first_line.trim_end() != HEADER {
            return Err(FusionError::Parse {
                line: 1,
                msg: format!("expected journal header `{HEADER}`"),
            });
        }
        let file = fs::OpenOptions::new().append(true).open(path.as_ref())?;
        Ok(JournalWriter { file })
    }

    /// Append one batch: its event lines plus the `+B` boundary.
    pub fn append_batch(&mut self, batch: &[Event]) -> Result<()> {
        let mut buf = String::new();
        for ev in batch {
            buf.push_str(&event_line(ev));
            buf.push('\n');
        }
        buf.push_str("+B\n");
        self.file.write_all(buf.as_bytes())?;
        self.file.flush()?;
        Ok(())
    }
}

/// Read a journal: the seed snapshot plus the recorded event batches.
pub fn read(path: impl AsRef<Path>) -> Result<(Dataset, Vec<Vec<Event>>)> {
    let text = fs::read_to_string(path)?;
    parse(&text)
}

/// Parse journal text. See the module docs for the format.
pub fn parse(text: &str) -> Result<(Dataset, Vec<Vec<Event>>)> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim_end() == HEADER => {}
        _ => {
            return Err(FusionError::Parse {
                line: 1,
                msg: format!("expected journal header `{HEADER}`"),
            })
        }
    }
    match lines.next() {
        Some((_, l)) if l.trim_end() == SEED_MARK => {}
        _ => {
            return Err(FusionError::Parse {
                line: 2,
                msg: format!("expected `{SEED_MARK}` section"),
            })
        }
    }
    // The seed section runs until the events marker; its first line is
    // file line 3, so dataset parse errors are offset by 2.
    let mut seed_text = String::new();
    let mut saw_events_mark = false;
    for (_, raw) in lines.by_ref() {
        if raw.trim_end() == EVENTS_MARK {
            saw_events_mark = true;
            break;
        }
        seed_text.push_str(raw);
        seed_text.push('\n');
    }
    if !saw_events_mark {
        return Err(FusionError::Parse {
            line: text.lines().count(),
            msg: format!("missing `{EVENTS_MARK}` marker"),
        });
    }
    let seed = corrfuse_core::io::from_str(&seed_text).map_err(|e| match e {
        FusionError::Parse { line, msg } => FusionError::Parse {
            line: line + 2,
            msg,
        },
        other => other,
    })?;

    let mut batches: Vec<Vec<Event>> = Vec::new();
    let mut current: Vec<Event> = Vec::new();
    let mut open = false;
    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let tag = fields.next().unwrap_or_default();
        match tag {
            "+B" => {
                batches.push(std::mem::take(&mut current));
                open = false;
            }
            "+S" => {
                let name = fields.next().ok_or_else(|| FusionError::Parse {
                    line: lineno,
                    msg: "+S line missing name".to_string(),
                })?;
                current.push(Event::AddSource {
                    name: unescape(name, lineno)?,
                });
                open = true;
            }
            "+T" => {
                let mut next = |what: &str| -> Result<String> {
                    fields
                        .next()
                        .ok_or_else(|| FusionError::Parse {
                            line: lineno,
                            msg: format!("+T line missing {what}"),
                        })
                        .and_then(|f| unescape(f, lineno))
                };
                let subject = next("subject")?;
                let predicate = next("predicate")?;
                let object = next("object")?;
                let domain: u32 = next("domain")?.parse().map_err(|_| FusionError::Parse {
                    line: lineno,
                    msg: "+T line needs a numeric domain".to_string(),
                })?;
                current.push(Event::AddTriple {
                    triple: Triple::new(subject, predicate, object),
                    domain: Domain(domain),
                });
                open = true;
            }
            "+C" => {
                let (s, t) = two_indices(&mut fields, "+C", lineno)?;
                current.push(Event::Claim {
                    source: SourceId(s),
                    triple: TripleId(t),
                });
                open = true;
            }
            "+L" => {
                let t: u32 = index_field(&mut fields, "+L", "triple index", lineno)?;
                let truth = match fields.next() {
                    Some("1") => true,
                    Some("0") => false,
                    other => {
                        return Err(FusionError::Parse {
                            line: lineno,
                            msg: format!(
                                "+L label must be 0 or 1, got `{}`",
                                other.unwrap_or_default()
                            ),
                        })
                    }
                };
                current.push(Event::Label {
                    triple: TripleId(t),
                    truth,
                });
                open = true;
            }
            other => {
                return Err(FusionError::Parse {
                    line: lineno,
                    msg: format!("unknown journal tag `{other}`"),
                })
            }
        }
    }
    // A trailing run without `+B` (crash mid-append) replays as a final
    // partial batch.
    if open {
        batches.push(current);
    }
    Ok((seed, batches))
}

fn index_field<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    tag: &str,
    what: &str,
    lineno: usize,
) -> Result<u32> {
    fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| FusionError::Parse {
            line: lineno,
            msg: format!("{tag} line needs a {what}"),
        })
}

fn two_indices<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    tag: &str,
    lineno: usize,
) -> Result<(u32, u32)> {
    let a = index_field(fields, tag, "source index", lineno)?;
    let b = index_field(fields, tag, "triple index", lineno)?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::DatasetBuilder;

    fn seed() -> Dataset {
        let mut b = DatasetBuilder::new();
        let (s1, t1) = b.observe_named("A", "x", "p", "1");
        let s2 = b.source("B");
        b.observe(s2, t1);
        let t2 = b.triple("weird\tfield", "q", "2");
        b.observe(s1, t2);
        b.label(t1, true);
        b.label(t2, false);
        b.build().unwrap()
    }

    fn batches() -> Vec<Vec<Event>> {
        vec![
            vec![
                Event::add_triple("y", "p", "3"),
                Event::claim(SourceId(1), TripleId(2)),
            ],
            vec![
                Event::add_source("C\nwith newline"),
                Event::label(TripleId(2), true),
            ],
        ]
    }

    #[test]
    fn roundtrip_preserves_seed_and_batches() {
        let dir = std::env::temp_dir().join("corrfuse-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.journal");
        let mut w = JournalWriter::create(&path, &seed()).unwrap();
        for b in batches() {
            w.append_batch(&b).unwrap();
        }
        let (back_seed, back_batches) = read(&path).unwrap();
        assert_eq!(back_seed.n_triples(), 2);
        assert_eq!(back_seed.n_sources(), 2);
        assert_eq!(
            back_seed.triple(TripleId(1)).subject,
            "weird\tfield",
            "seed escaping survives"
        );
        assert_eq!(back_batches, batches());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_partial_batch_is_replayed() {
        let text = format!(
            "{HEADER}\n{SEED_MARK}\n{}{EVENTS_MARK}\n+C\t0\t0\n+B\n+C\t1\t0\n",
            corrfuse_core::io::to_string(&seed())
        );
        let (_, batches) = parse(&text).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1], vec![Event::claim(SourceId(1), TripleId(0))]);
    }

    #[test]
    fn seed_errors_report_absolute_journal_lines() {
        // Corrupt the label field of the seed's first T record. The seed
        // section starts at line 3; its header is line 3, S lines 4-5, so
        // the broken T record sits on line 6 of the journal file.
        let good = snapshot_string(&seed());
        let bad = good.replace("\t1\t0,1\n", "\t9\t0,1\n");
        assert_ne!(good, bad);
        match parse(&bad).unwrap_err() {
            FusionError::Parse { line, msg } => {
                assert_eq!(line, 6, "{msg}");
                assert!(msg.contains("bad label"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn event_errors_are_one_based() {
        let text = format!(
            "{HEADER}\n{SEED_MARK}\n{}{EVENTS_MARK}\n+L\t0\t7\n",
            corrfuse_core::io::to_string(&seed())
        );
        let events_line = text.lines().count();
        match parse(&text).unwrap_err() {
            FusionError::Parse { line, msg } => {
                assert_eq!(line, events_line, "{msg}");
                assert!(msg.contains("0 or 1"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn malformed_headers_rejected() {
        assert!(parse("").is_err());
        assert!(parse("#wrong\n").is_err());
        assert!(parse(&format!("{HEADER}\nnot-seed\n")).is_err());
        let no_events = format!(
            "{HEADER}\n{SEED_MARK}\n{}",
            corrfuse_core::io::to_string(&seed())
        );
        match parse(&no_events).unwrap_err() {
            FusionError::Parse { msg, .. } => assert!(msg.contains("#events")),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(JournalWriter::append("/nonexistent/nope.journal").is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let text = format!(
            "{HEADER}\n{SEED_MARK}\n{}{EVENTS_MARK}\n+X\tboom\n",
            corrfuse_core::io::to_string(&seed())
        );
        assert!(parse(&text).is_err());
    }
}
