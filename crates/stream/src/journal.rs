//! `#corrfuse-journal v1`: append-only session persistence.
//!
//! The journal extends the `corrfuse_core::io` TSV dialect. A file is a
//! seed snapshot (the embedded `#corrfuse-dataset v1` section, verbatim)
//! followed by event lines, one per ingest event, with `+B` marking batch
//! boundaries:
//!
//! ```text
//! #corrfuse-journal v1
//! #seed
//! #corrfuse-dataset v1
//! S<TAB>source-name
//! T<TAB>subject<TAB>predicate<TAB>object<TAB>label<TAB>providers
//! #events
//! +S<TAB>source-name                                  (AddSource)
//! +T<TAB>subject<TAB>predicate<TAB>object<TAB>domain  (AddTriple)
//! +C<TAB>source-index<TAB>triple-index                (Claim)
//! +L<TAB>triple-index<TAB>0|1                         (Label)
//! +B                                                  (batch boundary)
//! ```
//!
//! Field escaping is shared with the dataset dialect
//! ([`corrfuse_core::io::escape`]). Appending is the only mutation — a
//! session's whole history replays from the top — and every parse error
//! reports the 1-based line number *in the journal file*, including
//! errors inside the embedded seed section. A trailing run of events
//! without a closing `+B` (e.g. after a crash mid-append) is replayed as
//! a final partial batch.
//!
//! # Durability and crash recovery
//!
//! Every write ends in a newline, so after a crash (power loss, a killed
//! shard worker) only the *final* line of the file can be torn.
//! [`recover`] exploits that: an unterminated last line is dropped as
//! torn before parsing, and the byte length of the surviving well-formed
//! prefix is reported so the caller can truncate the file and resume
//! appending. How eagerly writes reach the disk is the writer's
//! [`FsyncPolicy`]; [`JournalWriter::seal`] forces a full sync at
//! shutdown regardless of policy, and [`JournalWriter::rotate`] compacts
//! the journal in place (snapshot of the accumulated dataset written to a
//! temporary sibling, synced, then atomically renamed over the journal).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use corrfuse_core::dataset::Dataset;
use corrfuse_core::error::{FusionError, Result};

use crate::codec;
use crate::event::Event;

/// First line of every journal file.
pub const HEADER: &str = "#corrfuse-journal v1";
const SEED_MARK: &str = "#seed";
const EVENTS_MARK: &str = "#events";
/// Optional epoch line between the header and the seed section:
/// `#epoch <n>` records the replication epoch of the snapshot, i.e. how
/// many batches had been committed when the seed was captured. Emitted
/// only when the epoch is non-zero, so journals written before epochs
/// existed — and journals from un-replicated sessions — are byte-for-byte
/// unchanged. A missing line reads as epoch 0.
const EPOCH_MARK: &str = "#epoch";

/// A complete batch boundary as it appears in the file: the `+B` line,
/// newline-anchored on both sides. Event lines always follow the
/// `#events` marker line, so this sequence can never occur inside
/// escaped field content.
pub(crate) const BOUNDARY_LINE: &str = "\n+B\n";

/// Byte offset just past the last complete batch boundary in `prefix`,
/// falling back to the end of the `#events` marker line when no batch
/// ever completed. Used by crash recovery to discard an unterminated
/// trailing batch atomically.
pub(crate) fn last_complete_boundary(prefix: &str) -> usize {
    if let Some(i) = prefix.rfind(BOUNDARY_LINE) {
        return i + BOUNDARY_LINE.len();
    }
    let marker = format!("\n{EVENTS_MARK}\n");
    prefix
        .rfind(&marker)
        .map(|i| i + marker.len())
        .unwrap_or(prefix.len())
}

// The event-line encoding itself lives in [`crate::codec`], shared with
// the wire protocol (`corrfuse-net`); this module owns the file format
// around it: header, embedded seed snapshot, durability and rotation.

/// How eagerly journal writes are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `sync_all` after every write (data + metadata). The strongest
    /// guarantee: an acknowledged batch survives power loss.
    Always,
    /// `sync_data` after each appended batch. Snapshot writes are synced
    /// at creation/rotation/seal only; batch data is durable per ingest
    /// but file metadata may lag.
    EveryBatch,
    /// No explicit syncing — writes reach the OS page cache only (the
    /// pre-policy behaviour). Fastest; a crash can lose recent batches,
    /// which [`recover`] then trims as a torn tail.
    #[default]
    Never,
}

/// The snapshot prefix of a journal: header, optional epoch line, seed
/// section, events marker.
fn snapshot_string(seed: &Dataset) -> String {
    snapshot_string_at(seed, 0)
}

/// [`snapshot_string`] stamped with a base epoch (omitted when zero).
fn snapshot_string_at(seed: &Dataset, epoch: u64) -> String {
    // `io::to_string` ends with a newline, so the marker lands on its own
    // line.
    if epoch == 0 {
        format!(
            "{HEADER}\n{SEED_MARK}\n{}{EVENTS_MARK}\n",
            corrfuse_core::io::to_string(seed)
        )
    } else {
        format!(
            "{HEADER}\n{EPOCH_MARK} {epoch}\n{SEED_MARK}\n{}{EVENTS_MARK}\n",
            corrfuse_core::io::to_string(seed)
        )
    }
}

/// Write a snapshot-only journal (a seed and no events yet).
pub fn write_snapshot(path: impl AsRef<Path>, seed: &Dataset) -> Result<()> {
    fs::write(path, snapshot_string(seed))?;
    Ok(())
}

/// [`write_snapshot`] stamped with a base epoch (see [`read_at`]).
pub fn write_snapshot_at(path: impl AsRef<Path>, seed: &Dataset, epoch: u64) -> Result<()> {
    fs::write(path, snapshot_string_at(seed, epoch))?;
    Ok(())
}

/// An open journal file accepting appended batches.
#[derive(Debug)]
pub struct JournalWriter {
    file: fs::File,
    path: PathBuf,
    fsync: FsyncPolicy,
    /// Current file length in bytes (snapshot + appended batches).
    bytes: u64,
}

impl JournalWriter {
    /// Create (or truncate) a journal at `path` with `seed` as its
    /// snapshot, ready to append batches. No explicit fsyncing
    /// ([`FsyncPolicy::Never`]).
    pub fn create(path: impl AsRef<Path>, seed: &Dataset) -> Result<JournalWriter> {
        Self::create_with(path, seed, FsyncPolicy::Never)
    }

    /// [`JournalWriter::create`] with an explicit durability policy.
    pub fn create_with(
        path: impl AsRef<Path>,
        seed: &Dataset,
        fsync: FsyncPolicy,
    ) -> Result<JournalWriter> {
        Self::create_at(path, seed, fsync, 0)
    }

    /// [`JournalWriter::create_with`] whose snapshot is stamped with a
    /// base epoch: the replication epoch at which `seed` was captured.
    /// [`read_at`]/[`recover`] report it back so a restored session (or a
    /// cold-restarting follower) resumes epoch numbering where the
    /// snapshot left off instead of restarting from zero.
    pub fn create_at(
        path: impl AsRef<Path>,
        seed: &Dataset,
        fsync: FsyncPolicy,
        epoch: u64,
    ) -> Result<JournalWriter> {
        write_snapshot_at(path.as_ref(), seed, epoch)?;
        let w = Self::append_with(path, fsync)?;
        if w.fsync != FsyncPolicy::Never {
            w.file.sync_all()?;
        }
        Ok(w)
    }

    /// Open an existing journal for appending, validating its header.
    /// Only the first line is read — journals can be large and this runs
    /// on every restore. No explicit fsyncing ([`FsyncPolicy::Never`]).
    pub fn append(path: impl AsRef<Path>) -> Result<JournalWriter> {
        Self::append_with(path, FsyncPolicy::Never)
    }

    /// [`JournalWriter::append`] with an explicit durability policy.
    pub fn append_with(path: impl AsRef<Path>, fsync: FsyncPolicy) -> Result<JournalWriter> {
        let path = path.as_ref().to_path_buf();
        let mut first_line = String::new();
        {
            use std::io::BufRead as _;
            let mut reader = std::io::BufReader::new(fs::File::open(&path)?);
            reader.read_line(&mut first_line)?;
        }
        if first_line.trim_end() != HEADER {
            return Err(FusionError::Parse {
                line: 1,
                msg: format!("expected journal header `{HEADER}`"),
            });
        }
        let file = fs::OpenOptions::new().append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        Ok(JournalWriter {
            file,
            path,
            fsync,
            bytes,
        })
    }

    /// Append one batch: its event lines plus the `+B` boundary (the
    /// shared [`crate::codec`] encoding), synced according to the
    /// writer's [`FsyncPolicy`].
    pub fn append_batch(&mut self, batch: &[Event]) -> Result<()> {
        let mut buf = String::new();
        codec::write_batch(batch, &mut buf);
        self.file.write_all(buf.as_bytes())?;
        self.file.flush()?;
        match self.fsync {
            FsyncPolicy::Always => self.file.sync_all()?,
            FsyncPolicy::EveryBatch => self.file.sync_data()?,
            FsyncPolicy::Never => {}
        }
        self.bytes += buf.len() as u64;
        Ok(())
    }

    /// Current journal size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The writer's durability policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// Force everything written so far to stable storage (graceful
    /// shutdown), regardless of the running [`FsyncPolicy`].
    pub fn seal(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Compact the journal in place: rewrite it as a snapshot of `seed`
    /// (the accumulated dataset) with no events. The snapshot is written
    /// to a temporary sibling, synced, and atomically renamed over the
    /// journal, so a crash mid-rotation leaves either the old or the new
    /// journal — never a torn hybrid. Returns the new size in bytes.
    ///
    /// Rotation discards any epoch stamp (the compacted snapshot reads
    /// as epoch 0). A session feeding a replication tap must use
    /// [`JournalWriter::rotate_at`] instead, or a follower bootstrapping
    /// from the rotated file would restart its epoch numbering and
    /// re-request batches the snapshot already contains.
    pub fn rotate(&mut self, seed: &Dataset) -> Result<u64> {
        self.rotate_at(seed, 0)
    }

    /// [`JournalWriter::rotate`] whose compacted snapshot is stamped
    /// with `epoch` — the number of batches committed into `seed` — so
    /// epoch numbering survives compaction exactly as it survives a
    /// plain restart.
    pub fn rotate_at(&mut self, seed: &Dataset, epoch: u64) -> Result<u64> {
        let file_name = self
            .path
            .file_name()
            .ok_or_else(|| {
                FusionError::Io(format!(
                    "journal path `{}` has no file name",
                    self.path.display()
                ))
            })?
            .to_string_lossy()
            .into_owned();
        let tmp = self.path.with_file_name(format!("{file_name}.rotate.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(snapshot_string_at(seed, epoch).as_bytes())?;
            f.flush()?;
            // Always sync the snapshot before the rename: renaming an
            // unsynced file over the journal could lose both copies.
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        *self = Self::append_with(&self.path, self.fsync)?;
        Ok(self.bytes)
    }
}

/// Read a journal: the seed snapshot plus the recorded event batches.
pub fn read(path: impl AsRef<Path>) -> Result<(Dataset, Vec<Vec<Event>>)> {
    let (_, seed, batches) = read_at(path)?;
    Ok((seed, batches))
}

/// [`read`] that also reports the snapshot's base epoch: the replication
/// epoch at which the seed was captured (0 for journals without an
/// `#epoch` line). The session's epoch after replay is
/// `base_epoch + batches.len()`.
pub fn read_at(path: impl AsRef<Path>) -> Result<(u64, Dataset, Vec<Vec<Event>>)> {
    let text = fs::read_to_string(path)?;
    parse_at(&text)
}

/// Outcome of a crash-tolerant journal read ([`recover`]).
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The base epoch of the seed snapshot (0 when the journal predates
    /// epochs or was written by an un-replicated session).
    pub base_epoch: u64,
    /// The seed snapshot.
    pub seed: Dataset,
    /// The surviving event batches (a trailing run without `+B` is the
    /// final partial batch, exactly as [`parse`] treats it).
    pub batches: Vec<Vec<Event>>,
    /// Byte length of the well-formed prefix. Truncate the file to this
    /// length before resuming appends.
    pub good_len: u64,
    /// Whether a torn (unterminated) final line was dropped.
    pub torn: bool,
}

/// Parse journal text tolerating a torn tail.
///
/// Every journal write ends in a newline, so a crash can only tear the
/// *final* line. An unterminated last line is therefore dropped before
/// parsing — unconditionally, because a truncated numeric field can
/// coincidentally still parse (`+C\t1\t234` torn to `+C\t1\t23`) and
/// must not be replayed as a different event. Corruption anywhere else
/// (e.g. truncation inside the seed snapshot) is not recoverable and
/// surfaces as the underlying parse error.
pub fn recover(text: &str) -> Result<Recovered> {
    let (prefix, torn) = if text.is_empty() || text.ends_with('\n') {
        (text, false)
    } else {
        match text.rfind('\n') {
            Some(i) => (&text[..=i], true),
            // No complete line at all: even the header is torn.
            None => ("", true),
        }
    };
    let (base_epoch, seed, batches) = parse_at(prefix)?;
    Ok(Recovered {
        base_epoch,
        seed,
        batches,
        good_len: prefix.len() as u64,
        torn,
    })
}

/// [`recover`] over a file on disk.
pub fn read_recover(path: impl AsRef<Path>) -> Result<Recovered> {
    let text = fs::read_to_string(path)?;
    recover(&text)
}

/// Parse journal text. See the module docs for the format.
pub fn parse(text: &str) -> Result<(Dataset, Vec<Vec<Event>>)> {
    let (_, seed, batches) = parse_at(text)?;
    Ok((seed, batches))
}

/// [`parse`] that also reports the snapshot's base epoch (see
/// [`read_at`]).
pub fn parse_at(text: &str) -> Result<(u64, Dataset, Vec<Vec<Event>>)> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim_end() == HEADER => {}
        _ => {
            return Err(FusionError::Parse {
                line: 1,
                msg: format!("expected journal header `{HEADER}`"),
            })
        }
    }
    // An optional `#epoch <n>` line may sit between the header and the
    // seed marker; its presence shifts every subsequent line by one.
    let mut base_epoch = 0u64;
    let mut seed_offset = 2;
    let mut next = lines.next();
    if let Some((_, l)) = next {
        if let Some(rest) = l.trim_end().strip_prefix(EPOCH_MARK) {
            base_epoch = rest.trim().parse().map_err(|_| FusionError::Parse {
                line: 2,
                msg: format!("bad `{EPOCH_MARK}` value `{}`", rest.trim()),
            })?;
            seed_offset = 3;
            next = lines.next();
        }
    }
    match next {
        Some((_, l)) if l.trim_end() == SEED_MARK => {}
        _ => {
            return Err(FusionError::Parse {
                line: seed_offset,
                msg: format!("expected `{SEED_MARK}` section"),
            })
        }
    }
    // The seed section runs until the events marker; its first line is
    // the file line just past the seed marker, so dataset parse errors
    // are offset by `seed_offset` (2, or 3 with an epoch line).
    let mut seed_text = String::new();
    let mut saw_events_mark = false;
    for (_, raw) in lines.by_ref() {
        if raw.trim_end() == EVENTS_MARK {
            saw_events_mark = true;
            break;
        }
        seed_text.push_str(raw);
        seed_text.push('\n');
    }
    if !saw_events_mark {
        return Err(FusionError::Parse {
            line: text.lines().count(),
            msg: format!("missing `{EVENTS_MARK}` marker"),
        });
    }
    let seed = corrfuse_core::io::from_str(&seed_text).map_err(|e| match e {
        FusionError::Parse { line, msg } => FusionError::Parse {
            line: line + seed_offset,
            msg,
        },
        other => other,
    })?;

    // The event section is the shared codec dialect; a trailing run
    // without `+B` (crash mid-append) replays as a final partial batch.
    let parsed = codec::parse_batch_lines(lines.map(|(idx, raw)| (idx + 1, raw)))?;
    Ok((base_epoch, seed, parsed.batches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::{DatasetBuilder, SourceId};
    use corrfuse_core::triple::TripleId;

    fn seed() -> Dataset {
        let mut b = DatasetBuilder::new();
        let (s1, t1) = b.observe_named("A", "x", "p", "1");
        let s2 = b.source("B");
        b.observe(s2, t1);
        let t2 = b.triple("weird\tfield", "q", "2");
        b.observe(s1, t2);
        b.label(t1, true);
        b.label(t2, false);
        b.build().unwrap()
    }

    fn batches() -> Vec<Vec<Event>> {
        vec![
            vec![
                Event::add_triple("y", "p", "3"),
                Event::claim(SourceId(1), TripleId(2)),
            ],
            vec![
                Event::add_source("C\nwith newline"),
                Event::label(TripleId(2), true),
            ],
        ]
    }

    #[test]
    fn roundtrip_preserves_seed_and_batches() {
        let dir = std::env::temp_dir().join("corrfuse-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.journal");
        let mut w = JournalWriter::create(&path, &seed()).unwrap();
        for b in batches() {
            w.append_batch(&b).unwrap();
        }
        let (back_seed, back_batches) = read(&path).unwrap();
        assert_eq!(back_seed.n_triples(), 2);
        assert_eq!(back_seed.n_sources(), 2);
        assert_eq!(
            back_seed.triple(TripleId(1)).subject,
            "weird\tfield",
            "seed escaping survives"
        );
        assert_eq!(back_batches, batches());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_partial_batch_is_replayed() {
        let text = format!(
            "{HEADER}\n{SEED_MARK}\n{}{EVENTS_MARK}\n+C\t0\t0\n+B\n+C\t1\t0\n",
            corrfuse_core::io::to_string(&seed())
        );
        let (_, batches) = parse(&text).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1], vec![Event::claim(SourceId(1), TripleId(0))]);
    }

    #[test]
    fn seed_errors_report_absolute_journal_lines() {
        // Corrupt the label field of the seed's first T record. The seed
        // section starts at line 3; its header is line 3, S lines 4-5, so
        // the broken T record sits on line 6 of the journal file.
        let good = snapshot_string(&seed());
        let bad = good.replace("\t1\t0,1\n", "\t9\t0,1\n");
        assert_ne!(good, bad);
        match parse(&bad).unwrap_err() {
            FusionError::Parse { line, msg } => {
                assert_eq!(line, 6, "{msg}");
                assert!(msg.contains("bad label"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn event_errors_are_one_based() {
        let text = format!(
            "{HEADER}\n{SEED_MARK}\n{}{EVENTS_MARK}\n+L\t0\t7\n",
            corrfuse_core::io::to_string(&seed())
        );
        let events_line = text.lines().count();
        match parse(&text).unwrap_err() {
            FusionError::Parse { line, msg } => {
                assert_eq!(line, events_line, "{msg}");
                assert!(msg.contains("0 or 1"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn malformed_headers_rejected() {
        assert!(parse("").is_err());
        assert!(parse("#wrong\n").is_err());
        assert!(parse(&format!("{HEADER}\nnot-seed\n")).is_err());
        let no_events = format!(
            "{HEADER}\n{SEED_MARK}\n{}",
            corrfuse_core::io::to_string(&seed())
        );
        match parse(&no_events).unwrap_err() {
            FusionError::Parse { msg, .. } => assert!(msg.contains("#events")),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(JournalWriter::append("/nonexistent/nope.journal").is_err());
    }

    #[test]
    fn rotation_compacts_and_keeps_appending() {
        let dir = std::env::temp_dir().join("corrfuse-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rotate.journal");
        let mut w = JournalWriter::create_with(&path, &seed(), FsyncPolicy::EveryBatch).unwrap();
        for b in batches() {
            w.append_batch(&b).unwrap();
        }
        let before = w.bytes();
        assert_eq!(before, std::fs::metadata(&path).unwrap().len());
        // Rotate onto the *original* seed here (a real caller passes the
        // accumulated dataset): the events must be gone afterwards.
        let after = w.rotate(&seed()).unwrap();
        assert!(after < before, "rotation shrank the journal");
        let (_, back) = read(&path).unwrap();
        assert!(back.is_empty(), "rotation dropped the replayed events");
        // Appending keeps working post-rotation, and the tmp file is gone.
        w.append_batch(&batches()[0]).unwrap();
        w.seal().unwrap();
        let (_, back) = read(&path).unwrap();
        assert_eq!(back, vec![batches()[0].clone()]);
        assert!(!dir.join("rotate.journal.rotate.tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_drops_torn_tail_lines() {
        let mut text = format!(
            "{HEADER}\n{SEED_MARK}\n{}{EVENTS_MARK}\n+C\t0\t0\n+B\n",
            corrfuse_core::io::to_string(&seed())
        );
        let whole = recover(&text).unwrap();
        assert!(!whole.torn);
        assert_eq!(whole.good_len, text.len() as u64);
        assert_eq!(
            whole.batches,
            vec![vec![Event::claim(SourceId(0), TripleId(0))]]
        );

        // A torn numeric field that would still parse must be dropped,
        // not misread as a different event.
        text.push_str("+C\t1\t0");
        let torn = recover(&text).unwrap();
        assert!(torn.torn);
        assert_eq!(torn.good_len, whole.good_len);
        assert_eq!(torn.batches, whole.batches);

        // Truncation inside the seed snapshot is not recoverable.
        assert!(recover(&text[..HEADER.len() + 10]).is_err());
        assert!(recover("").is_err());
        assert!(recover("#corrfuse-jour").is_err());
    }

    #[test]
    fn writer_tracks_bytes_across_reopen() {
        let dir = std::env::temp_dir().join("corrfuse-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bytes.journal");
        let mut w = JournalWriter::create_with(&path, &seed(), FsyncPolicy::Always).unwrap();
        w.append_batch(&batches()[0]).unwrap();
        let bytes = w.bytes();
        drop(w);
        let w2 = JournalWriter::append_with(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(w2.bytes(), bytes);
        assert_eq!(w2.fsync_policy(), FsyncPolicy::Never);
        assert_eq!(w2.path(), path.as_path());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn epoch_line_roundtrips_and_defaults_to_zero() {
        let dir = std::env::temp_dir().join("corrfuse-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch.journal");

        // Epoch 0 omits the line entirely: byte-identical to the
        // pre-epoch format.
        assert_eq!(snapshot_string_at(&seed(), 0), snapshot_string(&seed()));

        let mut w = JournalWriter::create_at(&path, &seed(), FsyncPolicy::Never, 7).unwrap();
        for b in batches() {
            w.append_batch(&b).unwrap();
        }
        let (base, _, back) = read_at(&path).unwrap();
        assert_eq!(base, 7);
        assert_eq!(back, batches());
        // The epoch-blind readers still work on stamped journals.
        let (_, back) = read(&path).unwrap();
        assert_eq!(back, batches());

        // Rotation re-stamps: the compacted snapshot carries the epoch
        // of the accumulated state.
        w.rotate_at(&seed(), 9).unwrap();
        let (base, _, back) = read_at(&path).unwrap();
        assert_eq!(base, 9);
        assert!(back.is_empty());

        // `recover` reports the base epoch too.
        w.append_batch(&batches()[0]).unwrap();
        w.seal().unwrap();
        let rec = read_recover(&path).unwrap();
        assert_eq!(rec.base_epoch, 9);
        assert_eq!(rec.batches.len(), 1);

        // Epoch-less rotate drops the stamp (documented hazard).
        w.rotate(&seed()).unwrap();
        let (base, _, _) = read_at(&path).unwrap();
        assert_eq!(base, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn epoch_line_shifts_seed_error_offsets() {
        // With the `#epoch` line the seed section starts one line later,
        // so the broken T record sits on line 7 instead of 6.
        let good = snapshot_string_at(&seed(), 3);
        let bad = good.replace("\t1\t0,1\n", "\t9\t0,1\n");
        assert_ne!(good, bad);
        match parse(&bad).unwrap_err() {
            FusionError::Parse { line, msg } => {
                assert_eq!(line, 7, "{msg}");
                assert!(msg.contains("bad label"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn malformed_epoch_line_rejected() {
        let text = format!("{HEADER}\n{EPOCH_MARK} not-a-number\n{SEED_MARK}\n");
        match parse(&text).unwrap_err() {
            FusionError::Parse { line, msg } => {
                assert_eq!(line, 2, "{msg}");
                assert!(msg.contains("#epoch"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let text = format!(
            "{HEADER}\n{SEED_MARK}\n{}{EVENTS_MARK}\n+X\tboom\n",
            corrfuse_core::io::to_string(&seed())
        );
        assert!(parse(&text).is_err());
    }
}
