//! # corrfuse-stream
//!
//! Incremental ingestion and online re-scoring for correlation-aware data
//! fusion.
//!
//! The core crate models fusion over a static `(S, O)` snapshot: fit a
//! [`corrfuse_core::Fuser`] on labelled data, score every triple. A
//! production system serves continuous traffic — sources keep emitting
//! claims, labels trickle in from curators — and refitting the whole
//! model per update is O(dataset) when a delta touches a handful of
//! triples. This crate wraps the core with an online lifecycle:
//!
//! * [`event::Event`] / [`event::DeltaLog`] — an append-only log of
//!   ingest events: new sources, new triples, new claim/provider edges,
//!   new gold labels;
//! * [`codec`] — the line-oriented event encoding shared by journal
//!   files and `corrfuse-net` wire frames, so a captured wire stream is
//!   replayable as a journal;
//! * [`incremental::IncrementalFuser`] — applies deltas by updating only
//!   the affected per-source quality counts and per-cluster
//!   [`corrfuse_core::EmpiricalJoint`] rows (whose memoised subset
//!   counts are delta-updated in place, never invalidated), maintains
//!   the pairwise-lift graph under data-driven clustering so a label
//!   that re-partitions the sources refits only the changed clusters
//!   ([`RefitLevel::Cluster`]), and falls back to a full refit only when
//!   the source set changes;
//! * [`cache::ScoreCache`] — memoises per-triple posteriors keyed by
//!   `(domain, provider set)` fingerprint, so even a model-level refit
//!   re-scores each distinct observation pattern once;
//! * [`session::StreamSession`] — the micro-batching front end:
//!   `ingest(batch) -> ScoredDelta` reports which triples were re-scored
//!   and which flipped decision;
//! * [`journal`] — `#corrfuse-journal v1`, an append-only extension of
//!   the `corrfuse_core::io` TSV dialect that persists a session as a
//!   seed snapshot plus its event batches, so it can be restored and
//!   replayed. Journals carry an [`journal::FsyncPolicy`], rotate in
//!   place (atomic snapshot compaction, [`StreamSession::rotate_journal`])
//!   so they do not grow without bound, and recover from arbitrary-byte
//!   truncation ([`StreamSession::recover`] trims the torn tail). The
//!   in-memory [`event::DeltaLog`] is bounded by an
//!   [`event::LogRetention`] policy once the journal is the durable
//!   history. Snapshots may carry an `#epoch <n>` stamp so a session's
//!   replication epoch ([`StreamSession::epoch`], one increment per
//!   committed batch) survives restore, recovery and rotation — the
//!   ordering backbone of `corrfuse-replica` followers.
//!
//! The subsystem inherits the workspace trust anchor (stated once in
//! `docs/ARCHITECTURE.md`), enforced here by unit and property tests:
//! after any replayed event stream, the incremental scores are
//! **bitwise identical** to a from-scratch `Fuser::fit` + `score_all`
//! on the accumulated dataset. This crate is the streaming layer of the
//! stack (core → **stream** → serve → net).
//!
//! ## Quick start
//!
//! ```
//! use corrfuse_core::fuser::{FuserConfig, Method};
//! use corrfuse_core::DatasetBuilder;
//! use corrfuse_stream::{Event, StreamSession};
//!
//! // Seed: two sources, two labelled triples.
//! let mut b = DatasetBuilder::new();
//! let (s1, t1) = b.observe_named("A", "Obama", "profession", "president");
//! let s2 = b.source("B");
//! b.observe(s2, t1);
//! let t2 = b.triple("Obama", "died", "1982");
//! b.observe(s1, t2);
//! b.label(t1, true);
//! b.label(t2, false);
//!
//! let mut session = StreamSession::new(
//!     FuserConfig::new(Method::PrecRec),
//!     b.build().unwrap(),
//! )
//! .unwrap();
//!
//! // A new (unlabelled) triple arrives with claims from both sources:
//! // the fast path — no model refit, one triple re-scored.
//! let delta = session
//!     .ingest(&[
//!         Event::add_triple("Obama", "spouse", "Michelle"),
//!         Event::claim(s1, corrfuse_core::TripleId(2)),
//!         Event::claim(s2, corrfuse_core::TripleId(2)),
//!     ])
//!     .unwrap();
//! assert_eq!(delta.rescored.len(), 1);
//! ```

#![warn(rust_2018_idioms)]
#![deny(missing_docs)]

pub mod cache;
pub mod codec;
pub mod event;
pub mod incremental;
pub mod journal;
pub mod replay;
pub mod session;

pub use cache::ScoreCache;
pub use event::{DeltaLog, Event, LogRetention};
pub use incremental::{IncrementalFuser, IngestOutcome, RefitLevel, ScoredTriple, StageTimings};
pub use journal::{FsyncPolicy, JournalWriter};
pub use session::{RecoveryReport, ScoredDelta, StreamSession};
