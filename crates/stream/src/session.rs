//! [`StreamSession`]: the micro-batching front end over
//! [`IncrementalFuser`], with decision tracking and journal persistence.

use std::path::Path;

use corrfuse_core::dataset::Dataset;
use corrfuse_core::engine::ScoringEngine;
use corrfuse_core::error::Result;
use corrfuse_core::fuser::{Fuser, FuserConfig};
use corrfuse_core::joint::CacheStats;

use crate::event::{DeltaLog, Event};
use crate::incremental::{IncrementalFuser, RefitLevel, ScoredTriple};
use crate::journal::JournalWriter;

/// What one ingested batch changed, from the caller's point of view.
#[derive(Debug, Clone)]
pub struct ScoredDelta {
    /// How much of the model the batch forced to be rebuilt.
    pub refit: RefitLevel,
    /// Every re-scored triple with before/after posteriors.
    pub rescored: Vec<ScoredTriple>,
    /// The subset of `rescored` whose accept/reject decision flipped at
    /// the session threshold (new triples have no prior decision and are
    /// never flips).
    pub flips: Vec<ScoredTriple>,
    /// Score-cache hits/misses attributable to this batch.
    pub cache: CacheStats,
}

/// A live fusion session: seed snapshot + stream of micro-batches.
///
/// ```
/// use corrfuse_core::fuser::{FuserConfig, Method};
/// use corrfuse_core::DatasetBuilder;
/// use corrfuse_stream::{Event, StreamSession};
///
/// let mut b = DatasetBuilder::new();
/// let (s, t) = b.observe_named("A", "x", "p", "1");
/// b.label(t, true);
/// let t2 = b.triple("y", "p", "2");
/// b.observe(s, t2);
/// b.label(t2, false);
/// let mut session =
///     StreamSession::new(FuserConfig::new(Method::PrecRec), b.build().unwrap()).unwrap();
/// let delta = session
///     .ingest(&[Event::add_triple("z", "p", "3"), Event::claim(s, corrfuse_core::TripleId(2))])
///     .unwrap();
/// assert_eq!(delta.rescored.len(), 1);
/// ```
#[derive(Debug)]
pub struct StreamSession {
    inc: IncrementalFuser,
    engine: ScoringEngine,
    log: DeltaLog,
    journal: Option<JournalWriter>,
    threshold: f64,
}

impl StreamSession {
    /// Open a session on a seed snapshot with the default (parallel)
    /// scoring engine. Parallel and serial scoring are bitwise identical,
    /// so the choice is purely about throughput.
    pub fn new(config: FuserConfig, seed: Dataset) -> Result<StreamSession> {
        Self::with_engine(config, seed, ScoringEngine::default())
    }

    /// Open a session with an explicit scoring engine.
    pub fn with_engine(
        config: FuserConfig,
        seed: Dataset,
        engine: ScoringEngine,
    ) -> Result<StreamSession> {
        let inc = IncrementalFuser::fit(config, seed, &engine)?;
        Ok(StreamSession {
            inc,
            engine,
            log: DeltaLog::new(),
            journal: None,
            threshold: 0.5,
        })
    }

    /// Override the decision threshold (default 0.5, the paper's setting).
    pub fn with_threshold(mut self, threshold: f64) -> StreamSession {
        self.threshold = threshold;
        self
    }

    /// Restore a session from a `#corrfuse-journal v1` file: rebuild the
    /// seed, replay every recorded batch through the incremental path,
    /// and keep appending new batches to the same file.
    pub fn restore(config: FuserConfig, path: impl AsRef<Path>) -> Result<StreamSession> {
        let path = path.as_ref();
        let (seed, batches) = crate::journal::read(path)?;
        let mut session = StreamSession::new(config, seed)?;
        for batch in &batches {
            session.inc.ingest(batch, &session.engine)?;
            session.log.push_batch(batch);
        }
        session.journal = Some(JournalWriter::append(path)?);
        Ok(session)
    }

    /// Start journaling to `path`. Writes a snapshot of the *current*
    /// accumulated dataset as the journal's seed (compacting any batches
    /// ingested so far) and appends every subsequent batch.
    pub fn journal_to(&mut self, path: impl AsRef<Path>) -> Result<()> {
        self.journal = Some(JournalWriter::create(path, self.inc.dataset())?);
        Ok(())
    }

    /// Apply one micro-batch: mutate the dataset, refresh the dirtied
    /// model layers, re-score the dirtied triples, journal the batch, and
    /// report what changed.
    ///
    /// Input errors (bad ids, an unclaimed new triple) are detected
    /// before any state mutates, so an `Err` from them leaves the
    /// session — and its journal — untouched. The batch is journalled
    /// only after it was applied and scored; if the journal append itself
    /// fails (an I/O problem), the in-memory session has already advanced
    /// — call [`StreamSession::journal_to`] to re-snapshot onto healthy
    /// storage.
    pub fn ingest(&mut self, batch: &[Event]) -> Result<ScoredDelta> {
        let outcome = self.inc.ingest(batch, &self.engine)?;
        self.log.push_batch(batch);
        if let Some(journal) = &mut self.journal {
            journal.append_batch(batch)?;
        }
        let flips = outcome
            .rescored
            .iter()
            .filter(|st| {
                st.before
                    .is_some_and(|b| (b > self.threshold) != (st.after > self.threshold))
            })
            .copied()
            .collect();
        Ok(ScoredDelta {
            refit: outcome.refit,
            rescored: outcome.rescored,
            flips,
            cache: outcome.cache,
        })
    }

    /// The accumulated dataset.
    pub fn dataset(&self) -> &Dataset {
        self.inc.dataset()
    }

    /// The currently fitted model.
    pub fn fuser(&self) -> &Fuser {
        self.inc.fuser()
    }

    /// The fit configuration.
    pub fn config(&self) -> &FuserConfig {
        self.inc.config()
    }

    /// Current posterior per triple, in `TripleId` order.
    pub fn scores(&self) -> &[f64] {
        self.inc.scores()
    }

    /// Accept/reject decisions at the session threshold.
    pub fn decisions(&self) -> Vec<bool> {
        self.inc
            .scores()
            .iter()
            .map(|&p| p > self.threshold)
            .collect()
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Every batch ingested by this session (post-restore batches only
    /// count once: replayed history lives here too).
    pub fn delta_log(&self) -> &DeltaLog {
        &self.log
    }

    /// Cumulative score-cache counters.
    pub fn score_cache_stats(&self) -> CacheStats {
        self.inc.score_cache_stats()
    }

    /// Cumulative joint-rate memo counters across cluster joints.
    pub fn joint_cache_stats(&self) -> CacheStats {
        self.inc.joint_cache_stats()
    }
}
