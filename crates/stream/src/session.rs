//! [`StreamSession`]: the micro-batching front end over
//! [`IncrementalFuser`], with decision tracking and journal persistence.

use std::path::Path;

use corrfuse_core::cluster::LiftGraphStats;
use corrfuse_core::dataset::Dataset;
use corrfuse_core::engine::ScoringEngine;
use corrfuse_core::error::Result;
use corrfuse_core::fuser::{ClusterReconcile, Fuser, FuserConfig};
use corrfuse_core::joint::{CacheStats, JointDeltaStats};
use corrfuse_obs::Span;

use crate::event::{DeltaLog, Event, LogRetention};
use crate::incremental::{IncrementalFuser, RefitLevel, ScoredTriple, StageTimings};
use crate::journal::{FsyncPolicy, JournalWriter};

/// What one ingested batch changed, from the caller's point of view.
#[derive(Debug, Clone)]
pub struct ScoredDelta {
    /// How much of the model the batch forced to be rebuilt.
    pub refit: RefitLevel,
    /// Every re-scored triple with before/after posteriors.
    pub rescored: Vec<ScoredTriple>,
    /// The subset of `rescored` whose accept/reject decision flipped at
    /// the session threshold (new triples have no prior decision and are
    /// never flips).
    pub flips: Vec<ScoredTriple>,
    /// Score-cache hits/misses attributable to this batch.
    pub cache: CacheStats,
    /// On a [`RefitLevel::Cluster`] batch, how many cluster units the
    /// re-clustering reused vs. refitted.
    pub reconcile: Option<ClusterReconcile>,
    /// End-to-end apply+rescore time in nanoseconds (always measured,
    /// journal append excluded) — attribute it via `refit`.
    pub elapsed_ns: u64,
    /// Journal append + fsync time in nanoseconds; 0 when the session
    /// isn't journaling.
    pub journal_ns: u64,
    /// Per-stage breakdown, `Some` only when the session's
    /// [`FuserConfig::spans`] toggle is on.
    pub stages: Option<StageTimings>,
}

/// A live fusion session: seed snapshot + stream of micro-batches.
///
/// ```
/// use corrfuse_core::fuser::{FuserConfig, Method};
/// use corrfuse_core::DatasetBuilder;
/// use corrfuse_stream::{Event, StreamSession};
///
/// let mut b = DatasetBuilder::new();
/// let (s, t) = b.observe_named("A", "x", "p", "1");
/// b.label(t, true);
/// let t2 = b.triple("y", "p", "2");
/// b.observe(s, t2);
/// b.label(t2, false);
/// let mut session =
///     StreamSession::new(FuserConfig::new(Method::PrecRec), b.build().unwrap()).unwrap();
/// let delta = session
///     .ingest(&[Event::add_triple("z", "p", "3"), Event::claim(s, corrfuse_core::TripleId(2))])
///     .unwrap();
/// assert_eq!(delta.rescored.len(), 1);
/// ```
#[derive(Debug)]
pub struct StreamSession {
    inc: IncrementalFuser,
    engine: ScoringEngine,
    log: DeltaLog,
    journal: Option<JournalWriter>,
    threshold: f64,
    retention: LogRetention,
    /// Replication epoch: the number of batches committed into this
    /// session since epoch 0, counting batches replayed from a journal
    /// (restore/recover resume at `base_epoch + replayed`). Two sessions
    /// at the same epoch that started from the same epoch-stamped seed
    /// hold bitwise-identical state.
    epoch: u64,
}

/// What [`StreamSession::recover`] salvaged from a crashed journal.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Whether a torn (unterminated) final line was dropped.
    pub torn: bool,
    /// Bytes trimmed off the journal file to restore a well-formed tail.
    pub dropped_bytes: u64,
    /// Event batches replayed from the surviving prefix (a trailing run
    /// without a batch boundary counts as one partial batch).
    pub batches_replayed: usize,
}

impl StreamSession {
    /// Open a session on a seed snapshot with the default (parallel)
    /// scoring engine. Parallel and serial scoring are bitwise identical,
    /// so the choice is purely about throughput.
    pub fn new(config: FuserConfig, seed: Dataset) -> Result<StreamSession> {
        Self::with_engine(config, seed, ScoringEngine::default())
    }

    /// Open a session with an explicit scoring engine.
    pub fn with_engine(
        config: FuserConfig,
        seed: Dataset,
        engine: ScoringEngine,
    ) -> Result<StreamSession> {
        let inc = IncrementalFuser::fit(config, seed, &engine)?;
        Ok(StreamSession {
            inc,
            engine,
            log: DeltaLog::new(),
            journal: None,
            threshold: 0.5,
            retention: LogRetention::KeepAll,
            epoch: 0,
        })
    }

    /// Override the decision threshold (default 0.5, the paper's setting).
    pub fn with_threshold(mut self, threshold: f64) -> StreamSession {
        self.threshold = threshold;
        self
    }

    /// Override the base epoch (default 0). Used when the seed dataset
    /// is itself a snapshot taken at a known epoch — e.g. a replication
    /// follower bootstrapping from a leader snapshot at epoch `e` — so
    /// this session's epoch numbering continues the leader's.
    pub fn with_epoch(mut self, epoch: u64) -> StreamSession {
        self.epoch = epoch;
        self
    }

    /// Override the in-memory delta-log retention (default
    /// [`LogRetention::KeepAll`]). Bounded retention applies immediately
    /// and after every subsequent ingest, so a long-running journaled
    /// session does not accumulate its whole history in memory.
    pub fn with_log_retention(mut self, retention: LogRetention) -> StreamSession {
        self.set_log_retention(retention);
        self
    }

    /// See [`StreamSession::with_log_retention`].
    pub fn set_log_retention(&mut self, retention: LogRetention) {
        self.retention = retention;
        self.apply_retention();
    }

    fn apply_retention(&mut self) {
        if let LogRetention::LastBatches(k) = self.retention {
            self.log.retain_last(k);
        }
    }

    /// Restore a session from a `#corrfuse-journal v1` file: rebuild the
    /// seed, replay every recorded batch through the incremental path,
    /// and keep appending new batches to the same file.
    pub fn restore(config: FuserConfig, path: impl AsRef<Path>) -> Result<StreamSession> {
        let path = path.as_ref();
        let (base_epoch, seed, batches) = crate::journal::read_at(path)?;
        let mut session = Self::replayed(config, seed, &batches)?;
        session.epoch = base_epoch + batches.len() as u64;
        session.journal = Some(JournalWriter::append(path)?);
        Ok(session)
    }

    /// Crash-tolerant [`StreamSession::restore`]: a torn final journal
    /// line (e.g. the file was truncated mid-append when a shard worker
    /// died) is dropped, the file is truncated back to its well-formed
    /// prefix, and the session resumes appending from there with the
    /// given durability policy.
    ///
    /// A tear can also leave an *unterminated trailing batch* (events
    /// with no `+B`). If its surviving prefix replays cleanly it is kept
    /// and sealed in the file, so later appends do not merge into it; if
    /// it does not (e.g. a new triple whose claims were lost to the
    /// tear), the whole partial batch is discarded and the file is cut
    /// back to the last complete batch boundary — batches are atomic
    /// under recovery.
    pub fn recover(
        config: FuserConfig,
        path: impl AsRef<Path>,
        fsync: FsyncPolicy,
    ) -> Result<(StreamSession, RecoveryReport)> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let file_len = text.len() as u64;
        let recovered = crate::journal::recover(&text)?;
        let mut good_len = recovered.good_len as usize;
        let mut batches = recovered.batches;
        let prefix = &text[..good_len];
        // Event lines always follow the `#events` marker line, so a
        // closed tail ends with a newline-anchored batch boundary.
        let open_tail = !batches.is_empty() && !prefix.ends_with(crate::journal::BOUNDARY_LINE);
        let mut dropped_partial = false;
        let mut replayed = Self::replayed(config.clone(), recovered.seed.clone(), &batches);
        if replayed.is_err() && open_tail {
            batches.pop();
            good_len = crate::journal::last_complete_boundary(prefix);
            dropped_partial = true;
            replayed = Self::replayed(config, recovered.seed, &batches);
        }
        let mut session = replayed?;
        session.epoch = recovered.base_epoch + batches.len() as u64;
        if (good_len as u64) < file_len {
            let f = std::fs::OpenOptions::new().write(true).open(path)?;
            f.set_len(good_len as u64)?;
            f.sync_all()?;
        }
        let mut writer = JournalWriter::append_with(path, fsync)?;
        if open_tail && !dropped_partial {
            // Close the surviving partial batch exactly as it was
            // replayed (an empty append writes just the `+B` boundary).
            writer.append_batch(&[])?;
        }
        session.journal = Some(writer);
        let report = RecoveryReport {
            torn: recovered.torn || dropped_partial,
            dropped_bytes: file_len - good_len as u64,
            batches_replayed: batches.len(),
        };
        Ok((session, report))
    }

    /// Seed a session and replay recorded batches through the
    /// incremental path.
    fn replayed(
        config: FuserConfig,
        seed: Dataset,
        batches: &[Vec<Event>],
    ) -> Result<StreamSession> {
        let mut session = StreamSession::new(config, seed)?;
        for batch in batches {
            session.inc.ingest(batch, &session.engine)?;
            session.log.push_batch(batch);
        }
        Ok(session)
    }

    /// Start journaling to `path`. Writes a snapshot of the *current*
    /// accumulated dataset as the journal's seed (compacting any batches
    /// ingested so far) and appends every subsequent batch. No explicit
    /// fsyncing; see [`StreamSession::journal_to_with`].
    pub fn journal_to(&mut self, path: impl AsRef<Path>) -> Result<()> {
        self.journal_to_with(path, FsyncPolicy::Never)
    }

    /// [`StreamSession::journal_to`] with an explicit durability policy
    /// for the snapshot and every appended batch. The snapshot is
    /// stamped with the session's current epoch, so a restore resumes
    /// epoch numbering where this session stands now.
    pub fn journal_to_with(&mut self, path: impl AsRef<Path>, fsync: FsyncPolicy) -> Result<()> {
        self.journal = Some(JournalWriter::create_at(
            path,
            self.inc.dataset(),
            fsync,
            self.epoch,
        )?);
        Ok(())
    }

    /// Compact the active journal in place: atomically rewrite it as a
    /// snapshot of the current accumulated dataset (no events), then
    /// resume appending. Bounds journal growth on long-running sessions;
    /// returns the new journal size in bytes.
    ///
    /// The compacted snapshot is stamped with the session's current
    /// epoch, so restore/recover — and any replication follower
    /// bootstrapping from the rotated file — resume epoch numbering
    /// rather than restarting it at zero.
    pub fn rotate_journal(&mut self) -> Result<u64> {
        let Some(journal) = &mut self.journal else {
            return Err(corrfuse_core::error::FusionError::Io(
                "rotate_journal called with no active journal".to_string(),
            ));
        };
        journal.rotate_at(self.inc.dataset(), self.epoch)
    }

    /// Size in bytes of the active journal, if journaling.
    pub fn journal_bytes(&self) -> Option<u64> {
        self.journal.as_ref().map(JournalWriter::bytes)
    }

    /// Force the active journal to stable storage (graceful shutdown),
    /// regardless of its running [`FsyncPolicy`]. No-op without a
    /// journal.
    pub fn seal_journal(&mut self) -> Result<()> {
        match &mut self.journal {
            Some(journal) => journal.seal(),
            None => Ok(()),
        }
    }

    /// Apply one micro-batch: mutate the dataset, refresh the dirtied
    /// model layers, re-score the dirtied triples, journal the batch, and
    /// report what changed.
    ///
    /// Input errors (bad ids, an unclaimed new triple) are detected
    /// before any state mutates, so an `Err` from them leaves the
    /// session — and its journal — untouched. The batch is journalled
    /// only after it was applied and scored; if the journal append itself
    /// fails (an I/O problem), the in-memory session has already advanced
    /// — call [`StreamSession::journal_to`] to re-snapshot onto healthy
    /// storage.
    ///
    /// ```
    /// use corrfuse_core::fuser::{FuserConfig, Method};
    /// use corrfuse_core::{DatasetBuilder, SourceId, TripleId};
    /// use corrfuse_stream::{Event, RefitLevel, StreamSession};
    ///
    /// let mut b = DatasetBuilder::new();
    /// let (s, t1) = b.observe_named("A", "x", "p", "1");
    /// b.label(t1, true);
    /// let t2 = b.triple("y", "p", "2");
    /// b.observe(s, t2);
    /// b.label(t2, false);
    /// let mut session =
    ///     StreamSession::new(FuserConfig::new(Method::PrecRec), b.build().unwrap()).unwrap();
    ///
    /// // A new claimed triple: the fast path — no model refit, one
    /// // triple re-scored, no decision flips.
    /// let delta = session
    ///     .ingest(&[Event::add_triple("z", "p", "3"), Event::claim(s, TripleId(2))])
    ///     .unwrap();
    /// assert_eq!(delta.refit, RefitLevel::None);
    /// assert_eq!(delta.rescored.len(), 1);
    /// assert!(delta.flips.is_empty());
    ///
    /// // A label refreshes the quality model and re-scores everything.
    /// let delta = session.ingest(&[Event::label(TripleId(2), true)]).unwrap();
    /// assert_eq!(delta.refit, RefitLevel::Model);
    /// assert_eq!(session.scores().len(), 3);
    ///
    /// // Input errors never mutate: the bad batch is fully rejected.
    /// assert!(session.ingest(&[Event::claim(SourceId(9), TripleId(0))]).is_err());
    /// assert_eq!(session.dataset().n_triples(), 3);
    /// ```
    pub fn ingest(&mut self, batch: &[Event]) -> Result<ScoredDelta> {
        let outcome = self.inc.ingest(batch, &self.engine)?;
        self.epoch += 1;
        self.log.push_batch(batch);
        self.apply_retention();
        let mut journal_ns = 0;
        if let Some(journal) = &mut self.journal {
            let journal_span = Span::start(true);
            journal.append_batch(batch)?;
            journal_ns = journal_span.elapsed_ns();
        }
        let flips = outcome
            .rescored
            .iter()
            .filter(|st| {
                st.before
                    .is_some_and(|b| (b > self.threshold) != (st.after > self.threshold))
            })
            .copied()
            .collect();
        Ok(ScoredDelta {
            refit: outcome.refit,
            rescored: outcome.rescored,
            flips,
            cache: outcome.cache,
            reconcile: outcome.reconcile,
            elapsed_ns: outcome.elapsed_ns,
            journal_ns,
            stages: outcome.stages,
        })
    }

    /// The scoring engine driving batch re-scores.
    pub fn engine(&self) -> &ScoringEngine {
        &self.engine
    }

    /// Swap the scoring engine. Safe at any batch boundary: the engine
    /// spawns scoped threads per scoring call and holds no state between
    /// batches, and parallel and serial scoring are bitwise identical,
    /// so resizing mid-stream never changes a score — it only changes
    /// throughput. This is what shard-thread autosizing builds on.
    pub fn set_engine(&mut self, engine: ScoringEngine) {
        self.engine = engine;
    }

    /// The accumulated dataset.
    pub fn dataset(&self) -> &Dataset {
        self.inc.dataset()
    }

    /// The currently fitted model.
    pub fn fuser(&self) -> &Fuser {
        self.inc.fuser()
    }

    /// The fit configuration.
    pub fn config(&self) -> &FuserConfig {
        self.inc.config()
    }

    /// Current posterior per triple, in `TripleId` order.
    pub fn scores(&self) -> &[f64] {
        self.inc.scores()
    }

    /// Accept/reject decisions at the session threshold.
    pub fn decisions(&self) -> Vec<bool> {
        self.inc
            .scores()
            .iter()
            .map(|&p| p > self.threshold)
            .collect()
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The session's replication epoch: batches committed since epoch 0,
    /// including batches replayed from the journal at restore/recover.
    /// Increments once per successful [`StreamSession::ingest`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The batches ingested by this session (post-restore batches only
    /// count once: replayed history lives here too). Under a bounded
    /// [`LogRetention`] only the most recent batches are retained; the
    /// journal is then the replay source of record.
    pub fn delta_log(&self) -> &DeltaLog {
        &self.log
    }

    /// The session's delta-log retention policy.
    pub fn log_retention(&self) -> LogRetention {
        self.retention
    }

    /// Cumulative score-cache counters.
    pub fn score_cache_stats(&self) -> CacheStats {
        self.inc.score_cache_stats()
    }

    /// Cumulative joint-rate memo counters across cluster joints.
    pub fn joint_cache_stats(&self) -> CacheStats {
        self.inc.joint_cache_stats()
    }

    /// Cumulative incremental-maintenance counters across cluster joints
    /// (row deltas absorbed in place vs. full row rescans). Counters
    /// restart when a full refit rebuilds the joints.
    pub fn joint_delta_stats(&self) -> JointDeltaStats {
        self.inc.joint_delta_stats()
    }

    /// Lift-graph occupancy counters (exact pairs tracked, sketch-pruned
    /// pairs). Zero when clustering is not data-driven.
    pub fn lift_stats(&self) -> LiftGraphStats {
        self.inc.lift_stats()
    }
}
