//! Memoised per-triple posteriors keyed by observation-pattern
//! fingerprint.
//!
//! For a fixed fitted model and fixed source scopes, a triple's posterior
//! `Pr(t | O_t)` is a pure function of `(domain, provider set)`: the
//! domain determines the scope mask, the provider set determines every
//! likelihood term. Realistic workloads have far fewer distinct patterns
//! than triples (a handful of sources yields at most `2^n` patterns), so
//! even a model-level refit that dirties every triple re-computes each
//! pattern once and serves the rest from this cache.
//!
//! Invalidation is the caller's job and is coarse by design: any model
//! change flushes everything (every pattern's score moved); a scope
//! expansion invalidates one domain.

use std::collections::HashMap;

use corrfuse_core::bits::BitSet;
use corrfuse_core::dataset::Domain;
use corrfuse_core::joint::CacheStats;

/// The fingerprint a score is keyed by: the triple's domain plus its
/// exact provider set.
pub type ScoreKey = (Domain, BitSet);

/// A score memo table with hit/miss counters. See the module docs.
#[derive(Debug, Default)]
pub struct ScoreCache {
    map: HashMap<ScoreKey, f64>,
    hits: u64,
    misses: u64,
}

impl ScoreCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a pattern, bumping the hit/miss counters. A miss means the
    /// persistent cache could not serve the lookup (the caller may still
    /// avoid recomputation by deduplicating patterns within a batch).
    pub fn get(&mut self, key: &ScoreKey) -> Option<f64> {
        let found = self.map.get(key).copied();
        match found {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        found
    }

    /// Memoise a computed score.
    pub fn insert(&mut self, key: ScoreKey, score: f64) {
        self.map.insert(key, score);
    }

    /// Drop every entry (model changed: all patterns moved). Counters are
    /// cumulative and survive.
    pub fn flush(&mut self) {
        self.map.clear();
    }

    /// Drop the entries of one domain (its scope mask changed).
    pub fn invalidate_domain(&mut self, domain: Domain) {
        self.map.retain(|(d, _), _| *d != domain);
    }

    /// Number of memoised patterns.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoised.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(domain: u32, providers: &[usize]) -> ScoreKey {
        (
            Domain(domain),
            BitSet::from_indices(8, providers.iter().copied()),
        )
    }

    #[test]
    fn get_insert_and_counters() {
        let mut c = ScoreCache::new();
        let k = key(0, &[1, 3]);
        assert_eq!(c.get(&k), None);
        c.insert(k.clone(), 0.75);
        assert_eq!(c.get(&k), Some(0.75));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn flush_keeps_counters() {
        let mut c = ScoreCache::new();
        c.insert(key(0, &[1]), 0.5);
        let _ = c.get(&key(0, &[1]));
        c.flush();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.get(&key(0, &[1])), None);
    }

    #[test]
    fn domain_invalidation_is_selective() {
        let mut c = ScoreCache::new();
        c.insert(key(0, &[1]), 0.5);
        c.insert(key(1, &[1]), 0.6);
        c.invalidate_domain(Domain(1));
        assert_eq!(c.get(&key(0, &[1])), Some(0.5));
        assert_eq!(c.get(&key(1, &[1])), None);
    }
}
