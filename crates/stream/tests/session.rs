//! Integration tests for the streaming subsystem: refit levels, the
//! incremental-vs-batch equivalence invariant on hand-built streams, and
//! journal persistence.

use corrfuse_core::dataset::{Dataset, DatasetBuilder, Domain, SourceId};
use corrfuse_core::engine::ScoringEngine;
use corrfuse_core::fuser::{ClusterStrategy, Fuser, FuserConfig, Method};
use corrfuse_core::triple::TripleId;
use corrfuse_stream::{replay, Event, RefitLevel, StreamSession};

/// The paper's Figure 1 seed (5 sources, 10 labelled triples).
fn figure1() -> Dataset {
    let mut b = DatasetBuilder::new();
    let sources: Vec<_> = (1..=5).map(|i| b.source(format!("S{i}"))).collect();
    let rows: [(&str, bool, &[usize]); 10] = [
        ("t1", true, &[1, 2, 4, 5]),
        ("t2", false, &[1, 2]),
        ("t3", true, &[3]),
        ("t4", true, &[2, 3, 4, 5]),
        ("t5", false, &[2, 3]),
        ("t6", true, &[1, 4, 5]),
        ("t7", true, &[1, 2, 3]),
        ("t8", false, &[1, 2, 4, 5]),
        ("t9", false, &[1, 2, 4, 5]),
        ("t10", true, &[1, 3, 4, 5]),
    ];
    for (name, truth, provs) in rows {
        let t = b.triple("Obama", "fact", name);
        for &p in provs {
            b.observe(sources[p - 1], t);
        }
        b.label(t, truth);
    }
    b.build().unwrap()
}

/// Assert the equivalence invariant: the session's scores are bitwise
/// identical to a from-scratch fit on the accumulated dataset.
fn assert_equivalent(session: &StreamSession, seed: &Dataset) {
    let accumulated = replay::accumulate(seed, session.delta_log().events()).unwrap();
    let fresh = Fuser::fit(session.config(), &accumulated, accumulated.gold().unwrap()).unwrap();
    let batch_scores = fresh.score_all(&accumulated).unwrap();
    let inc_scores = session.scores();
    assert_eq!(batch_scores.len(), inc_scores.len());
    for (i, (a, b)) in inc_scores.iter().zip(&batch_scores).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "triple {i}: incremental {a} vs batch {b}"
        );
    }
}

#[test]
fn claims_on_unlabelled_triples_take_the_fast_path() {
    let seed = figure1();
    let mut session = StreamSession::new(FuserConfig::new(Method::Exact), seed.clone()).unwrap();
    let delta = session
        .ingest(&[
            Event::add_triple("Obama", "fact", "t11"),
            Event::claim(SourceId(0), TripleId(10)),
            Event::claim(SourceId(3), TripleId(10)),
            Event::claim(SourceId(4), TripleId(10)),
        ])
        .unwrap();
    assert_eq!(delta.refit, RefitLevel::None);
    assert_eq!(delta.rescored.len(), 1);
    assert_eq!(delta.rescored[0].triple, TripleId(10));
    assert_eq!(delta.rescored[0].before, None);
    assert!(delta.flips.is_empty(), "new triples are not flips");
    assert_equivalent(&session, &seed);
}

#[test]
fn labels_force_a_model_refit_and_stay_equivalent() {
    let seed = figure1();
    for method in [
        Method::Exact,
        Method::Aggressive,
        Method::Elastic(2),
        Method::PrecRec,
    ] {
        let mut session = StreamSession::new(FuserConfig::new(method), seed.clone()).unwrap();
        // A labelled triple arrives: claims + a label in one batch.
        let delta = session
            .ingest(&[
                Event::add_triple("Obama", "fact", "t11"),
                Event::claim(SourceId(1), TripleId(10)),
                Event::claim(SourceId(2), TripleId(10)),
                Event::label(TripleId(10), true),
            ])
            .unwrap();
        assert_eq!(delta.refit, RefitLevel::Model, "{method:?}");
        assert_eq!(delta.rescored.len(), 11, "{method:?}: all triples rescored");
        assert_equivalent(&session, &seed);

        // A claim touching an already-labelled triple also refits.
        let delta = session
            .ingest(&[Event::claim(SourceId(3), TripleId(1))])
            .unwrap();
        assert_eq!(delta.refit, RefitLevel::Model, "{method:?}");
        assert_equivalent(&session, &seed);

        // A relabel (flip) is absorbed incrementally too.
        let delta = session
            .ingest(&[Event::label(TripleId(10), false)])
            .unwrap();
        assert_eq!(delta.refit, RefitLevel::Model, "{method:?}");
        assert_equivalent(&session, &seed);
    }
}

#[test]
fn new_sources_fall_back_to_a_full_refit() {
    let seed = figure1();
    let mut session = StreamSession::new(FuserConfig::new(Method::Exact), seed.clone()).unwrap();
    let delta = session
        .ingest(&[
            Event::add_source("S6"),
            Event::add_triple("Obama", "fact", "t11"),
            Event::claim(SourceId(5), TripleId(10)),
            Event::label(TripleId(10), true),
        ])
        .unwrap();
    assert_eq!(delta.refit, RefitLevel::Full);
    assert_equivalent(&session, &seed);
    // The new source participates in later batches incrementally.
    let delta = session
        .ingest(&[
            Event::add_triple("Obama", "fact", "t12"),
            Event::claim(SourceId(5), TripleId(11)),
        ])
        .unwrap();
    assert_eq!(delta.refit, RefitLevel::None);
    assert_equivalent(&session, &seed);
}

#[test]
fn duplicate_events_are_no_ops() {
    let seed = figure1();
    let mut session = StreamSession::new(FuserConfig::new(Method::Exact), seed.clone()).unwrap();
    let delta = session
        .ingest(&[
            Event::add_source("S1"),                  // existing name
            Event::add_triple("Obama", "fact", "t1"), // existing triple
            Event::claim(SourceId(0), TripleId(0)),   // existing claim
            Event::label(TripleId(0), true),          // same label
        ])
        .unwrap();
    assert_eq!(delta.refit, RefitLevel::None);
    assert!(delta.rescored.is_empty());
    assert_equivalent(&session, &seed);
}

#[test]
fn cross_domain_claims_rescore_the_rescoped_domain() {
    // Two domains; source "books" initially covers only domain 1. Its
    // first claim into domain 2 puts every domain-2 triple in its scope.
    let mut b = DatasetBuilder::new();
    let books = b.source("books");
    let bios = b.source("bios");
    let t0 = b.triple("b1", "author", "X");
    let t1 = b.triple("p1", "born", "1960");
    let t2 = b.triple("p2", "born", "1970");
    b.set_domain(t0, Domain(1));
    b.set_domain(t1, Domain(2));
    b.set_domain(t2, Domain(2));
    b.observe(books, t0);
    b.observe(bios, t1);
    b.observe(bios, t2);
    b.label(t0, true);
    b.label(t1, true);
    b.label(t2, false);
    let seed = b.build().unwrap();

    let mut session = StreamSession::new(
        FuserConfig::new(Method::Exact).with_strategy(ClusterStrategy::SingleCluster),
        seed.clone(),
    )
    .unwrap();
    // New domain-2 triple claimed by `books`: scope expansion → labelled
    // domain-2 triples enter its recall denominator → model refit.
    let delta = session
        .ingest(&[
            Event::add_triple_in("p3", "born", "1980", Domain(2)),
            Event::claim(SourceId(0), TripleId(3)),
        ])
        .unwrap();
    assert_eq!(delta.refit, RefitLevel::Model);
    assert_equivalent(&session, &seed);
}

#[test]
fn scope_expansion_without_labels_stays_on_the_fast_path() {
    // Domain 3 has only unlabelled triples, so a source expanding into it
    // changes scope masks but no estimator count: the whole domain is
    // re-scored without touching the model.
    let mut b = DatasetBuilder::new();
    let s0 = b.source("A");
    let s1 = b.source("B");
    let t0 = b.triple("x", "p", "1");
    let t1 = b.triple("y", "p", "2");
    b.observe(s0, t0);
    b.observe(s1, t0);
    b.observe(s0, t1);
    b.label(t0, true);
    b.label(t1, false);
    let t2 = b.triple("z", "q", "3");
    b.set_domain(t2, Domain(3));
    b.observe(s0, t2);
    let seed = b.build().unwrap();

    let mut session = StreamSession::new(FuserConfig::new(Method::PrecRec), seed.clone()).unwrap();
    let delta = session
        .ingest(&[
            Event::add_triple_in("w", "q", "4", Domain(3)),
            Event::claim(SourceId(1), TripleId(3)),
        ])
        .unwrap();
    assert_eq!(delta.refit, RefitLevel::None);
    // Both domain-3 triples re-score: t3 is new, t2 gained an in-scope
    // non-provider.
    let rescored: Vec<TripleId> = delta.rescored.iter().map(|st| st.triple).collect();
    assert!(rescored.contains(&TripleId(2)));
    assert!(rescored.contains(&TripleId(3)));
    assert_equivalent(&session, &seed);
}

#[test]
fn flips_are_reported_with_before_and_after() {
    let seed = figure1();
    // Under PrecRec, t8 (= TripleId(7)) starts accepted (Example 3.3).
    let mut session = StreamSession::new(FuserConfig::new(Method::PrecRec), seed.clone()).unwrap();
    assert!(session.scores()[7] > 0.5);
    // Label enough of the providers' output false that their estimated
    // quality drops and t8 is rejected: add false labelled triples
    // provided by S1, S2, S4, S5.
    let mut events = Vec::new();
    for k in 0..4u32 {
        events.push(Event::add_triple("Obama", "fact", format!("junk{k}")));
        let t = TripleId(10 + k);
        for s in [0u32, 1, 3, 4] {
            events.push(Event::claim(SourceId(s), t));
        }
        events.push(Event::label(t, false));
    }
    let delta = session.ingest(&events).unwrap();
    assert_eq!(delta.refit, RefitLevel::Model);
    assert!(
        delta
            .flips
            .iter()
            .any(|st| st.triple == TripleId(7) && st.before.unwrap() > 0.5 && st.after <= 0.5),
        "t8 should flip to rejected; flips: {:?}",
        delta.flips
    );
    assert_equivalent(&session, &seed);
}

#[test]
fn bad_batches_are_rejected_without_mutating_the_session() {
    let seed = figure1();
    let mut session = StreamSession::new(FuserConfig::new(Method::Exact), seed).unwrap();
    let before_scores: Vec<u64> = session.scores().iter().map(|s| s.to_bits()).collect();

    // A new triple with no claim in its batch.
    let err = session
        .ingest(&[Event::add_triple("Obama", "fact", "orphan")])
        .unwrap_err();
    assert!(err.to_string().contains("no providing source"), "{err}");

    // Unknown ids — even midway through an otherwise-valid batch.
    for bad in [
        Event::claim(SourceId(99), TripleId(0)),
        Event::claim(SourceId(0), TripleId(99)),
        Event::label(TripleId(99), true),
    ] {
        let batch = [
            Event::add_triple("Obama", "fact", "fine"),
            Event::claim(SourceId(0), TripleId(10)),
            bad,
        ];
        assert!(session.ingest(&batch).is_err());
    }

    // Atomicity: nothing leaked into the session from any failed batch.
    assert_eq!(session.dataset().n_triples(), 10);
    assert_eq!(session.dataset().n_sources(), 5);
    assert!(session.delta_log().is_empty());
    let after_scores: Vec<u64> = session.scores().iter().map(|s| s.to_bits()).collect();
    assert_eq!(before_scores, after_scores);

    // Ids introduced by the batch itself do resolve during validation.
    session
        .ingest(&[
            Event::add_source("S6"),
            Event::add_triple("Obama", "fact", "fresh"),
            Event::claim(SourceId(5), TripleId(10)),
        ])
        .unwrap();
    assert_eq!(session.dataset().n_triples(), 11);
}

#[test]
fn score_cache_serves_repeated_patterns() {
    let seed = figure1();
    let mut session = StreamSession::new(FuserConfig::new(Method::Exact), seed.clone()).unwrap();
    // Two new triples with the *same* provider pattern: one engine
    // computation, one cache hit.
    let delta = session
        .ingest(&[
            Event::add_triple("Obama", "fact", "t11"),
            Event::claim(SourceId(0), TripleId(10)),
            Event::claim(SourceId(3), TripleId(10)),
        ])
        .unwrap();
    assert_eq!(delta.cache.misses, 1);
    let delta = session
        .ingest(&[
            Event::add_triple("Obama", "fact", "t12"),
            Event::claim(SourceId(0), TripleId(11)),
            Event::claim(SourceId(3), TripleId(11)),
        ])
        .unwrap();
    assert_eq!((delta.cache.hits, delta.cache.misses), (1, 0));
    // Both triples carry the identical score.
    assert_eq!(
        session.scores()[10].to_bits(),
        session.scores()[11].to_bits()
    );
    assert_equivalent(&session, &seed);
}

#[test]
fn journal_roundtrip_restores_an_equivalent_session() {
    let dir = std::env::temp_dir().join("corrfuse-stream-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.journal");

    let seed = figure1();
    let config = FuserConfig::new(Method::Exact);
    let mut session =
        StreamSession::with_engine(config.clone(), seed.clone(), ScoringEngine::serial()).unwrap();
    session.journal_to(&path).unwrap();
    session
        .ingest(&[
            Event::add_triple("Obama", "fact", "t11"),
            Event::claim(SourceId(2), TripleId(10)),
        ])
        .unwrap();
    session
        .ingest(&[
            Event::add_source("S6"),
            Event::add_triple("Obama", "fact", "t12"),
            Event::claim(SourceId(5), TripleId(11)),
            Event::label(TripleId(11), true),
        ])
        .unwrap();

    let restored = StreamSession::restore(config.clone(), &path).unwrap();
    assert_eq!(
        restored.dataset().n_triples(),
        session.dataset().n_triples()
    );
    assert_eq!(
        restored.dataset().n_sources(),
        session.dataset().n_sources()
    );
    assert_eq!(restored.delta_log().n_batches(), 2);
    for (a, b) in restored.scores().iter().zip(session.scores()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // The restored session keeps appending to the same journal.
    let mut restored = restored;
    restored
        .ingest(&[
            Event::add_triple("Obama", "fact", "t13"),
            Event::claim(SourceId(0), TripleId(12)),
        ])
        .unwrap();
    let again = StreamSession::restore(config, &path).unwrap();
    assert_eq!(again.dataset().n_triples(), 13);
    for (a, b) in again.scores().iter().zip(restored.scores()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn parallel_and_serial_sessions_agree_bitwise() {
    let seed = figure1();
    let config = FuserConfig::new(Method::Exact);
    let mut serial =
        StreamSession::with_engine(config.clone(), seed.clone(), ScoringEngine::serial()).unwrap();
    let mut parallel =
        StreamSession::with_engine(config, seed, ScoringEngine::with_threads(4)).unwrap();
    let batch = vec![
        Event::add_triple("Obama", "fact", "t11"),
        Event::claim(SourceId(1), TripleId(10)),
        Event::label(TripleId(10), false),
    ];
    serial.ingest(&batch).unwrap();
    parallel.ingest(&batch).unwrap();
    for (a, b) in serial.scores().iter().zip(parallel.scores()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
