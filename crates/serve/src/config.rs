//! Router configuration: sharding, backpressure, micro-batching,
//! journaling and rotation knobs.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use corrfuse_obs::Registry;
use corrfuse_stream::{FsyncPolicy, LogRetention};

use crate::error::{Result, ServeError};

/// What a producer experiences when its shard's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block until the worker frees a slot (lossless, producer slows to
    /// the shard's pace).
    Block,
    /// Fail immediately with [`ServeError::Backpressure`]; the producer
    /// decides whether to retry, shed, or spill.
    Reject,
    /// Block up to the given duration, then fail with
    /// [`ServeError::Backpressure`].
    Timeout(Duration),
}

/// Per-shard journaling (durability) configuration.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding one `shard-<i>.journal` file per shard.
    pub dir: PathBuf,
    /// Durability policy for snapshot and batch writes.
    pub fsync: FsyncPolicy,
    /// Rotate (compact) a shard's journal once it exceeds this many
    /// bytes.
    pub rotate_max_bytes: Option<u64>,
    /// Rotate after this many appended batches since the last snapshot.
    pub rotate_max_batches: Option<u64>,
}

impl JournalConfig {
    /// Journal into `dir` with no fsyncing and no rotation.
    pub fn new(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Never,
            rotate_max_bytes: None,
            rotate_max_batches: None,
        }
    }

    /// Set the durability policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> JournalConfig {
        self.fsync = fsync;
        self
    }

    /// Rotate once the journal file exceeds `bytes`.
    pub fn with_rotate_max_bytes(mut self, bytes: u64) -> JournalConfig {
        self.rotate_max_bytes = Some(bytes);
        self
    }

    /// Rotate after `batches` appended batches since the last snapshot.
    pub fn with_rotate_max_batches(mut self, batches: u64) -> JournalConfig {
        self.rotate_max_batches = Some(batches);
        self
    }

    /// The journal path of one shard.
    pub fn shard_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.journal"))
    }
}

/// Leader-side replication tap configuration.
///
/// The tap keeps, per shard, a bounded in-memory backlog of committed
/// batches (in the shared `corrfuse_stream::codec` text encoding, one
/// entry per epoch) plus a list of subscriber queues. A follower whose
/// requested resume epoch is still covered by the backlog gets the
/// missing suffix; one that has fallen further behind gets a fresh
/// dataset snapshot at the current epoch. Subscriber queues are pushed
/// with reject-on-full semantics: a follower that cannot keep up has its
/// queue closed and must resubscribe, so a slow follower can never stall
/// or bloat the leader.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Committed batches retained per shard for resume-from-epoch
    /// subscriptions. Followers behind by more than this bootstrap from
    /// a snapshot instead.
    pub backlog_batches: usize,
    /// Capacity of each subscriber's batch queue, in batches. A full
    /// queue disconnects that subscriber (it resubscribes and, if still
    /// behind the backlog, resnapshots).
    pub subscriber_capacity: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig::new()
    }
}

impl ReplicationConfig {
    /// Defaults: 1024-batch backlog per shard, 256-batch subscriber
    /// queues.
    pub fn new() -> ReplicationConfig {
        ReplicationConfig {
            backlog_batches: 1024,
            subscriber_capacity: 256,
        }
    }

    /// Set the per-shard resume backlog, in batches.
    pub fn with_backlog_batches(mut self, batches: usize) -> ReplicationConfig {
        self.backlog_batches = batches;
        self
    }

    /// Set each subscriber queue's capacity, in batches.
    pub fn with_subscriber_capacity(mut self, batches: usize) -> ReplicationConfig {
        self.subscriber_capacity = batches;
        self
    }
}

/// Full configuration of a [`crate::ShardRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of shards (worker threads / sessions).
    pub n_shards: usize,
    /// Per-shard ingest queue capacity, in messages.
    pub queue_capacity: usize,
    /// Producer-side policy when a queue is full.
    pub backpressure: Backpressure,
    /// A worker flushes its micro-batch once it has buffered at least
    /// this many events...
    pub max_batch_events: usize,
    /// ...or once the oldest buffered message has waited this long.
    pub max_batch_delay: Duration,
    /// Optional per-shard journaling (with rotation and fsync policy).
    pub journal: Option<JournalConfig>,
    /// In-memory delta-log retention per shard session.
    pub retention: LogRetention,
    /// Decision threshold for every shard session.
    pub threshold: f64,
    /// Scoring threads per shard session. Default 1: the shards
    /// themselves are the parallelism; raise it for few-shard deployments
    /// on wide machines.
    pub shard_threads: usize,
    /// Optional bound on joint-count memo entries per cluster joint in
    /// every shard session (overrides the fuser config's
    /// `memo_capacity` when set). Evicted subsets rescan on next touch,
    /// so scores are unchanged — this caps resident memory in wide or
    /// long-running deployments.
    pub memo_capacity: Option<usize>,
    /// Observability registry. When set, shard workers record queue
    /// wait, batch assembly, per-[`corrfuse_stream::RefitLevel`] refit,
    /// rescore, sketch and journal latencies into named histograms (see
    /// `docs/OBSERVABILITY.md`), push per-batch traces into the
    /// registry's trace ring, and each shard session runs with
    /// `FuserConfig::spans` on. `None` (the default) records nothing —
    /// no clock reads beyond the always-on per-ingest totals.
    pub metrics: Option<Arc<Registry>>,
    /// Leader-side replication tap. When set, every shard records its
    /// committed batches into a bounded backlog and accepts follower
    /// subscriptions via [`crate::ShardRouter::subscribe`]. `None` (the
    /// default) records nothing — no per-batch encoding cost.
    pub replication: Option<ReplicationConfig>,
}

impl RouterConfig {
    /// Defaults: bounded queue of 1024 messages, blocking backpressure,
    /// 256-event / 2 ms micro-batches, no journaling, full delta-log
    /// retention, threshold 0.5, serial per-shard scoring.
    pub fn new(n_shards: usize) -> RouterConfig {
        RouterConfig {
            n_shards,
            queue_capacity: 1024,
            backpressure: Backpressure::Block,
            max_batch_events: 256,
            max_batch_delay: Duration::from_millis(2),
            journal: None,
            retention: LogRetention::KeepAll,
            threshold: 0.5,
            shard_threads: 1,
            memo_capacity: None,
            metrics: None,
            replication: None,
        }
    }

    /// Set the queue capacity (messages).
    pub fn with_queue_capacity(mut self, capacity: usize) -> RouterConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Set the backpressure policy.
    pub fn with_backpressure(mut self, policy: Backpressure) -> RouterConfig {
        self.backpressure = policy;
        self
    }

    /// Set the micro-batching knobs.
    pub fn with_batching(mut self, max_events: usize, max_delay: Duration) -> RouterConfig {
        self.max_batch_events = max_events;
        self.max_batch_delay = max_delay;
        self
    }

    /// Enable per-shard journaling.
    pub fn with_journal(mut self, journal: JournalConfig) -> RouterConfig {
        self.journal = Some(journal);
        self
    }

    /// Set the per-shard delta-log retention.
    pub fn with_retention(mut self, retention: LogRetention) -> RouterConfig {
        self.retention = retention;
        self
    }

    /// Set the decision threshold.
    pub fn with_threshold(mut self, threshold: f64) -> RouterConfig {
        self.threshold = threshold;
        self
    }

    /// Set the per-shard scoring thread count.
    pub fn with_shard_threads(mut self, threads: usize) -> RouterConfig {
        self.shard_threads = threads;
        self
    }

    /// Bound joint-count memo entries per cluster joint in every shard.
    pub fn with_memo_capacity(mut self, max_entries: usize) -> RouterConfig {
        self.memo_capacity = Some(max_entries);
        self
    }

    /// Record shard latencies and batch traces into `registry`.
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> RouterConfig {
        self.metrics = Some(registry);
        self
    }

    /// Enable the leader-side replication tap.
    pub fn with_replication(mut self, replication: ReplicationConfig) -> RouterConfig {
        self.replication = Some(replication);
        self
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.n_shards == 0 {
            return Err(ServeError::InvalidConfig("n_shards must be >= 1"));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig("queue_capacity must be >= 1"));
        }
        if self.max_batch_events == 0 {
            return Err(ServeError::InvalidConfig("max_batch_events must be >= 1"));
        }
        if !(self.threshold.is_finite() && (0.0..=1.0).contains(&self.threshold)) {
            return Err(ServeError::InvalidConfig("threshold must be in [0, 1]"));
        }
        if self.memo_capacity == Some(0) {
            return Err(ServeError::InvalidConfig("memo_capacity must be >= 1"));
        }
        if let Some(r) = &self.replication {
            if r.subscriber_capacity == 0 {
                return Err(ServeError::InvalidConfig(
                    "replication subscriber_capacity must be >= 1",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(RouterConfig::new(4).validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(RouterConfig::new(0).validate().is_err());
        assert!(RouterConfig::new(1)
            .with_queue_capacity(0)
            .validate()
            .is_err());
        assert!(RouterConfig::new(1)
            .with_batching(0, Duration::ZERO)
            .validate()
            .is_err());
        assert!(RouterConfig::new(1).with_threshold(1.5).validate().is_err());
        assert!(RouterConfig::new(1)
            .with_threshold(f64::NAN)
            .validate()
            .is_err());
        assert!(RouterConfig::new(1)
            .with_memo_capacity(0)
            .validate()
            .is_err());
        assert!(RouterConfig::new(1)
            .with_memo_capacity(64)
            .validate()
            .is_ok());
        assert!(RouterConfig::new(1)
            .with_replication(ReplicationConfig::new().with_subscriber_capacity(0))
            .validate()
            .is_err());
        assert!(
            RouterConfig::new(1)
                .with_replication(ReplicationConfig::new().with_backlog_batches(0))
                .validate()
                .is_ok(),
            "a zero backlog is legal: every resubscribe snapshots"
        );
    }

    #[test]
    fn journal_paths_are_per_shard() {
        let j = JournalConfig::new("/tmp/j")
            .with_fsync(FsyncPolicy::EveryBatch)
            .with_rotate_max_bytes(1 << 20)
            .with_rotate_max_batches(100);
        assert_eq!(j.shard_path(3), PathBuf::from("/tmp/j/shard-3.journal"));
        assert_eq!(j.fsync, FsyncPolicy::EveryBatch);
        assert_eq!(j.rotate_max_bytes, Some(1 << 20));
        assert_eq!(j.rotate_max_batches, Some(100));
    }
}
