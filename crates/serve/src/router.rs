//! [`ShardRouter`]: the multi-tenant front door.
//!
//! Construction partitions the seeded tenants across `n_shards` by
//! `tenant.0 % n_shards`, merges each shard's seeds into one namespaced
//! dataset, fits a [`StreamSession`] per shard and spawns its worker
//! thread. [`ShardRouter::ingest`] then routes tenant messages to the
//! owning shard's bounded queue and returns without waiting for the
//! refit — the configured [`crate::config::Backpressure`] policy decides
//! what happens when a shard falls behind.
//!
//! # Consistency model
//!
//! * Per shard, reads are snapshot-consistent: a worker applies a whole
//!   micro-batch under the shard lock, so [`ShardRouter::scores`] /
//!   [`ShardRouter::shard_snapshot`] observe batch boundaries only.
//! * Across shards there is no global ordering — shards are independent
//!   sessions by design.
//! * [`ShardRouter::flush`] waits until every message accepted so far
//!   has been applied, which makes read-your-writes explicit.
//! * [`ShardRouter::shutdown`] closes the queues, drains them, seals
//!   every journal and joins the workers.
//!
//! # Statistical coupling between co-tenants
//!
//! Sharing a shard session is *id-safe* (namespacing keeps sources,
//! triples and domains disjoint) but not *statistically inert*: the
//! empirical prior `alpha` is estimated over all of the shard's labels,
//! and data-driven clustering draws cluster boundaries over all of the
//! shard's sources. Pin `alpha` in the [`FuserConfig`] to decouple the
//! prior; give every tenant its own shard for full statistical
//! isolation. The per-shard trust anchor is unconditional either way:
//! each shard's scores are bitwise identical to a from-scratch
//! `Fuser::fit + score_all` on that shard's accumulated dataset.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use corrfuse_core::dataset::{Dataset, DatasetBuilder, Domain};
use corrfuse_core::engine::ScoringEngine;
use corrfuse_core::error::{FusionError, Result as CoreResult};
use corrfuse_core::fuser::FuserConfig;
use corrfuse_stream::{Event, StreamSession};

use crate::config::RouterConfig;
use crate::error::{Result, ServeError};
use crate::queue::{PushError, Queue};
use crate::replica::{ReplicaTap, Subscription, SubscriptionStart};
use crate::shard::{
    run_worker, Msg, PoisonCell, Progress, ShardCore, ShardHandle, ShardSpans, WorkerParams,
};
use crate::stats::{RouterStats, ShardStats};
use crate::tenant::{scoped_source_name, scoped_triple, TenantId, TenantMap};

/// A snapshot-consistent copy of one shard's state.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// The shard's accumulated (namespaced) dataset.
    pub dataset: Dataset,
    /// Posterior per shard triple, in shard `TripleId` order.
    pub scores: Vec<f64>,
    /// Accept/reject decisions at the shard threshold.
    pub decisions: Vec<bool>,
    /// Tenants hosted by the shard, ascending.
    pub tenants: Vec<TenantId>,
    /// The shard's journal path, if journaling.
    pub journal_path: Option<PathBuf>,
    /// The shard's replication epoch at snapshot time: the number of
    /// batches committed into the shard session. Two snapshots of the
    /// same shard at the same epoch are identical.
    pub epoch: u64,
}

/// The sharded multi-tenant session router; see the module docs.
#[derive(Debug)]
pub struct ShardRouter {
    config: RouterConfig,
    shards: Vec<ShardHandle>,
    workers: Vec<Option<JoinHandle<()>>>,
}

impl ShardRouter {
    /// Build the router: partition `seeds` across shards, fit one
    /// session per shard, spawn the workers.
    ///
    /// Every shard must receive at least one seeded tenant (a session
    /// cannot exist without a labelled seed); tenants may also join
    /// later, purely through [`ShardRouter::ingest`], as long as their
    /// stream carries its own sources, claims and labels. Explicit scope
    /// *overrides* on seed datasets are not preserved — shard sessions
    /// use the builder's provision-inferred scopes, mirroring
    /// `corrfuse_stream::replay`.
    pub fn new(
        fuser: FuserConfig,
        config: RouterConfig,
        seeds: Vec<(TenantId, Dataset)>,
    ) -> Result<ShardRouter> {
        config.validate()?;
        let mut fuser = fuser;
        if config.memo_capacity.is_some() {
            fuser.memo_capacity = config.memo_capacity;
        }
        // A metrics registry implies per-stage timing: the shard
        // sessions collect their stage breakdowns so the worker has
        // something to record. (`spans` alone, without a registry,
        // only surfaces timings on each `ScoredDelta`.)
        if config.metrics.is_some() {
            fuser.spans = true;
        }
        let n = config.n_shards;
        let mut seen: HashSet<TenantId> = HashSet::new();
        for (t, _) in &seeds {
            if !seen.insert(*t) {
                return Err(ServeError::InvalidConfig("duplicate tenant in seeds"));
            }
        }
        let mut per_shard: Vec<Vec<(TenantId, Dataset)>> = (0..n).map(|_| Vec::new()).collect();
        for (t, ds) in seeds {
            per_shard[t.0 as usize % n].push((t, ds));
        }
        if let Some(j) = &config.journal {
            std::fs::create_dir_all(&j.dir).map_err(FusionError::from)?;
        }
        let mut shards = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for (i, shard_seeds) in per_shard.into_iter().enumerate() {
            if shard_seeds.is_empty() {
                return Err(ServeError::ShardSeedMissing { shard: i });
            }
            let (ds, tenants, next_domain) = merge_seeds(&shard_seeds)?;
            let engine = if config.shard_threads > 1 {
                ScoringEngine::with_threads(config.shard_threads)
            } else {
                ScoringEngine::serial()
            };
            let mut session = StreamSession::with_engine(fuser.clone(), ds, engine)
                .map_err(ServeError::Fusion)?
                .with_threshold(config.threshold)
                .with_log_retention(config.retention);
            if let Some(j) = &config.journal {
                session
                    .journal_to_with(j.shard_path(i), j.fsync)
                    .map_err(ServeError::Fusion)?;
            }
            let stats = ShardStats {
                shard: i,
                tenants: tenants.len(),
                n_sources: session.dataset().n_sources(),
                n_triples: session.dataset().n_triples(),
                journal_bytes: session.journal_bytes(),
                ..ShardStats::default()
            };
            let poison = Arc::new(PoisonCell::new());
            let core = Arc::new(Mutex::new(ShardCore {
                session,
                tenants,
                next_domain,
                stats,
                batches_since_rotation: 0,
                poison: Arc::clone(&poison),
                tap: config.replication.clone().map(|r| ReplicaTap::new(r, 0)),
            }));
            let queue = Arc::new(Queue::new(config.queue_capacity));
            let progress = Arc::new(Progress::default());
            let params = WorkerParams {
                queue: Arc::clone(&queue),
                core: Arc::clone(&core),
                progress: Arc::clone(&progress),
                max_batch_events: config.max_batch_events,
                max_batch_delay: config.max_batch_delay,
                journal: config.journal.clone(),
                spans: config
                    .metrics
                    .as_ref()
                    .map(|r| Arc::new(ShardSpans::new(Arc::clone(r), i))),
            };
            let join = std::thread::Builder::new()
                .name(format!("corrfuse-shard-{i}"))
                .spawn(move || run_worker(params))
                .map_err(FusionError::from)?;
            shards.push(ShardHandle {
                queue,
                core,
                progress,
                poison,
                enqueued: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                acked_epoch: AtomicU64::new(0),
            });
            workers.push(Some(join));
        }
        Ok(ShardRouter {
            config,
            shards,
            workers,
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.config.n_shards
    }

    /// The router configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The shard a tenant routes to.
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        tenant.0 as usize % self.config.n_shards
    }

    /// Enqueue one tenant message (a micro-batch of tenant-local events)
    /// for asynchronous ingestion. Returns as soon as the message is
    /// accepted; under backpressure the configured policy decides
    /// between blocking, rejecting and timing out.
    ///
    /// A poisoned shard refuses the message up front with the
    /// **non-retryable** [`ServeError::ShardPoisoned`] — unlike
    /// [`ServeError::Backpressure`], retrying cannot succeed; the shard
    /// must be rebuilt from its journal. (Messages already queued when
    /// the shard poisons are dropped by the worker and counted in
    /// [`crate::ShardStats::ingest_errors`].)
    pub fn ingest(&self, tenant: TenantId, events: Vec<Event>) -> Result<()> {
        let shard = self.shard_of(tenant);
        let h = &self.shards[shard];
        if let Some(reason) = h.poison.get() {
            return Err(ServeError::ShardPoisoned {
                shard,
                reason: reason.clone(),
            });
        }
        let enqueued_at = self.config.metrics.is_some().then(std::time::Instant::now);
        match h.queue.push(
            Msg {
                tenant,
                events,
                enqueued_at,
            },
            self.config.backpressure,
        ) {
            Ok(()) => {
                h.enqueued.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            Err(PushError::Full) => {
                h.rejected.fetch_add(1, Ordering::SeqCst);
                Err(ServeError::Backpressure {
                    shard,
                    depth: h.queue.depth(),
                })
            }
            Err(PushError::Closed) => Err(ServeError::ShuttingDown),
        }
    }

    /// Wait until every message accepted so far has been applied (then
    /// reads see those writes). Fails if a shard worker died first.
    pub fn flush(&self) -> Result<()> {
        for (i, h) in self.shards.iter().enumerate() {
            let target = h.enqueued.load(Ordering::SeqCst);
            let dead = || self.workers[i].as_ref().is_none_or(JoinHandle::is_finished);
            if !h.progress.wait_for(target, dead) {
                return Err(ServeError::ShardPanicked { shard: i });
            }
        }
        Ok(())
    }

    /// Current posterior per tenant-local triple, in the tenant's own
    /// `TripleId` order (snapshot-consistent per-shard read).
    ///
    /// Queries against a poisoned shard fail with
    /// [`ServeError::ShardPoisoned`] rather than silently serving state
    /// of unknown freshness; use [`ShardRouter::shard_snapshot`] to read
    /// the shard's last consistent state explicitly.
    pub fn scores(&self, tenant: TenantId) -> Result<Vec<f64>> {
        self.with_tenant_at(tenant, None, |core, map| {
            let scores = core.session.scores();
            map.triples.iter().map(|&t| scores[t.index()]).collect()
        })
    }

    /// [`ShardRouter::scores`] with a bounded-staleness floor: fails
    /// with the retryable [`ServeError::Stale`] unless the tenant's
    /// shard has committed at least `min_epoch` batches. The same
    /// `min_epoch` travels to replication followers over the wire, so a
    /// reader can take a leader epoch fence (e.g. from
    /// [`ShardRouter::snapshot_all`]) and demand reads at least that
    /// fresh from any replica.
    pub fn scores_at(&self, tenant: TenantId, min_epoch: u64) -> Result<Vec<f64>> {
        self.with_tenant_at(tenant, Some(min_epoch), |core, map| {
            let scores = core.session.scores();
            map.triples.iter().map(|&t| scores[t.index()]).collect()
        })
    }

    /// Accept/reject decisions per tenant-local triple at the router
    /// threshold. Fails with [`ServeError::ShardPoisoned`] on a poisoned
    /// shard; see [`ShardRouter::scores`].
    pub fn decisions(&self, tenant: TenantId) -> Result<Vec<bool>> {
        let threshold = self.config.threshold;
        self.with_tenant_at(tenant, None, |core, map| {
            let scores = core.session.scores();
            map.triples
                .iter()
                .map(|&t| scores[t.index()] > threshold)
                .collect()
        })
    }

    /// [`ShardRouter::decisions`] with a bounded-staleness floor; see
    /// [`ShardRouter::scores_at`].
    pub fn decisions_at(&self, tenant: TenantId, min_epoch: u64) -> Result<Vec<bool>> {
        let threshold = self.config.threshold;
        self.with_tenant_at(tenant, Some(min_epoch), |core, map| {
            let scores = core.session.scores();
            map.triples
                .iter()
                .map(|&t| scores[t.index()] > threshold)
                .collect()
        })
    }

    fn with_tenant_at<R>(
        &self,
        tenant: TenantId,
        min_epoch: Option<u64>,
        f: impl FnOnce(&ShardCore, &TenantMap) -> R,
    ) -> Result<R> {
        let shard = self.shard_of(tenant);
        let h = &self.shards[shard];
        let core = h.core.lock().expect("shard core lock");
        // Membership first (an unknown tenant is the caller's bug, not
        // the shard's — reporting ShardPoisoned for it would send the
        // operator on a pointless rebuild), then the poison check,
        // *under the lock* so a query racing the poisoning batch can
        // never observe half-mutated session state.
        let Some(map) = core.tenants.get(&tenant) else {
            return Err(ServeError::UnknownTenant(tenant));
        };
        if let Some(reason) = h.poison.get() {
            return Err(ServeError::ShardPoisoned {
                shard,
                reason: reason.clone(),
            });
        }
        if let Some(min) = min_epoch {
            let epoch = core.session.epoch();
            if epoch < min {
                return Err(ServeError::Stale {
                    shard,
                    epoch,
                    min_epoch: min,
                });
            }
        }
        Ok(f(&core, map))
    }

    /// All tenants currently hosted, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut out: Vec<TenantId> = self
            .shards
            .iter()
            .flat_map(|h| {
                h.core
                    .lock()
                    .expect("shard core lock")
                    .tenants
                    .keys()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// A snapshot-consistent copy of one shard's dataset, scores and
    /// decisions (clones under the shard lock).
    ///
    /// This read deliberately works on a **poisoned** shard too: it is
    /// the operator's window onto the shard's last consistent state
    /// (the worker stops applying the moment it poisons, so the copy is
    /// the state as of the last successful batch) and the starting
    /// point for rebuilding the shard from its journal.
    pub fn shard_snapshot(&self, shard: usize) -> Result<ShardSnapshot> {
        let h = self
            .shards
            .get(shard)
            .ok_or(ServeError::InvalidConfig("shard index out of range"))?;
        let core = h.core.lock().expect("shard core lock");
        let mut tenants: Vec<TenantId> = core.tenants.keys().copied().collect();
        tenants.sort_unstable();
        Ok(ShardSnapshot {
            shard,
            dataset: core.session.dataset().clone(),
            scores: core.session.scores().to_vec(),
            decisions: core.session.decisions(),
            tenants,
            journal_path: self.config.journal.as_ref().map(|j| j.shard_path(shard)),
            epoch: core.session.epoch(),
        })
    }

    /// A cross-shard snapshot read behind an epoch fence: flush every
    /// shard (so each one has applied every message accepted before this
    /// call), then snapshot each shard in turn. The returned snapshots
    /// carry their shard epochs — together they form a consistent fence:
    /// any reader, on the leader or on a follower, that demands
    /// `min_epoch >= snapshot.epoch` per shard observes a state at least
    /// as fresh as this export. There is still no cross-shard *ordering*
    /// (shards are independent sessions by design); the fence pins a
    /// "nothing accepted before the call is missing" frontier, which is
    /// what a consistent multi-tenant export needs.
    pub fn snapshot_all(&self) -> Result<Vec<ShardSnapshot>> {
        self.flush()?;
        (0..self.config.n_shards)
            .map(|i| self.shard_snapshot(i))
            .collect()
    }

    /// Each shard's current replication epoch, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|h| h.core.lock().expect("shard core lock").session.epoch())
            .collect()
    }

    /// Subscribe to a shard's committed-batch stream, resuming after
    /// `from_epoch` — the epoch the subscriber has fully applied. A
    /// brand-new follower holds no state at all (not even the epoch-0
    /// seed dataset), so it passes the bootstrap sentinel `u64::MAX`,
    /// which can never be covered and always forces a snapshot start.
    /// Returns how the
    /// subscription starts — [`SubscriptionStart::Resume`] when the
    /// tap's backlog still covers the gap (the missing suffix is already
    /// queued), else [`SubscriptionStart::Snapshot`] at the current
    /// epoch — plus the live [`Subscription`]. Registration is atomic
    /// with the captured state (both happen under the shard lock), so
    /// the subscriber sees every epoch exactly once, even across a
    /// concurrent journal rotation.
    ///
    /// Fails with [`ServeError::InvalidConfig`] unless the router was
    /// built with [`RouterConfig::with_replication`], and with
    /// [`ServeError::ShardPoisoned`] on a poisoned shard (its epoch
    /// stream is frozen; rebuild it first).
    pub fn subscribe(
        &self,
        shard: usize,
        from_epoch: u64,
    ) -> Result<(SubscriptionStart, Subscription)> {
        let h = self
            .shards
            .get(shard)
            .ok_or(ServeError::InvalidConfig("shard index out of range"))?;
        let mut core = h.core.lock().expect("shard core lock");
        if let Some(reason) = h.poison.get() {
            return Err(ServeError::ShardPoisoned {
                shard,
                reason: reason.clone(),
            });
        }
        let ShardCore { session, tap, .. } = &mut *core;
        let Some(tap) = tap.as_mut() else {
            return Err(ServeError::InvalidConfig(
                "replication is not enabled on this router",
            ));
        };
        let epoch = session.epoch();
        Ok(tap.subscribe(from_epoch, epoch, || {
            (
                corrfuse_core::io::to_string(session.dataset()),
                session.threshold(),
            )
        }))
    }

    /// Record a follower's acknowledgement that it has applied `shard`'s
    /// stream through `epoch`. Monotonic (a late or duplicate ack never
    /// regresses the mark); feeds [`ShardStats::replica_acked_epoch`]
    /// and the `replica_*` metrics gauges.
    pub fn record_ack(&self, shard: usize, epoch: u64) -> Result<()> {
        let h = self
            .shards
            .get(shard)
            .ok_or(ServeError::InvalidConfig("shard index out of range"))?;
        h.acked_epoch.fetch_max(epoch, Ordering::SeqCst);
        Ok(())
    }

    /// Per-shard and aggregate statistics.
    pub fn stats(&self) -> RouterStats {
        let shards = self
            .shards
            .iter()
            .map(|h| {
                let core = h.core.lock().expect("shard core lock");
                let mut s = core.stats.clone();
                s.queue_depth = h.queue.depth();
                s.max_queue_depth = h.queue.max_depth();
                s.enqueued_messages = h.enqueued.load(Ordering::SeqCst);
                s.rejected_messages = h.rejected.load(Ordering::SeqCst);
                s.tenants = core.tenants.len();
                s.journal_bytes = core.session.journal_bytes();
                s.n_sources = core.session.dataset().n_sources();
                s.n_triples = core.session.dataset().n_triples();
                s.score_cache = core.session.score_cache_stats();
                s.joint_cache = core.session.joint_cache_stats();
                s.joint_delta = core.session.joint_delta_stats();
                s.lift = core.session.lift_stats();
                s.log_dropped_events = core.session.delta_log().dropped_events();
                s.poisoned = core.poison.get().is_some();
                s.epoch = core.session.epoch();
                s.replica_acked_epoch = h.acked_epoch.load(Ordering::SeqCst);
                s.replica_subscribers = core.tap.as_ref().map_or(0, ReplicaTap::n_subscribers);
                s
            })
            .collect();
        RouterStats { shards }
    }

    /// Graceful shutdown: refuse new messages, drain every queue, seal
    /// every journal, join the workers. Returns the final statistics.
    pub fn shutdown(mut self) -> Result<RouterStats> {
        self.close_and_join()?;
        Ok(self.stats())
    }

    fn close_and_join(&mut self) -> Result<()> {
        for h in &self.shards {
            h.queue.close();
        }
        let mut panicked = None;
        for (i, w) in self.workers.iter_mut().enumerate() {
            if let Some(join) = w.take() {
                if join.join().is_err() {
                    panicked = Some(i);
                }
            }
        }
        match panicked {
            Some(shard) => Err(ServeError::ShardPanicked { shard }),
            None => Ok(()),
        }
    }
}

impl Drop for ShardRouter {
    /// Dropping without [`ShardRouter::shutdown`] still drains and seals
    /// (panics in workers are swallowed here; use `shutdown` to observe
    /// them).
    fn drop(&mut self) {
        let _ = self.close_and_join();
    }
}

/// Merge one shard's seeded tenants into a single namespaced dataset,
/// building each tenant's id map along the way.
fn merge_seeds(
    seeds: &[(TenantId, Dataset)],
) -> CoreResult<(Dataset, HashMap<TenantId, TenantMap>, u32)> {
    let mut b = DatasetBuilder::new();
    let mut tenants: HashMap<TenantId, TenantMap> = HashMap::new();
    let mut next_domain = 0u32;
    for (tenant, ds) in seeds {
        let mut map = TenantMap::default();
        for s in ds.sources() {
            map.sources
                .push(b.source(scoped_source_name(*tenant, ds.source_name(s))));
        }
        for t in ds.triples() {
            let scoped = scoped_triple(*tenant, ds.triple(t));
            let id = b.triple(scoped.subject, scoped.predicate, scoped.object);
            let shard_domain = *map.domains.entry(ds.domain(t)).or_insert_with(|| {
                let d = Domain(next_domain);
                next_domain += 1;
                d
            });
            b.set_domain(id, shard_domain);
            if let Some(truth) = ds.gold().and_then(|g| g.get(t)) {
                b.label(id, truth);
            }
            map.triples.push(id);
        }
        for s in ds.sources() {
            for &t in ds.output(s) {
                b.observe(map.sources[s.index()], map.triples[t.index()]);
            }
        }
        tenants.insert(*tenant, map);
    }
    Ok((b.build()?, tenants, next_domain))
}
