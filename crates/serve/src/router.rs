//! [`ShardRouter`]: the multi-tenant front door.
//!
//! Construction partitions the seeded tenants across `n_shards` by
//! `tenant.0 % n_shards`, merges each shard's seeds into one namespaced
//! dataset, fits a [`StreamSession`] per shard and spawns its worker
//! thread. [`ShardRouter::ingest`] then routes tenant messages to the
//! owning shard's bounded queue and returns without waiting for the
//! refit — the configured [`crate::config::Backpressure`] policy decides
//! what happens when a shard falls behind.
//!
//! # Consistency model
//!
//! * Per shard, reads are snapshot-consistent: a worker applies a whole
//!   micro-batch under the shard lock, so [`ShardRouter::scores`] /
//!   [`ShardRouter::shard_snapshot`] observe batch boundaries only.
//! * Across shards there is no global ordering — shards are independent
//!   sessions by design.
//! * [`ShardRouter::flush`] waits until every message accepted so far
//!   has been applied, which makes read-your-writes explicit.
//! * [`ShardRouter::shutdown`] closes the queues, drains them, seals
//!   every journal and joins the workers.
//!
//! # Statistical coupling between co-tenants
//!
//! Sharing a shard session is *id-safe* (namespacing keeps sources,
//! triples and domains disjoint) but not *statistically inert*: the
//! empirical prior `alpha` is estimated over all of the shard's labels,
//! and data-driven clustering draws cluster boundaries over all of the
//! shard's sources. Pin `alpha` in the [`FuserConfig`] to decouple the
//! prior; give every tenant its own shard for full statistical
//! isolation. The per-shard trust anchor is unconditional either way:
//! each shard's scores are bitwise identical to a from-scratch
//! `Fuser::fit + score_all` on that shard's accumulated dataset.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use corrfuse_core::dataset::{Dataset, DatasetBuilder, Domain};
use corrfuse_core::engine::ScoringEngine;
use corrfuse_core::error::{FusionError, Result as CoreResult};
use corrfuse_core::fuser::FuserConfig;
use corrfuse_stream::{Event, StreamSession};

use crate::config::RouterConfig;
use crate::error::{Result, ServeError};
use crate::migration::{
    extract_slice, store_routes, MigrationReport, MigrationStage, PersistedRoute, RebalanceAction,
    RebalancePolicy, RouteState,
};
use crate::queue::{PushError, Queue};
use crate::replica::{ReplicaTap, Subscription, SubscriptionStart};
use crate::shard::{
    run_worker, Msg, PoisonCell, Progress, ShardCore, ShardHandle, ShardSpans, WorkerParams,
};
use crate::stats::{RouterStats, ShardStats};
use crate::tenant::{scoped_source_name, scoped_triple, TenantId, TenantMap};

/// A snapshot-consistent copy of one shard's state.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// The shard's accumulated (namespaced) dataset.
    pub dataset: Dataset,
    /// Posterior per shard triple, in shard `TripleId` order.
    pub scores: Vec<f64>,
    /// Accept/reject decisions at the shard threshold.
    pub decisions: Vec<bool>,
    /// Tenants hosted by the shard, ascending.
    pub tenants: Vec<TenantId>,
    /// The shard's journal path, if journaling.
    pub journal_path: Option<PathBuf>,
    /// The shard's replication epoch at snapshot time: the number of
    /// batches committed into the shard session. Two snapshots of the
    /// same shard at the same epoch are identical.
    pub epoch: u64,
}

/// The sharded multi-tenant session router; see the module docs.
#[derive(Debug)]
pub struct ShardRouter {
    config: RouterConfig,
    shards: Vec<ShardHandle>,
    workers: Vec<Option<JoinHandle<()>>>,
    /// Dynamic per-tenant routes overriding the static `tenant % N`
    /// placement; written only by migration state transitions, read by
    /// every ingest/query. Ingest resolves **and enqueues** under the
    /// read lock, so a transition (write lock) can never slip between
    /// routing a message and its enqueue — whatever state a message was
    /// routed under, the migration's subsequent source flush covers it.
    routes: RwLock<HashMap<TenantId, RouteState>>,
}

impl ShardRouter {
    /// Build the router: partition `seeds` across shards, fit one
    /// session per shard, spawn the workers.
    ///
    /// Every shard must receive at least one seeded tenant (a session
    /// cannot exist without a labelled seed); tenants may also join
    /// later, purely through [`ShardRouter::ingest`], as long as their
    /// stream carries its own sources, claims and labels. Explicit scope
    /// *overrides* on seed datasets are not preserved — shard sessions
    /// use the builder's provision-inferred scopes, mirroring
    /// `corrfuse_stream::replay`.
    pub fn new(
        fuser: FuserConfig,
        config: RouterConfig,
        seeds: Vec<(TenantId, Dataset)>,
    ) -> Result<ShardRouter> {
        config.validate()?;
        let mut fuser = fuser;
        if config.memo_capacity.is_some() {
            fuser.memo_capacity = config.memo_capacity;
        }
        // A metrics registry implies per-stage timing: the shard
        // sessions collect their stage breakdowns so the worker has
        // something to record. (`spans` alone, without a registry,
        // only surfaces timings on each `ScoredDelta`.)
        if config.metrics.is_some() {
            fuser.spans = true;
        }
        let n = config.n_shards;
        let mut seen: HashSet<TenantId> = HashSet::new();
        for (t, _) in &seeds {
            if !seen.insert(*t) {
                return Err(ServeError::InvalidConfig("duplicate tenant in seeds"));
            }
        }
        let mut per_shard: Vec<Vec<(TenantId, Dataset)>> = (0..n).map(|_| Vec::new()).collect();
        for (t, ds) in seeds {
            per_shard[t.0 as usize % n].push((t, ds));
        }
        if let Some(j) = &config.journal {
            std::fs::create_dir_all(&j.dir).map_err(FusionError::from)?;
        }
        let mut shards = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for (i, shard_seeds) in per_shard.into_iter().enumerate() {
            if shard_seeds.is_empty() {
                return Err(ServeError::ShardSeedMissing { shard: i });
            }
            let (ds, tenants, next_domain) = merge_seeds(&shard_seeds)?;
            let engine = if config.shard_threads > 1 {
                ScoringEngine::with_threads(config.shard_threads)
            } else {
                ScoringEngine::serial()
            };
            let mut session = StreamSession::with_engine(fuser.clone(), ds, engine)
                .map_err(ServeError::Fusion)?
                .with_threshold(config.threshold)
                .with_log_retention(config.retention);
            if let Some(j) = &config.journal {
                session
                    .journal_to_with(j.shard_path(i), j.fsync)
                    .map_err(ServeError::Fusion)?;
            }
            let stats = ShardStats {
                shard: i,
                tenants: tenants.len(),
                n_sources: session.dataset().n_sources(),
                n_triples: session.dataset().n_triples(),
                journal_bytes: session.journal_bytes(),
                ..ShardStats::default()
            };
            let poison = Arc::new(PoisonCell::new());
            let core = Arc::new(Mutex::new(ShardCore {
                session,
                tenants,
                next_domain,
                stats,
                batches_since_rotation: 0,
                poison: Arc::clone(&poison),
                tap: config.replication.clone().map(|r| ReplicaTap::new(r, 0)),
            }));
            let queue = Arc::new(Queue::new(config.queue_capacity));
            let progress = Arc::new(Progress::default());
            let params = WorkerParams {
                queue: Arc::clone(&queue),
                core: Arc::clone(&core),
                progress: Arc::clone(&progress),
                max_batch_events: config.max_batch_events,
                max_batch_delay: config.max_batch_delay,
                journal: config.journal.clone(),
                spans: config
                    .metrics
                    .as_ref()
                    .map(|r| Arc::new(ShardSpans::new(Arc::clone(r), i))),
            };
            let join = std::thread::Builder::new()
                .name(format!("corrfuse-shard-{i}"))
                .spawn(move || run_worker(params))
                .map_err(FusionError::from)?;
            shards.push(ShardHandle {
                queue,
                core,
                progress,
                poison,
                enqueued: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                acked_epoch: AtomicU64::new(0),
            });
            workers.push(Some(join));
        }
        Ok(ShardRouter {
            config,
            shards,
            workers,
            routes: RwLock::new(HashMap::new()),
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.config.n_shards
    }

    /// The router configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The shard currently serving a tenant: its dynamic route if it was
    /// ever migrated ([`ShardRouter::migrate_tenant`]), else the static
    /// `tenant.0 % n_shards` placement.
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        let routes = self.routes.read().expect("route table lock");
        match routes.get(&tenant) {
            Some(r) => r.serving(),
            None => tenant.0 as usize % self.config.n_shards,
        }
    }

    /// Whether `shard` is the one serving `tenant` under `routes`.
    fn serves(
        &self,
        routes: &HashMap<TenantId, RouteState>,
        tenant: TenantId,
        shard: usize,
    ) -> bool {
        match routes.get(&tenant) {
            Some(r) => r.serving() == shard,
            None => tenant.0 as usize % self.config.n_shards == shard,
        }
    }

    /// Enqueue one tenant message (a micro-batch of tenant-local events)
    /// for asynchronous ingestion. Returns as soon as the message is
    /// accepted; under backpressure the configured policy decides
    /// between blocking, rejecting and timing out.
    ///
    /// A poisoned shard refuses the message up front with the
    /// **non-retryable** [`ServeError::ShardPoisoned`] — unlike
    /// [`ServeError::Backpressure`], retrying cannot succeed; the shard
    /// must be rebuilt from its journal. (Messages already queued when
    /// the shard poisons are dropped by the worker and counted in
    /// [`crate::ShardStats::ingest_errors`].)
    ///
    /// During a tenant's cut-over window
    /// ([`ShardRouter::migrate_tenant`]) the message is buffered and
    /// drained into the new shard at commit; if the window's bounded
    /// buffer (the queue capacity) fills, the call fails with the
    /// **retryable** [`ServeError::TenantMigrating`] (`MIGRATING` over
    /// the wire) — the window closes within one flush of the target.
    pub fn ingest(&self, tenant: TenantId, events: Vec<Event>) -> Result<()> {
        let enqueued_at = self.config.metrics.is_some().then(std::time::Instant::now);
        let msg = Msg {
            tenant,
            events,
            enqueued_at,
        };
        {
            let routes = self.routes.read().expect("route table lock");
            match routes.get(&tenant) {
                Some(RouteState::CutOver { .. }) => {} // fall through to the write path
                Some(r) => return self.push_to(r.serving(), msg),
                None => return self.push_to(tenant.0 as usize % self.config.n_shards, msg),
            }
        }
        // Cut-over window: buffering mutates the route entry, so
        // re-resolve under the write lock (the window may have closed or
        // rolled back between the two lock acquisitions).
        let mut routes = self.routes.write().expect("route table lock");
        match routes.get_mut(&tenant) {
            Some(RouteState::CutOver { buffer, .. }) => {
                if buffer.len() >= self.config.queue_capacity {
                    return Err(ServeError::TenantMigrating { tenant });
                }
                buffer.push(msg);
                Ok(())
            }
            Some(r) => {
                let shard = r.serving();
                self.push_to(shard, msg)
            }
            None => self.push_to(tenant.0 as usize % self.config.n_shards, msg),
        }
    }

    /// Enqueue one message on a specific shard: poison check, push under
    /// the configured backpressure, bump the front-door counters. Called
    /// with the route lock held (read or write) so routing and enqueue
    /// are atomic with respect to migration state transitions.
    fn push_to(&self, shard: usize, msg: Msg) -> Result<()> {
        let h = &self.shards[shard];
        if let Some(reason) = h.poison.get() {
            return Err(ServeError::ShardPoisoned {
                shard,
                reason: reason.clone(),
            });
        }
        match h.queue.push(msg, self.config.backpressure) {
            Ok(()) => {
                h.enqueued.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            Err(PushError::Full) => {
                h.rejected.fetch_add(1, Ordering::SeqCst);
                Err(ServeError::Backpressure {
                    shard,
                    depth: h.queue.depth(),
                })
            }
            Err(PushError::Closed) => Err(ServeError::ShuttingDown),
        }
    }

    /// Wait until every message accepted so far has been applied (then
    /// reads see those writes). Fails if a shard worker died first.
    pub fn flush(&self) -> Result<()> {
        for i in 0..self.shards.len() {
            self.flush_shard(i)?;
        }
        Ok(())
    }

    /// [`ShardRouter::flush`] for a single shard.
    fn flush_shard(&self, shard: usize) -> Result<()> {
        let h = &self.shards[shard];
        let target = h.enqueued.load(Ordering::SeqCst);
        let dead = || {
            self.workers[shard]
                .as_ref()
                .is_none_or(JoinHandle::is_finished)
        };
        if !h.progress.wait_for(target, dead) {
            return Err(ServeError::ShardPanicked { shard });
        }
        Ok(())
    }

    /// Current posterior per tenant-local triple, in the tenant's own
    /// `TripleId` order (snapshot-consistent per-shard read).
    ///
    /// Queries against a poisoned shard fail with
    /// [`ServeError::ShardPoisoned`] rather than silently serving state
    /// of unknown freshness; use [`ShardRouter::shard_snapshot`] to read
    /// the shard's last consistent state explicitly.
    pub fn scores(&self, tenant: TenantId) -> Result<Vec<f64>> {
        self.with_tenant_at(tenant, None, |core, map| {
            let scores = core.session.scores();
            map.triples.iter().map(|&t| scores[t.index()]).collect()
        })
    }

    /// [`ShardRouter::scores`] with a bounded-staleness floor: fails
    /// with the retryable [`ServeError::Stale`] unless the tenant's
    /// shard has committed at least `min_epoch` batches. The same
    /// `min_epoch` travels to replication followers over the wire, so a
    /// reader can take a leader epoch fence (e.g. from
    /// [`ShardRouter::snapshot_all`]) and demand reads at least that
    /// fresh from any replica.
    pub fn scores_at(&self, tenant: TenantId, min_epoch: u64) -> Result<Vec<f64>> {
        self.with_tenant_at(tenant, Some(min_epoch), |core, map| {
            let scores = core.session.scores();
            map.triples.iter().map(|&t| scores[t.index()]).collect()
        })
    }

    /// Accept/reject decisions per tenant-local triple at the router
    /// threshold. Fails with [`ServeError::ShardPoisoned`] on a poisoned
    /// shard; see [`ShardRouter::scores`].
    pub fn decisions(&self, tenant: TenantId) -> Result<Vec<bool>> {
        let threshold = self.config.threshold;
        self.with_tenant_at(tenant, None, |core, map| {
            let scores = core.session.scores();
            map.triples
                .iter()
                .map(|&t| scores[t.index()] > threshold)
                .collect()
        })
    }

    /// [`ShardRouter::decisions`] with a bounded-staleness floor; see
    /// [`ShardRouter::scores_at`].
    pub fn decisions_at(&self, tenant: TenantId, min_epoch: u64) -> Result<Vec<bool>> {
        let threshold = self.config.threshold;
        self.with_tenant_at(tenant, Some(min_epoch), |core, map| {
            let scores = core.session.scores();
            map.triples
                .iter()
                .map(|&t| scores[t.index()] > threshold)
                .collect()
        })
    }

    fn with_tenant_at<R>(
        &self,
        tenant: TenantId,
        min_epoch: Option<u64>,
        f: impl FnOnce(&ShardCore, &TenantMap) -> R,
    ) -> Result<R> {
        // Route-aware resolution. A migrated tenant's route carries its
        // commit-time epoch **fence**: reads against the new shard
        // demand at least that epoch, so no read can ever observe a
        // state older than what the old shard served before the
        // repoint — and since the target was flushed past the fence
        // before the route flipped, the floor never spuriously trips.
        let (shard, fence) = {
            let routes = self.routes.read().expect("route table lock");
            match routes.get(&tenant) {
                Some(RouteState::Moved { shard, fence }) => (*shard, Some(*fence)),
                Some(r) => (r.serving(), None),
                None => (tenant.0 as usize % self.config.n_shards, None),
            }
        };
        let min_epoch = match (min_epoch, fence) {
            (Some(m), Some(f)) => Some(m.max(f)),
            (m, f) => m.or(f),
        };
        let h = &self.shards[shard];
        let core = h.core.lock().expect("shard core lock");
        // Membership first (an unknown tenant is the caller's bug, not
        // the shard's — reporting ShardPoisoned for it would send the
        // operator on a pointless rebuild), then the poison check,
        // *under the lock* so a query racing the poisoning batch can
        // never observe half-mutated session state.
        let Some(map) = core.tenants.get(&tenant) else {
            return Err(ServeError::UnknownTenant(tenant));
        };
        if let Some(reason) = h.poison.get() {
            return Err(ServeError::ShardPoisoned {
                shard,
                reason: reason.clone(),
            });
        }
        if let Some(min) = min_epoch {
            let epoch = core.session.epoch();
            if epoch < min {
                return Err(ServeError::Stale {
                    shard,
                    epoch,
                    min_epoch: min,
                });
            }
        }
        Ok(f(&core, map))
    }

    /// All tenants currently hosted, ascending. Deduplicated: a migrated
    /// tenant's old shard keeps an inert namespaced residue of it (see
    /// [`crate::migration`]), but the tenant is listed once.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut set: HashSet<TenantId> = HashSet::new();
        for h in &self.shards {
            set.extend(h.core.lock().expect("shard core lock").tenants.keys());
        }
        let mut out: Vec<TenantId> = set.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// A snapshot-consistent copy of one shard's dataset, scores and
    /// decisions (clones under the shard lock).
    ///
    /// This read deliberately works on a **poisoned** shard too: it is
    /// the operator's window onto the shard's last consistent state
    /// (the worker stops applying the moment it poisons, so the copy is
    /// the state as of the last successful batch) and the starting
    /// point for rebuilding the shard from its journal.
    pub fn shard_snapshot(&self, shard: usize) -> Result<ShardSnapshot> {
        let h = self
            .shards
            .get(shard)
            .ok_or(ServeError::InvalidConfig("shard index out of range"))?;
        let routes = self.routes.read().expect("route table lock");
        let core = h.core.lock().expect("shard core lock");
        // A migrated-away tenant's residue stays in the dataset (that is
        // what keeps re-migration idempotent) but the tenant is no
        // longer *served* here, so it is not listed.
        let mut tenants: Vec<TenantId> = core
            .tenants
            .keys()
            .copied()
            .filter(|t| self.serves(&routes, *t, shard))
            .collect();
        tenants.sort_unstable();
        Ok(ShardSnapshot {
            shard,
            dataset: core.session.dataset().clone(),
            scores: core.session.scores().to_vec(),
            decisions: core.session.decisions(),
            tenants,
            journal_path: self.config.journal.as_ref().map(|j| j.shard_path(shard)),
            epoch: core.session.epoch(),
        })
    }

    /// A cross-shard snapshot read behind an epoch fence: flush every
    /// shard (so each one has applied every message accepted before this
    /// call), then snapshot each shard in turn. The returned snapshots
    /// carry their shard epochs — together they form a consistent fence:
    /// any reader, on the leader or on a follower, that demands
    /// `min_epoch >= snapshot.epoch` per shard observes a state at least
    /// as fresh as this export. There is still no cross-shard *ordering*
    /// (shards are independent sessions by design); the fence pins a
    /// "nothing accepted before the call is missing" frontier, which is
    /// what a consistent multi-tenant export needs.
    pub fn snapshot_all(&self) -> Result<Vec<ShardSnapshot>> {
        self.flush()?;
        (0..self.config.n_shards)
            .map(|i| self.shard_snapshot(i))
            .collect()
    }

    /// Each shard's current replication epoch, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|h| h.core.lock().expect("shard core lock").session.epoch())
            .collect()
    }

    /// Subscribe to a shard's committed-batch stream, resuming after
    /// `from_epoch` — the epoch the subscriber has fully applied. A
    /// brand-new follower holds no state at all (not even the epoch-0
    /// seed dataset), so it passes the bootstrap sentinel `u64::MAX`,
    /// which can never be covered and always forces a snapshot start.
    /// Returns how the
    /// subscription starts — [`SubscriptionStart::Resume`] when the
    /// tap's backlog still covers the gap (the missing suffix is already
    /// queued), else [`SubscriptionStart::Snapshot`] at the current
    /// epoch — plus the live [`Subscription`]. Registration is atomic
    /// with the captured state (both happen under the shard lock), so
    /// the subscriber sees every epoch exactly once, even across a
    /// concurrent journal rotation.
    ///
    /// Fails with [`ServeError::InvalidConfig`] unless the router was
    /// built with [`RouterConfig::with_replication`], and with
    /// [`ServeError::ShardPoisoned`] on a poisoned shard (its epoch
    /// stream is frozen; rebuild it first).
    pub fn subscribe(
        &self,
        shard: usize,
        from_epoch: u64,
    ) -> Result<(SubscriptionStart, Subscription)> {
        let h = self
            .shards
            .get(shard)
            .ok_or(ServeError::InvalidConfig("shard index out of range"))?;
        let mut core = h.core.lock().expect("shard core lock");
        if let Some(reason) = h.poison.get() {
            return Err(ServeError::ShardPoisoned {
                shard,
                reason: reason.clone(),
            });
        }
        let ShardCore { session, tap, .. } = &mut *core;
        let Some(tap) = tap.as_mut() else {
            return Err(ServeError::InvalidConfig(
                "replication is not enabled on this router",
            ));
        };
        let epoch = session.epoch();
        Ok(tap.subscribe(from_epoch, epoch, || {
            (
                corrfuse_core::io::to_string(session.dataset()),
                session.threshold(),
            )
        }))
    }

    /// Record a follower's acknowledgement that it has applied `shard`'s
    /// stream through `epoch`. Monotonic (a late or duplicate ack never
    /// regresses the mark); feeds [`ShardStats::replica_acked_epoch`]
    /// and the `replica_*` metrics gauges.
    pub fn record_ack(&self, shard: usize, epoch: u64) -> Result<()> {
        let h = self
            .shards
            .get(shard)
            .ok_or(ServeError::InvalidConfig("shard index out of range"))?;
        h.acked_epoch.fetch_max(epoch, Ordering::SeqCst);
        Ok(())
    }

    /// Per-shard and aggregate statistics.
    pub fn stats(&self) -> RouterStats {
        let routes = self.routes.read().expect("route table lock");
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let core = h.core.lock().expect("shard core lock");
                let mut s = core.stats.clone();
                s.queue_depth = h.queue.depth();
                s.max_queue_depth = h.queue.max_depth();
                s.enqueued_messages = h.enqueued.load(Ordering::SeqCst);
                s.rejected_messages = h.rejected.load(Ordering::SeqCst);
                s.tenants = core
                    .tenants
                    .keys()
                    .filter(|t| self.serves(&routes, **t, i))
                    .count();
                s.scoring_threads = core.session.engine().threads();
                s.journal_bytes = core.session.journal_bytes();
                s.n_sources = core.session.dataset().n_sources();
                s.n_triples = core.session.dataset().n_triples();
                s.score_cache = core.session.score_cache_stats();
                s.joint_cache = core.session.joint_cache_stats();
                s.joint_delta = core.session.joint_delta_stats();
                s.lift = core.session.lift_stats();
                s.log_dropped_events = core.session.delta_log().dropped_events();
                s.poisoned = core.poison.get().is_some();
                s.epoch = core.session.epoch();
                s.replica_acked_epoch = h.acked_epoch.load(Ordering::SeqCst);
                s.replica_subscribers = core.tap.as_ref().map_or(0, ReplicaTap::n_subscribers);
                s
            })
            .collect();
        RouterStats { shards }
    }

    /// A tenant's self-contained journal slice: its full accumulated
    /// state re-expressed as tenant-local events (sources, triples with
    /// domains, claims, labels, all in tenant-local registration order),
    /// replayable standalone or into any shard as one batch. Flushes the
    /// serving shard first, so the slice covers every message accepted
    /// before this call. Don't race this with a migration of the same
    /// tenant — the serving shard may change under it.
    pub fn tenant_slice(&self, tenant: TenantId) -> Result<Vec<Event>> {
        let shard = self.shard_of(tenant);
        self.flush_shard(shard)?;
        self.slice_from(shard, tenant)
    }

    fn slice_from(&self, shard: usize, tenant: TenantId) -> Result<Vec<Event>> {
        let h = &self.shards[shard];
        let core = h.core.lock().expect("shard core lock");
        let Some(map) = core.tenants.get(&tenant) else {
            return Err(ServeError::UnknownTenant(tenant));
        };
        if let Some(reason) = h.poison.get() {
            return Err(ServeError::ShardPoisoned {
                shard,
                reason: reason.clone(),
            });
        }
        Ok(extract_slice(core.session.dataset(), map))
    }

    /// Live-migrate `tenant` onto shard `to` with **no ingest
    /// downtime**; see [`crate::migration`] for the state machine and
    /// the epoch-fence argument.
    ///
    /// The source keeps serving ingest and reads through the bulk
    /// replay; only the cut-over window (one source flush + one delta
    /// replay long) buffers the tenant's new ingest, and co-tenants are
    /// never touched at all. On any failure the migration rolls back
    /// completely — route restored, buffered ingest re-queued at the
    /// source in arrival order — and the typed
    /// [`ServeError::MigrationFailed`] reports the failed stage. A
    /// concurrent second migration of the same tenant fails with the
    /// retryable [`ServeError::TenantMigrating`].
    ///
    /// Back-and-forth migrations converge: replay is idempotent (known
    /// sources/triples are skipped, claims are absorbing, labels
    /// re-apply to their final state), and a shard's residual
    /// [`TenantMap`] of a migrated-away tenant stays prefix-consistent,
    /// so returning to a previous home is just another replay.
    pub fn migrate_tenant(&self, tenant: TenantId, to: usize) -> Result<MigrationReport> {
        self.migrate_inner(tenant, to, None)
    }

    /// Chaos hook for fault-injection tests: run the migration state
    /// machine but fail deliberately right after `abort_after`
    /// completes, exercising the rollback path exactly as a real fault
    /// at that stage would. Always returns
    /// [`ServeError::MigrationFailed`] (aborting "after"
    /// [`MigrationStage::Commit`] is meaningless — commit is the atomic
    /// flip — so that stage aborts just before it).
    pub fn migrate_tenant_chaos(
        &self,
        tenant: TenantId,
        to: usize,
        abort_after: MigrationStage,
    ) -> Result<MigrationReport> {
        self.migrate_inner(tenant, to, Some(abort_after))
    }

    fn migrate_inner(
        &self,
        tenant: TenantId,
        to: usize,
        abort_after: Option<MigrationStage>,
    ) -> Result<MigrationReport> {
        // ---- Planning: validate, then claim the tenant's route entry
        // (the in-flight marker doubles as the concurrency guard).
        if to >= self.config.n_shards {
            return Err(ServeError::InvalidConfig(
                "migration target shard out of range",
            ));
        }
        let (from, prior) = {
            let mut routes = self.routes.write().expect("route table lock");
            let (from, prior) = match routes.get(&tenant) {
                Some(RouteState::Moved { shard, fence }) => (*shard, Some((*shard, *fence))),
                Some(_) => return Err(ServeError::TenantMigrating { tenant }),
                None => (tenant.0 as usize % self.config.n_shards, None),
            };
            if from == to {
                return Err(ServeError::InvalidConfig(
                    "tenant already lives on the target shard",
                ));
            }
            for shard in [from, to] {
                if let Some(reason) = self.shards[shard].poison.get() {
                    return Err(ServeError::ShardPoisoned {
                        shard,
                        reason: reason.clone(),
                    });
                }
            }
            if !self.shards[from]
                .core
                .lock()
                .expect("shard core lock")
                .tenants
                .contains_key(&tenant)
            {
                return Err(ServeError::UnknownTenant(tenant));
            }
            routes.insert(tenant, RouteState::Migrating { from });
            (from, prior)
        };
        if let Some(reg) = &self.config.metrics {
            reg.gauge("serve_migrations_active").add(1);
        }
        if abort_after == Some(MigrationStage::Planning) {
            return Err(self.roll_back(
                tenant,
                from,
                prior,
                MigrationStage::Planning,
                "chaos: aborted after planning".into(),
            ));
        }
        // ---- Bulk replay, while the source keeps serving ingest and
        // reads. The copy may be stale by whatever lands during it —
        // replay is idempotent, so the cut-over pass simply re-sends
        // everything and only the delta is new.
        let bulk_events = match self.replay_into(tenant, from, to) {
            Ok(n) => n,
            Err(e) => {
                return Err(self.roll_back(
                    tenant,
                    from,
                    prior,
                    MigrationStage::BulkReplay,
                    e.to_string(),
                ))
            }
        };
        if abort_after == Some(MigrationStage::BulkReplay) {
            return Err(self.roll_back(
                tenant,
                from,
                prior,
                MigrationStage::BulkReplay,
                "chaos: aborted after bulk replay".into(),
            ));
        }
        // ---- Cut-over: the tenant's new ingest buffers on the route
        // entry while the source drains and its final state replays into
        // the target. Reads still resolve at the (complete) source.
        self.routes.write().expect("route table lock").insert(
            tenant,
            RouteState::CutOver {
                from,
                buffer: Vec::new(),
            },
        );
        let delta_events = match self.replay_into(tenant, from, to) {
            Ok(n) => n,
            Err(e) => {
                return Err(self.roll_back(
                    tenant,
                    from,
                    prior,
                    MigrationStage::CutOver,
                    e.to_string(),
                ))
            }
        };
        // The fence: the target's epoch now that it provably holds
        // everything the source ever absorbed for this tenant.
        let fence = self.shards[to]
            .core
            .lock()
            .expect("shard core lock")
            .session
            .epoch();
        if abort_after == Some(MigrationStage::CutOver)
            || abort_after == Some(MigrationStage::Commit)
        {
            let stage = abort_after.unwrap_or(MigrationStage::CutOver);
            return Err(self.roll_back(
                tenant,
                from,
                prior,
                stage,
                format!("chaos: aborted during {stage}"),
            ));
        }
        // ---- Commit: persist the fence, drain the window into the
        // target, flip the route — all under the route write lock, so no
        // ingest can interleave with the repoint and the buffered window
        // lands ahead of any post-commit message (labels are
        // last-write-wins; order matters).
        let buffered_messages = {
            let mut routes = self.routes.write().expect("route table lock");
            if let Some(j) = &self.config.journal {
                let mut persisted: Vec<PersistedRoute> = routes
                    .iter()
                    .filter_map(|(t, r)| match r {
                        RouteState::Moved { shard, fence } => Some(PersistedRoute {
                            tenant: *t,
                            shard: *shard,
                            fence: *fence,
                        }),
                        _ => None,
                    })
                    .collect();
                persisted.push(PersistedRoute {
                    tenant,
                    shard: to,
                    fence,
                });
                persisted.sort_unstable_by_key(|r| r.tenant);
                // The file is written *before* the in-memory flip and
                // *after* the target journal holds the full slice:
                // recovery resolving this route against the recovered
                // target epoch (`migration::resolve_route`) either
                // proves the cut-over or rolls back to the source —
                // never a split route.
                if let Err(e) = store_routes(&j.dir, &persisted) {
                    drop(routes);
                    return Err(self.roll_back(
                        tenant,
                        from,
                        prior,
                        MigrationStage::Commit,
                        e.to_string(),
                    ));
                }
            }
            let buffer = match routes.insert(tenant, RouteState::Moved { shard: to, fence }) {
                Some(RouteState::CutOver { buffer, .. }) => buffer,
                _ => Vec::new(),
            };
            let n = buffer.len();
            for msg in buffer {
                if let Err(e) = self.push_to(to, msg) {
                    // Past the atomic flip; a drain failure (the target
                    // closing mid-shutdown) drops the message exactly
                    // like any shutdown race, and is counted as such.
                    let mut core = self.shards[to].core.lock().expect("shard core lock");
                    core.stats.ingest_errors += 1;
                    core.stats.last_error = Some(format!("cut-over drain failed: {e}"));
                }
            }
            n
        };
        self.flush_shard(to)?;
        self.shards[from]
            .core
            .lock()
            .expect("shard core lock")
            .stats
            .migrations_out += 1;
        self.shards[to]
            .core
            .lock()
            .expect("shard core lock")
            .stats
            .migrations_in += 1;
        if let Some(reg) = &self.config.metrics {
            reg.counter("serve_migrations_total").inc();
            reg.gauge("serve_migrations_active").add(-1);
        }
        Ok(MigrationReport {
            tenant,
            from,
            to,
            fence,
            bulk_events,
            delta_events,
            buffered_messages,
        })
    }

    /// One replay pass of the migration: flush the source, extract the
    /// tenant's slice, enqueue it on the target as one ordinary message
    /// (the worker's idempotent translation absorbs whatever the target
    /// already holds), flush the target, and verify it actually applied.
    /// Returns the slice's event count.
    fn replay_into(&self, tenant: TenantId, from: usize, to: usize) -> Result<usize> {
        self.flush_shard(from)?;
        let slice = self.slice_from(from, tenant)?;
        let n = slice.len();
        let errors_before = self.shards[to]
            .core
            .lock()
            .expect("shard core lock")
            .stats
            .ingest_errors;
        let enqueued_at = self.config.metrics.is_some().then(std::time::Instant::now);
        self.push_to(
            to,
            Msg {
                tenant,
                events: slice,
                enqueued_at,
            },
        )?;
        self.flush_shard(to)?;
        let core = self.shards[to].core.lock().expect("shard core lock");
        if let Some(reason) = core.poison.get() {
            return Err(ServeError::ShardPoisoned {
                shard: to,
                reason: reason.clone(),
            });
        }
        if core.stats.ingest_errors > errors_before {
            return Err(ServeError::Fusion(FusionError::Io(format!(
                "target shard {to} refused the replayed slice: {}",
                core.stats.last_error.clone().unwrap_or_default()
            ))));
        }
        Ok(n)
    }

    /// Undo a failed migration: restore the route (drop the in-flight
    /// entry, or re-point a previously-migrated tenant back at its prior
    /// home), re-queue any cut-over-buffered ingest at the source in
    /// arrival order, count the failure. The tenant never stopped being
    /// served by the source; the target keeps an inert namespaced
    /// residue that a retry's idempotent replay absorbs. Returns the
    /// typed error for the caller to propagate.
    fn roll_back(
        &self,
        tenant: TenantId,
        from: usize,
        prior: Option<(usize, u64)>,
        stage: MigrationStage,
        reason: String,
    ) -> ServeError {
        let mut routes = self.routes.write().expect("route table lock");
        let removed = match prior {
            Some((shard, fence)) => routes.insert(tenant, RouteState::Moved { shard, fence }),
            None => routes.remove(&tenant),
        };
        if let Some(RouteState::CutOver { buffer, .. }) = removed {
            // Drain back into the source while the write lock still
            // excludes new ingest, preserving arrival order.
            for msg in buffer {
                if let Err(e) = self.push_to(from, msg) {
                    let mut core = self.shards[from].core.lock().expect("shard core lock");
                    core.stats.ingest_errors += 1;
                    core.stats.last_error = Some(format!("rollback re-queue failed: {e}"));
                }
            }
        }
        drop(routes);
        self.shards[from]
            .core
            .lock()
            .expect("shard core lock")
            .stats
            .migrations_failed += 1;
        if let Some(reg) = &self.config.metrics {
            reg.counter("serve_migrations_failed_total").inc();
            reg.gauge("serve_migrations_active").add(-1);
        }
        ServeError::MigrationFailed {
            tenant,
            stage,
            reason,
        }
    }

    /// Resize one shard session's scoring engine, live. Bitwise-neutral:
    /// the engine spawns scoped threads per scoring call and holds no
    /// state between batches, and parallel scoring is bitwise identical
    /// to serial, so this changes throughput only — never a score.
    pub fn set_shard_threads(&self, shard: usize, threads: usize) -> Result<()> {
        let h = self
            .shards
            .get(shard)
            .ok_or(ServeError::InvalidConfig("shard index out of range"))?;
        let engine = if threads > 1 {
            ScoringEngine::with_threads(threads)
        } else {
            ScoringEngine::serial()
        };
        h.core
            .lock()
            .expect("shard core lock")
            .session
            .set_engine(engine);
        Ok(())
    }

    /// One rebalance pass: snapshot the stats and tenant placement, let
    /// `policy` decide ([`RebalancePolicy::plan`]), execute the actions
    /// (thread resizes first, then at most one live migration). Returns
    /// the executed actions; a failed migration surfaces as its typed
    /// error. Call this periodically from an operator loop.
    pub fn rebalance(&self, policy: &RebalancePolicy) -> Result<Vec<RebalanceAction>> {
        let stats = self.stats();
        let placement = self.placement();
        let actions = policy.plan(&stats, &placement);
        for a in &actions {
            match *a {
                RebalanceAction::SetShardThreads { shard, threads } => {
                    self.set_shard_threads(shard, threads)?;
                }
                RebalanceAction::MigrateTenant { tenant, to, .. } => {
                    self.migrate_tenant(tenant, to)?;
                }
            }
        }
        Ok(actions)
    }

    /// `placement()[shard]` lists the `(tenant, n_triples)` pairs served
    /// by each shard, tenants ascending.
    fn placement(&self) -> Vec<Vec<(TenantId, usize)>> {
        let routes = self.routes.read().expect("route table lock");
        let mut out: Vec<Vec<(TenantId, usize)>> =
            (0..self.config.n_shards).map(|_| Vec::new()).collect();
        for (i, h) in self.shards.iter().enumerate() {
            let core = h.core.lock().expect("shard core lock");
            let mut served: Vec<(TenantId, usize)> = core
                .tenants
                .iter()
                .filter(|(t, _)| self.serves(&routes, **t, i))
                .map(|(t, m)| (*t, m.n_triples()))
                .collect();
            served.sort_unstable_by_key(|(t, _)| *t);
            out[i] = served;
        }
        out
    }

    /// Graceful shutdown: refuse new messages, drain every queue, seal
    /// every journal, join the workers. Returns the final statistics.
    pub fn shutdown(mut self) -> Result<RouterStats> {
        self.close_and_join()?;
        Ok(self.stats())
    }

    fn close_and_join(&mut self) -> Result<()> {
        for h in &self.shards {
            h.queue.close();
        }
        let mut panicked = None;
        for (i, w) in self.workers.iter_mut().enumerate() {
            if let Some(join) = w.take() {
                if join.join().is_err() {
                    panicked = Some(i);
                }
            }
        }
        match panicked {
            Some(shard) => Err(ServeError::ShardPanicked { shard }),
            None => Ok(()),
        }
    }
}

impl Drop for ShardRouter {
    /// Dropping without [`ShardRouter::shutdown`] still drains and seals
    /// (panics in workers are swallowed here; use `shutdown` to observe
    /// them).
    fn drop(&mut self) {
        let _ = self.close_and_join();
    }
}

/// Merge one shard's seeded tenants into a single namespaced dataset,
/// building each tenant's id map along the way.
fn merge_seeds(
    seeds: &[(TenantId, Dataset)],
) -> CoreResult<(Dataset, HashMap<TenantId, TenantMap>, u32)> {
    let mut b = DatasetBuilder::new();
    let mut tenants: HashMap<TenantId, TenantMap> = HashMap::new();
    let mut next_domain = 0u32;
    for (tenant, ds) in seeds {
        let mut map = TenantMap::default();
        for s in ds.sources() {
            map.sources
                .push(b.source(scoped_source_name(*tenant, ds.source_name(s))));
        }
        for t in ds.triples() {
            let scoped = scoped_triple(*tenant, ds.triple(t));
            let id = b.triple(scoped.subject, scoped.predicate, scoped.object);
            let shard_domain = *map.domains.entry(ds.domain(t)).or_insert_with(|| {
                let d = Domain(next_domain);
                next_domain += 1;
                d
            });
            b.set_domain(id, shard_domain);
            if let Some(truth) = ds.gold().and_then(|g| g.get(t)) {
                b.label(id, truth);
            }
            map.triples.push(id);
        }
        for s in ds.sources() {
            for &t in ds.output(s) {
                b.observe(map.sources[s.index()], map.triples[t.index()]);
            }
        }
        tenants.insert(*tenant, map);
    }
    Ok((b.build()?, tenants, next_domain))
}
