//! Per-shard state and the worker loop: bounded queue → time/size
//! micro-batcher → tenant-id translation → [`StreamSession::ingest`] →
//! journal rotation.
//!
//! A shard owns one [`StreamSession`] plus the [`TenantMap`]s of every
//! tenant routed to it, all behind one mutex ([`ShardCore`]). The worker
//! thread applies a whole micro-batch under that lock, which is what
//! makes router reads snapshot-consistent: a query never observes a
//! half-applied batch.
//!
//! # Failure containment
//!
//! Translation errors (a tenant referencing an id it never registered)
//! and ingest validation errors (a new triple without a claim) are
//! detected before any session state mutates. When a *merged*
//! micro-batch fails, the worker retries its messages individually so
//! one malformed message cannot take innocent co-tenants down with it;
//! the bad message is dropped and counted in
//! [`ShardStats::ingest_errors`]. Errors that surface *after* state may
//! have mutated (a model refresh failing on a degenerate prior, journal
//! I/O) poison the shard instead: it stops applying, refuses further
//! front-door calls with the typed
//! [`crate::ServeError::ShardPoisoned`], and reports
//! [`ShardStats::poisoned`]; the last consistent state stays readable
//! through [`crate::ShardRouter::shard_snapshot`] so an operator can
//! rebuild the shard from its journal. Journal rotation runs outside
//! the batch path; a rotation failure is recorded but neither retries
//! the batch nor poisons the shard.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use corrfuse_core::dataset::{Dataset, Domain, SourceId};
use corrfuse_core::error::{FusionError, Result as CoreResult};
use corrfuse_core::triple::{Triple, TripleId};
use corrfuse_obs::{Histogram, Registry, Span};
use corrfuse_stream::{Event, RefitLevel, StreamSession};

use crate::config::JournalConfig;
use crate::queue::{Pop, Queue};
use crate::replica::ReplicaTap;
use crate::stats::ShardStats;
use crate::tenant::{scoped_source_name, scoped_triple, TenantId, TenantMap};

/// One routed message: a tenant's micro-batch of tenant-local events.
#[derive(Debug)]
pub(crate) struct Msg {
    pub tenant: TenantId,
    pub events: Vec<Event>,
    /// Front-door enqueue time; `Some` only when the router records
    /// metrics, so the unobserved path never reads the clock.
    pub enqueued_at: Option<Instant>,
}

/// Pre-resolved metric handles for one shard worker. Built once at
/// router start from [`crate::RouterConfig::metrics`], so the hot path
/// records into `Arc<Histogram>`s without any registry lookup. Metric
/// names are the catalog in `docs/OBSERVABILITY.md`; histograms are
/// shared across shards (one series per stage, per-shard attribution
/// comes from the trace ring's labels and `ShardStats`).
#[derive(Debug)]
pub(crate) struct ShardSpans {
    pub registry: Arc<Registry>,
    /// Trace-ring label, `shard-<i>`.
    pub label: String,
    /// Front-door enqueue → worker pop, per message.
    pub queue_wait: Arc<Histogram>,
    /// First pop → micro-batch sealed, per batch.
    pub assembly: Arc<Histogram>,
    /// Whole `StreamSession::ingest` call, per batch.
    pub ingest: Arc<Histogram>,
    /// Refit stage on `RefitLevel::Model` batches.
    pub refit_model: Arc<Histogram>,
    /// Refit stage on `RefitLevel::Cluster` batches.
    pub refit_cluster: Arc<Histogram>,
    /// Refit stage on `RefitLevel::Full` batches.
    pub refit_full: Arc<Histogram>,
    /// Re-scoring stage (score-cache lookups + engine scoring).
    pub rescore: Arc<Histogram>,
    /// Lift-sketch admission / candidate-rescan stage.
    pub sketch: Arc<Histogram>,
    /// Journal append + fsync, per batch (journaling shards only).
    pub journal: Arc<Histogram>,
}

impl ShardSpans {
    pub fn new(registry: Arc<Registry>, shard: usize) -> ShardSpans {
        ShardSpans {
            label: format!("shard-{shard}"),
            queue_wait: registry.histogram("serve_queue_wait_ns"),
            assembly: registry.histogram("serve_batch_assembly_ns"),
            ingest: registry.histogram("stream_ingest_ns"),
            refit_model: registry.histogram("stream_refit_model_ns"),
            refit_cluster: registry.histogram("stream_refit_cluster_ns"),
            refit_full: registry.histogram("stream_refit_full_ns"),
            rescore: registry.histogram("stream_rescore_ns"),
            sketch: registry.histogram("stream_sketch_ns"),
            journal: registry.histogram("stream_journal_ns"),
            registry,
        }
    }
}

/// Permanent poison marker of one shard, shared between the worker
/// (which sets it once, under the core lock) and the router front door
/// (which checks it lock-free so ingest and queries can refuse with
/// [`crate::ServeError::ShardPoisoned`] without waiting behind a batch
/// apply).
pub(crate) type PoisonCell = OnceLock<String>;

/// The lockable state of one shard.
#[derive(Debug)]
pub(crate) struct ShardCore {
    pub session: StreamSession,
    pub tenants: HashMap<TenantId, TenantMap>,
    /// Next shard-global domain to allocate for a tenant-local domain.
    pub next_domain: u32,
    pub stats: ShardStats,
    /// Batches appended to the journal since the last rotation.
    pub batches_since_rotation: u64,
    /// Set when a post-validation ingest error (model refresh, journal
    /// I/O) left the session in an undefined state. A poisoned shard
    /// stops applying messages — racing messages already queued are
    /// dropped and counted as errors, new front-door calls are refused
    /// with a typed [`crate::ServeError::ShardPoisoned`] — and its
    /// last consistent state stays readable through
    /// [`crate::ShardRouter::shard_snapshot`]; rebuild it from the
    /// journal to recover.
    pub poison: Arc<PoisonCell>,
    /// Leader-side replication tap; `Some` only when the router runs
    /// with [`crate::RouterConfig::replication`]. Published to under
    /// this same lock right after the session commits a batch, so
    /// subscribers see exactly the committed epoch sequence.
    pub tap: Option<ReplicaTap>,
}

/// Worker-side progress counter, used by `ShardRouter::flush` to wait
/// until every accepted message has been applied.
#[derive(Debug, Default)]
pub(crate) struct Progress {
    processed: Mutex<u64>,
    cv: Condvar,
}

impl Progress {
    pub fn add(&self, n: u64) {
        let mut p = self.processed.lock().expect("progress lock");
        *p += n;
        self.cv.notify_all();
    }

    /// Wait until at least `target` messages were applied. Returns
    /// `false` if `dead()` reports the worker gone before that.
    pub fn wait_for(&self, target: u64, dead: impl Fn() -> bool) -> bool {
        let mut p = self.processed.lock().expect("progress lock");
        loop {
            if *p >= target {
                return true;
            }
            if dead() {
                // Re-check after the death verdict: the worker may have
                // finished its last batch in between.
                return *p >= target;
            }
            let (p2, _) = self
                .cv
                .wait_timeout(p, Duration::from_millis(50))
                .expect("progress lock");
            p = p2;
        }
    }
}

/// The router-side handle of one shard.
#[derive(Debug)]
pub(crate) struct ShardHandle {
    pub queue: Arc<Queue<Msg>>,
    pub core: Arc<Mutex<ShardCore>>,
    pub progress: Arc<Progress>,
    /// Lock-free view of the shard's poison marker (shared with
    /// [`ShardCore::poison`]).
    pub poison: Arc<PoisonCell>,
    /// Messages accepted into the queue (front-door side).
    pub enqueued: AtomicU64,
    /// Messages refused by backpressure (front-door side).
    pub rejected: AtomicU64,
    /// Highest epoch any follower has acknowledged applying
    /// (monotonic `fetch_max`; 0 before the first ack). Shard epoch
    /// minus this is the shard's replication lag in batches.
    pub acked_epoch: AtomicU64,
}

/// Everything a worker thread needs.
pub(crate) struct WorkerParams {
    pub queue: Arc<Queue<Msg>>,
    pub core: Arc<Mutex<ShardCore>>,
    pub progress: Arc<Progress>,
    pub max_batch_events: usize,
    pub max_batch_delay: Duration,
    pub journal: Option<JournalConfig>,
    /// Metric handles; `Some` only when the router records metrics.
    pub spans: Option<Arc<ShardSpans>>,
}

/// The shard worker loop. Blocks on the queue, micro-batches messages
/// until `max_batch_events` are buffered or the first message has waited
/// `max_batch_delay`, applies the batch under the core lock, and seals
/// the journal on exit (queue closed and drained).
pub(crate) fn run_worker(p: WorkerParams) {
    let spans = p.spans.as_deref();
    loop {
        let first = match p.queue.pop_deadline(None) {
            Pop::Item(m) => m,
            Pop::Closed => break,
            Pop::TimedOut => unreachable!("pop without deadline cannot time out"),
        };
        let assembly = Span::start(spans.is_some());
        record_queue_wait(spans, &first);
        let mut n_events = first.events.len();
        let mut msgs = vec![first];
        let deadline = Instant::now() + p.max_batch_delay;
        let mut closed = false;
        while n_events < p.max_batch_events {
            match p.queue.pop_deadline(Some(deadline)) {
                Pop::Item(m) => {
                    record_queue_wait(spans, &m);
                    n_events += m.events.len();
                    msgs.push(m);
                }
                Pop::TimedOut => break,
                Pop::Closed => {
                    closed = true;
                    break;
                }
            }
        }
        if let Some(sp) = spans {
            assembly.record(&sp.assembly);
        }
        {
            let mut core = p.core.lock().expect("shard core lock");
            apply_batch(&mut core, &msgs, p.journal.as_ref(), spans);
            core.stats.processed_messages += msgs.len() as u64;
        }
        p.progress.add(msgs.len() as u64);
        if closed {
            break;
        }
    }
    let mut core = p.core.lock().expect("shard core lock");
    if let Err(e) = core.session.seal_journal() {
        core.stats.last_error = Some(format!("journal seal failed: {e}"));
    }
    if let Some(tap) = &mut core.tap {
        // Followers drain what is buffered, then observe the close and
        // know the leader is gone.
        tap.close();
    }
}

/// Apply one worker micro-batch, then (separately) consider journal
/// rotation. A merged batch whose *input* is bad is retried message by
/// message; a poisoned shard applies nothing and counts every message as
/// an error. Rotation failures are recorded but never retried and never
/// conflated with batch failures — the journal is merely still large.
pub(crate) fn apply_batch(
    core: &mut ShardCore,
    msgs: &[Msg],
    journal: Option<&JournalConfig>,
    spans: Option<&ShardSpans>,
) {
    if msgs.is_empty() {
        return;
    }
    if core.poison.get().is_some() {
        refuse_poisoned(core, msgs.len());
        return;
    }
    match try_apply(core, msgs, spans) {
        Ok(()) => {}
        Err(_) if msgs.len() > 1 && core.poison.get().is_none() => {
            // The merged pre-validation failed on some message's input;
            // retry individually so innocent co-tenants aren't dropped.
            for m in msgs {
                if core.poison.get().is_some() {
                    refuse_poisoned(core, 1);
                    continue;
                }
                if let Err(e) = try_apply(core, std::slice::from_ref(m), spans) {
                    record_error(core, m.tenant, &e);
                }
            }
        }
        Err(e) => record_error(core, msgs[0].tenant, &e),
    }
    if let Err(e) = maybe_rotate(core, journal) {
        core.stats.last_error = Some(format!("journal rotation failed: {e}"));
    }
}

/// Record a message's front-door-to-pop latency, when both the shard
/// records metrics and the message carries its enqueue stamp.
fn record_queue_wait(spans: Option<&ShardSpans>, msg: &Msg) {
    if let (Some(sp), Some(t)) = (spans, msg.enqueued_at) {
        let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        sp.queue_wait.record(ns);
    }
}

fn record_error(core: &mut ShardCore, tenant: TenantId, e: &FusionError) {
    core.stats.ingest_errors += 1;
    core.stats.last_error = Some(format!("{tenant}: {e}"));
}

fn refuse_poisoned(core: &mut ShardCore, n_msgs: usize) {
    core.stats.ingest_errors += n_msgs as u64;
    core.stats.last_error = Some(format!(
        "shard poisoned, message dropped: {}",
        core.poison.get().map(String::as_str).unwrap_or("unknown")
    ));
}

/// Input errors are detected before any session state mutates (the
/// translation layer plus `IncrementalFuser::validate_batch`); they are
/// safe to drop and move on from. Any *other* ingest error surfaced
/// after the dataset may have advanced (model refresh, journal I/O)
/// leaves the session in an undefined state — the shard must stop
/// applying (see [`ShardCore::poisoned`]).
fn is_input_error(e: &FusionError) -> bool {
    matches!(
        e,
        FusionError::UnknownSource(_)
            | FusionError::TripleOutOfRange(_)
            | FusionError::UnobservedTriple(_)
    )
}

/// Translate + ingest one batch, committing tenant-map growth only once
/// the shard dataset actually absorbed it.
fn try_apply(core: &mut ShardCore, msgs: &[Msg], spans: Option<&ShardSpans>) -> CoreResult<()> {
    let ShardCore {
        session,
        tenants,
        next_domain,
        stats,
        batches_since_rotation,
        poison,
        tap,
    } = core;
    let tr = translate(tenants, session.dataset(), *next_domain, msgs)?;
    let dims_before = (session.dataset().n_sources(), session.dataset().n_triples());
    let t0 = Instant::now();
    let result = session.ingest(&tr.events);
    let ns = t0.elapsed().as_nanos() as u64;
    let dims_after = (session.dataset().n_sources(), session.dataset().n_triples());
    // Input errors are detected before any mutation, so a failed ingest
    // normally discards the pending maps with the batch. The exception is
    // an error *after* the dataset advanced (e.g. a journal I/O failure):
    // then the maps must advance too or the tenants' ids would detach
    // from the shard's.
    if result.is_ok() || dims_after != dims_before {
        *next_domain = tr.next_domain;
        for (tenant, delta) in tr.pending {
            let map = tenants.entry(tenant).or_default();
            map.sources.extend(delta.sources);
            map.triples.extend(delta.triples);
            map.domains.extend(delta.domains);
        }
    }
    let delta = match result {
        Ok(delta) => delta,
        Err(e) => {
            if !is_input_error(&e) {
                let _ = poison.set(e.to_string());
            }
            return Err(e);
        }
    };
    if let Some(tap) = tap {
        // Publish under the same lock that committed the batch: the
        // session's post-commit epoch stamps it, and subscription
        // registration (also under this lock) can never race a batch
        // into both the snapshot and the queue.
        tap.publish(session.epoch(), &tr.events);
    }
    stats.batches += 1;
    if msgs.len() > 1 {
        stats.merged_batches += 1;
    }
    stats.ingested_events += tr.events.len() as u64;
    stats.max_batch_events = stats.max_batch_events.max(tr.events.len() as u64);
    stats.total_ingest_ns += ns;
    stats.max_ingest_ns = stats.max_ingest_ns.max(ns);
    stats.rescored += delta.rescored.len() as u64;
    stats.flips += delta.flips.len() as u64;
    match delta.refit {
        RefitLevel::None => stats.ingest_ns_none += ns,
        RefitLevel::Model => {
            stats.refit_model += 1;
            stats.ingest_ns_model += ns;
        }
        RefitLevel::Cluster => {
            stats.refit_cluster += 1;
            stats.ingest_ns_cluster += ns;
        }
        RefitLevel::Full => {
            stats.refit_full += 1;
            stats.ingest_ns_full += ns;
        }
    }
    if let Some(r) = delta.reconcile {
        stats.cluster_units_reused += r.reused as u64;
        stats.cluster_units_rebuilt += r.rebuilt as u64;
    }
    if let Some(sp) = spans {
        sp.ingest.record(ns);
        if delta.journal_ns > 0 {
            sp.journal.record(delta.journal_ns);
        }
        // The session runs with `FuserConfig::spans` on whenever the
        // router records metrics (see `ShardRouter::new`), so the
        // per-stage breakdown is present.
        if let Some(st) = delta.stages {
            match delta.refit {
                RefitLevel::None => {}
                RefitLevel::Model => sp.refit_model.record(st.refit_ns),
                RefitLevel::Cluster => sp.refit_cluster.record(st.refit_ns),
                RefitLevel::Full => sp.refit_full.record(st.refit_ns),
            }
            sp.rescore.record(st.rescore_ns);
            sp.sketch.record(st.sketch_ns);
            sp.registry.traces().push(
                &sp.label,
                ns,
                vec![
                    ("sketch".to_string(), st.sketch_ns),
                    ("refit".to_string(), st.refit_ns),
                    ("rescore".to_string(), st.rescore_ns),
                    ("journal".to_string(), delta.journal_ns),
                ],
            );
        }
    }
    *batches_since_rotation += 1;
    Ok(())
}

fn maybe_rotate(core: &mut ShardCore, journal: Option<&JournalConfig>) -> CoreResult<()> {
    let Some(cfg) = journal else {
        return Ok(());
    };
    let Some(bytes) = core.session.journal_bytes() else {
        return Ok(());
    };
    let by_bytes = cfg.rotate_max_bytes.is_some_and(|max| bytes >= max);
    let by_batches = cfg
        .rotate_max_batches
        .is_some_and(|max| core.batches_since_rotation >= max);
    if by_bytes || by_batches {
        core.session.rotate_journal()?;
        core.stats.rotations += 1;
        core.batches_since_rotation = 0;
    }
    Ok(())
}

/// Owned result of translating queued messages against a core snapshot:
/// the shard-space events plus the tenant-map growth to commit on
/// success.
struct Translated {
    events: Vec<Event>,
    pending: HashMap<TenantId, TenantMap>,
    next_domain: u32,
}

/// Rewrite tenant-local events into the shard session's id spaces. Pure
/// with respect to the core (returns owned growth), so a failed batch
/// leaves no trace.
fn translate(
    tenants: &HashMap<TenantId, TenantMap>,
    ds: &Dataset,
    mut next_domain: u32,
    msgs: &[Msg],
) -> CoreResult<Translated> {
    let mut events = Vec::new();
    let mut pending: HashMap<TenantId, TenantMap> = HashMap::new();
    // Content introduced earlier in this same (possibly merged) batch,
    // which the session has not interned yet.
    let mut batch_names: HashMap<String, SourceId> = HashMap::new();
    let mut batch_triples: HashMap<Triple, TripleId> = HashMap::new();
    let mut n_sources = ds.n_sources();
    let mut n_triples = ds.n_triples();
    for msg in msgs {
        let tenant = msg.tenant;
        for ev in &msg.events {
            match ev {
                Event::AddSource { name } => {
                    let scoped = scoped_source_name(tenant, name);
                    let known =
                        ds.source_by_name(&scoped).is_some() || batch_names.contains_key(&scoped);
                    if !known {
                        let id = SourceId(n_sources as u32);
                        n_sources += 1;
                        batch_names.insert(scoped.clone(), id);
                        pending.entry(tenant).or_default().sources.push(id);
                        events.push(Event::AddSource { name: scoped });
                    }
                }
                Event::AddTriple { triple, domain } => {
                    let scoped = scoped_triple(tenant, triple);
                    let known =
                        ds.triple_id(&scoped).is_some() || batch_triples.contains_key(&scoped);
                    if !known {
                        let id = TripleId(n_triples as u32);
                        n_triples += 1;
                        let shard_domain =
                            domain_of(tenants, &mut pending, &mut next_domain, tenant, *domain);
                        batch_triples.insert(scoped.clone(), id);
                        pending.entry(tenant).or_default().triples.push(id);
                        events.push(Event::AddTriple {
                            triple: scoped,
                            domain: shard_domain,
                        });
                    }
                }
                Event::Claim { source, triple } => {
                    let s = lookup_source(tenants, &pending, tenant, *source).ok_or_else(|| {
                        FusionError::UnknownSource(format!("{tenant} local {source}"))
                    })?;
                    let t = lookup_triple(tenants, &pending, tenant, *triple)
                        .ok_or(FusionError::TripleOutOfRange(triple.index()))?;
                    events.push(Event::Claim {
                        source: s,
                        triple: t,
                    });
                }
                Event::Label { triple, truth } => {
                    let t = lookup_triple(tenants, &pending, tenant, *triple)
                        .ok_or(FusionError::TripleOutOfRange(triple.index()))?;
                    events.push(Event::Label {
                        triple: t,
                        truth: *truth,
                    });
                }
            }
        }
    }
    Ok(Translated {
        events,
        pending,
        next_domain,
    })
}

/// Resolve a tenant-local source id: the committed map first, then the
/// ids this batch is introducing.
fn lookup_source(
    tenants: &HashMap<TenantId, TenantMap>,
    pending: &HashMap<TenantId, TenantMap>,
    tenant: TenantId,
    local: SourceId,
) -> Option<SourceId> {
    let committed = tenants.get(&tenant).map_or(&[][..], |m| &m.sources[..]);
    if let Some(&id) = committed.get(local.index()) {
        return Some(id);
    }
    pending
        .get(&tenant)?
        .sources
        .get(local.index() - committed.len())
        .copied()
}

/// Resolve a tenant-local triple id; see [`lookup_source`].
fn lookup_triple(
    tenants: &HashMap<TenantId, TenantMap>,
    pending: &HashMap<TenantId, TenantMap>,
    tenant: TenantId,
    local: TripleId,
) -> Option<TripleId> {
    let committed = tenants.get(&tenant).map_or(&[][..], |m| &m.triples[..]);
    if let Some(&id) = committed.get(local.index()) {
        return Some(id);
    }
    pending
        .get(&tenant)?
        .triples
        .get(local.index() - committed.len())
        .copied()
}

/// Resolve (or allocate) the shard-global domain of a tenant-local
/// domain.
fn domain_of(
    tenants: &HashMap<TenantId, TenantMap>,
    pending: &mut HashMap<TenantId, TenantMap>,
    next_domain: &mut u32,
    tenant: TenantId,
    local: Domain,
) -> Domain {
    if let Some(&d) = tenants.get(&tenant).and_then(|m| m.domains.get(&local)) {
        return d;
    }
    let pend = pending.entry(tenant).or_default();
    if let Some(&d) = pend.domains.get(&local) {
        return d;
    }
    let d = Domain(*next_domain);
    *next_domain += 1;
    pend.domains.insert(local, d);
    d
}
