//! The leader-side replication tap: per-shard fan-out of committed
//! batches to read-replica followers.
//!
//! When [`crate::RouterConfig::replication`] is set, every shard keeps a
//! [`ReplicaTap`] inside its core: a bounded backlog of the most recent
//! committed batches (one entry per epoch, in the shared
//! `corrfuse_stream::codec` text encoding) plus the queues of its live
//! subscribers. The tap is written under the same shard lock that
//! applies batches, which is the whole correctness story:
//!
//! * **No gap, no duplicate.** [`crate::ShardRouter::subscribe`]
//!   registers the subscriber queue and captures the resume suffix (or a
//!   dataset snapshot at the current epoch) in one critical section, so
//!   a batch committing concurrently either lands in the
//!   snapshot/backlog *or* in the queue — never both, never neither.
//!   Journal rotation also runs under that lock and touches only the
//!   file, so subscribing across a rotation is indistinguishable from
//!   subscribing next to one.
//! * **Bounded memory, never a stalled leader.** Subscriber queues are
//!   pushed with reject-on-full semantics; a follower that cannot keep
//!   up has its queue closed (it observes the close, resubscribes, and
//!   if it fell behind the backlog it bootstraps from a snapshot). The
//!   backlog itself is a ring of at most
//!   [`crate::config::ReplicationConfig::backlog_batches`] entries.
//!
//! A follower that applies the snapshot at epoch `e` and then every
//! batch `e+1, e+2, ...` through the incremental path holds state
//! bitwise identical to the leader shard at the same epoch — the
//! workspace trust anchor, extended over the wire (pinned by
//! `tests/replica_equivalence.rs`).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use corrfuse_stream::Event;

use crate::config::{Backpressure, ReplicationConfig};
use crate::queue::{Pop, PushError, Queue};

/// One committed batch as published to subscribers: the shard epoch it
/// committed at, plus its shard-space events in the shared
/// `corrfuse_stream::codec` text encoding (event lines + `+B`
/// terminator — exactly the `BATCH` frame payload tail and exactly what
/// `codec::parse_batch` replays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaBatch {
    /// The shard epoch after this batch committed (epochs are 1-based:
    /// the batch taking a shard from epoch `e-1` to `e` carries `e`).
    pub epoch: u64,
    /// The batch's shard-space events, codec-encoded.
    pub text: String,
}

/// How a subscription begins.
#[derive(Debug, Clone, PartialEq)]
pub enum SubscriptionStart {
    /// The tap's backlog still covered the requested epoch: the
    /// subscriber's queue was preloaded with every batch after
    /// `from_epoch` and streams live from there. Nothing to bootstrap.
    Resume,
    /// The subscriber is too far behind (or brand new): bootstrap from
    /// this dataset snapshot, then apply the queued batches.
    Snapshot {
        /// The shard epoch the snapshot was captured at; the first
        /// queued batch carries `epoch + 1`.
        epoch: u64,
        /// The shard's accumulated (namespaced) dataset in the
        /// `corrfuse_core::io` TSV dialect.
        dataset: String,
        /// The shard session's decision threshold.
        threshold: f64,
    },
}

/// A live subscription: the consumer half of one subscriber queue.
/// Dropping it (or the tap closing it for falling behind) ends the
/// subscription; the leader notices on its next publish and forgets the
/// queue.
#[derive(Debug)]
pub struct Subscription {
    queue: Arc<Queue<ReplicaBatch>>,
}

impl Subscription {
    /// Receive the next committed batch, waiting until `deadline` (or
    /// forever when `None`). [`Pop::Closed`] means the subscription
    /// ended — the router shut down, or this subscriber fell behind and
    /// was disconnected — and the follower should resubscribe.
    pub fn recv_deadline(&self, deadline: Option<Instant>) -> Pop<ReplicaBatch> {
        self.queue.pop_deadline(deadline)
    }

    /// Batches currently buffered and not yet received.
    pub fn depth(&self) -> usize {
        self.queue.depth()
    }
}

/// The per-shard tap; lives inside the shard core, mutated only under
/// the shard lock. See the module docs.
#[derive(Debug)]
pub(crate) struct ReplicaTap {
    config: ReplicationConfig,
    /// The epoch just before the oldest backlog entry: the backlog
    /// covers epochs `backlog_start + 1 ..= backlog_start +
    /// backlog.len()` in order.
    backlog_start: u64,
    backlog: VecDeque<String>,
    subscribers: Vec<Arc<Queue<ReplicaBatch>>>,
}

impl ReplicaTap {
    pub fn new(config: ReplicationConfig, epoch: u64) -> ReplicaTap {
        ReplicaTap {
            config,
            backlog_start: epoch,
            backlog: VecDeque::new(),
            subscribers: Vec::new(),
        }
    }

    /// Record one committed batch and fan it out. Called under the shard
    /// lock immediately after the session absorbed the batch, with
    /// `epoch` the session's post-commit epoch.
    pub fn publish(&mut self, epoch: u64, events: &[Event]) {
        debug_assert_eq!(epoch, self.backlog_start + self.backlog.len() as u64 + 1);
        let mut text = String::new();
        corrfuse_stream::codec::write_batch(events, &mut text);
        if self.config.backlog_batches == 0 {
            self.backlog_start = epoch;
        } else {
            self.backlog.push_back(text.clone());
            while self.backlog.len() > self.config.backlog_batches {
                self.backlog.pop_front();
                self.backlog_start += 1;
            }
        }
        self.subscribers.retain(|q| {
            match q.push(
                ReplicaBatch {
                    epoch,
                    text: text.clone(),
                },
                Backpressure::Reject,
            ) {
                Ok(()) => true,
                Err(PushError::Full) => {
                    // The follower fell behind its queue: disconnect it
                    // rather than stall or buffer unboundedly. It
                    // observes the close and resubscribes.
                    q.close();
                    false
                }
                Err(PushError::Closed) => false,
            }
        });
    }

    /// Open a subscription resuming after `from_epoch`, with `current`
    /// the shard's epoch and `snapshot` producing the bootstrap payload
    /// lazily (only taken when the backlog cannot cover the gap). Called
    /// under the shard lock, which makes registration atomic with the
    /// captured state.
    pub fn subscribe(
        &mut self,
        from_epoch: u64,
        current: u64,
        snapshot: impl FnOnce() -> (String, f64),
    ) -> (SubscriptionStart, Subscription) {
        let queue = Arc::new(Queue::new(self.config.subscriber_capacity));
        let wanted = current.saturating_sub(from_epoch);
        let covered = from_epoch <= current
            && from_epoch >= self.backlog_start
            && wanted as usize <= self.config.subscriber_capacity;
        let start = if covered {
            let skip = (from_epoch - self.backlog_start) as usize;
            for (i, text) in self.backlog.iter().enumerate().skip(skip) {
                let epoch = self.backlog_start + i as u64 + 1;
                queue
                    .push(
                        ReplicaBatch {
                            epoch,
                            text: text.clone(),
                        },
                        Backpressure::Reject,
                    )
                    .expect("preload within subscriber capacity");
            }
            SubscriptionStart::Resume
        } else {
            let (dataset, threshold) = snapshot();
            SubscriptionStart::Snapshot {
                epoch: current,
                dataset,
                threshold,
            }
        };
        self.subscribers.push(Arc::clone(&queue));
        (start, Subscription { queue })
    }

    /// Live subscriber queues (stale entries are pruned on publish, so
    /// this can briefly over-count followers that vanished silently).
    pub fn n_subscribers(&self) -> usize {
        self.subscribers.len()
    }

    /// Close every subscriber queue (router shutdown): followers drain
    /// what is buffered, then observe the close.
    pub fn close(&mut self) {
        for q in self.subscribers.drain(..) {
            q.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::{SourceId, TripleId};

    fn batch(i: u32) -> Vec<Event> {
        vec![Event::claim(SourceId(i), TripleId(i))]
    }

    fn text_of(events: &[Event]) -> String {
        let mut s = String::new();
        corrfuse_stream::codec::write_batch(events, &mut s);
        s
    }

    #[test]
    fn resume_covers_backlog_and_streams_live() {
        let mut tap = ReplicaTap::new(ReplicationConfig::new(), 0);
        for i in 1..=3 {
            tap.publish(i as u64, &batch(i));
        }
        // Resume after epoch 1: epochs 2 and 3 are preloaded.
        let (start, sub) = tap.subscribe(1, 3, || unreachable!("backlog covers"));
        assert_eq!(start, SubscriptionStart::Resume);
        assert_eq!(sub.depth(), 2);
        tap.publish(4, &batch(4));
        for want in 2..=4u32 {
            match sub.recv_deadline(None) {
                Pop::Item(b) => {
                    assert_eq!(b.epoch, want as u64);
                    assert_eq!(b.text, text_of(&batch(want)));
                }
                other => panic!("expected item, got {other:?}"),
            }
        }
    }

    #[test]
    fn behind_the_backlog_snapshots() {
        let config = ReplicationConfig::new().with_backlog_batches(2);
        let mut tap = ReplicaTap::new(config, 0);
        for i in 1..=5 {
            tap.publish(i as u64, &batch(i));
        }
        // Backlog covers epochs 4..=5 only; resuming after 2 must
        // snapshot, at the current epoch.
        let (start, _sub) = tap.subscribe(2, 5, || ("DATASET".to_string(), 0.5));
        match start {
            SubscriptionStart::Snapshot {
                epoch,
                dataset,
                threshold,
            } => {
                assert_eq!(epoch, 5);
                assert_eq!(dataset, "DATASET");
                assert_eq!(threshold, 0.5);
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
        // A fresh follower (from_epoch 0) snapshots too.
        let (start, _sub) = tap.subscribe(0, 5, || ("D".to_string(), 0.5));
        assert!(matches!(start, SubscriptionStart::Snapshot { .. }));
    }

    #[test]
    fn slow_subscriber_is_disconnected_not_buffered() {
        let config = ReplicationConfig::new().with_subscriber_capacity(2);
        let mut tap = ReplicaTap::new(config, 0);
        let (_, sub) = tap.subscribe(0, 0, || (String::new(), 0.5));
        assert_eq!(tap.n_subscribers(), 1);
        tap.publish(1, &batch(1));
        tap.publish(2, &batch(2));
        // Third push overflows the queue: the subscriber is dropped and
        // its queue closed, but the buffered batches still drain.
        tap.publish(3, &batch(3));
        assert_eq!(tap.n_subscribers(), 0);
        assert!(matches!(sub.recv_deadline(None), Pop::Item(b) if b.epoch == 1));
        assert!(matches!(sub.recv_deadline(None), Pop::Item(b) if b.epoch == 2));
        assert!(matches!(sub.recv_deadline(None), Pop::Closed));
    }

    #[test]
    fn zero_backlog_always_snapshots_but_still_streams() {
        let config = ReplicationConfig::new().with_backlog_batches(0);
        let mut tap = ReplicaTap::new(config, 0);
        tap.publish(1, &batch(1));
        let (start, sub) = tap.subscribe(1, 1, || ("D".to_string(), 0.5));
        // from_epoch == current: nothing to replay, Resume is still
        // possible even with no backlog.
        assert_eq!(start, SubscriptionStart::Resume);
        tap.publish(2, &batch(2));
        assert!(matches!(sub.recv_deadline(None), Pop::Item(b) if b.epoch == 2));
        // But any gap at all requires a snapshot.
        let (start, _) = tap.subscribe(1, 2, || ("D".to_string(), 0.5));
        assert!(matches!(
            start,
            SubscriptionStart::Snapshot { epoch: 2, .. }
        ));
    }

    #[test]
    fn close_ends_every_subscription() {
        let mut tap = ReplicaTap::new(ReplicationConfig::new(), 0);
        let (_, a) = tap.subscribe(0, 0, || (String::new(), 0.5));
        let (_, b) = tap.subscribe(0, 0, || (String::new(), 0.5));
        tap.close();
        assert!(matches!(a.recv_deadline(None), Pop::Closed));
        assert!(matches!(b.recv_deadline(None), Pop::Closed));
        assert_eq!(tap.n_subscribers(), 0);
    }
}
