//! A bounded multi-producer / single-consumer queue with pluggable
//! producer-side backpressure.
//!
//! `std::sync::mpsc::sync_channel` offers blocking and non-blocking
//! sends but no deadline-bounded send and no depth introspection, both
//! of which the router's front door needs (its backpressure policy is
//! configuration, and queue depth is a first-class stat). This is the
//! same offline-workspace pattern as `corrfuse_core::engine`: a small
//! std-only implementation (Mutex + two Condvars) behind the API shape
//! the subsystem actually wants.
//!
//! Close semantics: [`Queue::close`] stops new pushes immediately, but
//! the consumer keeps draining buffered items — [`Queue::pop_deadline`]
//! reports [`Pop::Closed`] only once the buffer is empty. That is
//! exactly the graceful-shutdown contract: accepted messages are never
//! dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::config::Backpressure;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity and the policy gave up.
    Full,
    /// The queue was closed.
    Closed,
}

/// Outcome of a pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item.
    Item(T),
    /// The deadline passed with the queue still empty.
    TimedOut,
    /// The queue is closed *and* fully drained.
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    buf: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

/// The bounded queue; see the module docs.
#[derive(Debug)]
pub struct Queue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> Queue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Queue<T> {
        Queue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                buf: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Push one item under the given backpressure policy.
    pub fn push(&self, item: T, policy: Backpressure) -> Result<(), PushError> {
        let deadline = match policy {
            Backpressure::Timeout(d) => Some(Instant::now() + d),
            _ => None,
        };
        let mut g = self.inner.lock().expect("queue lock");
        loop {
            if g.closed {
                return Err(PushError::Closed);
            }
            if g.buf.len() < self.capacity {
                g.buf.push_back(item);
                g.max_depth = g.max_depth.max(g.buf.len());
                self.not_empty.notify_one();
                return Ok(());
            }
            match policy {
                Backpressure::Reject => return Err(PushError::Full),
                Backpressure::Block => g = self.not_full.wait(g).expect("queue lock"),
                Backpressure::Timeout(_) => {
                    let deadline = deadline.expect("deadline set for Timeout");
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(PushError::Full);
                    }
                    let (g2, _) = self
                        .not_full
                        .wait_timeout(g, deadline - now)
                        .expect("queue lock");
                    g = g2;
                }
            }
        }
    }

    /// Pop one item, waiting until `deadline` (or forever when `None`).
    /// Buffered items are delivered even after [`Queue::close`].
    pub fn pop_deadline(&self, deadline: Option<Instant>) -> Pop<T> {
        let mut g = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = g.buf.pop_front() {
                self.not_full.notify_one();
                return Pop::Item(item);
            }
            if g.closed {
                return Pop::Closed;
            }
            match deadline {
                None => g = self.not_empty.wait(g).expect("queue lock"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Pop::TimedOut;
                    }
                    let (g2, _) = self.not_empty.wait_timeout(g, d - now).expect("queue lock");
                    g = g2;
                }
            }
        }
    }

    /// Refuse all future pushes; the consumer drains what is buffered.
    pub fn close(&self) {
        let mut g = self.inner.lock().expect("queue lock");
        g.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Current number of buffered items.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").buf.len()
    }

    /// High-water mark of the buffer since creation.
    pub fn max_depth(&self) -> usize {
        self.inner.lock().expect("queue lock").max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn reject_policy_fails_fast_when_full() {
        let q = Queue::new(2);
        assert!(q.push(1, Backpressure::Reject).is_ok());
        assert!(q.push(2, Backpressure::Reject).is_ok());
        assert_eq!(q.push(3, Backpressure::Reject), Err(PushError::Full));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn timeout_policy_waits_then_gives_up() {
        let q = Queue::new(1);
        q.push(1, Backpressure::Block).unwrap();
        let t0 = Instant::now();
        let policy = Backpressure::Timeout(Duration::from_millis(30));
        assert_eq!(q.push(2, policy), Err(PushError::Full));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn block_policy_waits_for_the_consumer() {
        let q = Arc::new(Queue::new(1));
        q.push(1, Backpressure::Block).unwrap();
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            match q2.pop_deadline(None) {
                Pop::Item(v) => v,
                other => panic!("expected item, got {other:?}"),
            }
        });
        // Blocks until the consumer frees a slot.
        q.push(2, Backpressure::Block).unwrap();
        assert_eq!(consumer.join().unwrap(), 1);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q: Queue<u32> = Queue::new(4);
        q.push(1, Backpressure::Block).unwrap();
        q.push(2, Backpressure::Block).unwrap();
        q.close();
        assert_eq!(q.push(3, Backpressure::Block), Err(PushError::Closed));
        assert!(matches!(q.pop_deadline(None), Pop::Item(1)));
        assert!(matches!(q.pop_deadline(None), Pop::Item(2)));
        assert!(matches!(q.pop_deadline(None), Pop::Closed));
    }

    #[test]
    fn pop_deadline_times_out_on_empty_queue() {
        let q: Queue<u32> = Queue::new(1);
        let d = Instant::now() + Duration::from_millis(20);
        assert!(matches!(q.pop_deadline(Some(d)), Pop::TimedOut));
    }

    #[test]
    fn close_wakes_a_blocked_producer() {
        let q = Arc::new(Queue::new(1));
        q.push(1, Backpressure::Block).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2, Backpressure::Block));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(PushError::Closed));
    }
}
