//! Per-shard and aggregate serving statistics.

use corrfuse_core::cluster::LiftGraphStats;
use corrfuse_core::joint::{CacheStats, JointDeltaStats};

/// A point-in-time snapshot of one shard's counters.
///
/// Producer-side counters (`enqueued_messages`, `rejected_messages`) are
/// maintained by the router front door; everything else is maintained by
/// the shard worker under its core lock, so a snapshot never shows a
/// half-applied batch.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Tenants hosted (seeded + joined mid-run).
    pub tenants: usize,
    /// Messages accepted into the queue.
    pub enqueued_messages: u64,
    /// Messages refused by backpressure (`Reject` / `Timeout`).
    pub rejected_messages: u64,
    /// Messages applied by the worker.
    pub processed_messages: u64,
    /// Translated events ingested into the shard session.
    pub ingested_events: u64,
    /// `StreamSession::ingest` calls (micro-batches).
    pub batches: u64,
    /// Micro-batches that coalesced more than one queued message.
    pub merged_batches: u64,
    /// Messages dropped because translation or ingest failed.
    pub ingest_errors: u64,
    /// Human-readable description of the most recent error.
    pub last_error: Option<String>,
    /// A post-validation error left the shard session in an undefined
    /// state: it stopped applying messages, and ingest/queries against
    /// it fail with the typed `ServeError::ShardPoisoned` (protocol
    /// error `SHARD_POISONED` over the wire). The last consistent state
    /// stays readable via `ShardRouter::shard_snapshot`; rebuild the
    /// shard from its journal to recover.
    pub poisoned: bool,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Queue high-water mark since start.
    pub max_queue_depth: usize,
    /// Largest single micro-batch, in events.
    pub max_batch_events: u64,
    /// Total wall time spent inside `ingest`, in nanoseconds.
    pub total_ingest_ns: u64,
    /// Slowest single micro-batch, in nanoseconds.
    pub max_ingest_ns: u64,
    /// `total_ingest_ns` attributed to fast-path batches
    /// (`RefitLevel::None`). The four `ingest_ns_*` counters partition
    /// `total_ingest_ns`, so slow ingests are attributable to their
    /// refit level without enabling span tracing.
    pub ingest_ns_none: u64,
    /// `total_ingest_ns` attributed to `RefitLevel::Model` batches.
    pub ingest_ns_model: u64,
    /// `total_ingest_ns` attributed to `RefitLevel::Cluster` batches.
    pub ingest_ns_cluster: u64,
    /// `total_ingest_ns` attributed to `RefitLevel::Full` batches.
    pub ingest_ns_full: u64,
    /// Triples re-scored across all batches.
    pub rescored: u64,
    /// Decision flips across all batches.
    pub flips: u64,
    /// Batches that refreshed the quality model from maintained counters
    /// (`RefitLevel::Model`). Batches minus the three refit counters is
    /// the fast path (`RefitLevel::None`).
    pub refit_model: u64,
    /// Batches that re-derived the data-driven clustering from the
    /// maintained lift graph and refitted only changed clusters
    /// (`RefitLevel::Cluster`).
    pub refit_cluster: u64,
    /// Batches that fell back to a full `Fuser::fit`
    /// (`RefitLevel::Full`; source-set changes).
    pub refit_full: u64,
    /// Cluster units kept across `Cluster`-level re-clusterings (their
    /// joints were maintained incrementally all along).
    pub cluster_units_reused: u64,
    /// Cluster units refitted because re-clustering changed their
    /// membership.
    pub cluster_units_rebuilt: u64,
    /// Joint-rate memo counters of the shard session's cluster joints.
    pub joint_cache: CacheStats,
    /// Incremental-maintenance counters of the cluster joints: row
    /// deltas absorbed in place vs. full row rescans paid. A healthy
    /// shard shows `delta_rows` growing while `rescans` trails the
    /// number of distinct subsets queried. Counters restart when a full
    /// refit rebuilds the joints.
    pub joint_delta: JointDeltaStats,
    /// Lift-graph occupancy of the shard session: exact pairs tracked
    /// in the sparse graph, and candidate pairs the sketch tier declined
    /// to admit. Zero unless the shard's clustering is data-driven.
    /// Serve-side only — the fixed-width STATS wire records predate
    /// these counters (see docs/PROTOCOL.md).
    pub lift: LiftGraphStats,
    /// Journal rotations (compactions) performed.
    pub rotations: u64,
    /// Current journal size in bytes, if journaling.
    pub journal_bytes: Option<u64>,
    /// Cumulative score-cache counters of the shard session.
    pub score_cache: CacheStats,
    /// Triples accumulated in the shard session.
    pub n_triples: usize,
    /// Sources accumulated in the shard session.
    pub n_sources: usize,
    /// Delta-log events dropped by bounded retention.
    pub log_dropped_events: usize,
    /// The shard's replication epoch: batches committed into the shard
    /// session since start (one increment per applied micro-batch).
    /// Surfaced over the wire as the `serve_epoch_shard_<i>` METRICS
    /// gauge. Aggregates as a **maximum** — summing epochs across
    /// independent shards would be meaningless.
    pub epoch: u64,
    /// Highest epoch any replication follower has acknowledged applying
    /// for this shard (0 before the first ack; monotonic). `epoch -
    /// replica_acked_epoch` is the shard's replication lag in batches;
    /// surfaced as `replica_applied_epoch_shard_<i>` /
    /// `replica_lag_batches`. Aggregates as a maximum, like `epoch`.
    pub replica_acked_epoch: u64,
    /// Live replication subscriber queues on this shard's tap (0 when
    /// replication is disabled). Sums across shards.
    pub replica_subscribers: usize,
    /// Live migrations committed **into** this shard: tenants it gained.
    pub migrations_in: u64,
    /// Live migrations committed **out of** this shard: tenants it
    /// handed off (it may retain an inert namespaced residue of them;
    /// see `crate::migration`).
    pub migrations_out: u64,
    /// Migrations that failed and rolled back with this shard as the
    /// source — the tenant stayed here, unchanged.
    pub migrations_failed: u64,
    /// Scoring threads the shard session's engine is currently sized to
    /// (resized live by `crate::migration::RebalancePolicy` autosizing;
    /// bitwise-neutral). Sums across shards: the router's total scoring
    /// parallelism.
    pub scoring_threads: usize,
}

impl ShardStats {
    /// Mean events per micro-batch.
    pub fn mean_batch_events(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ingested_events as f64 / self.batches as f64
        }
    }

    /// Mean `ingest` wall time per micro-batch, in nanoseconds.
    pub fn mean_ingest_ns(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.total_ingest_ns as f64 / self.batches as f64
        }
    }
}

/// One shard's queue pressure, preserved through aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardQueueStat {
    /// Shard index.
    pub shard: usize,
    /// Queue depth at snapshot time.
    pub depth: usize,
    /// Queue high-water mark since start.
    pub high_water: usize,
}

/// One shard's migration traffic, preserved through aggregation: the
/// summed totals say how many migrations happened, but rebalancing
/// diagnostics need to know *which* shards are shedding or absorbing
/// tenants and where rollbacks cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMigrationStat {
    /// Shard index.
    pub shard: usize,
    /// Migrations committed into this shard.
    pub migrations_in: u64,
    /// Migrations committed out of this shard.
    pub migrations_out: u64,
    /// Migrations rolled back with this shard as the source.
    pub migrations_failed: u64,
}

/// Aggregated router counters plus the per-shard queue detail that a
/// single summed/maxed row cannot carry.
///
/// The workspace-wide maxima in [`RouterAggregate::totals`] say *how
/// hot* the hottest queue got but not *which* shard it was, or whether
/// the pressure was one skewed shard or uniform load —
/// [`RouterAggregate::queue`] keeps that, as groundwork for
/// queue-depth-driven rebalancing (ROADMAP item 4). Migration counters
/// have the same shape ([`RouterAggregate::migrations`]): a summed
/// `migrations_in` cannot say which shard is absorbing the fleet.
///
/// Derefs to [`ShardStats`] (the totals row), so existing callers of
/// [`RouterStats::aggregate`] keep reading summed counters field-for-
/// field unchanged.
#[derive(Debug, Clone)]
pub struct RouterAggregate {
    /// Summed/maxed counters across shards (`shard` holds the shard
    /// count; see [`RouterStats::aggregate`] for the folding rules).
    pub totals: ShardStats,
    /// Per-shard queue depth and high-water mark, in shard order.
    pub queue: Vec<ShardQueueStat>,
    /// Per-shard migration traffic, in shard order.
    pub migrations: Vec<ShardMigrationStat>,
}

impl std::ops::Deref for RouterAggregate {
    type Target = ShardStats;

    fn deref(&self) -> &ShardStats {
        &self.totals
    }
}

impl RouterAggregate {
    /// The shard whose queue high-water mark is largest (ties resolve
    /// to the lowest shard index); `None` with no shards.
    pub fn hottest_shard(&self) -> Option<ShardQueueStat> {
        self.queue
            .iter()
            .copied()
            .max_by(|a, b| a.high_water.cmp(&b.high_water).then(b.shard.cmp(&a.shard)))
    }
}

/// Stats for every shard plus aggregate views.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl RouterStats {
    /// Fold the per-shard counters into one aggregate row, keeping the
    /// per-shard queue detail alongside. In the totals, `shard` is the
    /// shard count, `queue_depth`/`max_queue_depth`/`epoch`/
    /// `replica_acked_epoch` are maxima, `last_error` is the first one
    /// found; everything else sums.
    pub fn aggregate(&self) -> RouterAggregate {
        let mut agg = ShardStats {
            shard: self.shards.len(),
            ..ShardStats::default()
        };
        let mut queue = Vec::with_capacity(self.shards.len());
        let mut migrations = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            queue.push(ShardQueueStat {
                shard: s.shard,
                depth: s.queue_depth,
                high_water: s.max_queue_depth,
            });
            migrations.push(ShardMigrationStat {
                shard: s.shard,
                migrations_in: s.migrations_in,
                migrations_out: s.migrations_out,
                migrations_failed: s.migrations_failed,
            });
            agg.tenants += s.tenants;
            agg.enqueued_messages += s.enqueued_messages;
            agg.rejected_messages += s.rejected_messages;
            agg.processed_messages += s.processed_messages;
            agg.ingested_events += s.ingested_events;
            agg.batches += s.batches;
            agg.merged_batches += s.merged_batches;
            agg.ingest_errors += s.ingest_errors;
            if agg.last_error.is_none() {
                agg.last_error.clone_from(&s.last_error);
            }
            agg.poisoned |= s.poisoned;
            agg.queue_depth = agg.queue_depth.max(s.queue_depth);
            agg.max_queue_depth = agg.max_queue_depth.max(s.max_queue_depth);
            agg.max_batch_events = agg.max_batch_events.max(s.max_batch_events);
            agg.total_ingest_ns += s.total_ingest_ns;
            agg.max_ingest_ns = agg.max_ingest_ns.max(s.max_ingest_ns);
            agg.ingest_ns_none += s.ingest_ns_none;
            agg.ingest_ns_model += s.ingest_ns_model;
            agg.ingest_ns_cluster += s.ingest_ns_cluster;
            agg.ingest_ns_full += s.ingest_ns_full;
            agg.rescored += s.rescored;
            agg.flips += s.flips;
            agg.refit_model += s.refit_model;
            agg.refit_cluster += s.refit_cluster;
            agg.refit_full += s.refit_full;
            agg.cluster_units_reused += s.cluster_units_reused;
            agg.cluster_units_rebuilt += s.cluster_units_rebuilt;
            agg.joint_cache = agg.joint_cache.merged(s.joint_cache);
            agg.joint_delta = agg.joint_delta.merged(s.joint_delta);
            agg.lift = agg.lift.merged(s.lift);
            agg.rotations += s.rotations;
            if let Some(b) = s.journal_bytes {
                *agg.journal_bytes.get_or_insert(0) += b;
            }
            agg.score_cache = agg.score_cache.merged(s.score_cache);
            agg.n_triples += s.n_triples;
            agg.n_sources += s.n_sources;
            agg.log_dropped_events += s.log_dropped_events;
            agg.epoch = agg.epoch.max(s.epoch);
            agg.replica_acked_epoch = agg.replica_acked_epoch.max(s.replica_acked_epoch);
            agg.replica_subscribers += s.replica_subscribers;
            agg.migrations_in += s.migrations_in;
            agg.migrations_out += s.migrations_out;
            agg.migrations_failed += s.migrations_failed;
            agg.scoring_threads += s.scoring_threads;
        }
        RouterAggregate {
            totals: agg,
            queue,
            migrations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_and_maxes() {
        let stats = RouterStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    tenants: 2,
                    enqueued_messages: 10,
                    processed_messages: 10,
                    ingested_events: 100,
                    batches: 4,
                    queue_depth: 1,
                    max_queue_depth: 5,
                    max_ingest_ns: 50,
                    total_ingest_ns: 100,
                    ingest_ns_none: 40,
                    ingest_ns_model: 50,
                    ingest_ns_cluster: 10,
                    journal_bytes: Some(1000),
                    refit_model: 2,
                    refit_cluster: 1,
                    cluster_units_reused: 3,
                    joint_delta: JointDeltaStats {
                        delta_rows: 7,
                        rescans: 2,
                        invalidations: 0,
                        memo_entries: 5,
                        memo_evictions: 1,
                    },
                    lift: LiftGraphStats {
                        pairs_exact: 4,
                        pairs_sketch_pruned: 10,
                    },
                    epoch: 9,
                    replica_acked_epoch: 7,
                    replica_subscribers: 2,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 1,
                    tenants: 1,
                    enqueued_messages: 3,
                    processed_messages: 3,
                    ingested_events: 20,
                    batches: 1,
                    queue_depth: 4,
                    max_queue_depth: 4,
                    max_ingest_ns: 80,
                    total_ingest_ns: 80,
                    ingest_ns_model: 30,
                    ingest_ns_full: 50,
                    journal_bytes: Some(500),
                    last_error: Some("boom".into()),
                    refit_model: 1,
                    refit_full: 1,
                    cluster_units_rebuilt: 2,
                    joint_delta: JointDeltaStats {
                        delta_rows: 1,
                        rescans: 4,
                        invalidations: 1,
                        memo_entries: 3,
                        memo_evictions: 2,
                    },
                    lift: LiftGraphStats {
                        pairs_exact: 6,
                        pairs_sketch_pruned: 30,
                    },
                    epoch: 4,
                    replica_acked_epoch: 4,
                    replica_subscribers: 1,
                    ..ShardStats::default()
                },
            ],
        };
        let agg = stats.aggregate();
        assert_eq!(agg.shard, 2);
        assert_eq!(agg.tenants, 3);
        assert_eq!(agg.enqueued_messages, 13);
        assert_eq!(agg.ingested_events, 120);
        assert_eq!(agg.queue_depth, 4);
        assert_eq!(agg.max_queue_depth, 5);
        assert_eq!(agg.max_ingest_ns, 80);
        assert_eq!(
            (
                agg.ingest_ns_none,
                agg.ingest_ns_model,
                agg.ingest_ns_cluster,
                agg.ingest_ns_full
            ),
            (40, 80, 10, 50)
        );
        assert_eq!(agg.journal_bytes, Some(1500));
        assert_eq!(agg.last_error.as_deref(), Some("boom"));
        assert_eq!(
            (agg.refit_model, agg.refit_cluster, agg.refit_full),
            (3, 1, 1)
        );
        assert_eq!(agg.cluster_units_reused, 3);
        assert_eq!(agg.cluster_units_rebuilt, 2);
        assert_eq!(
            agg.joint_delta,
            JointDeltaStats {
                delta_rows: 8,
                rescans: 6,
                invalidations: 1,
                memo_entries: 8,
                memo_evictions: 3,
            }
        );
        assert_eq!(
            agg.lift,
            LiftGraphStats {
                pairs_exact: 10,
                pairs_sketch_pruned: 40,
            }
        );
        // Epochs fold as maxima (each shard counts its own stream);
        // subscriber counts sum.
        assert_eq!(agg.epoch, 9);
        assert_eq!(agg.replica_acked_epoch, 7);
        assert_eq!(agg.replica_subscribers, 3);
        assert!((agg.mean_batch_events() - 24.0).abs() < 1e-9);
        assert!((agg.mean_ingest_ns() - 36.0).abs() < 1e-9);
        assert_eq!(ShardStats::default().mean_batch_events(), 0.0);
        assert_eq!(ShardStats::default().mean_ingest_ns(), 0.0);

        // The aggregate keeps the per-shard queue detail the summed row
        // can't carry: shard 1 had the deeper standing queue, shard 0
        // the higher high-water mark.
        assert_eq!(
            agg.queue,
            vec![
                ShardQueueStat {
                    shard: 0,
                    depth: 1,
                    high_water: 5,
                },
                ShardQueueStat {
                    shard: 1,
                    depth: 4,
                    high_water: 4,
                },
            ]
        );
        assert_eq!(agg.hottest_shard().map(|q| q.shard), Some(0));
    }

    #[test]
    fn aggregate_keeps_per_shard_migration_detail() {
        // Same bug class as the queue high-water fix: summed totals
        // cannot say which shard sheds and which absorbs. Shard 0 sent
        // two tenants away (one attempt rolled back), shard 1 received
        // both; the flattened row would read 2/2/1 and lose direction.
        let stats = RouterStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    migrations_out: 2,
                    migrations_failed: 1,
                    scoring_threads: 1,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 1,
                    migrations_in: 2,
                    scoring_threads: 3,
                    ..ShardStats::default()
                },
            ],
        };
        let agg = stats.aggregate();
        assert_eq!(
            (agg.migrations_in, agg.migrations_out, agg.migrations_failed),
            (2, 2, 1)
        );
        assert_eq!(agg.scoring_threads, 4);
        assert_eq!(
            agg.migrations,
            vec![
                ShardMigrationStat {
                    shard: 0,
                    migrations_in: 0,
                    migrations_out: 2,
                    migrations_failed: 1,
                },
                ShardMigrationStat {
                    shard: 1,
                    migrations_in: 2,
                    migrations_out: 0,
                    migrations_failed: 0,
                },
            ]
        );
    }

    #[test]
    fn hottest_shard_handles_edge_cases() {
        assert!(RouterStats::default().aggregate().hottest_shard().is_none());
        // Ties resolve to the lowest shard index.
        let tied = RouterStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    max_queue_depth: 7,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 1,
                    max_queue_depth: 7,
                    ..ShardStats::default()
                },
            ],
        };
        assert_eq!(tied.aggregate().hottest_shard().map(|q| q.shard), Some(0));
    }
}
