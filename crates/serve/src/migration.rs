//! Live tenant migration between shards, and the queue-depth-driven
//! rebalancer policy built on top of it.
//!
//! # Why migration is a replay
//!
//! Routing assigns each tenant a shard; a hot tenant therefore pins a
//! hot shard. Moving a tenant means moving *state*, and the fusion
//! semantics make that cheap to do exactly: scores depend only on the
//! accumulated dataset (claims are sets, labels are last-write-wins),
//! and a tenant's [`crate::TenantMap`] makes its slice of a shard
//! self-contained — positional local ids, namespaced names, private
//! domains. So a migration is: extract the tenant's slice as ordinary
//! tenant-local events, replay it into the target shard through the
//! normal ingest path, and repoint the route. Replay is *idempotent*
//! (known sources/triples are skipped by translation, claims and labels
//! are absorbing), which is what makes crash retries and repeated
//! back-and-forth migrations converge instead of compounding.
//!
//! # The state machine
//!
//! ```text
//!             ┌────────────┐ slice + replay  ┌────────────┐
//!  (static) ─▶│ BulkReplay │────────────────▶│  CutOver   │─▶ Commit ─▶ Moved
//!             └────────────┘  source serves  └────────────┘   (fence)
//!                   │          ingest+reads        │ ingest buffers,
//!                   │                              │ reads at source
//!                   ▼ any failure                  ▼ any failure
//!                rollback (route entry removed, buffer re-queued
//!                at the source; target keeps inert residue)
//! ```
//!
//! Stages are [`MigrationStage`]; a failure at any pre-commit stage
//! rolls back completely — the tenant never stops being served, and a
//! rolled-back target shard merely holds inert namespaced residue that
//! the next attempt's idempotent replay absorbs.
//!
//! # The epoch fence
//!
//! Commit records the target shard's epoch *after* the cut-over delta
//! was applied and flushed — the **fence**. The route flips to
//! `Moved { shard, fence }` atomically under the route-table lock, and
//! every read routed to the target from then on demands
//! `min_epoch >= fence`. Since the target absorbed, before the fence
//! epoch, a superset of everything the source ever served, no read can
//! observe an older state than any pre-migration read: reads never go
//! backwards across the repoint. The same fence is persisted next to
//! the shard journals ([`store_routes`] / [`load_routes`]) so crash
//! recovery can decide, per tenant, whether the on-disk target is
//! complete ([`resolve_route`]): a recovered target epoch at or past
//! the fence proves the whole slice (and delta) is in the target
//! journal; anything less rolls back to the source, whose journal is
//! complete by construction. Either way the tenant resolves to exactly
//! one shard — never a split route.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use corrfuse_core::dataset::{Dataset, Domain, SourceId};
use corrfuse_core::error::FusionError;
use corrfuse_core::triple::TripleId;
use corrfuse_stream::Event;

use crate::error::{Result, ServeError};
use crate::shard::Msg;
use crate::stats::RouterStats;
use crate::tenant::{unscoped, TenantId, TenantMap};

/// Where a migration stands (or where it failed); carried by
/// [`ServeError::MigrationFailed`] and used as the chaos-injection
/// coordinate by `ShardRouter::migrate_tenant_chaos`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationStage {
    /// Validating the request and claiming the tenant's route entry.
    Planning,
    /// Extracting the tenant's slice and replaying it into the target
    /// while the source keeps serving ingest and reads.
    BulkReplay,
    /// The cut-over window: new ingest buffers, the source is flushed
    /// and its final delta replays into the target.
    CutOver,
    /// Persisting the fence and atomically repointing the route.
    Commit,
}

impl fmt::Display for MigrationStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MigrationStage::Planning => "planning",
            MigrationStage::BulkReplay => "bulk-replay",
            MigrationStage::CutOver => "cut-over",
            MigrationStage::Commit => "commit",
        })
    }
}

/// What a completed migration did.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// The migrated tenant.
    pub tenant: TenantId,
    /// The shard that served the tenant before.
    pub from: usize,
    /// The shard serving the tenant now.
    pub to: usize,
    /// The epoch fence: reads routed to the target demand at least this
    /// epoch, so they can never observe a pre-migration state.
    pub fence: u64,
    /// Events in the bulk slice replayed while the source kept serving.
    pub bulk_events: usize,
    /// Events in the cut-over delta (the slice re-extracted after the
    /// window closed; idempotent replay absorbs the overlap).
    pub delta_events: usize,
    /// Ingest messages buffered during the cut-over window and drained
    /// into the target at commit.
    pub buffered_messages: usize,
}

/// One tenant's dynamic route, overriding the static
/// `tenant.0 % n_shards` placement. Absence means static routing.
#[derive(Debug)]
pub(crate) enum RouteState {
    /// Bulk replay in flight: the source still serves ingest and reads.
    Migrating {
        /// The serving (source) shard.
        from: usize,
    },
    /// Cut-over window: ingest buffers here (bounded by the queue
    /// capacity), reads still resolve at the source.
    CutOver {
        /// The serving (source) shard.
        from: usize,
        /// Messages accepted during the window, drained into the target
        /// at commit (or back into the source on rollback).
        buffer: Vec<Msg>,
    },
    /// Committed: the tenant is served by `shard`; reads demand at
    /// least epoch `fence` there.
    Moved {
        /// The serving shard.
        shard: usize,
        /// Minimum epoch for reads against the new shard.
        fence: u64,
    },
}

impl RouteState {
    /// The shard currently serving the tenant's reads.
    pub(crate) fn serving(&self) -> usize {
        match self {
            RouteState::Migrating { from } | RouteState::CutOver { from, .. } => *from,
            RouteState::Moved { shard, .. } => *shard,
        }
    }
}

/// Re-express a tenant's slice of a shard dataset as tenant-local
/// events, in tenant-local registration order — sources, then triples
/// (each with its tenant-local domain), then claims in per-source
/// arrival order, then labels. The result replays standalone (local id
/// `k` is assigned to the `k`-th registration, i.e. the identity) or
/// into any shard through the normal translating ingest path, as **one
/// batch** (ingest validation requires a new triple's first claim in
/// the same batch, and the slice carries every claim).
///
/// Invariant (leader maps only): every shard domain of the tenant's
/// triples appears in `map.domains` — merge-seed and translation both
/// record the allocation — so the inversion below is total; derived
/// follower maps (empty `domains`) are not valid inputs.
pub(crate) fn extract_slice(ds: &Dataset, map: &TenantMap) -> Vec<Event> {
    let mut events = Vec::with_capacity(map.sources.len() + 3 * map.triples.len());
    for &s in &map.sources {
        events.push(Event::add_source(unscoped(ds.source_name(s))));
    }
    let local_domain: HashMap<Domain, Domain> = map
        .domains
        .iter()
        .map(|(local, shard)| (*shard, *local))
        .collect();
    let local_triple: HashMap<TripleId, TripleId> = map
        .triples
        .iter()
        .enumerate()
        .map(|(k, &t)| (t, TripleId(k as u32)))
        .collect();
    for &t in &map.triples {
        let triple = ds.triple(t);
        events.push(Event::add_triple_in(
            unscoped(&triple.subject),
            triple.predicate.clone(),
            triple.object.clone(),
            local_domain[&ds.domain(t)],
        ));
    }
    for (k, &s) in map.sources.iter().enumerate() {
        for t in ds.output(s) {
            if let Some(&local) = local_triple.get(t) {
                events.push(Event::claim(SourceId(k as u32), local));
            }
        }
    }
    if let Some(gold) = ds.gold() {
        for (k, &t) in map.triples.iter().enumerate() {
            if let Some(truth) = gold.get(t) {
                events.push(Event::label(TripleId(k as u32), truth));
            }
        }
    }
    events
}

/// File (inside the journal directory) recording committed routes, one
/// per migrated tenant. Written atomically at every commit, after the
/// target journal holds everything up to the fence.
pub const ROUTES_FILE: &str = "routes.tsv";

/// A committed route as persisted next to the shard journals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistedRoute {
    /// The migrated tenant.
    pub tenant: TenantId,
    /// The shard serving it.
    pub shard: usize,
    /// The commit-time epoch fence (see the module docs).
    pub fence: u64,
}

/// The routes-file path inside a journal directory.
pub fn routes_path(dir: &Path) -> PathBuf {
    dir.join(ROUTES_FILE)
}

/// Load the committed routes persisted in `dir`. A missing file means
/// no tenant was ever migrated: `Ok(vec![])`.
pub fn load_routes(dir: &Path) -> Result<Vec<PersistedRoute>> {
    let path = routes_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(ServeError::Fusion(FusionError::from(e))),
    };
    let mut lines = text.lines();
    if lines.next() != Some("#corrfuse-routes v1") {
        return Err(bad_routes("missing #corrfuse-routes v1 header"));
    }
    let mut routes = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut f = line.split('\t');
        let (Some(t), Some(s), Some(e), None) = (f.next(), f.next(), f.next(), f.next()) else {
            return Err(bad_routes("route line is not tenant\\tshard\\tfence"));
        };
        let (Ok(tenant), Ok(shard), Ok(fence)) = (t.parse(), s.parse(), e.parse()) else {
            return Err(bad_routes("unparseable route field"));
        };
        routes.push(PersistedRoute {
            tenant: TenantId(tenant),
            shard,
            fence,
        });
    }
    Ok(routes)
}

/// Atomically persist the committed routes into `dir` (write a
/// temporary file, fsync, rename over [`ROUTES_FILE`]). The caller
/// sequences this *after* the target journal is flushed through the
/// fence, so the file never points at a shard that does not hold the
/// data.
pub fn store_routes(dir: &Path, routes: &[PersistedRoute]) -> Result<()> {
    let mut text = String::from("#corrfuse-routes v1\n");
    for r in routes {
        text.push_str(&format!("{}\t{}\t{}\n", r.tenant.0, r.shard, r.fence));
    }
    let tmp = dir.join(format!("{ROUTES_FILE}.tmp"));
    let write = || -> std::io::Result<()> {
        std::fs::write(&tmp, &text)?;
        std::fs::File::open(&tmp)?.sync_all()?;
        std::fs::rename(&tmp, routes_path(dir))
    };
    write().map_err(|e| ServeError::Fusion(FusionError::from(e)))
}

fn bad_routes(what: &str) -> ServeError {
    ServeError::Fusion(FusionError::Io(format!("corrupt routes file: {what}")))
}

/// How crash recovery resolves one persisted route; see
/// [`resolve_route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteResolution {
    /// The recovered target shard reached the fence: it provably holds
    /// the complete slice and delta — the migration stands; serve the
    /// tenant from the route's shard.
    CutOver,
    /// The recovered target shard fell short of the fence (its journal
    /// tail was torn past repair): the migration is void; serve the
    /// tenant from its previous shard, whose journal is complete by
    /// construction, and drop the route entry.
    RollBack,
}

/// Decide one tenant's post-crash route: compare the epoch a recovered
/// target shard actually reached (`StreamSession::recover`) against the
/// persisted fence. The fence was recorded only after the target
/// flushed the full slice and cut-over delta, so reaching it proves the
/// journal holds everything; falling short proves the tail was lost.
/// Both answers name exactly one serving shard — a tenant is never
/// split across shards, whatever byte the crash tore the journal at.
pub fn resolve_route(route: &PersistedRoute, recovered_target_epoch: u64) -> RouteResolution {
    if recovered_target_epoch >= route.fence {
        RouteResolution::CutOver
    } else {
        RouteResolution::RollBack
    }
}

/// One step a rebalance pass decided on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Resize a shard session's scoring engine (bitwise-neutral; see
    /// `corrfuse_stream::StreamSession::set_engine`).
    SetShardThreads {
        /// The shard to resize.
        shard: usize,
        /// The new scoring thread count.
        threads: usize,
    },
    /// Live-migrate a tenant off a hot shard onto the coldest one.
    MigrateTenant {
        /// The tenant to move.
        tenant: TenantId,
        /// Its current (hot) shard.
        from: usize,
        /// The destination (cold) shard.
        to: usize,
    },
}

/// The queue-depth-driven rebalancing policy: scale a pressured shard's
/// scoring threads up first (cheap, instant, bitwise-neutral), and when
/// pressure is both high and *imbalanced* — one shard much hotter than
/// the coldest — migrate the hot shard's largest tenant over.
///
/// [`RebalancePolicy::plan`] is pure over a [`RouterStats`] snapshot
/// plus the tenant placement, so the trigger logic is unit-testable
/// without a router; `ShardRouter::rebalance` gathers the inputs and
/// executes the plan.
#[derive(Debug, Clone)]
pub struct RebalancePolicy {
    /// Queue high-water mark at which a shard counts as hot: threads
    /// scale as `1 + high_water / hot_high_water` (capped), and no
    /// migration triggers below it.
    pub hot_high_water: usize,
    /// Ceiling on per-shard scoring threads.
    pub max_shard_threads: usize,
    /// Minimum high-water gap between the hottest and coldest shard
    /// before a migration is worth its replay cost.
    pub migrate_min_imbalance: usize,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy::new()
    }
}

impl RebalancePolicy {
    /// Defaults: hot at a high-water of 64 messages, at most 4 threads
    /// per shard, migrate on an imbalance of 64.
    pub fn new() -> RebalancePolicy {
        RebalancePolicy {
            hot_high_water: 64,
            max_shard_threads: 4,
            migrate_min_imbalance: 64,
        }
    }

    /// Set the hot threshold (minimum 1).
    pub fn with_hot_high_water(mut self, messages: usize) -> RebalancePolicy {
        self.hot_high_water = messages.max(1);
        self
    }

    /// Set the per-shard thread ceiling (minimum 1).
    pub fn with_max_shard_threads(mut self, threads: usize) -> RebalancePolicy {
        self.max_shard_threads = threads.max(1);
        self
    }

    /// Set the migration imbalance threshold.
    pub fn with_migrate_min_imbalance(mut self, messages: usize) -> RebalancePolicy {
        self.migrate_min_imbalance = messages;
        self
    }

    /// Decide actions from a stats snapshot and the current placement
    /// (`placement[shard]` lists `(tenant, n_triples)` served there).
    ///
    /// Thread autosizing emits one [`RebalanceAction::SetShardThreads`]
    /// per shard whose desired size differs from its current one; the
    /// migrate-when-hot trigger emits at most one
    /// [`RebalanceAction::MigrateTenant`] per pass (move, remeasure,
    /// move again — migrations are too heavy to batch on one stale
    /// snapshot). It picks the hottest shard's largest tenant (ties to
    /// the lowest tenant id) and skips single-tenant shards, which a
    /// migration could only move, not shrink.
    pub fn plan(
        &self,
        stats: &RouterStats,
        placement: &[Vec<(TenantId, usize)>],
    ) -> Vec<RebalanceAction> {
        let mut actions = Vec::new();
        for s in &stats.shards {
            let desired = if s.max_queue_depth >= self.hot_high_water {
                (1 + s.max_queue_depth / self.hot_high_water).min(self.max_shard_threads)
            } else {
                1
            };
            if desired != s.scoring_threads {
                actions.push(RebalanceAction::SetShardThreads {
                    shard: s.shard,
                    threads: desired,
                });
            }
        }
        let hottest = stats
            .shards
            .iter()
            .max_by(|a, b| (a.max_queue_depth.cmp(&b.max_queue_depth)).then(b.shard.cmp(&a.shard)))
            .map(|s| (s.shard, s.max_queue_depth));
        let coldest = stats
            .shards
            .iter()
            .min_by_key(|s| (s.max_queue_depth, s.shard))
            .map(|s| (s.shard, s.max_queue_depth));
        if let (Some((hot, hot_hw)), Some((cold, cold_hw))) = (hottest, coldest) {
            if hot != cold
                && hot_hw >= self.hot_high_water
                && hot_hw - cold_hw >= self.migrate_min_imbalance
            {
                let tenants = placement.get(hot).map_or(&[][..], Vec::as_slice);
                if tenants.len() > 1 {
                    if let Some(&(tenant, _)) = tenants
                        .iter()
                        .max_by_key(|(t, n)| (*n, std::cmp::Reverse(t.0)))
                    {
                        actions.push(RebalanceAction::MigrateTenant {
                            tenant,
                            from: hot,
                            to: cold,
                        });
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ShardStats;

    fn shard(i: usize, high_water: usize, threads: usize) -> ShardStats {
        ShardStats {
            shard: i,
            max_queue_depth: high_water,
            scoring_threads: threads,
            ..ShardStats::default()
        }
    }

    #[test]
    fn routes_file_round_trips_and_tolerates_absence() {
        let dir = std::env::temp_dir().join(format!("corrfuse-routes-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(load_routes(&dir).unwrap(), vec![]);
        let routes = vec![
            PersistedRoute {
                tenant: TenantId(3),
                shard: 1,
                fence: 42,
            },
            PersistedRoute {
                tenant: TenantId(0),
                shard: 2,
                fence: 7,
            },
        ];
        store_routes(&dir, &routes).unwrap();
        assert_eq!(load_routes(&dir).unwrap(), routes);
        // Rewrites replace atomically (no append, no tmp residue).
        store_routes(&dir, &routes[..1]).unwrap();
        assert_eq!(load_routes(&dir).unwrap(), routes[..1]);
        assert!(!routes_path(&dir).with_extension("tsv.tmp").exists());
        std::fs::write(routes_path(&dir), "not a routes file\n").unwrap();
        assert!(load_routes(&dir).is_err());
        std::fs::write(routes_path(&dir), "#corrfuse-routes v1\n1\t2\n").unwrap();
        assert!(load_routes(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fence_resolution_is_exact() {
        let route = PersistedRoute {
            tenant: TenantId(1),
            shard: 1,
            fence: 10,
        };
        assert_eq!(resolve_route(&route, 9), RouteResolution::RollBack);
        assert_eq!(resolve_route(&route, 10), RouteResolution::CutOver);
        assert_eq!(resolve_route(&route, 11), RouteResolution::CutOver);
    }

    #[test]
    fn plan_autosizes_threads_from_queue_pressure() {
        let policy = RebalancePolicy::new()
            .with_hot_high_water(10)
            .with_max_shard_threads(3)
            .with_migrate_min_imbalance(usize::MAX);
        let stats = RouterStats {
            shards: vec![shard(0, 0, 1), shard(1, 25, 1), shard(2, 500, 1)],
        };
        let actions = policy.plan(&stats, &[vec![], vec![], vec![]]);
        assert_eq!(
            actions,
            vec![
                RebalanceAction::SetShardThreads {
                    shard: 1,
                    threads: 3
                },
                RebalanceAction::SetShardThreads {
                    shard: 2,
                    threads: 3
                },
            ]
        );
        // Idle shards scale back down once pressure passes.
        let stats = RouterStats {
            shards: vec![shard(0, 0, 3)],
        };
        assert_eq!(
            policy.plan(&stats, &[vec![]]),
            vec![RebalanceAction::SetShardThreads {
                shard: 0,
                threads: 1
            }]
        );
        // A shard already at its desired size emits nothing.
        let stats = RouterStats {
            shards: vec![shard(0, 25, 3)],
        };
        assert_eq!(policy.plan(&stats, &[vec![]]), vec![]);
    }

    #[test]
    fn plan_migrates_largest_tenant_off_the_hottest_shard() {
        let policy = RebalancePolicy::new()
            .with_hot_high_water(10)
            .with_max_shard_threads(1)
            .with_migrate_min_imbalance(20);
        let stats = RouterStats {
            shards: vec![shard(0, 50, 1), shard(1, 5, 1)],
        };
        let placement = vec![
            vec![(TenantId(0), 100), (TenantId(2), 400), (TenantId(4), 400)],
            vec![(TenantId(1), 10)],
        ];
        assert_eq!(
            policy.plan(&stats, &placement),
            vec![RebalanceAction::MigrateTenant {
                tenant: TenantId(2),
                from: 0,
                to: 1
            }]
        );
        // Below the imbalance threshold: no migration.
        let mild = RouterStats {
            shards: vec![shard(0, 50, 1), shard(1, 40, 1)],
        };
        assert_eq!(policy.plan(&mild, &placement), vec![]);
        // A single-tenant hot shard cannot be shrunk by migration.
        let lonely = vec![vec![(TenantId(0), 500)], vec![(TenantId(1), 10)]];
        assert_eq!(policy.plan(&stats, &lonely), vec![]);
        // One shard: nothing to migrate to.
        let solo = RouterStats {
            shards: vec![shard(0, 500, 1)],
        };
        assert_eq!(policy.plan(&solo, &[lonely[0].clone()]), vec![]);
    }

    #[test]
    fn stage_names_render() {
        for (stage, name) in [
            (MigrationStage::Planning, "planning"),
            (MigrationStage::BulkReplay, "bulk-replay"),
            (MigrationStage::CutOver, "cut-over"),
            (MigrationStage::Commit, "commit"),
        ] {
            assert_eq!(stage.to_string(), name);
        }
    }
}
