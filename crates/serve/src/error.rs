//! Error type for the serving layer.

use std::fmt;

use corrfuse_core::error::FusionError;

use crate::tenant::TenantId;

/// Errors produced by the shard router and its workers.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// An underlying fusion/dataset/journal error.
    Fusion(FusionError),
    /// The target shard's queue is full and the configured backpressure
    /// policy gave up (`Reject` immediately, `Timeout` after its
    /// deadline).
    Backpressure {
        /// The shard whose queue is full.
        shard: usize,
        /// Queue depth observed at rejection time.
        depth: usize,
    },
    /// The router is shutting down; no new messages are accepted.
    ShuttingDown,
    /// A query referenced a tenant the router has never seen.
    UnknownTenant(TenantId),
    /// Router construction requires every shard to receive at least one
    /// seeded tenant (a `StreamSession` cannot exist without a labelled
    /// seed); this shard got none.
    ShardSeedMissing {
        /// The unseeded shard.
        shard: usize,
    },
    /// A [`crate::config::RouterConfig`] field is out of range.
    InvalidConfig(&'static str),
    /// A shard worker thread panicked; its shard is lost.
    ShardPanicked {
        /// The dead shard.
        shard: usize,
    },
    /// The target shard is poisoned: a post-validation ingest error
    /// (model refresh on a degenerate prior, journal I/O) left its
    /// session in an undefined state, so it stopped applying messages.
    ///
    /// Unlike [`ServeError::Backpressure`] this is **not retryable** —
    /// the shard must be rebuilt from its journal. Clients over the wire
    /// see this as a dedicated protocol error code so they can tell
    /// fatal poisoning apart from a transient `Busy`. The shard's
    /// last-good state remains readable through
    /// [`crate::ShardRouter::shard_snapshot`].
    ShardPoisoned {
        /// The poisoned shard.
        shard: usize,
        /// The error that poisoned it.
        reason: String,
    },
    /// A bounded-staleness read (`min_epoch`) found the shard — or a
    /// replication follower — behind the requested epoch. Retryable:
    /// the reader backs off and re-asks, or lowers its `min_epoch`.
    Stale {
        /// The shard that is behind.
        shard: usize,
        /// The shard's current epoch.
        epoch: u64,
        /// The epoch the reader demanded.
        min_epoch: u64,
    },
    /// The tenant is mid-migration and this call cannot be absorbed
    /// right now: either a second migration was requested while one is
    /// in flight, or the cut-over window's ingest buffer is full.
    /// **Retryable** — the window closes within one flush of the target
    /// shard; back off and resend (protocol error `MIGRATING` over the
    /// wire).
    TenantMigrating {
        /// The tenant being migrated.
        tenant: TenantId,
    },
    /// A live migration failed and was rolled back: the tenant is still
    /// served, unchanged, by its source shard. The stage names where in
    /// the state machine the failure surfaced (see
    /// `crate::migration::MigrationStage`).
    MigrationFailed {
        /// The tenant whose migration rolled back.
        tenant: TenantId,
        /// The state-machine stage that failed.
        stage: crate::migration::MigrationStage,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Fusion(e) => write!(f, "{e}"),
            ServeError::Backpressure { shard, depth } => {
                write!(f, "shard {shard} queue full ({depth} messages buffered)")
            }
            ServeError::ShuttingDown => write!(f, "router is shutting down"),
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServeError::ShardSeedMissing { shard } => {
                write!(f, "shard {shard} received no seeded tenant")
            }
            ServeError::InvalidConfig(what) => write!(f, "invalid router config: {what}"),
            ServeError::ShardPanicked { shard } => write!(f, "shard {shard} worker panicked"),
            ServeError::ShardPoisoned { shard, reason } => {
                write!(
                    f,
                    "shard {shard} is poisoned (rebuild from journal): {reason}"
                )
            }
            ServeError::Stale {
                shard,
                epoch,
                min_epoch,
            } => {
                write!(
                    f,
                    "shard {shard} is stale: at epoch {epoch}, read demanded {min_epoch}"
                )
            }
            ServeError::TenantMigrating { tenant } => {
                write!(f, "{tenant} is migrating between shards; retry shortly")
            }
            ServeError::MigrationFailed {
                tenant,
                stage,
                reason,
            } => {
                write!(
                    f,
                    "migration of {tenant} failed during {stage} and was rolled back: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Fusion(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FusionError> for ServeError {
    fn from(e: FusionError) -> Self {
        ServeError::Fusion(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::Fusion(FusionError::MissingGold), "gold"),
            (ServeError::Backpressure { shard: 2, depth: 7 }, "shard 2"),
            (ServeError::ShuttingDown, "shutting down"),
            (ServeError::UnknownTenant(TenantId(9)), "tenant-9"),
            (ServeError::ShardSeedMissing { shard: 3 }, "shard 3"),
            (ServeError::InvalidConfig("n_shards"), "n_shards"),
            (ServeError::ShardPanicked { shard: 1 }, "panicked"),
            (
                ServeError::ShardPoisoned {
                    shard: 4,
                    reason: "degenerate prior".into(),
                },
                "poisoned",
            ),
            (
                ServeError::Stale {
                    shard: 0,
                    epoch: 3,
                    min_epoch: 5,
                },
                "stale",
            ),
            (
                ServeError::TenantMigrating {
                    tenant: TenantId(6),
                },
                "migrating",
            ),
            (
                ServeError::MigrationFailed {
                    tenant: TenantId(6),
                    stage: crate::migration::MigrationStage::CutOver,
                    reason: "target poisoned".into(),
                },
                "rolled back",
            ),
        ];
        for (err, needle) in cases {
            let s = err.to_string();
            assert!(s.contains(needle), "{s:?} should contain {needle:?}");
        }
        use std::error::Error as _;
        assert!(ServeError::Fusion(FusionError::MissingGold)
            .source()
            .is_some());
        assert!(ServeError::ShuttingDown.source().is_none());
    }
}
