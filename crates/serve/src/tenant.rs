//! Tenants and the per-tenant id translation into a shard's shared
//! namespaces.
//!
//! Each tenant speaks to the router as if it owned a private session:
//! its events reference tenant-local dense [`SourceId`]s / [`TripleId`]s
//! / [`Domain`]s, assigned in event order exactly like a standalone
//! [`corrfuse_stream::StreamSession`] would. A shard hosts many tenants
//! in one session, so the shard worker translates on ingest:
//!
//! * source names and triple subjects are *namespaced* with the tenant id
//!   (separated by ASCII unit-separator `\u{1F}`), so equal content from
//!   different tenants never collides in the shard dataset's interning;
//! * tenant-local ids map positionally through a [`TenantMap`] — local id
//!   `k` is the `k`-th source/triple the tenant ever registered;
//! * tenant-local domains map to shard-global domains allocated on first
//!   sight, so per-tenant scope semantics are preserved verbatim.
//!
//! Translation is deterministic, which is what lets the serving layer
//! inherit the stream layer's bitwise-equivalence trust anchor.

use std::collections::HashMap;
use std::fmt;

use corrfuse_core::dataset::{Dataset, Domain, SourceId};
use corrfuse_core::triple::{Triple, TripleId};

/// A tenant (routing key). Dense ids; `tenant.0 % n_shards` picks the
/// shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Separator between the tenant prefix and user content in namespaced
/// names. An ASCII control character that survives the journal's TSV
/// escaping and is vanishingly unlikely in real source names/subjects.
pub const NAMESPACE_SEP: char = '\u{1F}';

/// Namespace a tenant-local source name into the shard's source space.
pub(crate) fn scoped_source_name(tenant: TenantId, name: &str) -> String {
    format!("{}{NAMESPACE_SEP}{name}", tenant.0)
}

/// Namespace a tenant-local triple into the shard's triple space (the
/// subject carries the prefix; predicate/object are untouched).
pub(crate) fn scoped_triple(tenant: TenantId, t: &Triple) -> Triple {
    Triple::new(
        format!("{}{NAMESPACE_SEP}{}", tenant.0, t.subject),
        t.predicate.clone(),
        t.object.clone(),
    )
}

/// Strip the tenant namespace off a shard-side subject or source name
/// (for human-facing output; returns the input unchanged if it carries no
/// prefix).
pub fn unscoped(name: &str) -> &str {
    match name.split_once(NAMESPACE_SEP) {
        Some((_, rest)) => rest,
        None => name,
    }
}

/// The tenant a shard-side subject or source name belongs to, if it
/// carries a parseable namespace prefix.
pub(crate) fn tenant_of(name: &str) -> Option<TenantId> {
    let (prefix, _) = name.split_once(NAMESPACE_SEP)?;
    prefix.parse().ok().map(TenantId)
}

/// Rebuild the per-tenant id maps of a shard from its dataset alone.
///
/// Shard datasets intern sources and triples in first-registration
/// order, and a tenant's positional map is exactly its registration
/// order, so walking the dataset in id order and grouping by namespace
/// prefix reproduces the leader's [`TenantMap`]s deterministically. This
/// is how a replication follower — which receives shard-space snapshots
/// and batches, never tenant events — recovers the tenant view needed to
/// serve per-tenant reads. Domain translation maps are not recoverable
/// (and not needed: followers never translate ingest), so `domains` is
/// left empty. Entries without a parseable tenant prefix are ignored.
pub fn derive_tenant_maps(dataset: &Dataset) -> HashMap<TenantId, TenantMap> {
    let mut maps = HashMap::new();
    extend_tenant_maps(&mut maps, dataset, 0, 0);
    maps
}

/// Incrementally extend derived tenant maps with the sources/triples the
/// dataset gained since the last derivation (`from_sources` /
/// `from_triples` are the counts already mapped). Interning ids are
/// dense and append-only, so walking just the new suffix keeps a
/// follower's maps exact in O(batch) per batch instead of O(dataset).
pub fn extend_tenant_maps(
    maps: &mut HashMap<TenantId, TenantMap>,
    dataset: &Dataset,
    from_sources: usize,
    from_triples: usize,
) {
    for s in dataset.sources().skip(from_sources) {
        if let Some(tenant) = tenant_of(dataset.source_name(s)) {
            maps.entry(tenant).or_default().sources.push(s);
        }
    }
    for t in dataset.triples().skip(from_triples) {
        if let Some(tenant) = tenant_of(&dataset.triple(t).subject) {
            maps.entry(tenant).or_default().triples.push(t);
        }
    }
}

/// One tenant's positional id maps into its shard's session.
///
/// `sources[k]` / `triples[k]` is the shard-session id of the tenant's
/// `k`-th registered source / triple; `domains` maps tenant-local domains
/// to the shard-global domains allocated for this tenant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantMap {
    pub(crate) sources: Vec<SourceId>,
    pub(crate) triples: Vec<TripleId>,
    pub(crate) domains: HashMap<Domain, Domain>,
}

impl TenantMap {
    /// Number of sources the tenant has registered.
    pub fn n_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of triples the tenant has registered.
    pub fn n_triples(&self) -> usize {
        self.triples.len()
    }

    /// Shard-session id of the tenant-local triple `t`, if registered.
    pub fn triple(&self, t: TripleId) -> Option<TripleId> {
        self.triples.get(t.index()).copied()
    }

    /// Shard-session id of the tenant-local source `s`, if registered.
    pub fn source(&self, s: SourceId) -> Option<SourceId> {
        self.sources.get(s.index()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespacing_separates_tenants() {
        let a = scoped_source_name(TenantId(1), "crawler");
        let b = scoped_source_name(TenantId(2), "crawler");
        assert_ne!(a, b);
        assert_eq!(unscoped(&a), "crawler");
        assert_eq!(unscoped("plain"), "plain");
        let t = Triple::new("Obama", "profession", "president");
        let st = scoped_triple(TenantId(7), &t);
        assert_eq!(unscoped(&st.subject), "Obama");
        assert_eq!(st.predicate, "profession");
        assert_ne!(st, scoped_triple(TenantId(8), &t));
    }

    #[test]
    fn derived_maps_follow_registration_order() {
        use corrfuse_core::dataset::DatasetBuilder;
        let mut b = DatasetBuilder::new();
        let s0 = b.source(scoped_source_name(TenantId(1), "A"));
        let s1 = b.source(scoped_source_name(TenantId(2), "A"));
        let s2 = b.source(scoped_source_name(TenantId(1), "B"));
        b.source("unprefixed");
        let t0 = b.triple(format!("2{NAMESPACE_SEP}x"), "p", "1");
        b.observe(s1, t0);
        let t1 = b.triple(format!("1{NAMESPACE_SEP}x"), "p", "1");
        b.observe(s0, t1);
        b.observe(s2, t1);
        b.label(t0, true);
        b.label(t1, false);
        let d = b.build().unwrap();

        let maps = derive_tenant_maps(&d);
        assert_eq!(maps.len(), 2);
        let m1 = &maps[&TenantId(1)];
        assert_eq!(m1.sources, vec![s0, s2]);
        assert_eq!(m1.triples, vec![t1]);
        assert!(m1.domains.is_empty());
        let m2 = &maps[&TenantId(2)];
        assert_eq!(m2.sources, vec![s1]);
        assert_eq!(m2.triples, vec![t0]);
    }

    #[test]
    fn extend_picks_up_only_the_new_suffix() {
        use corrfuse_core::dataset::DatasetBuilder;
        let mut b = DatasetBuilder::new();
        let s0 = b.source(scoped_source_name(TenantId(1), "A"));
        let t0 = b.triple(format!("1{NAMESPACE_SEP}x"), "p", "1");
        b.observe(s0, t0);
        b.label(t0, true);
        let t1 = b.triple(format!("2{NAMESPACE_SEP}y"), "p", "2");
        let s1 = b.source(scoped_source_name(TenantId(2), "B"));
        b.observe(s1, t1);
        b.label(t1, false);
        let d = b.build().unwrap();

        let full = derive_tenant_maps(&d);
        let mut maps = HashMap::new();
        extend_tenant_maps(&mut maps, &d, 0, 0);
        assert_eq!(maps, full);
        // Re-extending from the current counts is a no-op.
        extend_tenant_maps(&mut maps, &d, d.n_sources(), d.n_triples());
        assert_eq!(maps, full);
        // Extending from a mid-stream count maps only the suffix.
        let mut tail = HashMap::new();
        extend_tenant_maps(&mut tail, &d, 1, 1);
        assert_eq!(tail[&TenantId(2)], full[&TenantId(2)]);
        assert!(!tail.contains_key(&TenantId(1)));
    }

    #[test]
    fn tenant_map_lookups() {
        let map = TenantMap {
            sources: vec![SourceId(4), SourceId(9)],
            triples: vec![TripleId(3)],
            domains: HashMap::new(),
        };
        assert_eq!(map.n_sources(), 2);
        assert_eq!(map.n_triples(), 1);
        assert_eq!(map.source(SourceId(1)), Some(SourceId(9)));
        assert_eq!(map.source(SourceId(2)), None);
        assert_eq!(map.triple(TripleId(0)), Some(TripleId(3)));
        assert_eq!(map.triple(TripleId(1)), None);
    }
}
