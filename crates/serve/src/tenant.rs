//! Tenants and the per-tenant id translation into a shard's shared
//! namespaces.
//!
//! Each tenant speaks to the router as if it owned a private session:
//! its events reference tenant-local dense [`SourceId`]s / [`TripleId`]s
//! / [`Domain`]s, assigned in event order exactly like a standalone
//! [`corrfuse_stream::StreamSession`] would. A shard hosts many tenants
//! in one session, so the shard worker translates on ingest:
//!
//! * source names and triple subjects are *namespaced* with the tenant id
//!   (separated by ASCII unit-separator `\u{1F}`), so equal content from
//!   different tenants never collides in the shard dataset's interning;
//! * tenant-local ids map positionally through a [`TenantMap`] — local id
//!   `k` is the `k`-th source/triple the tenant ever registered;
//! * tenant-local domains map to shard-global domains allocated on first
//!   sight, so per-tenant scope semantics are preserved verbatim.
//!
//! Translation is deterministic, which is what lets the serving layer
//! inherit the stream layer's bitwise-equivalence trust anchor.

use std::collections::HashMap;
use std::fmt;

use corrfuse_core::dataset::{Domain, SourceId};
use corrfuse_core::triple::{Triple, TripleId};

/// A tenant (routing key). Dense ids; `tenant.0 % n_shards` picks the
/// shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Separator between the tenant prefix and user content in namespaced
/// names. An ASCII control character that survives the journal's TSV
/// escaping and is vanishingly unlikely in real source names/subjects.
pub const NAMESPACE_SEP: char = '\u{1F}';

/// Namespace a tenant-local source name into the shard's source space.
pub(crate) fn scoped_source_name(tenant: TenantId, name: &str) -> String {
    format!("{}{NAMESPACE_SEP}{name}", tenant.0)
}

/// Namespace a tenant-local triple into the shard's triple space (the
/// subject carries the prefix; predicate/object are untouched).
pub(crate) fn scoped_triple(tenant: TenantId, t: &Triple) -> Triple {
    Triple::new(
        format!("{}{NAMESPACE_SEP}{}", tenant.0, t.subject),
        t.predicate.clone(),
        t.object.clone(),
    )
}

/// Strip the tenant namespace off a shard-side subject or source name
/// (for human-facing output; returns the input unchanged if it carries no
/// prefix).
pub fn unscoped(name: &str) -> &str {
    match name.split_once(NAMESPACE_SEP) {
        Some((_, rest)) => rest,
        None => name,
    }
}

/// One tenant's positional id maps into its shard's session.
///
/// `sources[k]` / `triples[k]` is the shard-session id of the tenant's
/// `k`-th registered source / triple; `domains` maps tenant-local domains
/// to the shard-global domains allocated for this tenant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantMap {
    pub(crate) sources: Vec<SourceId>,
    pub(crate) triples: Vec<TripleId>,
    pub(crate) domains: HashMap<Domain, Domain>,
}

impl TenantMap {
    /// Number of sources the tenant has registered.
    pub fn n_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of triples the tenant has registered.
    pub fn n_triples(&self) -> usize {
        self.triples.len()
    }

    /// Shard-session id of the tenant-local triple `t`, if registered.
    pub fn triple(&self, t: TripleId) -> Option<TripleId> {
        self.triples.get(t.index()).copied()
    }

    /// Shard-session id of the tenant-local source `s`, if registered.
    pub fn source(&self, s: SourceId) -> Option<SourceId> {
        self.sources.get(s.index()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespacing_separates_tenants() {
        let a = scoped_source_name(TenantId(1), "crawler");
        let b = scoped_source_name(TenantId(2), "crawler");
        assert_ne!(a, b);
        assert_eq!(unscoped(&a), "crawler");
        assert_eq!(unscoped("plain"), "plain");
        let t = Triple::new("Obama", "profession", "president");
        let st = scoped_triple(TenantId(7), &t);
        assert_eq!(unscoped(&st.subject), "Obama");
        assert_eq!(st.predicate, "profession");
        assert_ne!(st, scoped_triple(TenantId(8), &t));
    }

    #[test]
    fn tenant_map_lookups() {
        let map = TenantMap {
            sources: vec![SourceId(4), SourceId(9)],
            triples: vec![TripleId(3)],
            domains: HashMap::new(),
        };
        assert_eq!(map.n_sources(), 2);
        assert_eq!(map.n_triples(), 1);
        assert_eq!(map.source(SourceId(1)), Some(SourceId(9)));
        assert_eq!(map.source(SourceId(2)), None);
        assert_eq!(map.triple(TripleId(0)), Some(TripleId(3)));
        assert_eq!(map.triple(TripleId(1)), None);
    }
}
