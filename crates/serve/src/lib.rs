//! # corrfuse-serve
//!
//! Sharded multi-tenant serving on top of `corrfuse-stream`: a shard
//! router with an asynchronous, non-blocking ingestion front door.
//!
//! A single synchronous [`corrfuse_stream::StreamSession`] per process
//! cannot serve heavy multi-user traffic: every producer waits on every
//! refit, one tenant's label burst stalls everyone, and one journal
//! grows without bound. This crate partitions the claim stream by
//! tenant into N independent shard sessions, each driven by its own
//! worker thread:
//!
//! ```text
//!  producers ──ingest(tenant, events)──▶ ShardRouter
//!                                          │  tenant.0 % N
//!              ┌───────────────────────────┼───────────────────────┐
//!              ▼                           ▼                       ▼
//!      bounded queue (shard 0)       bounded queue (1)    ...   queue (N-1)
//!       block / reject / timeout          │                       │
//!              ▼                           ▼                       ▼
//!       micro-batcher (size/delay)   micro-batcher            micro-batcher
//!              ▼                           ▼                       ▼
//!       tenant-id translation        translation              translation
//!              ▼                           ▼                       ▼
//!       StreamSession::ingest        StreamSession            StreamSession
//!              ▼                           ▼                       ▼
//!       shard-0.journal  ⟲rotate     shard-1.journal         shard-(N-1).journal
//! ```
//!
//! * [`router::ShardRouter`] — the front door: route, enqueue, return.
//!   Backpressure is configurable ([`config::Backpressure`]: block /
//!   reject / timeout), as are micro-batch size/latency bounds.
//! * [`tenant`] — tenants speak tenant-local ids; shards namespace them
//!   so co-tenants never collide. Translation is deterministic.
//! * [`shard`] (internal) — the worker loop: batch, translate, ingest,
//!   rotate the journal on size/age triggers, seal on shutdown.
//! * [`stats`] — per-shard + aggregate queue depths, batch sizes,
//!   ingest latency, flips, cache hit rates, rotations. With a
//!   [`corrfuse_obs::Registry`] on the config
//!   ([`RouterConfig::with_metrics`]), workers additionally record
//!   per-stage latency histograms and batch traces — the metric
//!   catalog lives in `docs/OBSERVABILITY.md`.
//! * [`replica`] — the leader side of read-replica replication: every
//!   committed batch is stamped with its shard **epoch** (batches
//!   committed since start) and fanned out to subscriber queues
//!   ([`ShardRouter::subscribe`]), reads accept a bounded-staleness
//!   floor ([`ShardRouter::scores_at`], typed [`ServeError::Stale`]
//!   when behind), and [`ShardRouter::snapshot_all`] takes a
//!   flush-fenced cross-shard export stamped with per-shard epochs.
//!   `corrfuse-replica` builds the follower process on top.
//! * [`migration`] — live tenant migration between shards with no
//!   ingest downtime: extract the tenant's self-contained slice via its
//!   [`TenantMap`], replay it into the target through the normal ingest
//!   path while the source keeps serving, buffer the cut-over window,
//!   and atomically repoint the route behind an epoch fence so reads
//!   never go backwards ([`ShardRouter::migrate_tenant`]). The
//!   queue-depth-driven [`migration::RebalancePolicy`] builds thread
//!   autosizing and migrate-when-hot on top
//!   ([`ShardRouter::rebalance`]).
//!
//! The subsystem inherits the workspace trust anchor (stated once in
//! `docs/ARCHITECTURE.md`), per shard: routed, micro-batched, compacted
//! ingestion produces scores **bitwise identical** to a from-scratch
//! `Fuser::fit + score_all` on the shard's accumulated dataset (pinned
//! by `tests/router_equivalence.rs` at the workspace root, over random
//! multi-tenant streams, shard counts, backpressure and fsync policies,
//! with mid-run journal rotations). This crate is the serving layer of
//! the stack (core → stream → **serve** → net); `corrfuse-net` puts a
//! wire protocol in front of the router for remote producers.
//!
//! ## Quick start
//!
//! ```
//! use corrfuse_core::fuser::{FuserConfig, Method};
//! use corrfuse_core::DatasetBuilder;
//! use corrfuse_serve::{RouterConfig, ShardRouter, TenantId};
//! use corrfuse_stream::Event;
//!
//! // One tiny labelled seed per tenant.
//! let seed = |flip: bool| {
//!     let mut b = DatasetBuilder::new();
//!     let (s, t1) = b.observe_named("A", "x", "p", "1");
//!     b.label(t1, true);
//!     let t2 = b.triple("y", "p", "2");
//!     b.observe(s, t2);
//!     b.label(t2, flip);
//!     b.build().unwrap()
//! };
//! let router = ShardRouter::new(
//!     FuserConfig::new(Method::PrecRec),
//!     RouterConfig::new(2),
//!     vec![(TenantId(0), seed(false)), (TenantId(1), seed(false))],
//! )
//! .unwrap();
//!
//! // Tenant 1 streams a claim; the call returns before the re-score.
//! router
//!     .ingest(
//!         TenantId(1),
//!         vec![
//!             Event::add_triple("z", "p", "3"),
//!             Event::claim(corrfuse_core::SourceId(0), corrfuse_core::TripleId(2)),
//!         ],
//!     )
//!     .unwrap();
//! router.flush().unwrap(); // read-your-writes
//! assert_eq!(router.scores(TenantId(1)).unwrap().len(), 3);
//! router.shutdown().unwrap();
//! ```

#![warn(rust_2018_idioms)]
#![deny(missing_docs)]

pub mod config;
pub mod error;
pub mod migration;
pub mod queue;
pub mod replica;
pub mod router;
mod shard;
pub mod stats;
pub mod tenant;

pub use config::{Backpressure, JournalConfig, ReplicationConfig, RouterConfig};
pub use error::{Result, ServeError};
pub use migration::{
    load_routes, resolve_route, store_routes, MigrationReport, MigrationStage, PersistedRoute,
    RebalanceAction, RebalancePolicy, RouteResolution,
};
pub use replica::{ReplicaBatch, Subscription, SubscriptionStart};
pub use router::{ShardRouter, ShardSnapshot};
pub use stats::{RouterAggregate, RouterStats, ShardMigrationStat, ShardQueueStat, ShardStats};
pub use tenant::{derive_tenant_maps, extend_tenant_maps, TenantId, TenantMap};
