//! Crash-recovery property test: kill a shard mid-batch by truncating
//! its journal at an *arbitrary byte*, restore via replay, and assert
//! bitwise score equality with a fresh fit on the pre-crash accumulated
//! dataset.
//!
//! The journal's crash contract: every write ends in a newline, so a
//! tear can only damage the final line, which recovery drops. Truncation
//! inside the seed snapshot is unrecoverable and must fail loudly; any
//! truncation at or after the `#events` marker must recover to a
//! well-formed prefix of what was written.

use std::path::Path;

use corrfuse_core::fuser::{Fuser, FuserConfig, Method};
use corrfuse_core::testkit::run_cases;
use corrfuse_serve::{
    derive_tenant_maps, load_routes, resolve_route, JournalConfig, MigrationStage, RouteResolution,
    RouterConfig, ServeError, ShardRouter, TenantId,
};
use corrfuse_stream::{journal, Event, FsyncPolicy, StreamSession};
use corrfuse_synth::{multi_tenant_events, MultiTenantSpec};

/// Build a router over a multi-tenant stream, run it to completion with
/// journaling, and return each shard's journal contents (post-seal).
fn journaled_shards(dir: &Path, config: &FuserConfig) -> Vec<Vec<u8>> {
    let s = multi_tenant_events(&MultiTenantSpec::new(3, 100, 17)).unwrap();
    let seeds = s
        .seeds
        .iter()
        .map(|(t, ds)| (TenantId(*t), ds.clone()))
        .collect();
    let router = ShardRouter::new(
        config.clone(),
        RouterConfig::new(2)
            .with_batching(1, std::time::Duration::from_millis(1))
            .with_journal(JournalConfig::new(dir).with_fsync(FsyncPolicy::EveryBatch)),
        seeds,
    )
    .unwrap();
    for (tenant, events) in &s.messages {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    let stats = router.shutdown().unwrap();
    assert_eq!(stats.aggregate().ingest_errors, 0);
    (0..2)
        .map(|i| std::fs::read(dir.join(format!("shard-{i}.journal"))).unwrap())
        .collect()
}

#[test]
fn truncated_journals_recover_to_a_consistent_prefix() {
    let dir = std::env::temp_dir().join(format!("corrfuse-recovery-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let config = FuserConfig::new(Method::Exact);
    let journals = journaled_shards(&dir, &config);

    // Per journal: the full event list and the byte offset after which
    // the seed snapshot is intact (end of the `#events` marker line).
    let full: Vec<(Vec<Event>, usize)> = journals
        .iter()
        .map(|bytes| {
            let text = std::str::from_utf8(bytes).unwrap();
            let (_, batches) = journal::parse(text).unwrap();
            let marker = "#events\n";
            let seed_end = text.find(marker).unwrap() + marker.len();
            (batches.concat(), seed_end)
        })
        .collect();

    run_cases("journal_crash_recovery", 24, |g| {
        let which = g.usize_in(0, journals.len() - 1);
        let bytes = &journals[which];
        let (full_events, seed_end) = &full[which];
        let cut = g.usize_in(0, bytes.len());
        let path = dir.join(format!("crash-{which}.journal"));
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let result = StreamSession::recover(config.clone(), &path, FsyncPolicy::Never);
        if cut < *seed_end {
            // The seed snapshot itself is damaged: recovery must refuse,
            // not hallucinate a session.
            assert!(result.is_err(), "cut {cut} inside seed (< {seed_end})");
            return;
        }
        let (session, report) = result.expect("recovery succeeds past the seed section");
        // The file was trimmed back to a well-formed prefix: a plain
        // strict read must now succeed and agree with the session.
        let (_, batches) = journal::read(&path).unwrap();
        assert_eq!(batches.len(), report.batches_replayed);
        // Nothing is ever dropped after a clean cut on a newline
        // boundary, unless the surviving partial batch itself was
        // invalid (its claims were lost with the tear) and recovery cut
        // back to the previous batch boundary.
        let on_boundary = bytes[..cut].last() == Some(&b'\n');
        if report.dropped_bytes == 0 {
            assert!(on_boundary, "cut {cut} dropped nothing off a torn line");
        }
        if !on_boundary {
            assert!(report.torn, "cut {cut} tore a line but torn not set");
        }

        // Recovered events are a prefix of what was written (a torn
        // numeric field must never be misread as a different event).
        let recovered: Vec<Event> = batches.concat();
        assert!(
            recovered.len() <= full_events.len() && recovered[..] == full_events[..recovered.len()],
            "recovered events must be a written prefix"
        );

        // The trust anchor on the pre-crash accumulated dataset: replayed
        // scores are bitwise identical to a from-scratch fit.
        let fresh = Fuser::fit(
            &config,
            session.dataset(),
            session.dataset().gold().expect("seeds carry gold"),
        )
        .unwrap();
        let scores = fresh.score_all(session.dataset()).unwrap();
        for (i, (a, b)) in session.scores().iter().zip(&scores).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "cut {cut}, triple {i}: recovered {a} vs fresh {b}"
            );
        }
    });
    std::fs::remove_dir_all(&dir).ok();
}

/// Appending after a recovery resumes a valid journal: the next restore
/// sees the recovered prefix plus the new batch.
#[test]
fn recovered_journals_accept_new_batches() {
    let dir = std::env::temp_dir().join(format!("corrfuse-recovery-app-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
    let bytes = journaled_shards(&dir, &config).remove(0);
    // Tear mid-way through the event section.
    let marker_end = {
        let text = std::str::from_utf8(&bytes).unwrap();
        text.find("#events\n").unwrap() + "#events\n".len()
    };
    let cut = marker_end + (bytes.len() - marker_end) * 2 / 3;
    let path = dir.join("resume.journal");
    std::fs::write(&path, &bytes[..cut]).unwrap();

    let (mut session, _) = StreamSession::recover(config.clone(), &path, FsyncPolicy::Always)
        .expect("recovery past the seed succeeds");
    let before_batches = journal::read(&path).unwrap().1.len();
    // A fresh claim on an existing pair is always valid input.
    session
        .ingest(&[Event::claim(
            corrfuse_core::SourceId(0),
            corrfuse_core::TripleId(0),
        )])
        .unwrap();
    session.seal_journal().unwrap();
    let restored = StreamSession::restore(config, &path).unwrap();
    assert_eq!(
        restored.delta_log().n_batches(),
        before_batches + 1,
        "appended batch is visible to the next restore"
    );
    for (a, b) in restored.scores().iter().zip(session.scores()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash recovery with an in-flight migration commit on disk: truncate
/// the *target* shard's journal at an arbitrary byte and resolve the
/// persisted route against the recovered epoch. The outcome must be
/// all-or-nothing — either the fence is covered and the target serves a
/// complete tenant view (cut over), or the route is discarded and the
/// untouched source still serves the tenant in full (rolled back).
/// There is no cut at which the tenant's state is split across shards.
#[test]
fn in_flight_migration_recovery_never_splits_the_route() {
    let dir = std::env::temp_dir().join(format!("corrfuse-recovery-mig-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
    let s = multi_tenant_events(&MultiTenantSpec::new(3, 100, 29)).unwrap();
    let seeds = s
        .seeds
        .iter()
        .map(|(t, ds)| (TenantId(*t), ds.clone()))
        .collect();
    let router = ShardRouter::new(
        config.clone(),
        RouterConfig::new(2)
            .with_batching(1, std::time::Duration::from_millis(1))
            .with_journal(JournalConfig::new(&dir).with_fsync(FsyncPolicy::EveryBatch)),
        seeds,
    )
    .unwrap();
    let half = s.messages.len() / 2;
    for (tenant, events) in &s.messages[..half] {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    router.flush().unwrap();
    let mover = TenantId(0);
    let source = router.shard_of(mover);
    let target = (source + 1) % 2;
    let premigration_triples = router.scores(mover).unwrap().len();
    let report = router.migrate_tenant(mover, target).unwrap();
    assert_eq!(report.from, source);
    assert_eq!(report.to, target);
    for (tenant, events) in &s.messages[half..] {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    router.shutdown().unwrap();

    let routes = load_routes(&dir).unwrap();
    let route = *routes
        .iter()
        .find(|r| r.tenant == mover)
        .expect("committed migration persisted a route");
    assert_eq!(route.shard, target);
    assert_eq!(route.fence, report.fence);

    let target_bytes = std::fs::read(dir.join(format!("shard-{target}.journal"))).unwrap();
    let source_bytes = std::fs::read(dir.join(format!("shard-{source}.journal"))).unwrap();
    let seed_end = {
        let text = std::str::from_utf8(&target_bytes).unwrap();
        text.find("#events\n").unwrap() + "#events\n".len()
    };
    // The source journal is intact in every scenario below; restore it
    // once. The source keeps the tenant's full pre-migration state (maps
    // are never removed at commit), so rollback always has a home.
    let source_path = dir.join("crash-source.journal");
    std::fs::write(&source_path, &source_bytes).unwrap();
    let source_session = StreamSession::restore(config.clone(), &source_path).unwrap();
    let source_maps = derive_tenant_maps(source_session.dataset());
    assert_eq!(
        source_maps.get(&mover).map(|m| m.n_triples()),
        Some(premigration_triples),
        "source keeps the tenant's complete pre-migration view"
    );

    let mut cut_over = 0usize;
    let mut rolled_back = 0usize;
    run_cases("migration_crash_recovery", 24, |g| {
        let cut = g.usize_in(seed_end, target_bytes.len() + 1);
        let path = dir.join("crash-target.journal");
        std::fs::write(&path, &target_bytes[..cut]).unwrap();
        let (session, _) = StreamSession::recover(config.clone(), &path, FsyncPolicy::Never)
            .expect("recovery past the seed succeeds");
        match resolve_route(&route, session.epoch()) {
            RouteResolution::CutOver => {
                cut_over += 1;
                // The fence is covered: the slice and the cut-over delta
                // are fully applied, so the target holds at least the
                // tenant's complete pre-migration view.
                let maps = derive_tenant_maps(session.dataset());
                let n = maps.get(&mover).map(|m| m.n_triples()).unwrap_or(0);
                assert!(
                    n >= premigration_triples,
                    "cut {cut}: target serves {n} of {premigration_triples} triples"
                );
                // And the recovered prefix still satisfies the trust
                // anchor, translated slice batch included.
                let fresh = Fuser::fit(
                    &config,
                    session.dataset(),
                    session.dataset().gold().expect("seeds carry gold"),
                )
                .unwrap();
                for (a, b) in session
                    .scores()
                    .iter()
                    .zip(&fresh.score_all(session.dataset()).unwrap())
                {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            RouteResolution::RollBack => {
                rolled_back += 1;
                // The fence is not covered: the route is discarded and
                // the tenant falls back to the source, which (asserted
                // above) serves its complete pre-migration view.
                assert!(session.epoch() < route.fence);
            }
        }
    });
    // The arbitrary cuts must have landed on both sides of the fence,
    // or the property was only half exercised.
    assert!(cut_over > 0, "no cut ever reached the fence");
    assert!(rolled_back > 0, "no cut ever fell short of the fence");
    std::fs::remove_dir_all(&dir).ok();
}

/// A migration that crash-aborts before commit leaves no trace a
/// restart could misread: no route is persisted, the source still
/// serves the tenant bitwise unchanged, and ingest keeps flowing.
#[test]
fn chaos_aborted_migration_persists_no_route() {
    let dir = std::env::temp_dir().join(format!("corrfuse-recovery-abort-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
    let s = multi_tenant_events(&MultiTenantSpec::new(2, 80, 37)).unwrap();
    let seeds = s
        .seeds
        .iter()
        .map(|(t, ds)| (TenantId(*t), ds.clone()))
        .collect();
    let router = ShardRouter::new(
        config.clone(),
        RouterConfig::new(2)
            .with_journal(JournalConfig::new(&dir).with_fsync(FsyncPolicy::EveryBatch)),
        seeds,
    )
    .unwrap();
    let half = s.messages.len() / 2;
    for (tenant, events) in &s.messages[..half] {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    router.flush().unwrap();
    let mover = TenantId(0);
    let source = router.shard_of(mover);
    let target = (source + 1) % 2;
    let before = router.scores(mover).unwrap();
    for stage in [
        MigrationStage::Planning,
        MigrationStage::BulkReplay,
        MigrationStage::CutOver,
        MigrationStage::Commit,
    ] {
        let err = router
            .migrate_tenant_chaos(mover, target, stage)
            .unwrap_err();
        assert!(
            matches!(err, ServeError::MigrationFailed { tenant, stage: at, .. }
                if tenant == mover && at == stage),
            "stage {stage}: {err:?}"
        );
        // Rolled back: the tenant is served by the source, unchanged.
        assert_eq!(router.shard_of(mover), source);
        let after = router.scores(mover).unwrap();
        assert_eq!(after.len(), before.len());
        for (a, b) in after.iter().zip(&before) {
            assert_eq!(a.to_bits(), b.to_bits(), "stage {stage} moved a score");
        }
        // And no route was persisted for a restart to trip over.
        assert!(
            load_routes(&dir).unwrap().is_empty(),
            "stage {stage} leaked a persisted route"
        );
    }
    // Ingest still flows, and a real migration still succeeds afterwards.
    for (tenant, events) in &s.messages[half..] {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    router.flush().unwrap();
    router.migrate_tenant(mover, target).unwrap();
    assert_eq!(router.shard_of(mover), target);
    assert_eq!(load_routes(&dir).unwrap().len(), 1);
    let stats = router.shutdown().unwrap();
    assert_eq!(stats.aggregate().ingest_errors, 0);
    std::fs::remove_dir_all(&dir).ok();
}
