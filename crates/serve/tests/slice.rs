//! Property tests pinning `TenantMap` slice extraction — the foundation
//! live migration is built on. A tenant's slice, replayed standalone
//! from an empty dataset, must reconstruct exactly the tenant's view of
//! the merged shard: same triples in the same tenant-local order, same
//! claims, same labels, and therefore (under a pinned prior) bitwise
//! identical scores.

use std::time::Duration;

use corrfuse_core::dataset::{Dataset, DatasetBuilder};
use corrfuse_core::fuser::{Fuser, FuserConfig, Method};
use corrfuse_core::testkit::run_cases;
use corrfuse_serve::{RouterConfig, ShardRouter, TenantId};
use corrfuse_stream::replay;
use corrfuse_synth::{multi_tenant_events, MultiTenantSpec, MultiTenantStream};

fn seeds_of(s: &MultiTenantStream) -> Vec<(TenantId, Dataset)> {
    s.seeds
        .iter()
        .map(|(t, ds)| (TenantId(*t), ds.clone()))
        .collect()
}

/// Score the tenant's standalone replay of its own slice: accumulate
/// the events over an empty dataset, then run a from-scratch fit — the
/// same trust anchor the shard itself is pinned to.
fn standalone_scores(config: &FuserConfig, slice: &[corrfuse_stream::Event]) -> Vec<f64> {
    let empty = DatasetBuilder::new().build().unwrap();
    let ds = replay::accumulate(&empty, slice).unwrap();
    let fuser = Fuser::fit(config, &ds, ds.gold().unwrap()).unwrap();
    fuser.score_all(&ds).unwrap()
}

/// For every tenant sharing a shard with others, the extracted slice
/// replays standalone to bitwise the same scores the router serves —
/// namespacing loses nothing and leaks nothing. The pinned alpha keeps
/// co-tenants statistically decoupled so the comparison is exact.
#[test]
fn slice_replays_standalone_to_the_served_scores() {
    run_cases("serve_slice_standalone", 4, |g| {
        let n_tenants = g.usize_in(2, 6);
        let n_shards = g.usize_in(1, 3);
        let seed = g.u64_below(1 << 32);
        let s = multi_tenant_events(&MultiTenantSpec::new(n_tenants, 100, seed)).unwrap();
        let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
        let router = ShardRouter::new(
            config.clone(),
            RouterConfig::new(n_shards).with_batching(32, Duration::from_millis(1)),
            seeds_of(&s),
        )
        .unwrap();
        for (tenant, events) in &s.messages {
            router.ingest(TenantId(*tenant), events.clone()).unwrap();
        }
        router.flush().unwrap();
        for (tenant, _) in &s.seeds {
            let tenant = TenantId(*tenant);
            let slice = router.tenant_slice(tenant).unwrap();
            let standalone = standalone_scores(&config, &slice);
            let served = router.scores(tenant).unwrap();
            assert_eq!(standalone.len(), served.len(), "tenant {tenant}");
            for (i, (a, b)) in standalone.iter().zip(&served).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "tenant {tenant}, triple {i}: standalone {a} vs served {b}"
                );
            }
        }
        router.shutdown().unwrap();
    });
}

/// Slice extraction survives migration: after a tenant moves shards
/// (its state now reconstructed on the target via translated replay),
/// the slice taken from the *target* still replays standalone to the
/// served scores — translation records every id and domain allocation
/// the next extraction needs.
#[test]
fn slice_extraction_survives_migration() {
    run_cases("serve_slice_after_migration", 3, |g| {
        let n_tenants = g.usize_in(2, 5);
        let seed = g.u64_below(1 << 32);
        let s = multi_tenant_events(&MultiTenantSpec::new(n_tenants, 80, seed)).unwrap();
        let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
        let router = ShardRouter::new(
            config.clone(),
            RouterConfig::new(2).with_batching(32, Duration::from_millis(1)),
            seeds_of(&s),
        )
        .unwrap();
        // Ingest the first half, migrate a random tenant, ingest the rest.
        let half = s.messages.len() / 2;
        for (tenant, events) in &s.messages[..half] {
            router.ingest(TenantId(*tenant), events.clone()).unwrap();
        }
        let mover = TenantId(g.usize_in(0, n_tenants) as u32);
        let target = (router.shard_of(mover) + 1) % 2;
        router.migrate_tenant(mover, target).unwrap();
        assert_eq!(router.shard_of(mover), target);
        for (tenant, events) in &s.messages[half..] {
            router.ingest(TenantId(*tenant), events.clone()).unwrap();
        }
        router.flush().unwrap();
        for (tenant, _) in &s.seeds {
            let tenant = TenantId(*tenant);
            let slice = router.tenant_slice(tenant).unwrap();
            let standalone = standalone_scores(&config, &slice);
            let served = router.scores(tenant).unwrap();
            for (i, (a, b)) in standalone.iter().zip(&served).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "tenant {tenant}, triple {i}: standalone {a} vs served {b}"
                );
            }
        }
        router.shutdown().unwrap();
    });
}
