//! Integration tests for the shard router: tenant isolation, per-shard
//! equivalence, journal rotation, retention, backpressure accounting,
//! failure containment, and graceful shutdown.

use std::path::PathBuf;
use std::time::Duration;

use corrfuse_core::dataset::{Dataset, SourceId};
use corrfuse_core::engine::ScoringEngine;
use corrfuse_core::fuser::{Fuser, FuserConfig, Method};
use corrfuse_serve::{
    Backpressure, JournalConfig, RouterConfig, ServeError, ShardRouter, TenantId,
};
use corrfuse_stream::{Event, FsyncPolicy, LogRetention, StreamSession};
use corrfuse_synth::{multi_tenant_events, MultiTenantSpec, MultiTenantStream};

fn stream(n_tenants: usize, seed: u64) -> MultiTenantStream {
    multi_tenant_events(&MultiTenantSpec::new(n_tenants, 120, seed)).unwrap()
}

/// Wrap the generator's plain `u32` tenant ids for the router.
fn seeds_of(s: &MultiTenantStream) -> Vec<(TenantId, Dataset)> {
    s.seeds
        .iter()
        .map(|(t, ds)| (TenantId(*t), ds.clone()))
        .collect()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("corrfuse-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Replay a dataset as a self-contained event stream (how a brand-new
/// tenant introduces itself to the router).
fn dataset_to_events(ds: &Dataset) -> Vec<Event> {
    let mut events = Vec::new();
    for s in ds.sources() {
        events.push(Event::add_source(ds.source_name(s)));
    }
    for t in ds.triples() {
        events.push(Event::AddTriple {
            triple: ds.triple(t).clone(),
            domain: ds.domain(t),
        });
        for s in ds.providers(t).iter_ones() {
            events.push(Event::claim(SourceId(s as u32), t));
        }
        if let Some(truth) = ds.gold().and_then(|g| g.get(t)) {
            events.push(Event::label(t, truth));
        }
    }
    events
}

/// Under a pinned prior and the independence model, a routed tenant's
/// scores are bitwise identical to a solo session over the same stream:
/// namespacing keeps co-tenants out of each other's scopes, so nothing
/// about sharing a shard leaks into the posterior.
#[test]
fn routed_tenant_scores_match_solo_sessions() {
    let s = stream(4, 11);
    let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
    let router = ShardRouter::new(
        config.clone(),
        RouterConfig::new(2).with_batching(64, Duration::from_millis(1)),
        seeds_of(&s),
    )
    .unwrap();
    for (tenant, events) in &s.messages {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    router.flush().unwrap();
    for (tenant, seed) in &s.seeds {
        let mut solo =
            StreamSession::with_engine(config.clone(), seed.clone(), ScoringEngine::serial())
                .unwrap();
        for events in s.tenant_messages(*tenant) {
            solo.ingest(events).unwrap();
        }
        let routed = router.scores(TenantId(*tenant)).unwrap();
        assert_eq!(routed.len(), solo.scores().len(), "tenant {tenant}");
        for (i, (a, b)) in routed.iter().zip(solo.scores()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "tenant {tenant}, triple {i}: routed {a} vs solo {b}"
            );
        }
        let decisions = router.decisions(TenantId(*tenant)).unwrap();
        assert_eq!(decisions, solo.decisions());
    }
    assert_eq!(router.tenants().len(), 4);
    let stats = router.shutdown().unwrap();
    let agg = stats.aggregate();
    assert_eq!(agg.ingest_errors, 0, "{:?}", agg.last_error);
    assert_eq!(agg.processed_messages, s.messages.len() as u64);
}

/// The trust anchor, deterministically: routed + journaled + rotated
/// ingestion per shard is bitwise identical to a fresh fit on the
/// shard's accumulated dataset, and the rotated journal restores to the
/// same state.
#[test]
fn shard_scores_match_fresh_fit_and_journal_restores() {
    let dir = tmpdir("equiv");
    let s = stream(5, 23);
    let config = FuserConfig::new(Method::Exact);
    let router = ShardRouter::new(
        config.clone(),
        RouterConfig::new(3)
            // One message per micro-batch so the rotation trigger (every
            // 3 appended batches) fires on every shard.
            .with_batching(1, Duration::from_millis(1))
            .with_journal(
                JournalConfig::new(&dir)
                    .with_fsync(FsyncPolicy::EveryBatch)
                    .with_rotate_max_batches(3),
            )
            .with_retention(LogRetention::LastBatches(1)),
        seeds_of(&s),
    )
    .unwrap();
    for (tenant, events) in &s.messages {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    router.flush().unwrap();
    let mut snapshots = Vec::new();
    for shard in 0..router.n_shards() {
        let snap = router.shard_snapshot(shard).unwrap();
        let fresh = Fuser::fit(&config, &snap.dataset, snap.dataset.gold().unwrap()).unwrap();
        let scores = fresh.score_all(&snap.dataset).unwrap();
        for (i, (a, b)) in snap.scores.iter().zip(&scores).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "shard {shard}, triple {i}: routed {a} vs fresh {b}"
            );
        }
        snapshots.push(snap);
    }
    let stats = router.shutdown().unwrap();
    let agg = stats.aggregate();
    assert_eq!(agg.ingest_errors, 0, "{:?}", agg.last_error);
    assert!(agg.rotations > 0, "rotation never triggered");
    assert!(agg.log_dropped_events > 0, "retention never truncated");
    // Sealed journals restore every shard to its exact final state.
    for snap in snapshots {
        let restored = StreamSession::restore(config.clone(), snap.journal_path.unwrap()).unwrap();
        assert_eq!(restored.dataset().n_triples(), snap.dataset.n_triples());
        for (a, b) in restored.scores().iter().zip(&snap.scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A tenant that was never seeded can join purely through the ingest
/// path: its stream carries its own sources, claims and labels.
#[test]
fn new_tenant_joins_mid_run() {
    let s = stream(2, 31);
    let config = FuserConfig::new(Method::Exact);
    let router = ShardRouter::new(config.clone(), RouterConfig::new(2), seeds_of(&s)).unwrap();
    // Tenant 7 routes to shard 1; introduce it as one self-contained
    // message replaying a labelled world, then stream its updates.
    let world = stream(1, 99).seeds.remove(0).1;
    let newcomer = TenantId(7);
    router.ingest(newcomer, dataset_to_events(&world)).unwrap();
    for (tenant, events) in &s.messages {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    router.flush().unwrap();
    assert_eq!(router.shard_of(newcomer), 1);
    let scores = router.scores(newcomer).unwrap();
    assert_eq!(scores.len(), world.n_triples());
    assert!(scores.iter().all(|p| p.is_finite()));
    assert!(router.tenants().contains(&newcomer));
    // The host shard still satisfies the trust anchor.
    let snap = router.shard_snapshot(1).unwrap();
    let fresh = Fuser::fit(&config, &snap.dataset, snap.dataset.gold().unwrap()).unwrap();
    for (a, b) in snap
        .scores
        .iter()
        .zip(&fresh.score_all(&snap.dataset).unwrap())
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let stats = router.shutdown().unwrap();
    assert_eq!(stats.aggregate().ingest_errors, 0);
}

/// A malformed message is dropped and counted; co-tenants of the same
/// shard are unaffected even when the batcher merged them.
#[test]
fn bad_messages_are_contained() {
    let s = stream(2, 47);
    let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
    let router = ShardRouter::new(
        config,
        RouterConfig::new(1).with_batching(512, Duration::from_millis(20)),
        seeds_of(&s),
    )
    .unwrap();
    let t0_triples = router.scores(TenantId(0)).unwrap().len();
    // Tenant 0 references a triple id it never registered...
    router
        .ingest(
            TenantId(0),
            vec![Event::claim(
                SourceId(0),
                corrfuse_core::TripleId(9_999_999),
            )],
        )
        .unwrap();
    // ...while tenant 1 sends a perfectly good update.
    let good: Vec<Event> = s.tenant_messages(1).next().unwrap().to_vec();
    let good_events = good.len();
    router.ingest(TenantId(1), good).unwrap();
    router.flush().unwrap();
    let stats = router.stats();
    assert_eq!(stats.shards[0].ingest_errors, 1);
    let err = stats.shards[0].last_error.clone().unwrap();
    assert!(err.contains("tenant-0"), "unexpected error: {err}");
    assert_eq!(stats.shards[0].processed_messages, 2);
    assert!(stats.shards[0].ingested_events >= good_events as u64);
    // Tenant 0 lost nothing but the bad message; tenant 1 advanced.
    assert_eq!(router.scores(TenantId(0)).unwrap().len(), t0_triples);
    router.shutdown().unwrap();
}

/// Reject backpressure: every message is either applied or visibly
/// rejected — accounting always balances.
#[test]
fn reject_backpressure_accounting_balances() {
    let s = stream(3, 53);
    let router = ShardRouter::new(
        FuserConfig::new(Method::PrecRec).with_alpha(0.5),
        RouterConfig::new(1)
            .with_queue_capacity(1)
            .with_backpressure(Backpressure::Reject),
        seeds_of(&s),
    )
    .unwrap();
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for (tenant, events) in &s.messages {
        match router.ingest(TenantId(*tenant), events.clone()) {
            Ok(()) => accepted += 1,
            Err(ServeError::Backpressure { shard: 0, .. }) => rejected += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    router.flush().unwrap();
    let stats = router.shutdown().unwrap();
    let agg = stats.aggregate();
    assert_eq!(agg.enqueued_messages, accepted);
    assert_eq!(agg.processed_messages, accepted);
    assert_eq!(agg.rejected_messages, rejected);
    assert_eq!(accepted + rejected, s.messages.len() as u64);
}

/// Shutdown without an explicit flush still drains the queues and seals
/// journals; nothing accepted is lost.
#[test]
fn shutdown_drains_and_seals() {
    let dir = tmpdir("shutdown");
    let s = stream(3, 61);
    let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
    let router = ShardRouter::new(
        config.clone(),
        RouterConfig::new(2).with_journal(JournalConfig::new(&dir).with_fsync(FsyncPolicy::Always)),
        seeds_of(&s),
    )
    .unwrap();
    for (tenant, events) in &s.messages {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    let stats = router.shutdown().unwrap();
    let agg = stats.aggregate();
    assert_eq!(agg.processed_messages, s.messages.len() as u64);
    assert_eq!(agg.ingest_errors, 0, "{:?}", agg.last_error);
    assert_eq!(agg.queue_depth, 0);
    for shard in 0..2 {
        let restored =
            StreamSession::restore(config.clone(), dir.join(format!("shard-{shard}.journal")))
                .unwrap();
        let fresh = Fuser::fit(
            &config,
            restored.dataset(),
            restored.dataset().gold().unwrap(),
        )
        .unwrap();
        for (a, b) in restored
            .scores()
            .iter()
            .zip(&fresh.score_all(restored.dataset()).unwrap())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A post-validation ingest error (here: a relabel that degenerates the
/// empirical prior, surfacing *after* the dataset mutated) poisons the
/// shard: it stops applying, further ingest and queries fail with the
/// dedicated non-retryable `ShardPoisoned` variant, the last consistent
/// state stays readable through `shard_snapshot`, and other shards are
/// untouched.
#[test]
fn post_mutation_errors_poison_only_their_shard() {
    use corrfuse_core::dataset::DatasetBuilder;
    use corrfuse_core::TripleId;
    let seed = || {
        let mut b = DatasetBuilder::new();
        let (s, t1) = b.observe_named("A", "x", "p", "1");
        b.label(t1, true);
        let t2 = b.triple("y", "p", "2");
        b.observe(s, t2);
        b.label(t2, false);
        b.build().unwrap()
    };
    // Empirical prior (no pinned alpha): relabelling the only true
    // triple to false makes alpha degenerate during the model refresh.
    let mut config = FuserConfig::new(Method::PrecRec);
    config.alpha = None;
    let router = ShardRouter::new(
        config,
        RouterConfig::new(2),
        vec![(TenantId(0), seed()), (TenantId(1), seed())],
    )
    .unwrap();
    let before = router.scores(TenantId(0)).unwrap();
    router
        .ingest(TenantId(0), vec![Event::label(TripleId(0), false)])
        .unwrap();
    router.flush().unwrap();
    let stats = router.stats();
    assert!(stats.shards[0].poisoned, "{:?}", stats.shards[0].last_error);
    assert_eq!(stats.shards[0].ingest_errors, 1);
    assert!(stats.aggregate().poisoned);
    // Further front-door ingest is refused with the dedicated,
    // non-retryable variant (not a generic backpressure/queue error)...
    let err = router
        .ingest(TenantId(0), vec![Event::claim(SourceId(0), TripleId(1))])
        .unwrap_err();
    assert!(
        matches!(err, ServeError::ShardPoisoned { shard: 0, .. }),
        "{err:?}"
    );
    // ...and so are tenant queries: a poisoned shard never silently
    // serves state of unknown freshness.
    let err = router.scores(TenantId(0)).unwrap_err();
    assert!(
        matches!(err, ServeError::ShardPoisoned { shard: 0, .. }),
        "{err:?}"
    );
    assert!(router.decisions(TenantId(0)).is_err());
    // An unknown tenant routed to the poisoned shard is still the
    // caller's bug — UnknownTenant takes precedence over the shard's
    // poisoning.
    assert_eq!(
        router.scores(TenantId(2)).unwrap_err(),
        ServeError::UnknownTenant(TenantId(2))
    );
    // The explicit operator read still exposes the last consistent
    // state (the scores as of the final successful batch).
    let snap = router.shard_snapshot(0).unwrap();
    assert_eq!(snap.scores, before);
    // The sibling shard is unaffected.
    router
        .ingest(TenantId(1), vec![Event::claim(SourceId(0), TripleId(1))])
        .unwrap();
    router.flush().unwrap();
    assert!(router.scores(TenantId(1)).is_ok());
    let stats = router.shutdown().unwrap();
    assert!(!stats.shards[1].poisoned);
    assert_eq!(stats.shards[1].ingest_errors, 0);
}

/// Queue-depth-driven rebalancing is score-neutral: swapping a shard's
/// scoring engine (thread autosizing) and migrating its hottest tenant
/// both reproduce bitwise the solo-session scores, because parallel
/// scoring partitions deterministically and migration is idempotent
/// replay. Plain `Vec` reordering of work must never leak into results.
#[test]
fn rebalancing_is_score_neutral() {
    use corrfuse_serve::{RebalanceAction, RebalancePolicy};
    let s = stream(4, 83);
    let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
    let router = ShardRouter::new(
        config.clone(),
        RouterConfig::new(2).with_batching(8, Duration::from_millis(1)),
        seeds_of(&s),
    )
    .unwrap();
    let half = s.messages.len() / 2;
    for (tenant, events) in &s.messages[..half] {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    // A hair-trigger policy: any observed queue depth counts as hot, so
    // the pass autosizes threads (and may migrate) deterministically
    // from whatever high-water marks the ingest above left behind.
    let policy = RebalancePolicy::new()
        .with_hot_high_water(1)
        .with_max_shard_threads(3)
        .with_migrate_min_imbalance(1);
    let actions = router.rebalance(&policy).unwrap();
    // Every emitted thread action is live on its shard engine.
    let stats = router.stats();
    for action in &actions {
        if let RebalanceAction::SetShardThreads { shard, threads } = action {
            assert_eq!(stats.shards[*shard].scoring_threads, *threads);
        }
    }
    // A second pass is a fixpoint for threads: nothing new to resize
    // (high-water marks only grow, and the sizes already match).
    let again = router.rebalance(&policy).unwrap();
    assert!(
        !again
            .iter()
            .any(|a| matches!(a, RebalanceAction::SetShardThreads { .. })),
        "second pass resized threads again: {again:?}"
    );
    for (tenant, events) in &s.messages[half..] {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
    }
    router.flush().unwrap();
    // Score-neutrality: every tenant still matches its solo twin.
    for (tenant, seed) in &s.seeds {
        let mut solo =
            StreamSession::with_engine(config.clone(), seed.clone(), ScoringEngine::serial())
                .unwrap();
        for events in s.tenant_messages(*tenant) {
            solo.ingest(events).unwrap();
        }
        let routed = router.scores(TenantId(*tenant)).unwrap();
        for (i, (a, b)) in routed.iter().zip(solo.scores()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "tenant {tenant}, triple {i} after rebalance"
            );
        }
    }
    let stats = router.shutdown().unwrap();
    assert_eq!(stats.aggregate().ingest_errors, 0);
}

/// Construction-time validation: unseeded shards, duplicate tenants and
/// unknown-tenant queries all fail loudly.
#[test]
fn construction_and_query_errors() {
    let s = stream(2, 71);
    // 3 shards but tenants {0, 1}: shard 2 has no seed.
    let err = ShardRouter::new(
        FuserConfig::new(Method::PrecRec),
        RouterConfig::new(3),
        seeds_of(&s),
    )
    .unwrap_err();
    assert_eq!(err, ServeError::ShardSeedMissing { shard: 2 });
    // Duplicate tenant seeds.
    let mut dup = seeds_of(&s);
    dup.push(dup[0].clone());
    let err =
        ShardRouter::new(FuserConfig::new(Method::PrecRec), RouterConfig::new(1), dup).unwrap_err();
    assert!(matches!(err, ServeError::InvalidConfig(_)));
    // Unknown tenant queries.
    let router = ShardRouter::new(
        FuserConfig::new(Method::PrecRec),
        RouterConfig::new(2),
        seeds_of(&s),
    )
    .unwrap();
    assert_eq!(
        router.scores(TenantId(5)).unwrap_err(),
        ServeError::UnknownTenant(TenantId(5))
    );
    assert!(router.shard_snapshot(9).is_err());
    router.shutdown().unwrap();
}
