//! Experiment BOOK-COPY — the §5.1 comparison against copy detection:
//! ACCU / ACCUCOPY (Dong et al. 2009) on the BOOK replica, evaluated at
//! the author-triple level so it is directly comparable with the fusion
//! methods. The paper reports the copy-aware approach reaching high
//! precision but losing recall (it discounts votes on true values too).

use std::collections::HashSet;

use corrfuse_baselines::accu::{accu, accu_copy, AccuConfig, AccuModel, SingleTruthProblem};
use corrfuse_core::dataset::Dataset;
use corrfuse_core::error::Result;

use crate::metrics::{Confusion, Prf};
use crate::report::{f3, Table};

/// Triple-level metrics for the single-truth models vs. a fusion method.
#[derive(Debug)]
pub struct BookCopyResult {
    /// `(method name, triple-level P/R/F1)`.
    pub rows: Vec<(String, Prf)>,
}

impl BookCopyResult {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["method", "precision", "recall", "f1"]);
        for (name, prf) in &self.rows {
            t.row([name.clone(), f3(prf.precision), f3(prf.recall), f3(prf.f1)]);
        }
        format!("== BOOK: single-truth copy detection vs fusion ==\n{t}")
    }

    /// Look up a row.
    pub fn prf(&self, name: &str) -> Option<Prf> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, p)| *p)
    }
}

/// Convert an [`AccuModel`]'s per-object value predictions into per-triple
/// accept decisions: a triple `(book, author, X)` is accepted iff `X` is a
/// member of the predicted author-list value for that book.
pub fn triple_decisions(
    ds: &Dataset,
    problem: &SingleTruthProblem,
    model: &AccuModel,
) -> Vec<bool> {
    // Predicted member-set per object key.
    let preds = model.predictions();
    let mut accepted: Vec<HashSet<&str>> = Vec::with_capacity(problem.n_objects());
    for (o, pred) in preds.iter().enumerate() {
        let mut set = HashSet::new();
        if let Some(v) = pred {
            for member in problem.values[o][*v as usize].split('|') {
                set.insert(member);
            }
        }
        accepted.push(set);
    }
    // Object key lookup (same construction as SingleTruthProblem).
    let key_of = |subject: &str, predicate: &str| format!("{subject}\u{1}{predicate}");
    let index: std::collections::HashMap<&str, usize> = problem
        .objects
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_str(), i))
        .collect();

    ds.triples()
        .map(|t| {
            let triple = ds.triple(t);
            let key = key_of(&triple.subject, &triple.predicate);
            match index.get(key.as_str()) {
                Some(&o) => accepted[o].contains(triple.object.as_str()),
                None => false,
            }
        })
        .collect()
}

/// Run ACCU and ACCUCOPY on the dataset's single-truth view, plus the
/// provided fusion baseline rows for comparison.
pub fn run(ds: &Dataset, extra_rows: Vec<(String, Prf)>) -> Result<BookCopyResult> {
    let gold = ds.require_gold()?;
    let problem = SingleTruthProblem::from_dataset(ds);
    let cfg = AccuConfig::default();

    let mut rows = Vec::new();
    for (name, model) in [
        ("Accu".to_string(), accu(&problem, &cfg)),
        ("AccuCopy".to_string(), accu_copy(&problem, &cfg)),
    ] {
        let decisions = triple_decisions(ds, &problem, &model);
        let confusion = Confusion::from_decisions(gold, &decisions);
        rows.push((name, confusion.into()));
    }
    rows.extend(extra_rows);
    Ok(BookCopyResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_synth::replicas::{book, BookConfig};

    fn small_book() -> Dataset {
        book(&BookConfig {
            n_books: 60,
            n_sources: 80,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn accu_copy_has_high_precision_on_book() {
        let ds = small_book();
        let res = run(&ds, vec![]).unwrap();
        let copy = res.prf("AccuCopy").unwrap();
        // The paper's shape: copy-aware single-truth fusion is precise but
        // recall-limited on BOOK-like data.
        assert!(copy.precision > 0.6, "precision {}", copy.precision);
        assert!(copy.recall < 0.98, "recall {}", copy.recall);
        let rendered = res.render();
        assert!(rendered.contains("AccuCopy"));
    }

    #[test]
    fn triple_decisions_cover_all_triples() {
        let ds = small_book();
        let problem = SingleTruthProblem::from_dataset(&ds);
        let model = accu(&problem, &AccuConfig::default());
        let decisions = triple_decisions(&ds, &problem, &model);
        assert_eq!(decisions.len(), ds.n_triples());
        // At least one triple accepted and one rejected.
        assert!(decisions.iter().any(|&d| d));
        assert!(decisions.iter().any(|&d| !d));
    }
}
