//! Experiments FIG6 and FIG7 — synthetic sweeps.
//!
//! Figure 6: independent sources, 5 sources × 1000 triples, 10 repetitions
//! per point:
//!   (a) low precision (p=0.1), recall 0.025..0.225, 25% true triples;
//!   (b) high precision (p=0.75), recall 0.075..0.675, 50% true;
//!   (c) low recall (r=0.25), precision 0.1..0.9, 25% true.
//!
//! Figure 7: correlated sources — (i) a group positively correlated on
//! true triples, (ii) sources negatively correlated on false triples.

use corrfuse_core::error::Result;
use corrfuse_synth::{generate, GroupKind, GroupSpec, Polarity, SynthSpec};

use crate::harness::{evaluate_method, MethodSpec};
use crate::report::{f3, Table};

/// The method line-up of Figures 6/7 (Majority ≡ Union-50).
pub fn lineup() -> Vec<MethodSpec> {
    vec![
        MethodSpec::Union(50.0),
        MethodSpec::Union(25.0),
        MethodSpec::Union(75.0),
        MethodSpec::ThreeEstimates,
        MethodSpec::ltm_default(),
        MethodSpec::PrecRec,
        MethodSpec::PrecRecCorr,
    ]
}

/// Average F1 per method at one sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Point label, e.g. `p=0.10 r=0.125`.
    pub label: String,
    /// `(method name, mean F1 over repetitions)`.
    pub f1: Vec<(String, f64)>,
}

/// One full sweep (a Figure-6 panel or Figure 7).
#[derive(Debug)]
pub struct Sweep {
    /// Panel title.
    pub title: String,
    /// Points in sweep order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Render as a methods × points table.
    pub fn render(&self) -> String {
        let mut headers = vec!["method".to_string()];
        headers.extend(self.points.iter().map(|p| p.label.clone()));
        let mut t = Table::new(headers);
        if let Some(first) = self.points.first() {
            for (m, _) in &first.f1 {
                let mut row = vec![m.clone()];
                for p in &self.points {
                    let v =
                        p.f1.iter()
                            .find(|(name, _)| name == m)
                            .map(|(_, f1)| *f1)
                            .unwrap_or(f64::NAN);
                    row.push(f3(v));
                }
                t.row(row);
            }
        }
        format!("== {} ==\n{}", self.title, t)
    }

    /// Mean F1 of a method across the sweep.
    pub fn mean_f1(&self, method: &str) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter_map(|p| p.f1.iter().find(|(n, _)| n == method).map(|(_, v)| *v))
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

/// Evaluate the line-up on `reps` seeded generations of a spec template.
fn sweep_point(
    label: String,
    make_spec: impl Fn(u64) -> SynthSpec,
    reps: usize,
    methods: &[MethodSpec],
) -> Result<SweepPoint> {
    let mut sums: Vec<f64> = vec![0.0; methods.len()];
    let mut counts: Vec<usize> = vec![0; methods.len()];
    for rep in 0..reps {
        let spec = make_spec(rep as u64);
        let ds = generate(&spec)?;
        for (i, m) in methods.iter().enumerate() {
            let rep = evaluate_method(&ds, m)?;
            sums[i] += rep.prf.f1;
            counts[i] += 1;
        }
    }
    Ok(SweepPoint {
        label,
        f1: methods
            .iter()
            .zip(sums.iter().zip(&counts))
            .map(|(m, (s, c))| (m.name(), s / (*c).max(1) as f64))
            .collect(),
    })
}

/// Figure 6a: p = 0.1, r ∈ {0.025, 0.075, 0.125, 0.175, 0.225}, 25% true.
pub fn fig6a(reps: usize, base_seed: u64) -> Result<Sweep> {
    let mut points = Vec::new();
    for (i, r) in [0.025, 0.075, 0.125, 0.175, 0.225].iter().enumerate() {
        points.push(sweep_point(
            format!("r={r}"),
            |rep| SynthSpec::uniform(5, 0.1, *r, 1000, 0.25, base_seed + (i as u64) * 100 + rep),
            reps,
            &lineup(),
        )?);
    }
    Ok(Sweep {
        title: "Figure 6a: p=0.1, 25% true".to_string(),
        points,
    })
}

/// Figure 6b: p = 0.75, r ∈ {0.075, 0.225, 0.375, 0.525, 0.675}, 50% true.
pub fn fig6b(reps: usize, base_seed: u64) -> Result<Sweep> {
    let mut points = Vec::new();
    for (i, r) in [0.075, 0.225, 0.375, 0.525, 0.675].iter().enumerate() {
        points.push(sweep_point(
            format!("r={r}"),
            |rep| SynthSpec::uniform(5, 0.75, *r, 1000, 0.5, base_seed + (i as u64) * 100 + rep),
            reps,
            &lineup(),
        )?);
    }
    Ok(Sweep {
        title: "Figure 6b: p=0.75, 50% true".to_string(),
        points,
    })
}

/// Figure 6c: r = 0.25, p ∈ {0.1, 0.3, 0.5, 0.7, 0.9}, 25% true.
pub fn fig6c(reps: usize, base_seed: u64) -> Result<Sweep> {
    let mut points = Vec::new();
    for (i, p) in [0.1, 0.3, 0.5, 0.7, 0.9].iter().enumerate() {
        points.push(sweep_point(
            format!("p={p}"),
            |rep| SynthSpec::uniform(5, *p, 0.25, 1000, 0.25, base_seed + (i as u64) * 100 + rep),
            reps,
            &lineup(),
        )?);
    }
    Ok(Sweep {
        title: "Figure 6c: r=0.25, 25% true".to_string(),
        points,
    })
}

/// Figure 7: correlated synthetic scenarios.
pub fn fig7(reps: usize, base_seed: u64) -> Result<Sweep> {
    let correlated = |rep: u64| {
        SynthSpec::uniform(5, 0.6, 0.45, 1000, 0.4, base_seed + rep).with_group(GroupSpec {
            members: vec![0, 1, 2, 3],
            polarity: Polarity::TrueTriples,
            kind: GroupKind::Positive { strength: 0.85 },
        })
    };
    let anti = |rep: u64| {
        SynthSpec::uniform(5, 0.6, 0.45, 1000, 0.4, base_seed + 1000 + rep).with_group(GroupSpec {
            members: vec![0, 1, 2, 3],
            polarity: Polarity::FalseTriples,
            kind: GroupKind::Complementary { strength: 0.9 },
        })
    };
    let points = vec![
        sweep_point("correlation".to_string(), correlated, reps, &lineup())?,
        sweep_point("anti-correlation".to_string(), anti, reps, &lineup())?,
    ];
    Ok(Sweep {
        title: "Figure 7: correlated sources".to_string(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_low_quality_precrec_wins_at_higher_recall() {
        // One repetition for test speed; the bench bins run the full 10.
        let sweep = fig6a(1, 99).unwrap();
        assert_eq!(sweep.points.len(), 5);
        // At the top recall point PrecRec must beat Union-25 (which is
        // very sensitive to low-quality sources, per the paper).
        let last = sweep.points.last().unwrap();
        let get = |name: &str| {
            last.f1
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(
            get("PrecRec") > get("Union-25"),
            "PrecRec {} vs Union-25 {}",
            get("PrecRec"),
            get("Union-25")
        );
    }

    #[test]
    fn fig7_correlation_scenarios_favour_corr_model() {
        let sweep = fig7(2, 123).unwrap();
        assert_eq!(sweep.points.len(), 2);
        for point in &sweep.points {
            let get = |name: &str| {
                point
                    .f1
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            assert!(
                get("PrecRecCorr") >= get("PrecRec") - 0.02,
                "{}: corr {} vs indep {}",
                point.label,
                get("PrecRecCorr"),
                get("PrecRec")
            );
        }
        let rendered = sweep.render();
        assert!(rendered.contains("anti-correlation"));
    }

    #[test]
    fn sweep_render_is_table_shaped() {
        let sweep = fig6c(1, 7).unwrap();
        let rendered = sweep.render();
        assert!(rendered.contains("p=0.1"));
        assert!(rendered.contains("PrecRecCorr"));
        assert!(sweep.mean_f1("PrecRec").is_finite());
    }
}
