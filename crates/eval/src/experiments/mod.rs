//! Per-figure experiment runners (see DESIGN.md §4 for the index).
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`fig1`] | Figure 1b/1c + Examples 3.3/4.4 + §2.3 overview |
//! | [`realworld`] | Figure 4a/4b/4c (REVERB / RESTAURANT / BOOK) |
//! | [`elastic_levels`] | Figure 5a |
//! | [`runtime`] | Figure 5b |
//! | [`synthetic`] | Figures 6a/6b/6c and 7 |
//! | [`discovery`] | §5.1 "Discovered correlations" |
//! | [`book_copy`] | §5.1 ACCU/ACCUCOPY comparison on BOOK |

pub mod book_copy;
pub mod discovery;
pub mod elastic_levels;
pub mod fig1;
pub mod realworld;
pub mod runtime;
pub mod synthetic;
