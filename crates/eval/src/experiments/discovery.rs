//! Experiment TBL-CORR — "Discovered correlations" (§5.1): the strongest
//! pairwise correlations per polarity and the clique structure found by
//! correlation clustering.

use corrfuse_core::cluster::{cluster_sources, pairwise_correlations, ClusterConfig};
use corrfuse_core::dataset::Dataset;
use corrfuse_core::error::Result;

use crate::report::{f2, Table};

/// Discovered-correlation report for one dataset.
#[derive(Debug)]
pub struct DiscoveryResult {
    /// Dataset display name.
    pub dataset: String,
    /// Strongest positively/negatively correlated pairs on true triples.
    pub top_true: Table,
    /// Strongest pairs on false triples.
    pub top_false: Table,
    /// Sizes of non-trivial clusters, descending.
    pub clique_sizes: Vec<usize>,
}

impl DiscoveryResult {
    /// Render the report.
    pub fn render(&self) -> String {
        format!(
            "== Discovered correlations ({}) ==\n\
             -- strongest pairs on true triples --\n{}\n\
             -- strongest pairs on false triples --\n{}\n\
             clique sizes: {:?}\n",
            self.dataset, self.top_true, self.top_false, self.clique_sizes
        )
    }
}

/// Analyse one dataset: top-`k` pairs per polarity plus cluster sizes.
pub fn run(ds: &Dataset, name: &str, k: usize, cfg: &ClusterConfig) -> Result<DiscoveryResult> {
    let gold = ds.require_gold()?;
    let pairs = pairwise_correlations(ds, gold, cfg)?;

    let mut by_true: Vec<_> = pairs.iter().filter(|p| p.lift_true.is_some()).collect();
    by_true.sort_by(|a, b| {
        let sa = a.lift_true.unwrap().ln().abs();
        let sb = b.lift_true.unwrap().ln().abs();
        sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut top_true = Table::new(["pair", "lift(true)", "direction"]);
    for p in by_true.iter().take(k) {
        let lift = p.lift_true.unwrap();
        top_true.row([
            format!("{} ~ {}", ds.source_name(p.a), ds.source_name(p.b)),
            f2(lift),
            if lift > 1.0 { "positive" } else { "negative" }.to_string(),
        ]);
    }

    let mut by_false: Vec<_> = pairs.iter().filter(|p| p.lift_false.is_some()).collect();
    by_false.sort_by(|a, b| {
        let sa = a.lift_false.unwrap().ln().abs();
        let sb = b.lift_false.unwrap().ln().abs();
        sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut top_false = Table::new(["pair", "lift(false)", "direction"]);
    for p in by_false.iter().take(k) {
        let lift = p.lift_false.unwrap();
        top_false.row([
            format!("{} ~ {}", ds.source_name(p.a), ds.source_name(p.b)),
            f2(lift),
            if lift > 1.0 { "positive" } else { "negative" }.to_string(),
        ]);
    }

    let clustering = cluster_sources(ds, gold, cfg)?;
    Ok(DiscoveryResult {
        dataset: name.to_string(),
        top_true,
        top_false,
        clique_sizes: clustering.clique_sizes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_synth::replicas;

    #[test]
    fn reverb_discovery_finds_planted_structure() {
        let ds = replicas::reverb(3).unwrap();
        let res = run(&ds, "REVERB", 5, &ClusterConfig::default()).unwrap();
        assert!(!res.top_true.is_empty());
        assert!(!res.top_false.is_empty());
        // The replica plants a 2-group and a 3-group on true triples plus
        // pairs on false; clustering should find non-trivial cliques.
        assert!(
            !res.clique_sizes.is_empty(),
            "expected non-trivial cliques, got none"
        );
        let rendered = res.render();
        assert!(rendered.contains("REVERB"));
    }

    #[test]
    fn book_discovery_recovers_large_cliques() {
        let cfg = corrfuse_synth::replicas::BookConfig {
            n_books: 80,
            n_sources: 100,
            ..Default::default()
        };
        let ds = replicas::book(&cfg).unwrap();
        let res = run(&ds, "BOOK", 10, &ClusterConfig::default()).unwrap();
        // The planted copying cliques should produce clusters larger than
        // pairs.
        assert!(
            res.clique_sizes.first().copied().unwrap_or(0) >= 3,
            "clique sizes {:?}",
            res.clique_sizes
        );
    }
}
