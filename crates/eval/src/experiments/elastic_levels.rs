//! Experiment FIG5A — elastic approximation levels: F-measure of the
//! aggressive approximation and each elastic level, converging towards the
//! exact PrecRecCorr result (Figure 5a of the paper).

use corrfuse_core::dataset::Dataset;
use corrfuse_core::error::Result;

use crate::harness::{evaluate_method, MethodSpec};
use crate::report::{f3, secs, Table};

/// F1 (and runtime) of one approximation setting.
#[derive(Debug, Clone)]
pub struct LevelPoint {
    /// Setting label ("aggressive", "level-0", ..., "exact").
    pub label: String,
    /// F-measure at threshold 0.5.
    pub f1: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// The level sweep for one dataset.
#[derive(Debug)]
pub struct ElasticSweep {
    /// Dataset display name.
    pub dataset: String,
    /// Aggressive, levels `0..=max_level`, then (optionally) exact.
    pub points: Vec<LevelPoint>,
}

impl ElasticSweep {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["setting", "f1", "time"]);
        for p in &self.points {
            t.row([p.label.clone(), f3(p.f1), secs(p.seconds)]);
        }
        format!("== Figure 5a ({}) ==\n{}", self.dataset, t)
    }

    /// F1 of the final (most exact) setting in the sweep.
    pub fn final_f1(&self) -> f64 {
        self.points.last().map(|p| p.f1).unwrap_or(f64::NAN)
    }

    /// F1 of a labelled point.
    pub fn f1_of(&self, label: &str) -> Option<f64> {
        self.points.iter().find(|p| p.label == label).map(|p| p.f1)
    }
}

/// Run the sweep: aggressive, elastic levels `0..=max_level`, and — when
/// `include_exact` — the exact solution (skip for datasets whose cluster
/// widths make exact infeasible).
pub fn run(
    ds: &Dataset,
    name: &str,
    max_level: usize,
    include_exact: bool,
) -> Result<ElasticSweep> {
    let mut points = Vec::new();
    let aggressive = evaluate_method(ds, &MethodSpec::Aggressive)?;
    points.push(LevelPoint {
        label: "aggressive".to_string(),
        f1: aggressive.prf.f1,
        seconds: aggressive.seconds,
    });
    for level in 0..=max_level {
        let rep = evaluate_method(ds, &MethodSpec::Elastic(level))?;
        points.push(LevelPoint {
            label: format!("level-{level}"),
            f1: rep.prf.f1,
            seconds: rep.seconds,
        });
    }
    if include_exact {
        let exact = evaluate_method(ds, &MethodSpec::PrecRecCorr)?;
        points.push(LevelPoint {
            label: "exact".to_string(),
            f1: exact.prf.f1,
            seconds: exact.seconds,
        });
    }
    Ok(ElasticSweep {
        dataset: name.to_string(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_synth::motivating::figure1;

    #[test]
    fn sweep_on_figure1_converges_to_exact() {
        let ds = figure1();
        let sweep = run(&ds, "FIG1", 4, true).unwrap();
        // aggressive + levels 0..=4 + exact = 7 points.
        assert_eq!(sweep.points.len(), 7);
        let exact = sweep.final_f1();
        // Level 4 covers every complement in a 5-source cluster.
        let lvl4 = sweep.f1_of("level-4").unwrap();
        assert!((lvl4 - exact).abs() < 1e-9, "lvl4 {lvl4} vs exact {exact}");
        let rendered = sweep.render();
        assert!(rendered.contains("aggressive"));
        assert!(rendered.contains("exact"));
    }

    #[test]
    fn exact_can_be_skipped() {
        let ds = figure1();
        let sweep = run(&ds, "FIG1", 1, false).unwrap();
        assert_eq!(sweep.points.len(), 3);
        assert_eq!(sweep.points.last().unwrap().label, "level-1");
    }
}
