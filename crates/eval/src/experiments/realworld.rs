//! Experiment FIG4 — the real-world comparison (Figure 4a/b/c): for one
//! dataset replica, run the paper's method line-up and report P/R/F1 bars
//! plus PR-curve, ROC-curve, AUC-PR and AUC-ROC.

use corrfuse_core::dataset::Dataset;
use corrfuse_core::error::Result;

use crate::curves::downsample;
use crate::harness::{evaluate_all, MethodReport, MethodSpec};
use crate::report::{f3, secs, series, Table};

/// Results of the Figure-4 style evaluation on one dataset.
#[derive(Debug)]
pub struct RealWorldResult {
    /// Dataset display name.
    pub dataset: String,
    /// One report per method, in line-up order.
    pub reports: Vec<MethodReport>,
}

impl RealWorldResult {
    /// The method with the best F1.
    pub fn best_f1(&self) -> &MethodReport {
        self.reports
            .iter()
            .max_by(|a, b| a.prf.f1.partial_cmp(&b.prf.f1).unwrap())
            .expect("non-empty lineup")
    }

    /// Look up a report by method name.
    pub fn report(&self, name: &str) -> Option<&MethodReport> {
        self.reports.iter().find(|r| r.name == name)
    }

    /// Render the bar metrics, AUCs and down-sampled curves.
    pub fn render(&self) -> String {
        let mut metrics = Table::new([
            "method",
            "precision",
            "recall",
            "f1",
            "auc-pr",
            "auc-roc",
            "time",
        ]);
        for r in &self.reports {
            metrics.row([
                r.name.clone(),
                f3(r.prf.precision),
                f3(r.prf.recall),
                f3(r.prf.f1),
                f3(r.ranked.auc_pr),
                f3(r.ranked.auc_roc),
                secs(r.seconds),
            ]);
        }
        let mut out = format!("== Figure 4 ({}) ==\n{}", self.dataset, metrics);
        out.push_str("\nPR curves (11 points, recall -> precision):\n");
        for r in &self.reports {
            let pts: Vec<(f64, f64)> = downsample(&r.ranked.pr_curve, 11)
                .iter()
                .map(|p| (p.x, p.y))
                .collect();
            out.push_str(&format!("  {:<18} {}\n", r.name, series(&pts)));
        }
        out.push_str("ROC curves (11 points, fpr -> tpr):\n");
        for r in &self.reports {
            let pts: Vec<(f64, f64)> = downsample(&r.ranked.roc_curve, 11)
                .iter()
                .map(|p| (p.x, p.y))
                .collect();
            out.push_str(&format!("  {:<18} {}\n", r.name, series(&pts)));
        }
        out
    }
}

/// Run the paper line-up on a dataset. `corr` selects which PrecRecCorr
/// variant stands in for the exact solution (exact for the small-source
/// datasets, elastic level-3 for BOOK, as in Figure 5).
pub fn run(ds: &Dataset, name: &str, corr: MethodSpec) -> Result<RealWorldResult> {
    let reports = evaluate_all(ds, &MethodSpec::paper_lineup(corr))?;
    Ok(RealWorldResult {
        dataset: name.to_string(),
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_synth::replicas;

    #[test]
    fn restaurant_lineup_shapes() {
        let ds = replicas::restaurant(1).unwrap();
        let res = run(&ds, "RESTAURANT", MethodSpec::PrecRecCorr).unwrap();
        assert_eq!(res.reports.len(), 7);
        let rendered = res.render();
        assert!(rendered.contains("RESTAURANT"));
        assert!(rendered.contains("Union-50"));
        assert!(rendered.contains("PR curves"));
        assert!(res.report("PrecRec").is_some());
        assert!(res.report("nope").is_none());
    }

    #[test]
    fn corr_is_competitive_on_restaurant() {
        let ds = replicas::restaurant(7).unwrap();
        let res = run(&ds, "RESTAURANT", MethodSpec::PrecRecCorr).unwrap();
        let corr = res.report("PrecRecCorr").unwrap();
        let best = res.best_f1();
        // The paper's headline: PrecRecCorr obtains the best results.
        assert!(
            corr.prf.f1 >= best.prf.f1 - 0.05,
            "PrecRecCorr f1 {} vs best {} ({})",
            corr.prf.f1,
            best.prf.f1,
            best.name
        );
    }
}
