//! Experiment FIG1 — regenerate every number of the motivating example:
//! Figure 1b (source and joint quality), Figure 1c (voting results), the
//! worked probabilities of Examples 3.3 / 4.4, and the §2.3 overview
//! claims for PrecRec and PrecRecCorr.

use corrfuse_core::dataset::Dataset;
use corrfuse_core::error::Result;
use corrfuse_core::joint::{EmpiricalJoint, JointQuality, SourceSet};
use corrfuse_core::quality::QualityEstimator;
use corrfuse_core::triple::TripleId;
use corrfuse_synth::motivating;

use crate::harness::{evaluate_method, MethodSpec};
use crate::report::{f2, f3, Table};

/// All regenerated Figure-1 artifacts, ready to render.
#[derive(Debug)]
pub struct Fig1Result {
    /// Figure 1b left: per-source precision and recall.
    pub source_quality: Table,
    /// Figure 1b right: joint precision/recall of selected subsets.
    pub joint_quality: Table,
    /// Figure 1c: Union-K precision/recall/F1.
    pub voting: Table,
    /// Per-triple probabilities for PrecRec and PrecRecCorr.
    pub probabilities: Table,
    /// §2.3 overview summary for the two models.
    pub summary: Table,
}

impl Fig1Result {
    /// Render all tables with captions.
    pub fn render(&self) -> String {
        format!(
            "== Figure 1b: source quality ==\n{}\n\
             == Figure 1b: joint quality of source subsets ==\n{}\n\
             == Figure 1c: voting baselines ==\n{}\n\
             == Triple probabilities (Examples 3.3 / 4.4) ==\n{}\n\
             == Overview (paper section 2.3) ==\n{}",
            self.source_quality, self.joint_quality, self.voting, self.probabilities, self.summary
        )
    }
}

/// Run the full Figure-1 regeneration.
pub fn run() -> Result<Fig1Result> {
    let ds = motivating::figure1();
    let gold = ds.require_gold()?;

    // Figure 1b left.
    let qualities = QualityEstimator::new().estimate(&ds, gold)?;
    let mut source_quality = Table::new(["source", "precision", "recall", "fpr(a=0.5)"]);
    for (i, q) in qualities.iter().enumerate() {
        source_quality.row([
            format!("S{}", i + 1),
            f2(q.precision),
            f2(q.recall),
            f2(corrfuse_core::quality::derive_fpr_clamped(
                q.precision,
                q.recall,
                0.5,
            )),
        ]);
    }

    // Figure 1b right: the paper's four subsets.
    let members: Vec<_> = ds.sources().collect();
    let joint = EmpiricalJoint::new(&ds, gold, members, 0.5)?;
    let mut joint_quality = Table::new(["sources", "joint prec", "joint rec"]);
    let combos: [(&str, &[usize]); 4] = [
        ("S2S3", &[2, 3]),
        ("S1S3", &[1, 3]),
        ("S1S2S4", &[1, 2, 4]),
        ("S1S4S5", &[1, 4, 5]),
    ];
    for (name, sources) in combos {
        let set = sources
            .iter()
            .fold(SourceSet::EMPTY, |acc, &s| acc.with(s - 1));
        joint_quality.row([
            name.to_string(),
            joint
                .joint_precision(set)
                .map(f2)
                .unwrap_or_else(|| "n/a".to_string()),
            f2(joint.joint_recall(set)),
        ]);
    }

    // Figure 1c.
    let mut voting = Table::new(["method", "precision", "recall", "f1"]);
    for k in [25.0, 50.0, 75.0] {
        let rep = evaluate_method(&ds, &MethodSpec::Union(k))?;
        voting.row([
            rep.name,
            f2(rep.prf.precision),
            f2(rep.prf.recall),
            f2(rep.prf.f1),
        ]);
    }

    // Per-triple probabilities.
    let precrec = crate::harness::run_method(&ds, &MethodSpec::PrecRec)?;
    let corr = crate::harness::run_method(&ds, &MethodSpec::PrecRecCorr)?;
    let mut probabilities = Table::new(["triple", "gold", "PrecRec", "PrecRecCorr"]);
    for t in ds.triples() {
        probabilities.row([
            motivating::triple_name(t),
            if gold.get(t) == Some(true) {
                "true"
            } else {
                "false"
            }
            .to_string(),
            f3(precrec.scores[t.index()]),
            f3(corr.scores[t.index()]),
        ]);
    }

    // Overview summary.
    let mut summary = Table::new(["method", "precision", "recall", "f1"]);
    for spec in [MethodSpec::PrecRec, MethodSpec::PrecRecCorr] {
        let rep = evaluate_method(&ds, &spec)?;
        summary.row([
            rep.name,
            f2(rep.prf.precision),
            f2(rep.prf.recall),
            f2(rep.prf.f1),
        ]);
    }

    Ok(Fig1Result {
        source_quality,
        joint_quality,
        voting,
        probabilities,
        summary,
    })
}

/// The worked probabilities the paper derives in Examples 3.3 and 4.4,
/// as `(t2 under PrecRec, t8 under PrecRec, t8 under PrecRecCorr)`.
pub fn worked_probabilities(ds: &Dataset) -> Result<(f64, f64, f64)> {
    let precrec = crate::harness::run_method(ds, &MethodSpec::PrecRec)?;
    let corr = crate::harness::run_method(ds, &MethodSpec::PrecRecCorr)?;
    Ok((
        precrec.scores[TripleId(1).index()],
        precrec.scores[TripleId(7).index()],
        corr.scores[TripleId(7).index()],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_tables_have_expected_shapes() {
        let r = run().unwrap();
        assert_eq!(r.source_quality.len(), 5);
        assert_eq!(r.joint_quality.len(), 4);
        assert_eq!(r.voting.len(), 3);
        assert_eq!(r.probabilities.len(), 10);
        assert_eq!(r.summary.len(), 2);
        let rendered = r.render();
        assert!(rendered.contains("Union-25"));
        assert!(rendered.contains("PrecRecCorr"));
    }

    #[test]
    fn worked_probabilities_match_paper() {
        let ds = motivating::figure1();
        let (t2, t8_indep, t8_corr) = worked_probabilities(&ds).unwrap();
        // Example 3.3: Pr(t2) = 0.09; Pr(t8) = 0.62 under independence.
        assert!((t2 - 0.09).abs() < 0.01, "t2 = {t2}");
        assert!((t8_indep - 0.62).abs() < 0.01, "t8 indep = {t8_indep}");
        // Example 4.4: exact correlations drop t8 below 0.5. (The paper's
        // 0.37 uses *assumed* joint parameters; empirical Figure-1 counts
        // push it lower still.)
        assert!(t8_corr < 0.5, "t8 corr = {t8_corr}");
    }

    #[test]
    fn voting_matches_figure_1c() {
        let r = run().unwrap();
        let rendered = r.voting.to_string();
        assert!(rendered.contains("0.56"), "{rendered}");
        assert!(rendered.contains("0.71"), "{rendered}");
        assert!(rendered.contains("0.60"), "{rendered}");
    }
}
