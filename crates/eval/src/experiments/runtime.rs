//! Experiment FIG5B — the runtime table (Figure 5b): wall-clock seconds of
//! every method on every dataset. Absolute numbers depend on the host; the
//! paper's *relative* pattern is what we reproduce (UNION ≪ 3-Estimates ≈
//! PrecRec < LTM ≈ elastic < exact).

use corrfuse_core::dataset::Dataset;
use corrfuse_core::error::Result;

use crate::harness::{run_method, MethodSpec};
use crate::report::{secs, Table};

/// Seconds per method per dataset.
#[derive(Debug)]
pub struct RuntimeResult {
    /// Dataset names (columns).
    pub datasets: Vec<String>,
    /// `(method name, seconds per dataset)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl RuntimeResult {
    /// Render as the Figure 5b table.
    pub fn render(&self) -> String {
        let mut headers = vec!["time".to_string()];
        headers.extend(self.datasets.clone());
        let mut t = Table::new(headers);
        for (name, times) in &self.rows {
            let mut row = vec![name.clone()];
            row.extend(
                times
                    .iter()
                    .map(|&v| if v.is_nan() { "-".to_string() } else { secs(v) }),
            );
            t.row(row);
        }
        format!("== Figure 5b: runtimes ==\n{t}")
    }

    /// Seconds for a method on a dataset (NaN if skipped).
    pub fn seconds(&self, method: &str, dataset: &str) -> f64 {
        let col = match self.datasets.iter().position(|d| d == dataset) {
            Some(c) => c,
            None => return f64::NAN,
        };
        self.rows
            .iter()
            .find(|(n, _)| n == method)
            .map(|(_, times)| times[col])
            .unwrap_or(f64::NAN)
    }
}

/// Time every `(method, dataset)` pair; entries in `skip` are recorded as
/// NaN (used for exact PrecRecCorr on BOOK-scale data).
pub fn run(
    datasets: &[(&str, &Dataset)],
    methods: &[MethodSpec],
    skip: &[(&str, &str)],
) -> Result<RuntimeResult> {
    let mut rows = Vec::new();
    for m in methods {
        let mut times = Vec::new();
        for (name, ds) in datasets {
            if skip.iter().any(|(sm, sd)| *sm == m.name() && sd == name) {
                times.push(f64::NAN);
                continue;
            }
            let run = run_method(ds, m)?;
            times.push(run.seconds);
        }
        rows.push((m.name(), times));
    }
    Ok(RuntimeResult {
        datasets: datasets.iter().map(|(n, _)| n.to_string()).collect(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_synth::motivating::figure1;

    #[test]
    fn runtime_table_shapes_and_skip() {
        let ds = figure1();
        let datasets = [("FIG1", &ds)];
        let methods = [
            MethodSpec::Union(50.0),
            MethodSpec::PrecRec,
            MethodSpec::PrecRecCorr,
        ];
        let res = run(&datasets, &methods, &[("PrecRecCorr", "FIG1")]).unwrap();
        assert_eq!(res.rows.len(), 3);
        assert!(res.seconds("Union-50", "FIG1") >= 0.0);
        assert!(res.seconds("PrecRecCorr", "FIG1").is_nan());
        assert!(res.seconds("Union-50", "NOPE").is_nan());
        let rendered = res.render();
        assert!(rendered.contains("Figure 5b"));
        assert!(rendered.contains('-'));
    }
}
